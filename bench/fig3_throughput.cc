// Regenerates Figure 3 (paper §7.3): insertion, uniform-lookup (negative),
// and positive-lookup throughput as the filter load grows from 0 to 100% in
// 5% rounds.
//
// Methodology follows the paper: each round times (a) 0.05n pre-generated
// insertions, (b) 0.05n uniformly random lookups (negative w.o.p.), and
// (c) 0.05n lookups of keys sampled from previous rounds.  All query streams
// are pre-generated outside the timed region.  Filters run as concrete
// types — no virtual dispatch inside timing loops.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/twochoicer.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::PrefixFilter;

struct Series {
  std::string name;
  std::vector<double> insert_mops;
  std::vector<double> uniform_mops;
  std::vector<double> positive_mops;
  uint64_t failed_inserts = 0;
};

double Mean(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return v.empty() ? 0 : sum / static_cast<double>(v.size());
}

template <typename Filter>
Series RunSeries(const std::string& name, Filter filter,
                 const bench::Workload& w, int rounds) {
  Series s;
  s.name = name;
  const uint64_t per_round = w.insert_keys.size() / rounds;
  for (int round = 0; round < rounds; ++round) {
    const auto [ins_secs, failures] = bench::TimeInserts(
        filter, w.insert_keys, round * per_round, (round + 1) * per_round);
    s.failed_inserts += failures;
    const auto [neg_secs, neg_found] =
        bench::TimeQueries(filter, w.uniform_queries[round]);
    const auto [pos_secs, pos_found] =
        bench::TimeQueries(filter, w.positive_queries[round]);
    bench::KeepAlive(neg_found + pos_found);
    s.insert_mops.push_back(bench::OpsPerSec(per_round, ins_secs) / 1e6);
    s.uniform_mops.push_back(bench::OpsPerSec(per_round, neg_secs) / 1e6);
    s.positive_mops.push_back(bench::OpsPerSec(per_round, pos_secs) / 1e6);
  }
  return s;
}

void PrintPanel(const char* title, const std::vector<Series>& all, int rounds,
                const std::vector<double> Series::*member) {
  std::printf("\n--- %s (Mops/s per 5%%-load round) ---\n%-14s", title, "load:");
  for (int r = 0; r < rounds; ++r) std::printf(" %5d%%", 5 * (r + 1));
  std::printf("\n");
  for (const auto& s : all) {
    std::printf("%-14s", s.name.c_str());
    for (double v : s.*member) std::printf(" %6.1f", v);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseOptions(argc, argv);
  std::printf("== Figure 3: throughput vs load ==\n");
  std::printf("n = 0.94 * 2^%d = %llu, %d rounds\n", options.n_log2,
              static_cast<unsigned long long>(options.n()), options.rounds);
  const bench::Workload w = bench::Workload::Generate(options);
  const uint64_t n = options.n();
  const uint64_t seed = options.seed;

  std::vector<Series> all;
  all.push_back(RunSeries(
      "BBF", prefixfilter::BlockedBloomFilter::MakeNonFlexible(n, seed), w,
      options.rounds));
  all.push_back(RunSeries(
      "BBF-Flex", prefixfilter::BlockedBloomFilter::MakeFlexible(n, 10.67, seed),
      w, options.rounds));
  all.push_back(RunSeries("CF-8", prefixfilter::CuckooFilter8(n, false, seed),
                          w, options.rounds));
  all.push_back(RunSeries("CF-12", prefixfilter::CuckooFilter12(n, false, seed),
                          w, options.rounds));
  all.push_back(RunSeries("CF-12-Flex",
                          prefixfilter::CuckooFilter12(n, true, seed), w,
                          options.rounds));
  all.push_back(RunSeries("TC", prefixfilter::TwoChoicer(n, seed), w,
                          options.rounds));
  prefixfilter::PrefixFilterOptions pf_options;
  pf_options.seed = seed;
  all.push_back(RunSeries(
      "PF[BBF-Flex]",
      PrefixFilter<prefixfilter::SpareBbfTraits>(n, pf_options), w,
      options.rounds));
  all.push_back(RunSeries(
      "PF[CF12-Flex]",
      PrefixFilter<prefixfilter::SpareCf12Traits>(n, pf_options), w,
      options.rounds));
  all.push_back(RunSeries(
      "PF[TC]", PrefixFilter<prefixfilter::SpareTcTraits>(n, pf_options), w,
      options.rounds));

  PrintPanel("(a) Insertions", all, options.rounds, &Series::insert_mops);
  PrintPanel("(b) Uniform lookups (negative)", all, options.rounds,
             &Series::uniform_mops);
  PrintPanel("(c) Yes lookups (positive)", all, options.rounds,
             &Series::positive_mops);

  for (const auto& s : all) {
    if (s.failed_inserts > 0) {
      std::printf("\nnote: %s failed %llu insertions\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.failed_inserts));
    }
  }

  // Machine-readable results: per filter, the load-sweep mean and the
  // full-load (last-round) rate for each of the three §7.3 panels.
  bench::BenchRunner runner("fig3_throughput", options);
  for (const auto& s : all) {
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("insert_mean_mops", Mean(s.insert_mops));
    m.Set("insert_at_full_mops", s.insert_mops.back());
    m.Set("uniform_query_mean_mops", Mean(s.uniform_mops));
    m.Set("uniform_query_at_full_mops", s.uniform_mops.back());
    m.Set("positive_query_mean_mops", Mean(s.positive_mops));
    m.Set("positive_query_at_full_mops", s.positive_mops.back());
    m.Set("insert_failures", s.failed_inserts);
    runner.Add(s.name, "load-sweep", std::move(m));
  }
  if (!runner.WriteJsonIfRequested()) return 1;
  std::printf(
      "\nPaper check: (a) CF insertions collapse at high load while PF stays\n"
      "within ~2-3x of its peak and TC is flat-then-degrading past 50%%;\n"
      "(b) PF negative lookups beat TC (~1.4x) and CF-12-Flex at all loads;\n"
      "(c) CF-12 leads positive lookups at full load, PF beats TC; BBF is\n"
      "~2x everything everywhere.\n");
  return 0;
}
