// Extension bench (paper §4.4): thread scaling of the per-bin-locked
// concurrent prefix filter.  The paper predicts near-linear scaling because
// every operation locks a single cache line of bins; we measure insert and
// query throughput at 1..hardware_concurrency threads.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/core/concurrent_prefix_filter.h"
#include "src/core/spare.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::ConcurrentPrefixFilter;
using prefixfilter::SpareCf12Traits;

double ParallelInsert(ConcurrentPrefixFilter<SpareCf12Traits>& pf,
                      const std::vector<uint64_t>& keys, int threads) {
  bench::Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      for (size_t i = t; i < keys.size(); i += threads) pf.Insert(keys[i]);
    });
  }
  for (auto& w : workers) w.join();
  return timer.Seconds();
}

double ParallelQuery(const ConcurrentPrefixFilter<SpareCf12Traits>& pf,
                     const std::vector<uint64_t>& keys, int threads) {
  bench::Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      uint64_t found = 0;
      for (size_t i = t; i < keys.size(); i += threads) {
        found += pf.Contains(keys[i]);
      }
      bench::KeepAlive(found);
    });
  }
  for (auto& w : workers) w.join();
  return timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::ParseOptions(argc, argv);
  const uint64_t n = options.n();
  const auto keys = prefixfilter::RandomKeys(n, options.seed);
  const auto probes = prefixfilter::RandomKeys(n, options.seed ^ 0xccu);

  const int max_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::printf("== Concurrent prefix filter scaling (§4.4 extension) ==\n");
  std::printf("n = %llu, hardware threads = %d\n\n",
              static_cast<unsigned long long>(n), max_threads);
  std::printf("%8s | %14s | %16s | %16s\n", "threads", "insert Mops/s",
              "negq@full Mops/s", "negq@50%% Mops/s");
  std::printf("---------+----------------+------------------+----------------\n");

  bench::BenchRunner runner("concurrent_scaling", options);
  double base_insert = 0, base_full = 0, base_half = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    // Half-loaded filter: essentially no spare traffic, so queries measure
    // pure per-bin locking.  Full load adds the (mutex-guarded) spare's ~6%.
    ConcurrentPrefixFilter<SpareCf12Traits> half(n, 0.95, options.seed);
    for (uint64_t i = 0; i < n / 2; ++i) half.Insert(keys[i]);
    const double half_secs = ParallelQuery(half, probes, threads);

    ConcurrentPrefixFilter<SpareCf12Traits> pf(n, 0.95, options.seed);
    const double ins_secs = ParallelInsert(pf, keys, threads);
    const double full_secs = ParallelQuery(pf, probes, threads);

    const double ins_mops = bench::OpsPerSec(n, ins_secs) / 1e6;
    const double full_mops = bench::OpsPerSec(n, full_secs) / 1e6;
    const double half_mops = bench::OpsPerSec(n, half_secs) / 1e6;
    if (threads == 1) {
      base_insert = ins_mops;
      base_full = full_mops;
      base_half = half_mops;
    }
    std::printf("%8d | %8.1f (%.2fx) | %9.1f (%.2fx) | %9.1f (%.2fx)\n",
                threads, ins_mops, ins_mops / base_insert, full_mops,
                full_mops / base_full, half_mops, half_mops / base_half);

    char workload[32];
    std::snprintf(workload, sizeof(workload), "threads=%d", threads);
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("insert_mops", ins_mops);
    m.Set("negative_query_full_mops", full_mops);
    m.Set("negative_query_half_mops", half_mops);
    m.Set("insert_speedup", ins_mops / base_insert);
    m.Set("query_speedup_full", full_mops / base_full);
    runner.Add("ConcurrentPF[CF12-Flex]", workload, std::move(m));
  }
  if (!runner.WriteJsonIfRequested()) return 1;
  std::printf(
      "\nNotes: per-bin (cache-line-striped, line-padded) locks serialize\n"
      "nothing but same-line bin accesses; at full load ~6%% of queries also\n"
      "take the single spare mutex (the paper assumes a concurrent spare).\n"
      "Interpret speedups against this machine's raw thread scaling: shared\n"
      "or throttled vCPUs cap even embarrassingly parallel code below 2x.\n");
  return 0;
}
