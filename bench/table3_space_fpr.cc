// Regenerates Table 3 (paper §7.2): empirical false positive rate and space
// use of every evaluated filter configuration, against the information-
// theoretic minimum for the measured rate (additive difference and
// multiplicative ratio).
//
// Method (as in the paper): insert n random keys, measure the filter's
// space in bits/key, then issue n uniformly random queries (negative with
// overwhelming probability) and report the fraction answered "Yes".
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/analysis/space_model.h"
#include "src/core/filter_factory.h"

namespace {

using prefixfilter::AnyFilter;
using prefixfilter::MakeFilter;
using prefixfilter::analysis::OptimalBitsPerKey;
namespace bench = prefixfilter::bench;

struct Row {
  std::string name;
  double error_pct;
  double bits_per_key;
  double optimal_bits;
  double diff;
  double ratio;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseOptions(argc, argv);
  const uint64_t n = options.n();
  const auto keys = prefixfilter::RandomKeys(n, options.seed);
  const auto probes = prefixfilter::RandomKeys(n, options.seed ^ 0xfafau);

  // Table 3's configurations, in the paper's order.
  const std::vector<std::string> names = {
      "CF-8",        "CF-8-Flex",     "CF-12",  "CF-12-Flex", "CF-16",
      "CF-16-Flex",  "PF[BBF-Flex]",  "PF[CF12-Flex]", "PF[TC]",
      "BBF",         "BBF-Flex",      "BF-8",   "BF-12",      "BF-16",
      "TC",          "QF"};

  std::printf("== Table 3: false positive rate and space use ==\n");
  std::printf("n = 0.94 * 2^%d = %llu keys\n\n", options.n_log2,
              static_cast<unsigned long long>(n));

  std::vector<Row> rows;
  for (const auto& name : names) {
    auto filter = MakeFilter(name, n, options.seed);
    if (filter == nullptr) continue;
    uint64_t failures = 0;
    for (uint64_t k : keys) failures += !filter->Insert(k);
    uint64_t false_positives = 0;
    for (uint64_t k : probes) false_positives += filter->Contains(k);
    const double error =
        static_cast<double>(false_positives) / static_cast<double>(n);
    const double bpk =
        8.0 * static_cast<double>(filter->SpaceBytes()) / static_cast<double>(n);
    const double opt = OptimalBitsPerKey(error);
    rows.push_back({filter->Name(), 100 * error, bpk, opt, bpk - opt,
                    bpk / opt});
    if (failures > 0) {
      std::printf("  (%s: %llu failed insertions)\n", name.c_str(),
                  static_cast<unsigned long long>(failures));
    }
  }

  bench::BenchRunner runner("table3_space_fpr", options);
  for (const auto& r : rows) {
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("fpr", r.error_pct / 100.0);
    m.Set("bits_per_key", r.bits_per_key);
    m.Set("optimal_bits_per_key", r.optimal_bits);
    m.Set("space_over_optimal", r.ratio);
    runner.Add(r.name, "uniform-negative", std::move(m));
  }
  if (!runner.WriteJsonIfRequested()) return 1;

  if (options.csv) {
    std::printf("filter,error_pct,bits_per_key,optimal_bits,diff,ratio\n");
    for (const auto& r : rows) {
      std::printf("%s,%.4f,%.2f,%.2f,%.2f,%.3f\n", r.name.c_str(), r.error_pct,
                  r.bits_per_key, r.optimal_bits, r.diff, r.ratio);
    }
    return 0;
  }

  std::printf("%-14s | %-9s | %-8s | %-12s | %-6s | %s\n", "Filter",
              "Error(%)", "Bits/key", "Optimal b/k", "Diff.", "Ratio");
  std::printf("---------------+-----------+----------+--------------+--------+------\n");
  for (const auto& r : rows) {
    std::printf("%-14s | %9.4f | %8.2f | %12.2f | %6.2f | %.3f\n",
                r.name.c_str(), r.error_pct, r.bits_per_key, r.optimal_bits,
                r.diff, r.ratio);
  }
  std::printf(
      "\nPaper check (Table 3): fingerprint filters sit ~3.4-4 bits/key above\n"
      "optimal; PF error ~0.37-0.39%% and ~11.5-12.1 bits/key regardless of\n"
      "spare; BF/BBF ratios ~1.44-1.67.\n");
  return 0;
}
