// Regenerates Figure 2 (paper §6.1.1): comparison of the Cantelli and
// Hoeffding upper bounds on the probability that the spare overflows, i.e.
// Pr[X > (1+delta) E[X]], as a function of the number of bins m = n/k, for
// k = 25 and delta in {0.05, 0.025, 0.01, 0.001}.  Bounds above 1 are
// "trivial" (the figure's dotted line).
#include <cstdio>

#include "bench/harness.h"
#include "src/analysis/bounds.h"

int main(int argc, char** argv) {
  const auto options = prefixfilter::bench::ParseOptions(argc, argv);
  prefixfilter::bench::BenchRunner runner("fig2_failure_bounds", options);
  const uint32_t k = 25;
  const double deltas[] = {0.05, 0.025, 0.01, 0.001};

  std::printf("== Figure 2: spare-overflow probability bounds (k = %u) ==\n\n",
              k);
  for (double delta : deltas) {
    std::printf("delta = %.4f\n", delta);
    std::printf("%-8s | %-13s | %-13s | %s\n", "log2(m)", "Cantelli",
                "Hoeffding", "min (Thm 5 Eq.2)");
    std::printf("---------+---------------+---------------+----------------\n");
    for (int log_m = 20; log_m <= 32; ++log_m) {
      const uint64_t n = (uint64_t{1} << log_m) * k;  // m = n/k bins
      const double cantelli =
          prefixfilter::analysis::CantelliFailureBound(n, k, delta);
      const double hoeffding =
          prefixfilter::analysis::HoeffdingFailureBound(n, k, delta);
      const double best = prefixfilter::analysis::FailureBound(n, k, delta);
      auto fmt = [](double b) {
        static char buf[2][24];
        static int which = 0;
        which ^= 1;
        if (b >= 1.0) {
          std::snprintf(buf[which], sizeof(buf[which]), "trivial");
        } else {
          std::snprintf(buf[which], sizeof(buf[which]), "%.3e", b);
        }
        return buf[which];
      };
      std::printf("%-8d | %-13s | %-13s | %.3e\n", log_m, fmt(cantelli),
                  fmt(hoeffding), best);
      if (log_m == 28) {
        char workload[48];
        std::snprintf(workload, sizeof(workload), "delta=%.4f,log2m=28",
                      delta);
        prefixfilter::json::Value m2 =
            prefixfilter::json::Value::MakeObject();
        m2.Set("cantelli_bound", cantelli);
        m2.Set("hoeffding_bound", hoeffding);
        m2.Set("best_bound", best);
        runner.Add("PF-model", workload, std::move(m2));
      }
    }
    std::printf("\n");
  }
  if (!runner.WriteJsonIfRequested()) return 1;
  std::printf(
      "Paper check: Cantelli decays polynomially (non-trivial even at small\n"
      "m); Hoeffding is trivial at small m / small delta but exponentially\n"
      "better for large m.  At delta=1/80, m>=2^28 gives failure < 2^-30.\n");
  const double check = prefixfilter::analysis::HoeffdingFailureBound(
      (uint64_t{1} << 28) * k, k, 1.0 / 80);
  std::printf("Hoeffding(m=2^28, delta=1/80) = %.3e (2^-30 = 9.3e-10)\n",
              check);
  return 0;
}
