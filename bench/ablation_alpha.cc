// Ablation: the bin-table maximal load factor alpha (paper §4.2.2, Fig. 1,
// and §4.3's "alpha = 0.95 pays a negligible space cost").
//
// Sweeps alpha and reports, for a full build at each setting: space
// (bits/key), empirical FPR, fraction of insertions forwarded to the spare,
// build time, and negative-query throughput.  This quantifies the trade-off
// the paper resolves in favor of alpha = 0.95.
#include <cstdio>

#include "bench/harness.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::PrefixFilter;
using prefixfilter::SpareTcTraits;

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseOptions(argc, argv);
  const uint64_t n = options.n();
  const auto keys = prefixfilter::RandomKeys(n, options.seed);
  const auto probes = prefixfilter::RandomKeys(n, options.seed ^ 0xabu);

  std::printf("== Ablation: bin-table load factor alpha (PF[TC], n = %llu) ==\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%6s | %9s | %9s | %11s | %9s | %11s\n", "alpha", "bits/key",
              "FPR(%)", "ins->spare", "build(s)", "negq Mops/s");
  std::printf("-------+-----------+-----------+-------------+-----------+------------\n");

  bench::BenchRunner runner("ablation_alpha", options);
  for (double alpha : {0.80, 0.85, 0.90, 0.95, 1.00}) {
    prefixfilter::PrefixFilterOptions pf_options;
    pf_options.seed = options.seed;
    pf_options.bin_load_factor = alpha;
    PrefixFilter<SpareTcTraits> pf(n, pf_options);
    const auto [build_secs, failures] =
        bench::TimeInserts(pf, keys, 0, keys.size());
    const auto [query_secs, found] = bench::TimeQueries(pf, probes);
    const double fpr = static_cast<double>(found) / probes.size();
    const double negq_mops = bench::OpsPerSec(probes.size(), query_secs) / 1e6;
    std::printf("%6.2f | %9.2f | %9.4f | %10.3f%% | %9.3f | %11.1f%s\n", alpha,
                pf.BitsPerKey(), 100 * fpr,
                100 * pf.stats().SpareInsertFraction(), build_secs, negq_mops,
                failures ? "  (!)" : "");

    char workload[32];
    std::snprintf(workload, sizeof(workload), "alpha=%.2f", alpha);
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("bits_per_key", pf.BitsPerKey());
    m.Set("fpr", fpr);
    m.Set("spare_insert_fraction", pf.stats().SpareInsertFraction());
    m.Set("build_seconds", build_secs);
    m.Set("negative_query_mops", negq_mops);
    m.Set("insert_failures", failures);
    runner.Add("PF[TC]", workload, std::move(m));
  }
  if (!runner.WriteJsonIfRequested()) return 1;
  std::printf(
      "\nPaper check: alpha=0.95 vs alpha=1.0 forwards ~1.36x fewer\n"
      "fingerprints for a fraction of a bit/key; FPR crosses below 1/256\n"
      "at alpha<=0.95 (§4.3).\n");
  return 0;
}
