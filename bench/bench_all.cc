// bench_all: the aggregated factory-sweep benchmark the CI perf gate runs.
//
// Sweeps filter configurations (src/core/filter_factory.h names) against the
// standard workload suite (src/workload/workload.h) and writes one JSON
// document ("BENCH.json" by default) with, per (filter x workload) cell:
// insert and query throughput (Mops/s), chunked ns/op percentiles, bits per
// key, exact-reproducible FPR, and a false-negative canary (must be 0).
//
// An extra "mixed-rw-25i" cell per filter exercises the interleaved
// insert/query stream (25% inserts) end to end.
//
// Usage:
//   bench_all [--quick] [--n-log2=L] [--seed=S] [--out=BENCH.json]
//             [--filters=A,B,...] [--workloads=a,b,...] [--all-filters]
//             [--concrete]
//
// --quick is the CI smoke scale (n = 0.94 * 2^16); compare runs against
// bench/baseline.json with bench_compare.  Filters run through AnyFilter, so
// the virtual-dispatch cost is part of every measured cell (identical across
// configurations, which is what a comparative sweep wants).  --concrete
// instead sweeps filters through their concrete types (no virtual dispatch,
// the regime the paper's figures measure) AND through AnyFilter, reporting
// the dispatch tax side by side.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/filter_factory.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/fast_multiblock.h"
#include "src/filters/twochoicer.h"
#include "src/workload/workload.h"

namespace {

namespace bench = prefixfilter::bench;
namespace workload = prefixfilter::workload;
using prefixfilter::AnyFilter;
using prefixfilter::MakeFilter;

// The default sweep: the paper's main contenders plus the sharded service
// configuration.  (KnownFilterNames() has 16+ entries; this is the curated
// subset the baseline pins so the smoke job stays fast.)  QF is demoted
// behind --all-filters until its rank/select query acceleration lands: its
// query throughput collapses to ~1.3 Mops/s at full load (ROADMAP), which
// the CI bench-smoke job should not pay for on every PR.
const char* kDefaultFilters[] = {
    "BF-12",        "BBF-Flex",      "FMB32",   "FMB64",
    "CF-8",         "CF-12-Flex",    "TC",
    "PF[BBF-Flex]", "PF[CF12-Flex]",
    "PF[TC]",       "SHARD16[PF[TC]]",
};

const char* kDemotedFilters[] = {"QF"};

// Accumulated best-of-repeats state for one (filter x workload) cell.
//
// Repeats are driven from the OUTSIDE of the filter loop (sweep the whole
// filter list, then repeat), so one cell's repeats land seconds apart: at
// --quick scale a measurement phase is only a few ms, and a transient
// machine-wide slowdown (noisy neighbor, frequency dip) that spans
// back-to-back repeats would otherwise poison every sample of one cell at
// once while the CI gate expects <15% drift.
struct Cell {
  bool ok = false;
  bench::PhaseStats ins, qry, bqry, ops;
  prefixfilter::json::Value quality = prefixfilter::json::Value::MakeObject();

  void MergeBest(const bench::PhaseStats& i, const bench::PhaseStats& q,
                 const bench::PhaseStats& b, bool first) {
    if (first || i.Mops() > ins.Mops()) ins = i;
    if (first || q.Mops() > qry.Mops()) qry = q;
    if (first || b.Mops() > bqry.Mops()) bqry = b;
  }
};

// One timed pass over the phase-separated cell; on `measure_quality` also
// records the exact-reproducible metrics (FPR over ground-truth negatives,
// bits/key, and a false-negative canary — a membership filter must never
// miss).
bool RunCellOnce(const std::string& filter_name,
                 const workload::Stream& stream, const bench::Options& options,
                 bool measure_quality, Cell* cell) {
  const uint64_t n = stream.spec.num_keys;
  auto filter = MakeFilter(filter_name, n, options.seed);
  if (filter == nullptr) {
    std::fprintf(stderr, "bench_all: unknown filter %s\n",
                 filter_name.c_str());
    return false;
  }
  const bench::PhaseStats ins = bench::TimedInserts(
      *filter, stream.insert_keys, 0, stream.insert_keys.size());
  const bench::PhaseStats qry = bench::TimedQueries(*filter, stream.queries);
  // Batched drain through the devirtualized AnyFilter batch path (the
  // router/service regime) alongside the scalar virtual-per-key loop above.
  const bench::PhaseStats bqry =
      bench::TimedBatchQueries(*filter, stream.queries);
  cell->MergeBest(ins, qry, bqry, !cell->ok);

  if (measure_quality) {
    uint64_t false_positives = 0, false_negatives = 0;
    for (size_t i = 0; i < stream.queries.size(); ++i) {
      const bool hit = filter->Contains(stream.queries[i]);
      if (stream.query_expected[i] == 0) {
        false_positives += hit;
      } else {
        false_negatives += !hit;
      }
    }
    const uint64_t negatives = stream.NumNegativeQueries();
    cell->quality.Set("insert_failures", ins.failures);
    cell->quality.Set("bits_per_key",
                      8.0 * static_cast<double>(filter->SpaceBytes()) /
                          static_cast<double>(n));
    cell->quality.Set("fpr", negatives > 0
                                 ? static_cast<double>(false_positives) /
                                       static_cast<double>(negatives)
                                 : 0.0);
    cell->quality.Set("false_negatives", false_negatives);
  }
  cell->ok = true;
  return true;
}

bool RunInterleavedOnce(const std::string& filter_name,
                        const workload::Stream& stream,
                        const bench::Options& options, bool measure_quality,
                        Cell* cell) {
  auto filter = MakeFilter(filter_name, stream.spec.num_keys, options.seed);
  if (filter == nullptr) {
    std::fprintf(stderr, "bench_all: unknown filter %s\n",
                 filter_name.c_str());
    return false;
  }
  const bench::PhaseStats ops = bench::TimedOps(*filter, stream.ops);
  if (!cell->ok || ops.Mops() > cell->ops.Mops()) cell->ops = ops;
  if (measure_quality) {
    cell->quality.Set("insert_failures", ops.failures);
    cell->quality.Set("bits_per_key",
                      8.0 * static_cast<double>(filter->SpaceBytes()) /
                          static_cast<double>(stream.spec.num_keys));
  }
  cell->ok = true;
  return true;
}

// --- --concrete: dispatch-tax sweep ------------------------------------------

// One timed pass with the CONCRETE filter type: the harness helpers are
// templates, so Insert/Contains inline and no virtual call sits in the timed
// loops — the regime the paper's figure benches (and micro_*) measure.
template <typename Filter>
void RunConcreteOnce(Filter&& filter, const workload::Stream& stream,
                     Cell* cell) {
  const bench::PhaseStats ins = bench::TimedInserts(
      filter, stream.insert_keys, 0, stream.insert_keys.size());
  const bench::PhaseStats qry = bench::TimedQueries(filter, stream.queries);
  const bench::PhaseStats bqry =
      bench::TimedBatchQueries(filter, stream.queries);
  cell->MergeBest(ins, qry, bqry, !cell->ok);
  cell->ok = true;
}

struct ConcreteEntry {
  const char* name;  // the factory name the concrete construction mirrors
  std::function<void(const workload::Stream&, uint64_t seed, Cell*)> run;
};

// Concrete constructions mirroring MakeFilter's parameters exactly (same
// bits/key, hash counts, and seeds), so the AnyFilter cell measured next to
// each differs only by the virtual-dispatch wrapper.
std::vector<ConcreteEntry> ConcreteRegistry() {
  using prefixfilter::BlockedBloomFilter;
  using prefixfilter::BloomFilter;
  using prefixfilter::CuckooFilter12;
  using prefixfilter::PrefixFilter;
  using prefixfilter::PrefixFilterOptions;
  using prefixfilter::TwoChoicer;
  const auto pf_options = [](uint64_t seed) {
    PrefixFilterOptions o;
    o.seed = seed;
    return o;
  };
  return {
      {"BF-12",
       [](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(BloomFilter(s.spec.num_keys, 12.0, 8, seed), s, c);
       }},
      {"BBF-Flex",
       [](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(
             BlockedBloomFilter::MakeFlexible(s.spec.num_keys, 10.67, seed),
             s, c);
       }},
      {"FMB32",
       [](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(
             prefixfilter::FastMultiBlock32::Make(s.spec.num_keys, 8.0, seed),
             s, c);
       }},
      {"FMB64",
       [](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(
             prefixfilter::FastMultiBlock64::Make(s.spec.num_keys, 12.0, seed),
             s, c);
       }},
      {"CF-12-Flex",
       [](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(CuckooFilter12(s.spec.num_keys, true, seed), s, c);
       }},
      {"TC",
       [](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(TwoChoicer(s.spec.num_keys, seed), s, c);
       }},
      {"PF[BBF-Flex]",
       [pf_options](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(PrefixFilter<prefixfilter::SpareBbfTraits>(
                             s.spec.num_keys, pf_options(seed)),
                         s, c);
       }},
      {"PF[CF12-Flex]",
       [pf_options](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(PrefixFilter<prefixfilter::SpareCf12Traits>(
                             s.spec.num_keys, pf_options(seed)),
                         s, c);
       }},
      {"PF[TC]",
       [pf_options](const workload::Stream& s, uint64_t seed, Cell* c) {
         RunConcreteOnce(PrefixFilter<prefixfilter::SpareTcTraits>(
                             s.spec.num_keys, pf_options(seed)),
                         s, c);
       }},
  };
}

double TaxPct(double concrete_mops, double any_mops) {
  return concrete_mops > 0
             ? 100.0 * (concrete_mops - any_mops) / concrete_mops
             : 0.0;
}

// Sweeps the concrete registry x suite, measuring each cell both through the
// concrete type and through AnyFilter, and emits one row per cell with the
// dispatch tax (how much of the concrete rate the virtual wrapper costs).
int RunConcreteSweep(const std::vector<std::string>& filters,
                     const std::vector<workload::Spec>& suite,
                     const bench::Options& options, int repeats,
                     bench::BenchRunner* runner) {
  // Respect the filter selection (--filters / --all-filters): sweep the
  // intersection with the concrete registry, and say which selected names
  // have no concrete construction instead of silently ignoring them.
  std::vector<ConcreteEntry> registry;
  std::string skipped;
  for (const auto& name : filters) {
    bool found = false;
    for (auto& entry : ConcreteRegistry()) {
      if (entry.name == name) {
        registry.push_back(std::move(entry));
        found = true;
        break;
      }
    }
    if (!found) skipped += (skipped.empty() ? "" : ", ") + name;
  }
  if (!skipped.empty()) {
    std::printf("bench_all: no concrete construction for: %s (skipped)\n",
                skipped.c_str());
  }
  if (registry.empty()) {
    std::fprintf(stderr,
                 "bench_all: none of the selected filters has a concrete "
                 "construction\n");
    return 2;
  }
  // Throwaway warm-up of BOTH paths: the dispatch tax is the one quantity
  // this mode measures, so neither side may absorb process cold-start costs
  // (page faults, frequency ramp-up) that the other side skips.
  if (!suite.empty() && !registry.empty()) {
    const workload::Stream warm = workload::Generate(suite.front());
    Cell discard_concrete, discard_any;
    registry.front().run(warm, options.seed, &discard_concrete);
    (void)RunCellOnce(registry.front().name, warm, options, false,
                      &discard_any);
  }
  // Geometric means over all cells of the fraction of the concrete rate the
  // AnyFilter path retains — the headline dispatch-tax numbers.
  double log_batch_ratio = 0.0, log_scalar_ratio = 0.0;
  size_t geomean_cells = 0;
  for (const auto& spec : suite) {
    const workload::Stream stream = workload::Generate(spec);
    for (const auto& entry : registry) {
      Cell concrete, any;
      for (int rep = 0; rep < repeats; ++rep) {
        entry.run(stream, options.seed, &concrete);
        if (!RunCellOnce(entry.name, stream, options, false, &any)) return 2;
      }
      const double insert_tax = TaxPct(concrete.ins.Mops(), any.ins.Mops());
      const double query_tax = TaxPct(concrete.qry.Mops(), any.qry.Mops());
      const double batch_tax = TaxPct(concrete.bqry.Mops(), any.bqry.Mops());
      prefixfilter::json::Value metrics = bench::PhaseMetrics(concrete.ins,
                                                              "insert");
      const prefixfilter::json::Value query_metrics =
          bench::PhaseMetrics(concrete.qry, "query");
      for (const auto& [k, v] : query_metrics.AsObject()) metrics.Set(k, v);
      const prefixfilter::json::Value batch_metrics =
          bench::PhaseMetrics(concrete.bqry, "batch_query");
      for (const auto& [k, v] : batch_metrics.AsObject()) metrics.Set(k, v);
      metrics.Set("any_insert_mops", any.ins.Mops());
      metrics.Set("any_query_mops", any.qry.Mops());
      metrics.Set("any_batch_query_mops", any.bqry.Mops());
      metrics.Set("insert_dispatch_tax_pct", insert_tax);
      metrics.Set("query_dispatch_tax_pct", query_tax);
      metrics.Set("batch_dispatch_tax_pct", batch_tax);
      if (concrete.qry.Mops() > 0 && any.qry.Mops() > 0 &&
          concrete.bqry.Mops() > 0 && any.bqry.Mops() > 0) {
        log_scalar_ratio += std::log(any.qry.Mops() / concrete.qry.Mops());
        log_batch_ratio += std::log(any.bqry.Mops() / concrete.bqry.Mops());
        ++geomean_cells;
      }
      std::printf("  %-14s x %-18s concrete %7.1f / any %7.1f Mops/s query"
                  "  (tax %+5.1f%%, batch %+5.1f%%)\n",
                  entry.name, spec.name.c_str(), concrete.qry.Mops(),
                  any.qry.Mops(), query_tax, batch_tax);
      runner->Add(std::string(entry.name) + "#concrete", spec.name,
                  std::move(metrics));
    }
  }
  if (geomean_cells > 0) {
    const double denom = static_cast<double>(geomean_cells);
    const double scalar_geomean_tax =
        100.0 * (1.0 - std::exp(log_scalar_ratio / denom));
    const double batch_geomean_tax =
        100.0 * (1.0 - std::exp(log_batch_ratio / denom));
    std::printf(
        "bench_all: AnyFilter dispatch tax geomean over %zu cells: "
        "batch %+.1f%%, scalar %+.1f%%\n",
        geomean_cells, batch_geomean_tax, scalar_geomean_tax);
    prefixfilter::json::Value summary = prefixfilter::json::Value::MakeObject();
    summary.Set("batch_dispatch_tax_geomean_pct", batch_geomean_tax);
    summary.Set("scalar_dispatch_tax_geomean_pct", scalar_geomean_tax);
    runner->Add("ALL#concrete", "geomean", std::move(summary));
  }
  return 0;
}

prefixfilter::json::Value CellMetrics(const Cell& cell, bool interleaved) {
  prefixfilter::json::Value metrics =
      interleaved ? bench::PhaseMetrics(cell.ops, "ops")
                  : bench::PhaseMetrics(cell.ins, "insert");
  if (!interleaved) {
    const prefixfilter::json::Value query_metrics =
        bench::PhaseMetrics(cell.qry, "query");
    for (const auto& [k, v] : query_metrics.AsObject()) metrics.Set(k, v);
    const prefixfilter::json::Value batch_metrics =
        bench::PhaseMetrics(cell.bqry, "batch_query");
    for (const auto& [k, v] : batch_metrics.AsObject()) metrics.Set(k, v);
  }
  for (const auto& [k, v] : cell.quality.AsObject()) metrics.Set(k, v);
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  // Split bench_all-specific flags from the shared harness flags.
  std::vector<std::string> filters(std::begin(kDefaultFilters),
                                   std::end(kDefaultFilters));
  std::vector<std::string> workload_names;
  std::string out_path;
  bool all_filters = false;
  bool concrete = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--filters=", 0) == 0) {
      filters = bench::SplitCsv(arg.substr(10));
    } else if (arg.rfind("--workloads=", 0) == 0) {
      workload_names = bench::SplitCsv(arg.substr(12));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--all-filters") {
      all_filters = true;
    } else if (arg == "--concrete") {
      concrete = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_all [--quick] [--n-log2=L] [--seed=S]\n"
          "                 [--out=BENCH.json] [--filters=A,B,...]\n"
          "                 [--workloads=a,b,...] [--all-filters]\n"
          "                 [--concrete]\n"
          "workloads: uniform-negative mixed-50-50 zipf-positive\n"
          "           adversarial-dup disjoint-negative (default: all,\n"
          "           plus the interleaved mixed-rw-25i stream)\n"
          "--all-filters: include the demoted configurations (QF)\n"
          "--concrete: dispatch-tax sweep through concrete filter types\n");
      return 0;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (all_filters) {
    for (const char* demoted : kDemotedFilters) {
      bool present = false;
      for (const auto& f : filters) present |= f == demoted;
      if (!present) filters.push_back(demoted);
    }
  }
  bench::Options options = bench::ParseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());
  // --out wins, then the shared --json flag, then the documented default.
  if (!out_path.empty()) options.json_path = out_path;
  if (options.json_path.empty()) options.json_path = "BENCH.json";
  out_path = options.json_path;

  const uint64_t n = options.n();
  // Queries per cell: enough steady-phase ops for stable chunk timing even
  // at --quick scale.
  const uint64_t num_queries =
      std::max<uint64_t>(n, options.quick ? (uint64_t{1} << 20) : n);

  bench::BenchRunner runner("bench_all", options);
  std::printf("bench_all: n=%llu queries/cell=%llu filters=%zu -> %s\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(num_queries), filters.size(),
              out_path.c_str());

  bool interleaved_requested = workload_names.empty();
  std::vector<workload::Spec> suite;
  if (workload_names.empty()) {
    suite = workload::StandardSuite(n, num_queries, options.seed);
  } else {
    for (const auto& name : workload_names) {
      if (name == "mixed-rw-25i") {
        interleaved_requested = true;
        continue;
      }
      workload::Spec spec;
      if (!workload::FindStandardSpec(name, n, num_queries, options.seed,
                                      &spec)) {
        std::fprintf(stderr, "bench_all: unknown workload %s\n", name.c_str());
        return 2;
      }
      suite.push_back(spec);
    }
  }

  // Best-of-R at smoke scale, repeats OUTSIDE the filter loop (see Cell);
  // plus one throwaway warm-up cell so the first measured cell doesn't
  // absorb process cold-start costs (page faults on the key arrays,
  // frequency ramp-up).
  const int repeats = options.quick ? 5 : 1;

  if (concrete) {
    const int rc = RunConcreteSweep(filters, suite, options, repeats, &runner);
    if (rc != 0) return rc;
    if (!runner.WriteJsonIfRequested()) return 1;
    std::printf("bench_all: %zu concrete results -> %s\n",
                runner.NumResults(), out_path.c_str());
    return 0;
  }

  if (!suite.empty() && !filters.empty()) {
    const workload::Stream warm = workload::Generate(suite.front());
    Cell discard;
    (void)RunCellOnce(filters.front(), warm, options, false, &discard);
  }

  for (const auto& spec : suite) {
    const workload::Stream stream = workload::Generate(spec);
    std::vector<Cell> cells(filters.size());
    for (int rep = 0; rep < repeats; ++rep) {
      for (size_t f = 0; f < filters.size(); ++f) {
        if (!RunCellOnce(filters[f], stream, options, rep == 0, &cells[f])) {
          return 2;
        }
      }
    }
    for (size_t f = 0; f < filters.size(); ++f) {
      prefixfilter::json::Value metrics = CellMetrics(cells[f], false);
      std::printf("  %-18s x %-18s insert %7.1f Mops/s  query %7.1f Mops/s"
                  "  fpr %.5f%%\n",
                  filters[f].c_str(), spec.name.c_str(),
                  metrics.GetDouble("insert_mops"),
                  metrics.GetDouble("query_mops"),
                  100.0 * metrics.GetDouble("fpr"));
      runner.Add(filters[f], spec.name, std::move(metrics));
    }
  }

  if (interleaved_requested) {
    workload::Spec rw;
    rw.name = "mixed-rw-25i";
    rw.num_keys = n;
    rw.num_queries = std::max<uint64_t>(num_queries, 3 * n);
    rw.insert_ratio = 0.25;
    rw.positive_fraction = 0.5;
    rw.seed = options.seed;
    const workload::Stream stream = workload::Generate(rw);
    std::vector<Cell> cells(filters.size());
    for (int rep = 0; rep < repeats; ++rep) {
      for (size_t f = 0; f < filters.size(); ++f) {
        if (!RunInterleavedOnce(filters[f], stream, options, rep == 0,
                                &cells[f])) {
          return 2;
        }
      }
    }
    for (size_t f = 0; f < filters.size(); ++f) {
      prefixfilter::json::Value metrics = CellMetrics(cells[f], true);
      std::printf("  %-18s x %-18s ops    %7.1f Mops/s\n", filters[f].c_str(),
                  rw.name.c_str(), metrics.GetDouble("ops_mops"));
      runner.Add(filters[f], rw.name, std::move(metrics));
    }
  }

  if (!runner.WriteJsonIfRequested()) return 1;
  std::printf("bench_all: %zu results -> %s\n", runner.NumResults(),
              out_path.c_str());
  return 0;
}
