// Core logic of the bench_compare regression gate, split out of the CLI so
// the gate itself is unit-testable (tests/bench_compare_gate_test.cc): every
// decision — schema validation, coverage, thresholds, and the
// must-not-silently-pass rules — operates on parsed JSON documents and
// reports through plain data, no file I/O and no printing.
#ifndef PREFIXFILTER_BENCH_COMPARE_CORE_H_
#define PREFIXFILTER_BENCH_COMPARE_CORE_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace prefixfilter::bench::compare {

using prefixfilter::json::Value;

// (filter, workload) -> metrics object (borrowed from the indexed document,
// which must outlive the index).
using ResultIndex = std::map<std::pair<std::string, std::string>, const Value*>;

inline bool EndsWith(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// Builds the (filter, workload) index; appends structural complaints to
// *errors and returns false if the document has no usable results array.
inline bool IndexResults(const Value& doc, std::vector<std::string>* errors,
                         ResultIndex* index) {
  const Value* results = doc.Get("results");
  if (results == nullptr || !results->is_array()) {
    errors->push_back("missing \"results\" array");
    return false;
  }
  for (const Value& row : results->AsArray()) {
    const Value* metrics = row.Get("metrics");
    if (!row.is_object() || metrics == nullptr || !metrics->is_object()) {
      errors->push_back("malformed result row");
      return false;
    }
    (*index)[{row.GetString("filter"), row.GetString("workload")}] = metrics;
  }
  return true;
}

struct ValidationReport {
  std::vector<std::string> errors;
  size_t num_results = 0;
  std::set<std::string> filters, workloads;
};

// Schema-validates one bench document.  Returns true iff it is clean.
inline bool ValidateDoc(const Value& doc, ValidationReport* report) {
  const auto require = [&](bool ok, const char* what) {
    if (!ok) report->errors.emplace_back(what);
  };
  require(doc.is_object(), "document is not a JSON object");
  require(doc.GetString("schema") == "prefixfilter-bench-v1",
          "schema tag is not \"prefixfilter-bench-v1\"");
  require(doc.Get("git_sha") != nullptr && doc.Get("git_sha")->is_string(),
          "missing string \"git_sha\"");
  require(doc.Get("build_type") != nullptr, "missing \"build_type\"");
  require(doc.Get("pf_native") != nullptr && doc.Get("pf_native")->is_bool(),
          "missing bool \"pf_native\"");
  require(doc.Get("n") != nullptr && doc.Get("n")->is_number(),
          "missing numeric \"n\"");

  ResultIndex index;
  if (!IndexResults(doc, &report->errors, &index)) return false;
  const bool is_bench_all = doc.GetString("bench") == "bench_all";
  for (const auto& [key, metrics] : index) {
    report->filters.insert(key.first);
    report->workloads.insert(key.second);
    for (const auto& [name, value] : metrics->AsObject()) {
      if (!value.is_number()) {
        report->errors.push_back("non-numeric metric " + name);
      }
    }
    // Only bench_all's schema promises per-cell quality metrics; the
    // per-figure benches emit bench-specific metric sets.  The "#concrete"
    // dispatch-tax rows and geomean summary rows are throughput-only.
    if (is_bench_all && metrics->Get("bits_per_key") == nullptr &&
        key.first.find("#concrete") == std::string::npos) {
      report->errors.push_back(key.first + "/" + key.second +
                               " lacks bits_per_key");
    }
  }
  report->num_results = index.size();
  require(!index.empty(), "document has no results");
  return report->errors.empty();
}

struct Gate {
  double throughput_pct = 15.0;
  double fpr_pct = 10.0;
  double space_pct = 5.0;
  std::string normalize_to;
};

// Normalizes a throughput metric against a same-document reference for the
// same (workload, metric): either a named filter's value, or — with
// --normalize-to=geomean — the geometric mean over every filter reporting
// that metric in that workload.  The geomean reference is preferred for CI:
// a single reference filter's own run-to-run jitter shifts every normalized
// row at once, while the geomean averages that jitter across the sweep and
// cancels machine-wide speed changes equally well.  Returns the raw value
// when no reference exists.
inline double Normalized(const ResultIndex& index, const Gate& gate,
                         const std::string& workload, const std::string& metric,
                         double value) {
  if (gate.normalize_to.empty()) return value;
  if (gate.normalize_to == "geomean") {
    double log_sum = 0;
    int count = 0;
    for (const auto& [key, metrics] : index) {
      if (key.second != workload) continue;
      const double v = metrics->GetDouble(metric, 0.0);
      if (v > 0) {
        log_sum += std::log(v);
        ++count;
      }
    }
    if (count == 0) return value;
    return value / std::exp(log_sum / count);
  }
  const auto it = index.find({gate.normalize_to, workload});
  if (it == index.end()) return value;
  const double ref = it->second->GetDouble(metric, 0.0);
  return ref > 0 ? value / ref : value;
}

struct CompareReport {
  std::vector<std::string> failures;
  size_t baseline_rows = 0;
  size_t compared = 0;  // individual metric gates evaluated
};

// Compares a current document against a baseline document.  Returns 0 when
// every gate passes, 1 on any regression — including the degenerate cases a
// gate must never silently wave through: an empty/unindexable baseline, a
// row covered by the baseline but missing from the current run, and a
// comparison that evaluated zero metric gates (disjoint metric sets would
// otherwise "pass" without checking anything).
inline int CompareDocs(const Value& baseline_doc, const Value& current_doc,
                       const Gate& gate, CompareReport* report) {
  ResultIndex baseline, current;
  if (!IndexResults(baseline_doc, &report->failures, &baseline) ||
      !IndexResults(current_doc, &report->failures, &current)) {
    return 1;
  }
  report->baseline_rows = baseline.size();
  if (baseline.empty()) {
    report->failures.emplace_back(
        "baseline has no result rows — an empty baseline gates nothing");
    return 1;
  }

  const auto fail = [&](const std::pair<std::string, std::string>& key,
                        const std::string& metric, double base, double cur,
                        const char* what) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s x %s: %s %s (baseline %.6g, current %.6g)",
                  key.first.c_str(), key.second.c_str(), metric.c_str(), what,
                  base, cur);
    report->failures.emplace_back(buf);
  };

  for (const auto& [key, base_metrics] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      report->failures.push_back(
          key.first + " x " + key.second +
          ": missing from current run (coverage regression)");
      continue;
    }
    const Value* cur_metrics = it->second;
    for (const auto& [metric, base_value] : base_metrics->AsObject()) {
      const Value* cur_value = cur_metrics->Get(metric);
      if (cur_value == nullptr || !cur_value->is_number()) continue;
      const double base = base_value.AsDouble();
      const double cur = cur_value->AsDouble();
      if (EndsWith(metric, "_mops")) {
        const double base_n =
            Normalized(baseline, gate, key.second, metric, base);
        const double cur_n =
            Normalized(current, gate, key.second, metric, cur);
        if (cur_n < base_n * (1.0 - gate.throughput_pct / 100.0)) {
          fail(key, metric, base_n, cur_n, "throughput regressed");
        }
        ++report->compared;
      } else if (metric == "fpr") {
        if (cur > base * (1.0 + gate.fpr_pct / 100.0) + 1e-5) {
          fail(key, metric, base, cur, "FPR regressed");
        }
        ++report->compared;
      } else if (metric == "bits_per_key") {
        if (cur > base * (1.0 + gate.space_pct / 100.0)) {
          fail(key, metric, base, cur, "space regressed");
        }
        ++report->compared;
      } else if (metric == "false_negatives") {
        if (cur > 0) {
          fail(key, metric, base, cur, "false negatives (correctness!)");
        }
        ++report->compared;
      }
    }
  }
  if (report->compared == 0) {
    report->failures.emplace_back(
        "zero metric gates evaluated — baseline and current share no "
        "gateable metrics");
  }
  return report->failures.empty() ? 0 : 1;
}

}  // namespace prefixfilter::bench::compare

#endif  // PREFIXFILTER_BENCH_COMPARE_CORE_H_
