// Shared benchmark harness reproducing the paper's methodology (§7.1, §7.3),
// plus the machine-readable result pipeline every bench in this tree feeds.
//
//  * Keys and query streams are pre-generated (src/workload/) so measured
//    times reflect only filter work.
//  * Uniform queries over a 2^64 universe are negative with overwhelming
//    probability; positive queries sample previously inserted keys.
//  * The default dataset is n = 0.94 * 2^22 — the paper's 0.94 * 2^28 scaled
//    to this machine; pass --n-log2=28 to reproduce the paper's size on
//    suitable hardware.  n = 0.94 * 2^L keeps the non-flexible
//    implementations at their intended load factor (§7.1).
//  * Every bench accepts --json=PATH and appends its numbers to a
//    BenchRunner, which serializes them as one JSON document tagged with
//    git SHA, build type, and PF_NATIVE (see README "Benchmarks" for the
//    schema).  --quick shrinks the dataset for CI smoke runs.
//
// Measurement discipline (BenchRunner::Measure*):
//  * warm phase: one untimed pass over a prefix of the stream primes
//    caches, TLBs, and branch predictors;
//  * steady phase: timed in chunks of kChunkOps operations, so ns/op
//    percentiles (p50/p90/p99 over chunks) are available without paying a
//    clock read per operation;
//  * no virtual dispatch inside timed loops — the helpers are templated on
//    the concrete filter type (AnyFilter works too; its virtual-call cost is
//    then part of what is measured, which is what bench_all wants).
#ifndef PREFIXFILTER_BENCH_HARNESS_H_
#define PREFIXFILTER_BENCH_HARNESS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/filter_factory.h"
#include "src/util/json.h"
#include "src/util/random.h"
#include "src/util/simd.h"
#include "src/workload/workload.h"

// Generated at CMake configure time (git SHA, build type, PF_NATIVE).
#if defined(__has_include)
#if __has_include("pf_build_info.h")
#include "pf_build_info.h"
#endif
#endif
#ifndef PF_BUILD_GIT_SHA
#define PF_BUILD_GIT_SHA "unknown"
#endif
#ifndef PF_BUILD_TYPE
#define PF_BUILD_TYPE "unknown"
#endif
#ifndef PF_BUILD_NATIVE
#define PF_BUILD_NATIVE false
#endif

namespace prefixfilter::bench {

// Defeats dead-code elimination of query results.
inline void KeepAlive(uint64_t v) { asm volatile("" : : "r"(v) : "memory"); }

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct Options {
  int n_log2 = 22;       // n = 0.94 * 2^n_log2
  uint64_t seed = 0x5eedf00du;
  int rounds = 20;       // load-sweep rounds (5% each, §7.3)
  bool csv = false;      // machine-readable text output (legacy)
  bool quick = false;    // CI smoke scale: n_log2=16, rounds=5
  std::string json_path; // --json=PATH: write the BenchRunner document here

  uint64_t n() const {
    return static_cast<uint64_t>(0.94 * static_cast<double>(uint64_t{1} << n_log2));
  }
};

// Splits a comma-separated flag value ("A,B,C"); empty segments dropped.
inline std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

// Parses --n-log2=<L>, --seed=<S>, --rounds=<R>, --csv, --quick,
// --json=<PATH>.  Unknown flags abort with a usage message (benches take no
// positional arguments).  --quick lowers n/rounds unless explicitly set.
inline Options ParseOptions(int argc, char** argv) {
  Options options;
  bool n_set = false, rounds_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n-log2=", 0) == 0) {
      options.n_log2 = std::atoi(arg.c_str() + 9);
      n_set = true;
      if (options.n_log2 < 10 || options.n_log2 > 32) {
        std::fprintf(stderr, "--n-log2 must be in [10, 32]\n");
        std::exit(2);
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      options.rounds = std::atoi(arg.c_str() + 9);
      rounds_set = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(7);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--n-log2=L] [--seed=S] [--rounds=R] [--csv] [--quick]\n"
          "          [--json=PATH]\n"
          "  dataset size is n = 0.94 * 2^L (default L=22; paper uses L=28)\n"
          "  --quick: smoke-test scale (L=16, 5 rounds) for CI\n"
          "  --json=PATH: write machine-readable results (see README)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.quick) {
    if (!n_set) options.n_log2 = 16;
    if (!rounds_set) options.rounds = 5;
  }
  return options;
}

// Backwards-compatible alias: the §7.3 round workload now lives in
// src/workload/ so tests and the service layer can reuse it.
struct Workload : public workload::RoundWorkload {
  static Workload Generate(const Options& options) {
    Workload w;
    static_cast<workload::RoundWorkload&>(w) = workload::RoundWorkload::
        Generate(options.n(), options.rounds, options.seed);
    return w;
  }
};

inline double OpsPerSec(size_t ops, double seconds) {
  return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
}

// Per-phase measurement: total rate plus ns/op percentiles over timing
// chunks (see file header for the discipline).
struct PhaseStats {
  uint64_t ops = 0;
  double seconds = 0;
  uint64_t failures = 0;   // inserts: rejected keys; queries: positives
  double ns_p50 = 0, ns_p90 = 0, ns_p99 = 0;

  double Mops() const { return OpsPerSec(ops, seconds) / 1e6; }
};

namespace internal {

constexpr size_t kChunkOps = 2048;

inline double Percentile(std::vector<double>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0;
  const size_t idx = std::min(
      sorted_ns.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ns.size())));
  return sorted_ns[idx];
}

inline void FillPercentiles(std::vector<double>& chunk_ns, PhaseStats* stats) {
  std::sort(chunk_ns.begin(), chunk_ns.end());
  stats->ns_p50 = Percentile(chunk_ns, 0.50);
  stats->ns_p90 = Percentile(chunk_ns, 0.90);
  stats->ns_p99 = Percentile(chunk_ns, 0.99);
}

}  // namespace internal

// --- templated measurement loops (no virtual dispatch in timed regions) ----

// Inserts keys [begin, end); returns {seconds, failed_inserts}.  The
// fine-grained path is TimedInserts below; this stays for benches that time
// whole rounds.
template <typename Filter>
std::pair<double, uint64_t> TimeInserts(Filter& filter,
                                        const std::vector<uint64_t>& keys,
                                        size_t begin, size_t end) {
  uint64_t failures = 0;
  Timer timer;
  for (size_t i = begin; i < end; ++i) {
    failures += !filter.Insert(keys[i]);
  }
  const double secs = timer.Seconds();
  return {secs, failures};
}

// Queries every key; returns {seconds, positive_count}.
template <typename Filter>
std::pair<double, uint64_t> TimeQueries(const Filter& filter,
                                        const std::vector<uint64_t>& keys) {
  uint64_t found = 0;
  Timer timer;
  for (uint64_t k : keys) {
    found += filter.Contains(k);
  }
  const double secs = timer.Seconds();
  KeepAlive(found);
  return {secs, found};
}

// Chunk-timed insertion of keys [begin, end) into `filter`.
template <typename Filter>
PhaseStats TimedInserts(Filter& filter, const std::vector<uint64_t>& keys,
                        size_t begin, size_t end) {
  PhaseStats stats;
  std::vector<double> chunk_ns;
  chunk_ns.reserve((end - begin) / internal::kChunkOps + 1);
  Timer total;
  for (size_t base = begin; base < end; base += internal::kChunkOps) {
    const size_t stop = std::min(end, base + internal::kChunkOps);
    Timer chunk;
    for (size_t i = base; i < stop; ++i) {
      stats.failures += !filter.Insert(keys[i]);
    }
    chunk_ns.push_back(chunk.Seconds() * 1e9 /
                       static_cast<double>(stop - base));
  }
  stats.seconds = total.Seconds();
  stats.ops = end - begin;
  internal::FillPercentiles(chunk_ns, &stats);
  return stats;
}

// Warm + steady query measurement.  One untimed pass over the first
// `warm_fraction` of the stream, then a chunk-timed pass over the whole
// stream; `failures` holds the positive count of the steady pass.
template <typename Filter>
PhaseStats TimedQueries(const Filter& filter,
                        const std::vector<uint64_t>& queries,
                        double warm_fraction = 0.1) {
  const size_t warm =
      static_cast<size_t>(warm_fraction * static_cast<double>(queries.size()));
  uint64_t sink = 0;
  for (size_t i = 0; i < warm; ++i) sink += filter.Contains(queries[i]);
  KeepAlive(sink);

  PhaseStats stats;
  std::vector<double> chunk_ns;
  chunk_ns.reserve(queries.size() / internal::kChunkOps + 1);
  Timer total;
  for (size_t base = 0; base < queries.size();
       base += internal::kChunkOps) {
    const size_t stop =
        std::min(queries.size(), base + internal::kChunkOps);
    uint64_t found = 0;
    Timer chunk;
    for (size_t i = base; i < stop; ++i) {
      found += filter.Contains(queries[i]);
    }
    chunk_ns.push_back(chunk.Seconds() * 1e9 /
                       static_cast<double>(stop - base));
    stats.failures += found;
  }
  stats.seconds = total.Seconds();
  stats.ops = queries.size();
  KeepAlive(stats.failures);
  internal::FillPercentiles(chunk_ns, &stats);
  return stats;
}

// Warm + steady BATCH query measurement: drains the stream through the
// filter's byte-output batch path in batches of `batch_size` keys (the
// service/router regime — one dispatch per batch, prefetching inside).
// Works on AnyFilter (virtual ContainsBatch, resolved once per batch) and on
// concrete filters (ContainsBatchOrScalar routes to their batch path or a
// concrete scalar loop), so the two sides of the --concrete dispatch-tax
// comparison run the identical drain shape.
template <typename Filter>
PhaseStats TimedBatchQueries(const Filter& filter,
                             const std::vector<uint64_t>& queries,
                             size_t batch_size = 256,
                             double warm_fraction = 0.1) {
  std::vector<uint8_t> out(std::max<size_t>(1, batch_size));
  const auto drain = [&](size_t begin, size_t end) {
    uint64_t found = 0;
    for (size_t base = begin; base < end; base += batch_size) {
      const size_t n = std::min(batch_size, end - base);
      ContainsBatchOrScalar(filter, queries.data() + base, n, out.data());
      for (size_t i = 0; i < n; ++i) found += out[i];
    }
    return found;
  };
  const size_t warm =
      static_cast<size_t>(warm_fraction * static_cast<double>(queries.size()));
  KeepAlive(drain(0, warm));

  PhaseStats stats;
  std::vector<double> chunk_ns;
  chunk_ns.reserve(queries.size() / internal::kChunkOps + 1);
  Timer total;
  for (size_t base = 0; base < queries.size(); base += internal::kChunkOps) {
    const size_t stop = std::min(queries.size(), base + internal::kChunkOps);
    Timer chunk;
    stats.failures += drain(base, stop);
    chunk_ns.push_back(chunk.Seconds() * 1e9 /
                       static_cast<double>(stop - base));
  }
  stats.seconds = total.Seconds();
  stats.ops = queries.size();
  KeepAlive(stats.failures);
  internal::FillPercentiles(chunk_ns, &stats);
  return stats;
}

// Chunk-timed interleaved op stream (workload::Spec::insert_ratio > 0).
template <typename Filter>
PhaseStats TimedOps(Filter& filter, const std::vector<workload::Op>& ops) {
  PhaseStats stats;
  std::vector<double> chunk_ns;
  chunk_ns.reserve(ops.size() / internal::kChunkOps + 1);
  uint64_t sink = 0;
  Timer total;
  for (size_t base = 0; base < ops.size(); base += internal::kChunkOps) {
    const size_t stop = std::min(ops.size(), base + internal::kChunkOps);
    Timer chunk;
    for (size_t i = base; i < stop; ++i) {
      const workload::Op& op = ops[i];
      if (op.is_insert) {
        stats.failures += !filter.Insert(op.key);
      } else {
        sink += filter.Contains(op.key);
      }
    }
    chunk_ns.push_back(chunk.Seconds() * 1e9 /
                       static_cast<double>(stop - base));
  }
  stats.seconds = total.Seconds();
  stats.ops = ops.size();
  KeepAlive(sink);
  internal::FillPercentiles(chunk_ns, &stats);
  return stats;
}

// Converts a PhaseStats to the JSON metrics object used across all benches.
inline json::Value PhaseMetrics(const PhaseStats& stats,
                                const std::string& prefix) {
  json::Value m = json::Value::MakeObject();
  m.Set(prefix + "_mops", stats.Mops());
  m.Set(prefix + "_ns_p50", stats.ns_p50);
  m.Set(prefix + "_ns_p90", stats.ns_p90);
  m.Set(prefix + "_ns_p99", stats.ns_p99);
  return m;
}

// Collects one benchmark binary's results and serializes them as a single
// JSON document:
//
//   { "schema": "prefixfilter-bench-v1", "bench": ..., "git_sha": ...,
//     "build_type": ..., "pf_native": ..., "simd_kernel": ..., "n": ...,
//     "seed": ..., "quick": ..., "results": [
//       { "filter": ..., "workload": ..., "metrics": { ... } }, ... ] }
//
// Metric-key conventions the regression gate (bench_compare) relies on:
// throughput metrics end in "_mops" (higher is better), latency metrics in
// "_ns_p50/_ns_p90/_ns_p99" (lower is better), and "fpr" / "bits_per_key"
// are exact-reproducible quality metrics (lower is better).
class BenchRunner {
 public:
  BenchRunner(std::string bench_name, const Options& options)
      : options_(options), doc_(json::Value::MakeObject()) {
    doc_.Set("schema", "prefixfilter-bench-v1");
    doc_.Set("bench", std::move(bench_name));
    doc_.Set("git_sha", PF_BUILD_GIT_SHA);
    doc_.Set("build_type", PF_BUILD_TYPE);
    doc_.Set("pf_native", static_cast<bool>(PF_BUILD_NATIVE));
    doc_.Set("simd_kernel", SimdKernelName());
    doc_.Set("n", options.n());
    // The seed is a full 64-bit value; JSON numbers are doubles, so emit it
    // as a decimal string to keep runs above 2^53 exactly reproducible.
    doc_.Set("seed", std::to_string(options.seed));
    doc_.Set("quick", options.quick);
    doc_.Set("results", json::Value::MakeArray());
  }

  const Options& options() const { return options_; }

  // Appends one result row.  `metrics` must be a JSON object; `workload` is
  // "-" for benches without a meaningful workload axis (analytic tables).
  void Add(const std::string& filter, const std::string& workload,
           json::Value metrics) {
    json::Value row = json::Value::MakeObject();
    row.Set("filter", filter);
    row.Set("workload", workload);
    row.Set("metrics", std::move(metrics));
    doc_.Get("results")->Append(std::move(row));
  }

  // Merges `extra`'s members into the result identified by (filter,
  // workload) if present, else adds a new row.
  void Merge(const std::string& filter, const std::string& workload,
             const json::Value& extra) {
    for (auto& row : doc_.Get("results")->AsArray()) {
      if (row.GetString("filter") == filter &&
          row.GetString("workload") == workload) {
        json::Value* metrics = row.Get("metrics");
        for (const auto& [k, v] : extra.AsObject()) metrics->Set(k, v);
        return;
      }
    }
    Add(filter, workload, extra);
  }

  size_t NumResults() const { return doc_.Get("results")->AsArray().size(); }

  const json::Value& Document() const { return doc_; }

  // Writes the document to options.json_path when --json was given.
  // Returns false on I/O failure (and complains on stderr).
  bool WriteJsonIfRequested() const {
    if (options_.json_path.empty()) return true;
    return WriteJson(options_.json_path);
  }

  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    const std::string text = doc_.Dump(2);
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fputc('\n', f);
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return ok;
  }

 private:
  Options options_;
  json::Value doc_;
};

}  // namespace prefixfilter::bench

#endif  // PREFIXFILTER_BENCH_HARNESS_H_
