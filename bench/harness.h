// Shared benchmark harness reproducing the paper's methodology (§7.1, §7.3).
//
//  * Keys and query streams are pre-generated so measured times reflect only
//    filter work.
//  * Uniform queries over a 2^64 universe are negative with overwhelming
//    probability; positive queries sample previously inserted keys.
//  * The default dataset is n = 0.94 * 2^22 — the paper's 0.94 * 2^28 scaled
//    to this machine (see DESIGN.md §2); pass --n-log2=28 to reproduce the
//    paper's size on suitable hardware.  n = 0.94 * 2^L keeps the
//    non-flexible implementations at their intended load factor (§7.1).
#ifndef PREFIXFILTER_BENCH_HARNESS_H_
#define PREFIXFILTER_BENCH_HARNESS_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/random.h"

namespace prefixfilter::bench {

// Defeats dead-code elimination of query results.
inline void KeepAlive(uint64_t v) { asm volatile("" : : "r"(v) : "memory"); }

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct Options {
  int n_log2 = 22;       // n = 0.94 * 2^n_log2
  uint64_t seed = 0x5eedf00du;
  int rounds = 20;       // load-sweep rounds (5% each, §7.3)
  bool csv = false;      // machine-readable output

  uint64_t n() const {
    return static_cast<uint64_t>(0.94 * static_cast<double>(uint64_t{1} << n_log2));
  }
};

// Parses --n-log2=<L>, --seed=<S>, --rounds=<R>, --csv.  Unknown flags abort
// with a usage message (benches take no positional arguments).
inline Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n-log2=", 0) == 0) {
      options.n_log2 = std::atoi(arg.c_str() + 9);
      if (options.n_log2 < 10 || options.n_log2 > 32) {
        std::fprintf(stderr, "--n-log2 must be in [10, 32]\n");
        std::exit(2);
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      options.rounds = std::atoi(arg.c_str() + 9);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--n-log2=L] [--seed=S] [--rounds=R] [--csv]\n"
          "  dataset size is n = 0.94 * 2^L (default L=22; paper uses L=28)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

// The §7.3 workload: pre-generated insertion keys, per-round uniform
// (negative) query streams, and per-round positive query streams sampled
// from the inserted prefix.
struct Workload {
  std::vector<uint64_t> insert_keys;                    // n keys
  std::vector<std::vector<uint64_t>> uniform_queries;   // rounds x 0.05n
  std::vector<std::vector<uint64_t>> positive_queries;  // rounds x 0.05n

  static Workload Generate(const Options& options) {
    Workload w;
    const uint64_t n = options.n();
    const int rounds = options.rounds;
    const uint64_t per_round = n / rounds;
    w.insert_keys = RandomKeys(n, options.seed);
    w.uniform_queries.reserve(rounds);
    w.positive_queries.reserve(rounds);
    for (int round = 0; round < rounds; ++round) {
      w.uniform_queries.push_back(
          RandomKeys(per_round, options.seed ^ (0x1111u + round)));
      const uint64_t inserted = per_round * (round + 1);
      w.positive_queries.push_back(SampleKeys(
          w.insert_keys, inserted, per_round, options.seed ^ (0x2222u + round)));
    }
    return w;
  }
};

// --- templated measurement loops (no virtual dispatch in timed regions) ----

// Inserts keys [begin, end); returns {seconds, failed_inserts}.
template <typename Filter>
std::pair<double, uint64_t> TimeInserts(Filter& filter,
                                        const std::vector<uint64_t>& keys,
                                        size_t begin, size_t end) {
  uint64_t failures = 0;
  Timer timer;
  for (size_t i = begin; i < end; ++i) {
    failures += !filter.Insert(keys[i]);
  }
  const double secs = timer.Seconds();
  return {secs, failures};
}

// Queries every key; returns {seconds, positive_count}.
template <typename Filter>
std::pair<double, uint64_t> TimeQueries(const Filter& filter,
                                        const std::vector<uint64_t>& keys) {
  uint64_t found = 0;
  Timer timer;
  for (uint64_t k : keys) {
    found += filter.Contains(k);
  }
  const double secs = timer.Seconds();
  KeepAlive(found);
  return {secs, found};
}

inline double OpsPerSec(size_t ops, double seconds) {
  return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
}

}  // namespace prefixfilter::bench

#endif  // PREFIXFILTER_BENCH_HARNESS_H_
