// ablation_multiblock: isolates what the fast_multiblock SIMD kernels buy.
//
// At MATCHED space (BBF-Flex's 10.67 bits/key) it measures query throughput
// for every kernel flavor on the same uniform-negative stream:
//   * BBF-Flex probed through the scalar lane-loop kernel (the pre-SIMD
//     reference: "scalar BlockedBloom"),
//   * BBF-Flex probed through the dispatched SIMD kernel,
//   * FMB32 / FMB64 probed through their portable and SIMD kernels.
// Each filter is built once and probed through both flavors — the kernel
// differential harness guarantees both see identical bits.
//
// The summary row reports fmb32_vs_scalar_bbf_speedup, the ratio behind the
// "FastMultiBlock32 >= 1.3x scalar BlockedBloom at matched bits/key" claim
// (trivially ~1.0x on portable builds, where every flavor is the scalar
// loop).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/fast_multiblock.h"
#include "src/workload/workload.h"

namespace {

namespace bench = prefixfilter::bench;
namespace workload = prefixfilter::workload;

constexpr double kMatchedBitsPerKey = 10.67;

// Adapts a filter so the harness's templated query loop probes through the
// always-compiled portable kernel instead of the dispatched one.
template <typename F>
struct PortableProbe {
  const F& filter;
  bool Contains(uint64_t key) const { return filter.ContainsPortable(key); }
};

struct Row {
  std::string name;
  double mops = 0;
};

template <typename F>
Row MeasureRow(const std::string& name, const F& filter,
               const std::vector<uint64_t>& queries) {
  const bench::PhaseStats stats = bench::TimedQueries(filter, queries);
  std::printf("  %-22s query %8.1f Mops/s\n", name.c_str(), stats.Mops());
  return {name, stats.Mops()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::ParseOptions(argc, argv);
  bench::BenchRunner runner("ablation_multiblock", options);
  const uint64_t n = options.n();
  const uint64_t num_queries =
      std::max<uint64_t>(n, options.quick ? (uint64_t{1} << 20) : n);

  workload::Spec spec;
  if (!workload::FindStandardSpec("uniform-negative", n, num_queries,
                                  options.seed, &spec)) {
    std::fprintf(stderr, "ablation_multiblock: missing standard workload\n");
    return 2;
  }
  const workload::Stream stream = workload::Generate(spec);
  std::printf("ablation_multiblock: n=%llu queries=%llu kernel=%s "
              "(all filters at %.2f bits/key)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(num_queries),
              prefixfilter::SimdKernelName(), kMatchedBitsPerKey);

  auto bbf = prefixfilter::BlockedBloomFilter::MakeFlexible(
      n, kMatchedBitsPerKey, options.seed);
  auto fmb32 =
      prefixfilter::FastMultiBlock32::Make(n, kMatchedBitsPerKey, options.seed);
  auto fmb64 =
      prefixfilter::FastMultiBlock64::Make(n, kMatchedBitsPerKey, options.seed);
  for (uint64_t key : stream.insert_keys) {
    bbf.Insert(key);
    fmb32.Insert(key);
    fmb64.Insert(key);
  }

  // Warm-up pass so the first measured row doesn't absorb cold-start costs.
  { bench::TimedQueries(bbf, stream.queries); }

  std::vector<Row> rows;
  rows.push_back(MeasureRow("BBF-Flex#scalar",
                            PortableProbe<decltype(bbf)>{bbf}, stream.queries));
  rows.push_back(MeasureRow("BBF-Flex", bbf, stream.queries));
  rows.push_back(MeasureRow("FMB32#portable",
                            PortableProbe<decltype(fmb32)>{fmb32},
                            stream.queries));
  rows.push_back(MeasureRow("FMB32", fmb32, stream.queries));
  rows.push_back(MeasureRow("FMB64#portable",
                            PortableProbe<decltype(fmb64)>{fmb64},
                            stream.queries));
  rows.push_back(MeasureRow("FMB64", fmb64, stream.queries));

  double scalar_bbf = 0, simd_fmb32 = 0;
  for (const auto& row : rows) {
    prefixfilter::json::Value metrics = prefixfilter::json::Value::MakeObject();
    metrics.Set("query_mops", row.mops);
    metrics.Set("bits_per_key", kMatchedBitsPerKey);
    runner.Add(row.name, spec.name, std::move(metrics));
    if (row.name == "BBF-Flex#scalar") scalar_bbf = row.mops;
    if (row.name == "FMB32") simd_fmb32 = row.mops;
  }
  const double speedup = scalar_bbf > 0 ? simd_fmb32 / scalar_bbf : 0.0;
  std::printf("ablation_multiblock: FMB32 vs scalar BBF-Flex speedup %.2fx\n",
              speedup);
  prefixfilter::json::Value summary = prefixfilter::json::Value::MakeObject();
  summary.Set("fmb32_vs_scalar_bbf_speedup", speedup);
  runner.Add("SUMMARY", spec.name, std::move(summary));

  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
