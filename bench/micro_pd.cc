// google-benchmark microbenchmarks for the pocket dictionaries (paper §5):
// per-operation costs of PD256/PD512 queries and inserts at varying
// occupancies, isolating the data structure from the filter around it.
//
// Machine-readable output is google-benchmark's own
// (--benchmark_format=json); query streams come from src/workload.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/pd/pd256.h"
#include "src/pd/pd512.h"
#include "src/util/aligned.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/workload/workload.h"

namespace prefixfilter {
namespace {

constexpr size_t kNumPds = 1 << 14;  // large enough to defeat the L1/L2

// Fills `pds` to `occupancy` elements each with uniform elements.
template <typename PD>
void FillPds(AlignedBuffer<PD>& pds, int occupancy, uint64_t seed) {
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < pds.size(); ++i) {
    for (int j = 0; j < occupancy; ++j) {
      pds[i].Insert(static_cast<int>(rng.Below(PD::kNumLists)),
                    static_cast<uint8_t>(rng.Next()));
    }
  }
}

// Uniform negative-query stream via the shared workload generator (no keys
// inserted, so every query is a miss w.o.p. — the PD cutoff's common case).
template <typename PD>
std::vector<uint64_t> QueryStream(size_t count, uint64_t seed) {
  workload::Spec spec;
  spec.num_queries = count;
  spec.seed = seed;
  return workload::Generate(spec).queries;
}

template <typename PD>
void BM_PdNegativeQuery(benchmark::State& state) {
  AlignedBuffer<PD> pds(kNumPds);
  FillPds(pds, static_cast<int>(state.range(0)), 1);
  const auto stream = QueryStream<PD>(1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    const uint64_t h = stream[i++ & 0xffff];
    const size_t pd = FastRange64(h, kNumPds);
    const int q = static_cast<int>(
        FastRange32(static_cast<uint32_t>(h >> 32), PD::kNumLists));
    benchmark::DoNotOptimize(pds[pd].Find(q, static_cast<uint8_t>(h)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_PdNegativeQuery, PD256)->Arg(12)->Arg(20)->Arg(25);
BENCHMARK_TEMPLATE(BM_PdNegativeQuery, PD512)->Arg(24)->Arg(40)->Arg(48);

template <typename PD>
void BM_PdInsert(benchmark::State& state) {
  AlignedBuffer<PD> pds(kNumPds);
  Xoshiro256 rng(3);
  size_t filled = 0;
  for (auto _ : state) {
    const uint64_t h = rng.Next();
    const size_t pd = FastRange64(h, kNumPds);
    const int q = static_cast<int>(
        FastRange32(static_cast<uint32_t>(h >> 32), PD::kNumLists));
    if (!pds[pd].Insert(q, static_cast<uint8_t>(h))) {
      // Table saturated: reset outside timing.
      state.PauseTiming();
      std::memset(pds.data(), 0, pds.SizeBytes());
      filled = 0;
      state.ResumeTiming();
    }
    ++filled;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_PdInsert, PD256);
BENCHMARK_TEMPLATE(BM_PdInsert, PD512);

void BM_Pd256ReplaceMax(benchmark::State& state) {
  AlignedBuffer<PD256> pds(kNumPds);
  FillPds(pds, PD256::kCapacity, 4);
  for (size_t i = 0; i < kNumPds; ++i) pds[i].MarkOverflowed();
  Xoshiro256 rng(5);
  for (auto _ : state) {
    const uint64_t h = rng.Next();
    const size_t pd = FastRange64(h, kNumPds);
    const int q = static_cast<int>(
        FastRange32(static_cast<uint32_t>(h >> 32), PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(h);
    const uint16_t fp = static_cast<uint16_t>((q << 8) | r);
    if (fp <= pds[pd].MaxFingerprint()) {
      pds[pd].ReplaceMax(q, r);
    }
    benchmark::DoNotOptimize(pds[pd].Overflowed());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pd256ReplaceMax);

void BM_Pd256MaxFingerprint(benchmark::State& state) {
  AlignedBuffer<PD256> pds(kNumPds);
  FillPds(pds, PD256::kCapacity, 6);
  for (size_t i = 0; i < kNumPds; ++i) pds[i].MarkOverflowed();
  Xoshiro256 rng(7);
  for (auto _ : state) {
    const size_t pd = rng.Below(kNumPds);
    benchmark::DoNotOptimize(pds[pd].MaxFingerprint());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pd256MaxFingerprint);

}  // namespace
}  // namespace prefixfilter
