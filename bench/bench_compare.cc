// bench_compare: the CI perf-regression gate over bench_all JSON documents.
//
// Modes:
//   bench_compare --validate CURRENT.json
//       Schema-validates one document (schema tag, metadata, result rows,
//       metric-key conventions) and prints its filter x workload coverage.
//
//   bench_compare BASELINE.json CURRENT.json [options]
//       Compares run CURRENT against the checked-in BASELINE:
//        * "*_mops" throughput: fail when current < baseline * (1 - T%);
//          with --normalize-to=FILTER both sides are first divided by that
//          filter's value for the same metric and workload, turning the gate
//          into a relative-throughput check that survives machine changes
//          (the paper's claims are ratios against Bloom, not absolute Mops).
//        * "fpr": fail when current > baseline * (1 + F%) + 1e-5 (the
//          epsilon absorbs single-count granularity; FPR is deterministic
//          under a fixed seed, so genuine regressions show cleanly).
//        * "bits_per_key": fail when current > baseline * (1 + S%).
//        * "false_negatives": fail when nonzero (correctness canary).
//        * rows present in BASELINE but missing from CURRENT: fail
//          (coverage regression).
//
// Options: --throughput-regress-pct=15 --fpr-regress-pct=10
//          --space-regress-pct=5 --normalize-to=FILTER
// Exit status: 0 clean, 1 regression/validation failure, 2 usage/IO error.
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace {

using prefixfilter::json::Value;

bool LoadJson(const std::string& path, Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!Value::Parse(buffer.str(), out, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// (filter, workload) -> metrics object.
using ResultIndex = std::map<std::pair<std::string, std::string>, const Value*>;

bool IndexResults(const Value& doc, const std::string& path,
                  ResultIndex* index) {
  const Value* results = doc.Get("results");
  if (results == nullptr || !results->is_array()) {
    std::fprintf(stderr, "bench_compare: %s: missing \"results\" array\n",
                 path.c_str());
    return false;
  }
  for (const Value& row : results->AsArray()) {
    const Value* metrics = row.Get("metrics");
    if (!row.is_object() || metrics == nullptr || !metrics->is_object()) {
      std::fprintf(stderr, "bench_compare: %s: malformed result row\n",
                   path.c_str());
      return false;
    }
    (*index)[{row.GetString("filter"), row.GetString("workload")}] = metrics;
  }
  return true;
}

int Validate(const std::string& path) {
  Value doc;
  if (!LoadJson(path, &doc)) return 2;
  int errors = 0;
  const auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), what);
      ++errors;
    }
  };
  require(doc.is_object(), "document is not a JSON object");
  require(doc.GetString("schema") == "prefixfilter-bench-v1",
          "schema tag is not \"prefixfilter-bench-v1\"");
  require(doc.Get("git_sha") != nullptr && doc.Get("git_sha")->is_string(),
          "missing string \"git_sha\"");
  require(doc.Get("build_type") != nullptr, "missing \"build_type\"");
  require(doc.Get("pf_native") != nullptr && doc.Get("pf_native")->is_bool(),
          "missing bool \"pf_native\"");
  require(doc.Get("n") != nullptr && doc.Get("n")->is_number(),
          "missing numeric \"n\"");

  ResultIndex index;
  if (!IndexResults(doc, path, &index)) return 1;
  const bool is_bench_all = doc.GetString("bench") == "bench_all";
  std::set<std::string> filters, workloads;
  for (const auto& [key, metrics] : index) {
    filters.insert(key.first);
    workloads.insert(key.second);
    for (const auto& [name, value] : metrics->AsObject()) {
      if (!value.is_number()) {
        std::fprintf(stderr, "bench_compare: %s: non-numeric metric %s\n",
                     path.c_str(), name.c_str());
        ++errors;
      }
    }
    // Only bench_all's schema promises per-cell quality metrics; the
    // per-figure benches emit bench-specific metric sets.
    if (is_bench_all && metrics->Get("bits_per_key") == nullptr) {
      std::fprintf(stderr,
                   "bench_compare: %s: %s/%s lacks bits_per_key\n",
                   path.c_str(), key.first.c_str(), key.second.c_str());
      ++errors;
    }
  }
  require(!index.empty(), "document has no results");
  if (errors != 0) {
    std::printf("%s: INVALID (%d schema error(s))\n", path.c_str(), errors);
    return 1;
  }
  std::printf("%s: schema ok, %zu results, %zu filters x %zu workloads\n",
              path.c_str(), index.size(), filters.size(), workloads.size());
  std::printf("  filters:");
  for (const auto& f : filters) std::printf(" %s", f.c_str());
  std::printf("\n  workloads:");
  for (const auto& w : workloads) std::printf(" %s", w.c_str());
  std::printf("\n");
  return 0;
}

struct Gate {
  double throughput_pct = 15.0;
  double fpr_pct = 10.0;
  double space_pct = 5.0;
  std::string normalize_to;
};

// Normalizes a throughput metric against a same-document reference for the
// same (workload, metric): either a named filter's value, or — with
// --normalize-to=geomean — the geometric mean over every filter reporting
// that metric in that workload.  The geomean reference is preferred for CI:
// a single reference filter's own run-to-run jitter shifts every normalized
// row at once, while the geomean averages that jitter across the sweep and
// cancels machine-wide speed changes equally well.  Returns the raw value
// when no reference exists.
double Normalized(const ResultIndex& index, const Gate& gate,
                  const std::string& workload, const std::string& metric,
                  double value) {
  if (gate.normalize_to.empty()) return value;
  if (gate.normalize_to == "geomean") {
    double log_sum = 0;
    int count = 0;
    for (const auto& [key, metrics] : index) {
      if (key.second != workload) continue;
      const double v = metrics->GetDouble(metric, 0.0);
      if (v > 0) {
        log_sum += std::log(v);
        ++count;
      }
    }
    if (count == 0) return value;
    return value / std::exp(log_sum / count);
  }
  const auto it = index.find({gate.normalize_to, workload});
  if (it == index.end()) return value;
  const double ref = it->second->GetDouble(metric, 0.0);
  return ref > 0 ? value / ref : value;
}

int Compare(const std::string& baseline_path, const std::string& current_path,
            const Gate& gate) {
  Value baseline_doc, current_doc;
  if (!LoadJson(baseline_path, &baseline_doc) ||
      !LoadJson(current_path, &current_doc)) {
    return 2;
  }
  ResultIndex baseline, current;
  if (!IndexResults(baseline_doc, baseline_path, &baseline) ||
      !IndexResults(current_doc, current_path, &current)) {
    return 1;
  }

  std::vector<std::string> failures;
  const auto fail = [&](const std::pair<std::string, std::string>& key,
                        const std::string& metric, double base, double cur,
                        const char* what) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s x %s: %s %s (baseline %.6g, current %.6g)",
                  key.first.c_str(), key.second.c_str(), metric.c_str(), what,
                  base, cur);
    failures.emplace_back(buf);
  };

  size_t compared = 0;
  for (const auto& [key, base_metrics] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      failures.push_back(key.first + " x " + key.second +
                         ": missing from current run (coverage regression)");
      continue;
    }
    const Value* cur_metrics = it->second;
    for (const auto& [metric, base_value] : base_metrics->AsObject()) {
      const Value* cur_value = cur_metrics->Get(metric);
      if (cur_value == nullptr || !cur_value->is_number()) continue;
      const double base = base_value.AsDouble();
      const double cur = cur_value->AsDouble();
      if (EndsWith(metric, "_mops")) {
        const double base_n = Normalized(baseline, gate, key.second, metric, base);
        const double cur_n = Normalized(current, gate, key.second, metric, cur);
        if (cur_n < base_n * (1.0 - gate.throughput_pct / 100.0)) {
          fail(key, metric, base_n, cur_n, "throughput regressed");
        }
        ++compared;
      } else if (metric == "fpr") {
        if (cur > base * (1.0 + gate.fpr_pct / 100.0) + 1e-5) {
          fail(key, metric, base, cur, "FPR regressed");
        }
        ++compared;
      } else if (metric == "bits_per_key") {
        if (cur > base * (1.0 + gate.space_pct / 100.0)) {
          fail(key, metric, base, cur, "space regressed");
        }
        ++compared;
      } else if (metric == "false_negatives") {
        if (cur > 0) {
          fail(key, metric, base, cur, "false negatives (correctness!)");
        }
        ++compared;
      }
    }
  }

  std::printf("bench_compare: %zu baseline rows, %zu metric gates",
              baseline.size(), compared);
  if (!gate.normalize_to.empty()) {
    std::printf(" (throughput normalized to %s)", gate.normalize_to.c_str());
  }
  std::printf("\n");
  if (failures.empty()) {
    std::printf("bench_compare: PASS (thresholds: throughput -%.0f%%, "
                "fpr +%.0f%%, space +%.0f%%)\n",
                gate.throughput_pct, gate.fpr_pct, gate.space_pct);
    return 0;
  }
  std::printf("bench_compare: FAIL — %zu regression(s):\n", failures.size());
  for (const auto& f : failures) std::printf("  %s\n", f.c_str());
  std::printf("(intentional? refresh bench/baseline.json — see README "
              "\"Refreshing the baseline\")\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  Gate gate;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg.rfind("--throughput-regress-pct=", 0) == 0) {
      gate.throughput_pct = std::atof(arg.c_str() + 25);
    } else if (arg.rfind("--fpr-regress-pct=", 0) == 0) {
      gate.fpr_pct = std::atof(arg.c_str() + 18);
    } else if (arg.rfind("--space-regress-pct=", 0) == 0) {
      gate.space_pct = std::atof(arg.c_str() + 20);
    } else if (arg.rfind("--normalize-to=", 0) == 0) {
      gate.normalize_to = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_compare --validate CURRENT.json\n"
          "       bench_compare BASELINE.json CURRENT.json\n"
          "         [--throughput-regress-pct=15] [--fpr-regress-pct=10]\n"
          "         [--space-regress-pct=5] [--normalize-to=FILTER]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (validate && positional.size() == 1) return Validate(positional[0]);
  if (!validate && positional.size() == 2) {
    return Compare(positional[0], positional[1], gate);
  }
  std::fprintf(stderr, "bench_compare: bad arguments (try --help)\n");
  return 2;
}
