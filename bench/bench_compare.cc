// bench_compare: the CI perf-regression gate over bench_all JSON documents.
//
// All gate decisions live in bench/compare_core.h (unit-tested by
// tests/bench_compare_gate_test.cc); this file is only flags, file I/O, and
// report printing.
//
// Modes:
//   bench_compare --validate CURRENT.json
//       Schema-validates one document (schema tag, metadata, result rows,
//       metric-key conventions) and prints its filter x workload coverage.
//
//   bench_compare BASELINE.json CURRENT.json [options]
//       Compares run CURRENT against the checked-in BASELINE:
//        * "*_mops" throughput: fail when current < baseline * (1 - T%);
//          with --normalize-to=FILTER both sides are first divided by that
//          filter's value for the same metric and workload, turning the gate
//          into a relative-throughput check that survives machine changes
//          (the paper's claims are ratios against Bloom, not absolute Mops).
//        * "fpr": fail when current > baseline * (1 + F%) + 1e-5 (the
//          epsilon absorbs single-count granularity; FPR is deterministic
//          under a fixed seed, so genuine regressions show cleanly).
//        * "bits_per_key": fail when current > baseline * (1 + S%).
//        * "false_negatives": fail when nonzero (correctness canary).
//        * rows present in BASELINE but missing from CURRENT: fail
//          (coverage regression).
//        * degenerate inputs fail, never silently pass: an empty baseline,
//          or zero evaluated metric gates (disjoint metric sets).
//
// Options: --throughput-regress-pct=15 --fpr-regress-pct=10
//          --space-regress-pct=5 --normalize-to=FILTER
// Exit status: 0 clean, 1 regression/validation failure, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/compare_core.h"
#include "src/util/json.h"

namespace {

using prefixfilter::json::Value;
namespace compare = prefixfilter::bench::compare;

bool LoadJson(const std::string& path, Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!Value::Parse(buffer.str(), out, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

int Validate(const std::string& path) {
  Value doc;
  if (!LoadJson(path, &doc)) return 2;
  compare::ValidationReport report;
  if (!compare::ValidateDoc(doc, &report)) {
    for (const auto& e : report.errors) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), e.c_str());
    }
    std::printf("%s: INVALID (%zu schema error(s))\n", path.c_str(),
                report.errors.size());
    return 1;
  }
  std::printf("%s: schema ok, %zu results, %zu filters x %zu workloads\n",
              path.c_str(), report.num_results, report.filters.size(),
              report.workloads.size());
  std::printf("  filters:");
  for (const auto& f : report.filters) std::printf(" %s", f.c_str());
  std::printf("\n  workloads:");
  for (const auto& w : report.workloads) std::printf(" %s", w.c_str());
  std::printf("\n");
  return 0;
}

int Compare(const std::string& baseline_path, const std::string& current_path,
            const compare::Gate& gate) {
  Value baseline_doc, current_doc;
  if (!LoadJson(baseline_path, &baseline_doc) ||
      !LoadJson(current_path, &current_doc)) {
    return 2;
  }
  compare::CompareReport report;
  const int rc = compare::CompareDocs(baseline_doc, current_doc, gate, &report);
  std::printf("bench_compare: %zu baseline rows, %zu metric gates",
              report.baseline_rows, report.compared);
  if (!gate.normalize_to.empty()) {
    std::printf(" (throughput normalized to %s)", gate.normalize_to.c_str());
  }
  std::printf("\n");
  if (rc == 0) {
    std::printf("bench_compare: PASS (thresholds: throughput -%.0f%%, "
                "fpr +%.0f%%, space +%.0f%%)\n",
                gate.throughput_pct, gate.fpr_pct, gate.space_pct);
    return 0;
  }
  std::printf("bench_compare: FAIL — %zu regression(s):\n",
              report.failures.size());
  for (const auto& f : report.failures) std::printf("  %s\n", f.c_str());
  std::printf("(intentional? refresh bench/baseline.json — see README "
              "\"Refreshing the baseline\")\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  compare::Gate gate;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg.rfind("--throughput-regress-pct=", 0) == 0) {
      gate.throughput_pct = std::atof(arg.c_str() + 25);
    } else if (arg.rfind("--fpr-regress-pct=", 0) == 0) {
      gate.fpr_pct = std::atof(arg.c_str() + 18);
    } else if (arg.rfind("--space-regress-pct=", 0) == 0) {
      gate.space_pct = std::atof(arg.c_str() + 20);
    } else if (arg.rfind("--normalize-to=", 0) == 0) {
      gate.normalize_to = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_compare --validate CURRENT.json\n"
          "       bench_compare BASELINE.json CURRENT.json\n"
          "         [--throughput-regress-pct=15] [--fpr-regress-pct=10]\n"
          "         [--space-regress-pct=5] [--normalize-to=FILTER]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (validate && positional.size() == 1) return Validate(positional[0]);
  if (!validate && positional.size() == 2) {
    return Compare(positional[0], positional[1], gate);
  }
  std::fprintf(stderr, "bench_compare: bad arguments (try --help)\n");
  return 2;
}
