// Validates the access-cost guarantees of Theorem 2(3) / §6.2 empirically:
//  * the fraction of insertions forwarded to the spare vs the exact E[X]/n
//    and the 1.1/sqrt(2*pi*k) bound;
//  * the fraction of negative and positive queries that reach the spare vs
//    the 1/sqrt(2*pi*k) bound (Theorems 17 and 25);
// as a function of load, for the paper's alpha = 0.95 and for alpha = 1.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/analysis/binomial.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::PrefixFilter;
using prefixfilter::SpareTcTraits;

void RunSweep(double alpha, const bench::Options& options,
              bench::BenchRunner* runner) {
  const uint64_t n = options.n();
  prefixfilter::PrefixFilterOptions pf_options;
  pf_options.seed = options.seed;
  pf_options.bin_load_factor = alpha;
  PrefixFilter<SpareTcTraits> pf(n, pf_options);

  const auto keys = prefixfilter::RandomKeys(n, options.seed);
  const double bound = 1.0 / std::sqrt(2.0 * M_PI * pf.kBinCapacity);

  std::printf("alpha = %.2f (m = %llu bins), 1/sqrt(2*pi*k) = %.4f\n", alpha,
              static_cast<unsigned long long>(pf.num_bins()), bound);
  std::printf("%5s | %12s | %12s | %12s | %12s\n", "load", "ins->spare",
              "E[X]/n exact", "negq->spare", "posq->spare");
  std::printf("------+--------------+--------------+--------------+-------------\n");

  const int rounds = 10;
  const uint64_t per_round = n / rounds;
  for (int round = 0; round < rounds; ++round) {
    for (uint64_t i = round * per_round; i < (round + 1) * per_round; ++i) {
      pf.Insert(keys[i]);
    }
    const uint64_t inserted = (round + 1) * per_round;
    const double ins_frac = pf.stats().SpareInsertFraction();
    const double expected =
        prefixfilter::analysis::ExpectedSpareSize(inserted, pf.num_bins(),
                                                  pf.kBinCapacity) /
        static_cast<double>(inserted);

    pf.ResetQueryStats();
    const auto negatives =
        prefixfilter::RandomKeys(per_round, options.seed ^ (0x77u + round));
    for (uint64_t k : negatives) bench::KeepAlive(pf.Contains(k));
    const double neg_frac = pf.stats().SpareQueryFraction();

    pf.ResetQueryStats();
    const auto positives = prefixfilter::SampleKeys(
        keys, inserted, per_round, options.seed ^ (0x99u + round));
    for (uint64_t k : positives) bench::KeepAlive(pf.Contains(k));
    const double pos_frac = pf.stats().SpareQueryFraction();

    std::printf("%4d%% | %11.4f%% | %11.4f%% | %11.4f%% | %11.4f%%\n",
                10 * (round + 1), 100 * ins_frac, 100 * expected,
                100 * neg_frac, 100 * pos_frac);

    char workload[48];
    std::snprintf(workload, sizeof(workload), "alpha=%.2f,load=%d%%", alpha,
                  10 * (round + 1));
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("spare_insert_fraction", ins_frac);
    m.Set("spare_insert_fraction_expected", expected);
    m.Set("spare_negative_query_fraction", neg_frac);
    m.Set("spare_positive_query_fraction", pos_frac);
    runner->Add("PF[TC]", workload, std::move(m));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseOptions(argc, argv);
  std::printf("== Spare access validation (Theorem 2(3), Theorems 17/25) ==\n");
  std::printf("n = 0.94 * 2^%d = %llu\n\n", options.n_log2,
              static_cast<unsigned long long>(options.n()));
  bench::BenchRunner runner("spare_access", options);
  RunSweep(0.95, options, &runner);
  RunSweep(1.00, options, &runner);
  if (!runner.WriteJsonIfRequested()) return 1;
  std::printf(
      "Paper check: every column stays below 1/sqrt(2*pi*25) = 7.98%%\n"
      "(insertions below 1.1x that); at alpha=1, full load, insertions\n"
      "forward ~8%% and at alpha=0.95 ~6%% (the 1.36x of §4.2.2).\n");
  return 0;
}
