// Ablation: the PD query cutoff of §5.2.2.
//
// Compares three PD(25,8,25) query strategies on identical pocket
// dictionaries:
//   (1) the shipped query (SIMD cutoff, popcount single-candidate check,
//       Select only on multi-match),
//   (2) an always-Select decoder (what a "standard" PD implementation does:
//       two Selects to find the list, then a body scan), and
//   (3) a scalar-comparison variant of (1) (no SIMD byte-match kernel),
// and reports the distribution over cutoff paths (Claims 3 and 4).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness.h"
#include "src/pd/pd256.h"
#include "src/util/aligned.h"
#include "src/util/bits.h"
#include "src/util/hash.h"
#include "src/util/simd.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::PD256;

// Strategy (2): the standard Select-based PD search (paper §5.1), working on
// the same in-memory PD256 layout.
bool SelectBasedFind(const PD256& pd, int q, uint8_t r) {
  uint64_t header;
  std::memcpy(&header, pd.raw(), 8);
  header &= (uint64_t{1} << 50) - 1;
  const uint64_t terminators = ~header;
  const int begin =
      (q == 0) ? 0 : prefixfilter::Select64(terminators, q - 1) + 1 - q;
  const int end = prefixfilter::Select64(terminators, q) - q;
  const uint8_t* body = pd.raw() + PD256::kBodyOffset;
  for (int i = begin; i < end; ++i) {
    if (body[i] == r) return true;
  }
  return false;
}

// Strategy (3): cutoff logic with a scalar byte-match kernel.
bool ScalarCutoffFind(const PD256& pd, int q, uint8_t r) {
  const uint32_t v = static_cast<uint32_t>(prefixfilter::FindByteMaskScalar(
                         pd.raw(), r, 32)) >>
                     PD256::kBodyOffset;
  if (v == 0) return false;
  uint64_t header;
  std::memcpy(&header, pd.raw(), 8);
  header &= (uint64_t{1} << 50) - 1;
  if ((v & (v - 1)) == 0) {
    const int i = prefixfilter::CountTrailingZeros64(v);
    const uint64_t w = static_cast<uint64_t>(v) << q;
    return (header & w) != 0 && prefixfilter::PopCount64(header & (w - 1)) == i;
  }
  const uint64_t terminators = ~header;
  const int begin =
      (q == 0) ? 0 : prefixfilter::Select64(terminators, q - 1) + 1 - q;
  const int end = prefixfilter::Select64(terminators, q) - q;
  return (v & static_cast<uint32_t>(prefixfilter::MaskRange64(begin, end))) !=
         0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::ParseOptions(argc, argv);
  // PD microbenchmark scale: number of PDs (two per cache line).
  const size_t num_pds = size_t{1} << 16;
  const size_t num_queries = 1 << 22;

  // Build full PDs with uniform elements (the distribution Claims 3/4
  // assume, justified because elements are mini-fingerprints).
  prefixfilter::AlignedBuffer<PD256> pds(num_pds);
  prefixfilter::Xoshiro256 rng(options.seed);
  for (size_t i = 0; i < num_pds; ++i) {
    for (int j = 0; j < PD256::kCapacity; ++j) {
      pds[i].Insert(static_cast<int>(rng.Below(25)),
                    static_cast<uint8_t>(rng.Next()));
    }
  }
  // Pre-generate the query stream.
  std::vector<uint32_t> stream(num_queries);
  for (auto& s : stream) {
    // pd index | q | r packed into 32 bits.
    const uint64_t h = rng.Next();
    s = static_cast<uint32_t>(((h % num_pds) << 13) |
                              (prefixfilter::FastRange32(
                                   static_cast<uint32_t>(h >> 40), 25)
                               << 8) |
                              (h >> 56 & 0xff));
  }
  auto decode = [&](uint32_t s, size_t* pd, int* q, uint8_t* r) {
    *pd = s >> 13;
    *q = (s >> 8) & 0x1f;
    *r = static_cast<uint8_t>(s);
  };

  std::printf("== Ablation: PD query strategies (%zu full PDs, %zu queries) ==\n",
              num_pds, num_queries);
  std::printf("compiled SIMD kernel: %s\n\n", prefixfilter::SimdKernelName());

  bench::BenchRunner runner("ablation_pd_kernel", options);
  auto run = [&](const char* name, auto&& find) {
    uint64_t found = 0;
    bench::Timer timer;
    for (uint32_t s : stream) {
      size_t pd;
      int q;
      uint8_t r;
      decode(s, &pd, &q, &r);
      found += find(pds[pd], q, r);
    }
    const double secs = timer.Seconds();
    bench::KeepAlive(found);
    const double mops = bench::OpsPerSec(num_queries, secs) / 1e6;
    std::printf("%-28s %8.1f Mops/s  (hit rate %.3f%%)\n", name, mops,
                100.0 * static_cast<double>(found) / num_queries);
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("query_mops", mops);
    m.Set("hit_rate", static_cast<double>(found) / num_queries);
    runner.Add(name, "full-pd-query", std::move(m));
  };

  run("cutoff + SIMD (shipped)",
      [](const PD256& pd, int q, uint8_t r) { return pd.Find(q, r); });
  run("always-Select (standard PD)", SelectBasedFind);
  run("cutoff + scalar kernel", ScalarCutoffFind);

  // Path distribution (Claims 3 and 4).
  uint64_t empty = 0, single = 0, fallback = 0;
  for (uint32_t s : stream) {
    size_t pd;
    int q;
    uint8_t r;
    decode(s, &pd, &q, &r);
    prefixfilter::PdQueryPath path;
    pds[pd].FindWithPath(q, r, &path);
    switch (path) {
      case prefixfilter::PdQueryPath::kEmptyMask: ++empty; break;
      case prefixfilter::PdQueryPath::kSingleCandidate: ++single; break;
      case prefixfilter::PdQueryPath::kSelectFallback: ++fallback; break;
    }
  }
  const double total = static_cast<double>(num_queries);
  std::printf(
      "\nCutoff path distribution (Claims 3/4: >90%% empty; >95%% of the rest\n"
      "single-candidate):\n");
  std::printf("  v==0 (no header work): %6.2f%%\n", 100 * empty / total);
  std::printf("  single candidate:      %6.2f%%\n", 100 * single / total);
  std::printf("  Select fallback:       %6.2f%%\n", 100 * fallback / total);
  std::printf("  => Select avoided for  %6.2f%% of queries (paper: >99%%)\n",
              100 * (empty + single) / total);

  prefixfilter::json::Value paths = prefixfilter::json::Value::MakeObject();
  paths.Set("path_empty_mask_fraction", empty / total);
  paths.Set("path_single_candidate_fraction", single / total);
  paths.Set("path_select_fallback_fraction", fallback / total);
  runner.Add("PD256", "cutoff-paths", std::move(paths));
  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
