// google-benchmark microbenchmarks: per-operation latencies of every filter
// at low (25%) and high (95%) load — the per-op view of Figure 3.
//
// Streams come from src/workload (seeded, deterministic); machine-readable
// output is google-benchmark's own (--benchmark_format=json), not the
// BenchRunner document, since gbench owns the measurement loop here.
#include <benchmark/benchmark.h>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/quotient.h"
#include "src/filters/twochoicer.h"
#include "src/util/random.h"
#include "src/workload/workload.h"

namespace prefixfilter {
namespace {

constexpr uint64_t kN = uint64_t{1} << 20;

workload::Stream MakeStream(double load, double positive_fraction,
                            uint64_t seed) {
  workload::Spec spec;
  spec.num_keys = static_cast<uint64_t>(load * kN);
  spec.num_queries = 1 << 16;
  spec.positive_fraction = positive_fraction;
  spec.seed = seed;
  return workload::Generate(spec);
}

template <typename Filter>
void RunNegativeQueries(benchmark::State& state, Filter filter, double load) {
  const workload::Stream stream = MakeStream(load, 0.0, 11);
  for (uint64_t k : stream.insert_keys) filter.Insert(k);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(stream.queries[i++ & 0xffff]));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Filter>
void RunPositiveQueries(benchmark::State& state, Filter filter, double load) {
  const workload::Stream stream = MakeStream(load, 1.0, 13);
  for (uint64_t k : stream.insert_keys) filter.Insert(k);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(stream.queries[i++ & 0xffff]));
  }
  state.SetItemsProcessed(state.iterations());
}

PrefixFilterOptions PfOptions() {
  PrefixFilterOptions o;
  o.seed = 99;
  return o;
}

#define NEGATIVE_BENCH(name, expr)                              \
  void BM_Neg_##name(benchmark::State& state) {                 \
    RunNegativeQueries(state, expr, state.range(0) / 100.0);    \
  }                                                             \
  BENCHMARK(BM_Neg_##name)->Arg(25)->Arg(95)

#define POSITIVE_BENCH(name, expr)                              \
  void BM_Pos_##name(benchmark::State& state) {                 \
    RunPositiveQueries(state, expr, state.range(0) / 100.0);    \
  }                                                             \
  BENCHMARK(BM_Pos_##name)->Arg(95)

NEGATIVE_BENCH(PF_TC, PrefixFilter<SpareTcTraits>(kN, PfOptions()));
NEGATIVE_BENCH(PF_CF12, PrefixFilter<SpareCf12Traits>(kN, PfOptions()));
NEGATIVE_BENCH(PF_BBF, PrefixFilter<SpareBbfTraits>(kN, PfOptions()));
NEGATIVE_BENCH(CF12, CuckooFilter12(kN, false, 99));
NEGATIVE_BENCH(CF12Flex, CuckooFilter12(kN, true, 99));
NEGATIVE_BENCH(TC, TwoChoicer(kN, 99));
NEGATIVE_BENCH(BBF, BlockedBloomFilter::MakeNonFlexible(kN, 99));
NEGATIVE_BENCH(BBFFlex, BlockedBloomFilter::MakeFlexible(kN, 10.67, 99));
NEGATIVE_BENCH(BF12, BloomFilter(kN, 12.0, 8, 99));
NEGATIVE_BENCH(QF, QuotientFilter(kN, 99));

POSITIVE_BENCH(PF_TC, PrefixFilter<SpareTcTraits>(kN, PfOptions()));
POSITIVE_BENCH(CF12, CuckooFilter12(kN, false, 99));
POSITIVE_BENCH(TC, TwoChoicer(kN, 99));
POSITIVE_BENCH(BBF, BlockedBloomFilter::MakeNonFlexible(kN, 99));

void BM_Insert_PF_TC(benchmark::State& state) {
  // Insert throughput from empty to ~95% in a rotating pool of filters.
  PrefixFilter<SpareTcTraits> pf(kN, PfOptions());
  Xoshiro256 rng(15);
  uint64_t inserted = 0;
  for (auto _ : state) {
    if (inserted >= kN * 95 / 100) {
      state.PauseTiming();
      pf = PrefixFilter<SpareTcTraits>(kN, PfOptions());
      inserted = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pf.Insert(rng.Next()));
    ++inserted;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Insert_PF_TC);

}  // namespace
}  // namespace prefixfilter
