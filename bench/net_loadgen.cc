// net_loadgen: multi-connection load generator for the membership service.
//
// Drives src/workload query streams over the wire protocol against a
// MembershipServer — either an external one (--connect=host:port, the CI
// loopback smoke leg starts `example_membership_server --serve` first) or a
// self-hosted in-process server on an ephemeral loopback port (the default,
// so `bench_net_loadgen --quick` is self-contained).
//
// Measurement: one pipelined insert phase loads the workload's key set, then
// each query workload runs over C connections (one thread + one
// MembershipClient each), every thread sweeping its slice of the stream in
// pipeline windows of `--batch x --depth` keys.  Windows are the timing
// chunks, so the emitted ns/op p50/p90/p99 are end-to-end network latencies
// per key under pipelining, in the same prefixfilter-bench-v1 JSON rows
// (with query_mops / query_ns_* metric keys) as every other bench.
//
// Verification (exit code 1 on any failure — the CI smoke leg relies on it):
//  * zero transport/protocol errors on every connection,
//  * zero false negatives against the workload's ground truth,
//  * nonzero query throughput,
//  * the server's per-shard STATS query counters grew by at least the number
//    of keys this run queried — the observable proof that socket traffic
//    rode the BatchRouter/shard path rather than some scalar bypass.
//
// Usage:
//   bench_net_loadgen [--quick] [--n-log2=L] [--seed=S] [--json=PATH]
//                     [--connect=host:port] [--filter=NAME] [--threads=T]
//                     [--connections=C] [--batch=B] [--depth=D]
//                     [--front-cache=SLOTS] [--workloads=a,b,...]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/net/membership_client.h"
#include "src/net/membership_server.h"
#include "src/obs/metrics.h"
#include "src/service/filter_service.h"
#include "src/service/sharded_filter.h"
#include "src/workload/workload.h"

namespace {

namespace bench = prefixfilter::bench;
namespace net = prefixfilter::net;
namespace workload = prefixfilter::workload;

struct LoadgenConfig {
  std::string connect;  // empty = self-host
  std::string filter = "SHARD16[PF[TC]]";
  uint32_t service_threads = 0;  // self-host: 0 = serve on the event loop
  size_t front_cache_slots = 0;
  int connections = 4;
  size_t batch = 4096;
  size_t depth = 4;
  // Self-host event-loop counts (--server-threads=CSV).  The first value is
  // the loop count for the main phases; more than one value additionally
  // runs the multi-loop scaling sweep (one fresh server per count, one
  // `net-scaling,loops=N` row each, speedup relative to the first count).
  std::vector<uint32_t> server_threads = {1};
  std::vector<std::string> workloads = {"uniform-negative", "mixed-50-50",
                                        "adversarial-dup"};
  // --record-frames=DIR: every client mirrors its wire frames into DIR
  // (created if missing) — raw material for the fuzz seed corpora; see
  // fuzz/make_seed_corpus.cc.
  std::string record_frames_dir;
  // --trace-sample=RATE: every query client samples that fraction of its
  // QUERY_BATCH frames with a wire trace context (after negotiating the
  // capability), and a self-hosted run appends a trace-overhead A/B row
  // comparing untraced vs sampled throughput.
  double trace_sample = 0.0;
};

// Per-thread query-phase result.
struct WorkerResult {
  bool ok = false;
  std::string error;
  uint64_t keys = 0;
  uint64_t false_negatives = 0;
  uint64_t false_positives = 0;
  uint64_t negatives = 0;  // ground-truth absent (FPR denominator)
  uint64_t frames_traced = 0;
  std::vector<double> chunk_ns;
};

void RunQuerySlice(const net::ClientOptions& client_options,
                   const workload::Stream& stream, size_t begin, size_t end,
                   WorkerResult* result) {
  net::MembershipClient client(client_options);
  if (!client.Connect()) {
    result->error = client.error();
    return;
  }
  const size_t window = client_options.max_batch_keys *
                        client_options.pipeline_depth;
  std::vector<uint8_t> answers;
  for (size_t base = begin; base < end; base += window) {
    const size_t count = std::min(window, end - base);
    bench::Timer timer;
    if (!client.QueryPipelined(stream.queries.data() + base, count,
                               &answers)) {
      result->error = client.error();
      return;
    }
    result->chunk_ns.push_back(timer.Seconds() * 1e9 /
                               static_cast<double>(count));
    for (size_t i = 0; i < count; ++i) {
      if (stream.query_expected[base + i]) {
        result->false_negatives += !answers[i];
      } else {
        ++result->negatives;
        result->false_positives += answers[i];
      }
    }
    result->keys += count;
  }
  if (client.remote_errors() != 0) {
    result->error = "server returned error frames: " + client.error();
    return;
  }
  result->frames_traced = client.frames_traced();
  result->ok = true;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      config.connect = arg.substr(10);
    } else if (arg.rfind("--filter=", 0) == 0) {
      config.filter = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.service_threads =
          static_cast<uint32_t>(std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--server-threads=", 0) == 0) {
      config.server_threads.clear();
      for (const std::string& part : bench::SplitCsv(arg.substr(17))) {
        config.server_threads.push_back(static_cast<uint32_t>(
            std::max(1, std::atoi(part.c_str()))));
      }
      if (config.server_threads.empty()) config.server_threads = {1};
    } else if (arg.rfind("--front-cache=", 0) == 0) {
      config.front_cache_slots =
          static_cast<size_t>(std::atoll(arg.c_str() + 14));
    } else if (arg.rfind("--connections=", 0) == 0) {
      config.connections = std::max(1, std::atoi(arg.c_str() + 14));
    } else if (arg.rfind("--batch=", 0) == 0) {
      config.batch = static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--depth=", 0) == 0) {
      config.depth = static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--workloads=", 0) == 0) {
      config.workloads = bench::SplitCsv(arg.substr(12));
    } else if (arg.rfind("--record-frames=", 0) == 0) {
      config.record_frames_dir = arg.substr(16);
    } else if (arg.rfind("--trace-sample=", 0) == 0) {
      config.trace_sample = std::atof(arg.c_str() + 15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_net_loadgen [--quick] [--n-log2=L] [--seed=S]\n"
          "         [--json=PATH] [--connect=host:port] [--filter=NAME]\n"
          "         [--threads=T] [--server-threads=N[,N...]]\n"
          "         [--connections=C] [--batch=B] [--depth=D]\n"
          "         [--front-cache=SLOTS] [--workloads=a,b,...]\n"
          "         [--record-frames=DIR] [--trace-sample=RATE]\n"
          "Self-hosts an in-process loopback server unless --connect is\n"
          "given.  --server-threads sets the server's event-loop count\n"
          "(SO_REUSEPORT loop-per-core); a CSV list additionally runs a\n"
          "scaling sweep emitting one net-scaling,loops=N row per count.\n"
          "--trace-sample=RATE marks that fraction of query frames with a\n"
          "wire trace context (self-hosted runs add a trace-overhead A/B\n"
          "row).  Workloads must share one insert stream (any standard\n"
          "workload except disjoint-negative).\n");
      return 0;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Options options = bench::ParseOptions(
      static_cast<int>(passthrough.size()), passthrough.data());

  const uint64_t n = options.n();
  const uint64_t num_queries =
      options.quick ? std::max<uint64_t>(n, uint64_t{1} << 17) : n;

  // Generate every workload up front and check the shared-insert-set
  // invariant: the server is loaded once, so every stream's ground truth
  // must describe the same inserted keys.
  std::vector<workload::Stream> streams;
  for (const auto& name : config.workloads) {
    workload::Spec spec;
    if (!workload::FindStandardSpec(name, n, num_queries, options.seed,
                                    &spec)) {
      std::fprintf(stderr, "net_loadgen: unknown workload %s\n", name.c_str());
      return 2;
    }
    streams.push_back(workload::Generate(spec));
    if (streams.back().insert_keys != streams.front().insert_keys) {
      std::fprintf(stderr,
                   "net_loadgen: workload %s has a different insert stream "
                   "(disjoint-negative cannot share a server)\n",
                   name.c_str());
      return 2;
    }
  }
  if (streams.empty()) {
    std::fprintf(stderr, "net_loadgen: no workloads\n");
    return 2;
  }
  const std::vector<uint64_t>& insert_keys = streams.front().insert_keys;

  // Self-host unless --connect points at an external server.
  std::shared_ptr<prefixfilter::FilterService> service;
  std::unique_ptr<net::MembershipServer> server;
  net::ClientOptions client_options;
  client_options.max_batch_keys = config.batch;
  client_options.pipeline_depth = config.depth;
  client_options.trace_sample_rate = config.trace_sample;
  if (!config.record_frames_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.record_frames_dir, ec);
    if (ec) {
      std::fprintf(stderr, "net_loadgen: cannot create %s: %s\n",
                   config.record_frames_dir.c_str(), ec.message().c_str());
      return 2;
    }
    client_options.record_frames_dir = config.record_frames_dir;
    std::printf("net_loadgen: recording wire frames into %s\n",
                config.record_frames_dir.c_str());
  }
  if (config.connect.empty()) {
    prefixfilter::FilterServiceOptions service_options;
    service_options.num_threads = config.service_threads;
    service_options.front_cache_slots = config.front_cache_slots;
    service = prefixfilter::MakeFilterService(config.filter, n,
                                              service_options, options.seed);
    if (service == nullptr) {
      std::fprintf(stderr, "net_loadgen: unknown filter %s\n",
                   config.filter.c_str());
      return 2;
    }
    net::ServerOptions server_options;
    server_options.num_loops = config.server_threads.front();
    server = std::make_unique<net::MembershipServer>(service, server_options);
    if (!server->Start()) {
      std::fprintf(stderr, "net_loadgen: server start failed: %s\n",
                   server->error().c_str());
      return 1;
    }
    client_options.port = server->port();
    std::printf("net_loadgen: self-hosted %s on 127.0.0.1:%u (%s, %u loop%s%s)\n",
                config.filter.c_str(), client_options.port,
                server->poller_name(), server->num_loops(),
                server->num_loops() == 1 ? "" : "s",
                server->reuseport_active() ? ", reuseport" : "");
  } else {
    const size_t colon = config.connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "net_loadgen: --connect wants host:port\n");
      return 2;
    }
    client_options.host = config.connect.substr(0, colon);
    client_options.port = static_cast<uint16_t>(
        std::atoi(config.connect.c_str() + colon + 1));
    std::printf("net_loadgen: connecting to %s:%u\n",
                client_options.host.c_str(), client_options.port);
  }

  bench::BenchRunner runner("net_loadgen", options);
  net::MembershipClient control(client_options);
  net::WireStats before;
  if (!control.Connect() || !control.Stats(&before)) {
    std::fprintf(stderr, "net_loadgen: cannot reach server: %s\n",
                 control.error().c_str());
    return 1;
  }
  std::printf("net_loadgen: server filter %s (capacity %" PRIu64
              ", %zu shards)\n",
              before.filter_name.c_str(), before.capacity,
              before.shards.size());

  // --- insert phase (one connection; batch-per-RPC chunks) ------------------
  bench::PhaseStats insert_stats;
  {
    std::vector<double> chunk_ns;
    bench::Timer total;
    for (size_t base = 0; base < insert_keys.size(); base += config.batch) {
      const size_t count = std::min(config.batch, insert_keys.size() - base);
      uint64_t failures = 0;
      bench::Timer chunk;
      if (!control.InsertBatch(insert_keys.data() + base, count, &failures)) {
        std::fprintf(stderr, "net_loadgen: insert failed: %s\n",
                     control.error().c_str());
        return 1;
      }
      chunk_ns.push_back(chunk.Seconds() * 1e9 / static_cast<double>(count));
      insert_stats.failures += failures;
    }
    insert_stats.seconds = total.Seconds();
    insert_stats.ops = insert_keys.size();
    bench::internal::FillPercentiles(chunk_ns, &insert_stats);
  }
  {
    prefixfilter::json::Value metrics = bench::PhaseMetrics(insert_stats,
                                                            "insert");
    metrics.Set("insert_failures", insert_stats.failures);
    metrics.Set("connections", 1);
    metrics.Set("batch_keys", static_cast<uint64_t>(config.batch));
    std::printf("  insert            %8.2f Mops/s  p50 %7.0f ns/op  "
                "p99 %7.0f ns/op  (%" PRIu64 " rejected)\n",
                insert_stats.Mops(), insert_stats.ns_p50, insert_stats.ns_p99,
                insert_stats.failures);
    runner.Add(before.filter_name, "net-insert", std::move(metrics));
  }

  // --- query phases ---------------------------------------------------------
  bool failed = false;
  uint64_t total_queried = 0;
  for (size_t w = 0; w < streams.size(); ++w) {
    const workload::Stream& stream = streams[w];
    const int threads =
        static_cast<int>(std::min<size_t>(config.connections,
                                          std::max<size_t>(1, stream.queries.size() /
                                                                  config.batch)));
    std::vector<WorkerResult> results(threads);
    std::vector<std::thread> pool;
    const size_t per_thread = stream.queries.size() / threads;
    bench::Timer wall;
    for (int t = 0; t < threads; ++t) {
      const size_t begin = t * per_thread;
      const size_t end =
          t == threads - 1 ? stream.queries.size() : begin + per_thread;
      pool.emplace_back(RunQuerySlice, client_options, std::cref(stream),
                        begin, end, &results[t]);
    }
    for (auto& th : pool) th.join();
    const double seconds = wall.Seconds();

    bench::PhaseStats query_stats;
    uint64_t false_negatives = 0, false_positives = 0, negatives = 0;
    uint64_t frames_traced = 0;
    std::vector<double> chunk_ns;
    for (const WorkerResult& r : results) {
      if (!r.ok) {
        std::fprintf(stderr, "net_loadgen: %s: connection failed: %s\n",
                     stream.spec.name.c_str(), r.error.c_str());
        failed = true;
      }
      query_stats.ops += r.keys;
      false_negatives += r.false_negatives;
      false_positives += r.false_positives;
      negatives += r.negatives;
      frames_traced += r.frames_traced;
      chunk_ns.insert(chunk_ns.end(), r.chunk_ns.begin(), r.chunk_ns.end());
    }
    query_stats.seconds = seconds;
    bench::internal::FillPercentiles(chunk_ns, &query_stats);
    total_queried += query_stats.ops;
    if (false_negatives != 0) {
      std::fprintf(stderr, "net_loadgen: %s: %" PRIu64
                   " FALSE NEGATIVES over the wire\n",
                   stream.spec.name.c_str(), false_negatives);
      failed = true;
    }
    if (query_stats.Mops() <= 0.0) {
      std::fprintf(stderr, "net_loadgen: %s: zero throughput\n",
                   stream.spec.name.c_str());
      failed = true;
    }

    prefixfilter::json::Value metrics =
        bench::PhaseMetrics(query_stats, "query");
    metrics.Set("fpr", negatives > 0 ? static_cast<double>(false_positives) /
                                           static_cast<double>(negatives)
                                     : 0.0);
    metrics.Set("false_negatives", false_negatives);
    metrics.Set("connections", threads);
    metrics.Set("batch_keys", static_cast<uint64_t>(config.batch));
    metrics.Set("pipeline_depth", static_cast<uint64_t>(config.depth));
    if (config.trace_sample > 0) {
      metrics.Set("frames_traced", frames_traced);
    }
    std::printf("  %-17s %8.2f Mops/s  p50 %7.0f ns/op  p99 %7.0f ns/op"
                "  fpr %.5f%%  (%d conns)\n",
                stream.spec.name.c_str(), query_stats.Mops(),
                query_stats.ns_p50, query_stats.ns_p99,
                100.0 * metrics.GetDouble("fpr"), threads);
    runner.Add(before.filter_name, stream.spec.name, std::move(metrics));
  }

  // --- STATS verification ---------------------------------------------------
  net::WireStats after;
  if (!control.Stats(&after)) {
    std::fprintf(stderr, "net_loadgen: final STATS failed: %s\n",
                 control.error().c_str());
    return 1;
  }
  uint64_t shard_queries_before = 0, shard_queries_after = 0;
  for (const auto& s : before.shards) shard_queries_before += s.queries;
  for (const auto& s : after.shards) shard_queries_after += s.queries;
  const uint64_t shard_delta = shard_queries_after - shard_queries_before;
  // Front-cache hits legitimately bypass the shards; everything else must
  // have gone through them.
  const uint64_t cache_delta =
      after.front_cache_hits - before.front_cache_hits;
  if (shard_delta + cache_delta < total_queried) {
    std::fprintf(stderr,
                 "net_loadgen: shard counters grew by %" PRIu64
                 " (+%" PRIu64 " cached) for %" PRIu64
                 " queried keys — traffic bypassed the BatchRouter path\n",
                 shard_delta, cache_delta, total_queried);
    failed = true;
  }
  std::printf("net_loadgen: %" PRIu64 " keys over %zu shards "
              "(%" PRIu64 " shard queries, %" PRIu64 " front-cache hits, "
              "%" PRIu64 " query batches served)\n",
              total_queried, after.shards.size(), shard_delta, cache_delta,
              after.query_batches - before.query_batches);

  // --- server-side telemetry (STATS v2 scrape) ------------------------------
  // One extra scrape pulls the server's whole metrics registry over the wire:
  // the per-opcode latency histograms and queue-wait percentiles measured ON
  // the server, the other side of the client-observed ns/op above.  Emitted
  // as an extra prefixfilter-bench-v1 row so perf history tracks server-side
  // latency too.  Skipped silently against pre-v2 or PF_OBS=OFF servers.
  net::WireStats scrape;
  if (control.StatsV2(&scrape) && !scrape.metrics.empty()) {
    prefixfilter::json::Value metrics = prefixfilter::json::Value::MakeObject();
    const auto hist_row = [&metrics, &scrape](const char* metric_name,
                                              const char* label_key,
                                              const char* label_value,
                                              const char* out_prefix) {
      const prefixfilter::obs::MetricSample* s = prefixfilter::obs::FindSample(
          scrape.metrics, metric_name, label_key, label_value);
      if (s == nullptr || s->hist.count == 0) return;
      const std::string p(out_prefix);
      metrics.Set(p + "_count", s->hist.count);
      metrics.Set(p + "_mean_ns", s->hist.Mean());
      metrics.Set(p + "_ns_p50", s->hist.Percentile(0.50));
      metrics.Set(p + "_ns_p90", s->hist.Percentile(0.90));
      metrics.Set(p + "_ns_p99", s->hist.Percentile(0.99));
    };
    hist_row("net.server.request.ns", "op", "query", "server_query");
    hist_row("net.server.request.ns", "op", "insert", "server_insert");
    hist_row("service.queue.wait.ns", "", "", "server_queue_wait");
    hist_row("net.server.merge.frames", "", "", "server_merge_frames");
    const uint64_t cache_looks =
        scrape.front_cache_hits + scrape.front_cache_misses;
    if (cache_looks != 0) {
      metrics.Set("front_cache_hit_rate",
                  static_cast<double>(scrape.front_cache_hits) /
                      static_cast<double>(cache_looks));
    }
    const prefixfilter::obs::MetricSample* bytes_in = prefixfilter::obs::
        FindSample(scrape.metrics, "net.server.bytes.in");
    const prefixfilter::obs::MetricSample* bytes_out = prefixfilter::obs::
        FindSample(scrape.metrics, "net.server.bytes.out");
    if (bytes_in != nullptr) metrics.Set("server_bytes_in", bytes_in->value);
    if (bytes_out != nullptr) {
      metrics.Set("server_bytes_out", bytes_out->value);
    }
    const prefixfilter::obs::MetricSample* query_hist =
        prefixfilter::obs::FindSample(scrape.metrics, "net.server.request.ns",
                                      "op", "query");
    if (query_hist != nullptr && query_hist->hist.count != 0) {
      std::printf("net_loadgen: server-side query batches: p50 %.0f ns  "
                  "p99 %.0f ns  (%" PRIu64 " merged batches, %zu series "
                  "scraped)\n",
                  query_hist->hist.Percentile(0.50),
                  query_hist->hist.Percentile(0.99), query_hist->hist.count,
                  scrape.metrics.size());
    }
    runner.Add(before.filter_name, "server-metrics", std::move(metrics));
  }

  // --- tracing overhead A/B (--trace-sample, self-host only) ----------------
  // Two passes over the first workload against the already-loaded server:
  // untraced clients, then clients sampling at the configured rate.  The
  // delta is the whole cost of tracing at that rate — context encoding,
  // negotiation, server-side span capture — emitted as one trace-overhead
  // row (informational, not gated: loopback A/Bs are noisy).
  if (config.connect.empty() && config.trace_sample > 0) {
    const workload::Stream& stream = streams.front();
    const int threads = std::max(1, config.connections);
    const size_t per_thread = stream.queries.size() / threads;
    double pass_mops[2] = {0.0, 0.0};
    uint64_t ab_frames_traced = 0;
    for (int pass = 0; pass < 2; ++pass) {
      net::ClientOptions ab_options = client_options;
      ab_options.trace_sample_rate = pass == 0 ? 0.0 : config.trace_sample;
      std::vector<WorkerResult> results(threads);
      std::vector<std::thread> pool;
      bench::Timer wall;
      for (int t = 0; t < threads; ++t) {
        const size_t begin = t * per_thread;
        const size_t end =
            t == threads - 1 ? stream.queries.size() : begin + per_thread;
        pool.emplace_back(RunQuerySlice, ab_options, std::cref(stream),
                          begin, end, &results[t]);
      }
      for (auto& th : pool) th.join();
      const double seconds = wall.Seconds();
      bench::PhaseStats ab_stats;
      for (const WorkerResult& r : results) {
        if (!r.ok) {
          std::fprintf(stderr, "net_loadgen: trace A/B worker failed: %s\n",
                       r.error.c_str());
          failed = true;
        }
        ab_stats.ops += r.keys;
        if (pass == 1) ab_frames_traced += r.frames_traced;
      }
      ab_stats.seconds = seconds;
      pass_mops[pass] = ab_stats.Mops();
    }
    const double overhead_pct =
        pass_mops[1] > 0.0
            ? 100.0 * (pass_mops[0] - pass_mops[1]) / pass_mops[0]
            : 0.0;
    prefixfilter::json::Value metrics = prefixfilter::json::Value::MakeObject();
    metrics.Set("sample_rate", config.trace_sample);
    metrics.Set("baseline_mops", pass_mops[0]);
    metrics.Set("traced_mops", pass_mops[1]);
    metrics.Set("overhead_pct", overhead_pct);
    metrics.Set("frames_traced", ab_frames_traced);
    std::printf("  trace-overhead    base %8.2f Mops/s  sampled %8.2f "
                "Mops/s  (%.1f%% overhead at rate %.4f, %" PRIu64
                " traced frames)\n",
                pass_mops[0], pass_mops[1], overhead_pct, config.trace_sample,
                ab_frames_traced);
    runner.Add(before.filter_name, "trace-overhead", std::move(metrics));
  }

  // --- multi-loop scaling sweep (--server-threads=CSV, self-host only) ------
  // One fresh server per loop count, loaded and queried identically, so the
  // emitted rows isolate event-loop scaling: `net-scaling,loops=N` with
  // query_mops and speedup_vs_1loop, the same row style service_scaling uses
  // for its worker-thread sweep.  The ISSUE/CI acceptance bar (≥2.5x at 4
  // loops vs 1 on multi-core hardware) reads these rows.
  if (config.connect.empty() && config.server_threads.size() > 1) {
    const workload::Stream& stream = streams.front();
    double base_mops = 0.0;
    std::printf("net_loadgen: scaling sweep over %zu loop counts "
                "(%s, %d conns)\n",
                config.server_threads.size(), stream.spec.name.c_str(),
                config.connections);
    for (const uint32_t loops : config.server_threads) {
      prefixfilter::FilterServiceOptions sweep_service_options;
      sweep_service_options.num_threads = config.service_threads;
      sweep_service_options.front_cache_slots = config.front_cache_slots;
      auto sweep_service = prefixfilter::MakeFilterService(
          config.filter, n, sweep_service_options, options.seed);
      net::ServerOptions sweep_server_options;
      sweep_server_options.num_loops = loops;
      net::MembershipServer sweep_server(sweep_service, sweep_server_options);
      if (!sweep_server.Start()) {
        std::fprintf(stderr, "net_loadgen: sweep server (loops=%u) failed: %s\n",
                     loops, sweep_server.error().c_str());
        failed = true;
        break;
      }
      net::ClientOptions sweep_client_options = client_options;
      sweep_client_options.port = sweep_server.port();

      net::MembershipClient loader(sweep_client_options);
      bool loaded = loader.Connect();
      for (size_t base = 0; loaded && base < insert_keys.size();
           base += config.batch) {
        const size_t count = std::min(config.batch, insert_keys.size() - base);
        uint64_t failures = 0;
        loaded = loader.InsertBatch(insert_keys.data() + base, count,
                                    &failures);
      }
      if (!loaded) {
        std::fprintf(stderr, "net_loadgen: sweep insert (loops=%u) failed: "
                     "%s\n", loops, loader.error().c_str());
        failed = true;
        continue;
      }

      const int threads = std::max(1, config.connections);
      std::vector<WorkerResult> results(threads);
      std::vector<std::thread> pool;
      const size_t per_thread = stream.queries.size() / threads;
      bench::Timer wall;
      for (int t = 0; t < threads; ++t) {
        const size_t begin = t * per_thread;
        const size_t end =
            t == threads - 1 ? stream.queries.size() : begin + per_thread;
        pool.emplace_back(RunQuerySlice, sweep_client_options,
                          std::cref(stream), begin, end, &results[t]);
      }
      for (auto& th : pool) th.join();
      const double seconds = wall.Seconds();

      bench::PhaseStats sweep_stats;
      std::vector<double> chunk_ns;
      for (const WorkerResult& r : results) {
        if (!r.ok || r.false_negatives != 0) {
          std::fprintf(stderr,
                       "net_loadgen: sweep (loops=%u): worker failed: %s\n",
                       loops, r.error.c_str());
          failed = true;
        }
        sweep_stats.ops += r.keys;
        chunk_ns.insert(chunk_ns.end(), r.chunk_ns.begin(), r.chunk_ns.end());
      }
      sweep_stats.seconds = seconds;
      bench::internal::FillPercentiles(chunk_ns, &sweep_stats);
      if (base_mops == 0.0) base_mops = sweep_stats.Mops();
      const double speedup =
          base_mops > 0.0 ? sweep_stats.Mops() / base_mops : 0.0;

      prefixfilter::json::Value metrics =
          bench::PhaseMetrics(sweep_stats, "query");
      metrics.Set("loops", static_cast<uint64_t>(sweep_server.num_loops()));
      metrics.Set("reuseport",
                  static_cast<uint64_t>(sweep_server.reuseport_active()));
      metrics.Set("connections", static_cast<uint64_t>(threads));
      metrics.Set("speedup_vs_1loop", speedup);
      std::printf("  loops=%-2u          %8.2f Mops/s  p50 %7.0f ns/op  "
                  "speedup %.2fx%s\n",
                  loops, sweep_stats.Mops(), sweep_stats.ns_p50, speedup,
                  sweep_server.reuseport_active() ? "  (reuseport)" : "");
      runner.Add(before.filter_name,
                 "net-scaling,loops=" + std::to_string(loops),
                 std::move(metrics));
      sweep_server.Stop();
    }
  }

  if (server != nullptr) {
    const net::ServerStats stats = server->stats();
    if (stats.protocol_errors != 0) {
      std::fprintf(stderr, "net_loadgen: server counted %" PRIu64
                   " protocol errors\n",
                   stats.protocol_errors);
      failed = true;
    }
    std::printf("net_loadgen: server saw %" PRIu64 " frames on %" PRIu64
                " connections, merged %" PRIu64 " pipelined query frames\n",
                stats.frames_received, stats.connections_accepted,
                stats.query_frames_merged);
  }

  if (!runner.WriteJsonIfRequested()) return 1;
  if (failed) return 1;
  std::printf("net_loadgen: OK\n");
  return 0;
}
