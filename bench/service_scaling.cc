// Sharded-service scaling grid: batched mixed-stream query throughput as a
// function of client threads x shards, against the single-filter baseline.
//
// Workload: a 50/50 positive/negative stream (the paper's §7.3 mixed round),
// pre-partitioned into per-thread slices; every thread owns a BatchRouter
// and drives ShardedFilter::ContainsBatch over its slice in batches of 4096,
// so each batch pays one lock per touched shard and rides the prefetching
// batch path inside each shard.  With 1 shard every thread serializes on one
// lock; with >= threads shards the locks spread and throughput scales with
// cores (the acceptance target: >= 3x single-thread at 8 threads on
// hardware with >= 8 cores).
//
//   bench_service_scaling [--n-log2=L] [--seed=S] [--csv]
#include <cinttypes>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/service/batch_router.h"
#include "src/service/sharded_filter.h"

namespace {

using prefixfilter::BatchRouter;
using prefixfilter::ShardedFilter;
using prefixfilter::ShardedFilterOptions;

constexpr size_t kBatch = 4096;

struct Cell {
  double mops = 0;
  uint64_t hits = 0;
};

// Each thread routes its slice of the stream in batches; returns aggregate
// throughput over the slowest thread's wall time (the honest fleet number).
Cell RunCell(const ShardedFilter& filter, const std::vector<uint64_t>& stream,
             int threads) {
  std::vector<uint64_t> hits(threads, 0);
  std::vector<std::thread> pool;
  const size_t per_thread = stream.size() / threads;
  prefixfilter::bench::Timer timer;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      BatchRouter router;
      std::vector<uint8_t> out(kBatch);
      const size_t begin = t * per_thread;
      const size_t end = (t == threads - 1) ? stream.size() : begin + per_thread;
      uint64_t local_hits = 0;
      for (size_t base = begin; base < end; base += kBatch) {
        const size_t count = std::min(kBatch, end - base);
        router.Route(filter, stream.data() + base, count, out.data());
        for (size_t i = 0; i < count; ++i) local_hits += out[i];
      }
      hits[t] = local_hits;
    });
  }
  for (auto& th : pool) th.join();
  const double secs = timer.Seconds();
  Cell cell;
  cell.mops = prefixfilter::bench::OpsPerSec(stream.size(), secs) / 1e6;
  for (uint64_t h : hits) cell.hits += h;
  prefixfilter::bench::KeepAlive(cell.hits);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = prefixfilter::bench::ParseOptions(argc, argv);
  const uint64_t n = options.n();

  // Mixed 50/50 positive/negative stream from the standard workload suite
  // (the same "mixed-50-50" cell bench_all sweeps, at 2n queries).
  prefixfilter::workload::Spec spec;
  if (!prefixfilter::workload::FindStandardSpec("mixed-50-50", n, 2 * n,
                                                options.seed, &spec)) {
    return 2;
  }
  const prefixfilter::workload::Stream generated =
      prefixfilter::workload::Generate(spec);
  const std::vector<uint64_t>& keys = generated.insert_keys;
  const std::vector<uint64_t>& stream = generated.queries;

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("# service_scaling: n=%" PRIu64 " stream=%zu hw_threads=%d\n",
              n, stream.size(), hw);

  const std::vector<uint32_t> shard_counts = {1, 4, 16, 64};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  prefixfilter::bench::BenchRunner runner("service_scaling", options);

  if (options.csv) {
    std::printf("shards,threads,mqps,speedup_vs_1thread\n");
  } else {
    std::printf("%-22s |", "batched queries, Mq/s");
    for (int t : thread_counts) std::printf("  %2d thr |", t);
    std::printf(" 8thr/1thr\n");
  }

  for (uint32_t shards : shard_counts) {
    ShardedFilterOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.backend = "PF[TC]";
    sharded_options.seed = options.seed;
    auto filter = ShardedFilter::Make(n, sharded_options);
    if (filter == nullptr) {
      std::fprintf(stderr, "failed to build SHARD%u[PF[TC]]\n", shards);
      return 1;
    }
    const uint64_t failures = filter->InsertBatch(keys.data(), keys.size());
    if (failures != 0) {
      std::fprintf(stderr, "SHARD%u: %" PRIu64 " insert failures\n", shards,
                   failures);
      return 1;
    }
    double first = 0, last = 0;
    if (!options.csv) std::printf("%-22s |", filter->Name().c_str());
    for (int threads : thread_counts) {
      const Cell cell = RunCell(*filter, stream, threads);
      if (threads == thread_counts.front()) first = cell.mops;
      last = cell.mops;
      if (options.csv) {
        std::printf("SHARD%u,%d,%.2f,%.2f\n", shards, threads, cell.mops,
                    first > 0 ? cell.mops / first : 0.0);
      } else {
        std::printf(" %6.1f |", cell.mops);
      }
      char workload[48];
      std::snprintf(workload, sizeof(workload), "mixed-50-50,threads=%d",
                    threads);
      prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
      m.Set("batched_query_mops", cell.mops);
      m.Set("speedup_vs_1thread", first > 0 ? cell.mops / first : 0.0);
      runner.Add(filter->Name(), workload, std::move(m));
    }
    if (!options.csv) {
      std::printf("   %5.2fx\n", first > 0 ? last / first : 0.0);
    }
  }

  // Single unsharded prefix filter, one thread: the paper-level baseline the
  // sharded grid is normalized against.
  {
    auto single = prefixfilter::MakeFilter("PF[TC]", n, options.seed);
    for (uint64_t k : keys) single->Insert(k);
    std::vector<uint8_t> out(kBatch);
    uint64_t found = 0;
    prefixfilter::bench::Timer timer;
    for (size_t base = 0; base < stream.size(); base += kBatch) {
      const size_t count = std::min(kBatch, stream.size() - base);
      single->ContainsBatch(stream.data() + base, count, out.data());
      for (size_t i = 0; i < count; ++i) found += out[i];
    }
    const double secs = timer.Seconds();
    prefixfilter::bench::KeepAlive(found);
    const double mqps =
        prefixfilter::bench::OpsPerSec(stream.size(), secs) / 1e6;
    if (options.csv) {
      std::printf("PF,1,%.2f,1.00\n", mqps);
    } else {
      std::printf("%-22s | %6.1f | (unsharded baseline)\n", "PF[TC] single",
                  mqps);
    }
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("batched_query_mops", mqps);
    runner.Add("PF[TC]", "mixed-50-50,threads=1", std::move(m));
  }

  // Scalar fast path (ROADMAP: SHARD16 paid ~35-40% single-thread overhead
  // on non-batched queries): 1-key ContainsBatch calls now route inline, so
  // the sharded filter's scalar rate should sit within a few percent of its
  // inner filter instead of paying the full counting-sort setup per key.
  {
    ShardedFilterOptions sharded_options;
    sharded_options.num_shards = 16;
    sharded_options.backend = "PF[TC]";
    sharded_options.seed = options.seed;
    auto sharded = ShardedFilter::Make(n, sharded_options);
    auto inner = prefixfilter::MakeFilter("PF[TC]", n, options.seed);
    sharded->InsertBatch(keys.data(), keys.size());
    for (uint64_t k : keys) inner->Insert(k);

    auto scalar_mqps = [&](const prefixfilter::AnyFilter& filter) {
      uint64_t found = 0;
      uint8_t one = 0;
      prefixfilter::bench::Timer timer;
      for (uint64_t k : stream) {
        filter.ContainsBatch(&k, 1, &one);  // the 1-key batch fast path
        found += one;
      }
      const double secs = timer.Seconds();
      prefixfilter::bench::KeepAlive(found);
      return prefixfilter::bench::OpsPerSec(stream.size(), secs) / 1e6;
    };
    const double sharded_mqps = scalar_mqps(*sharded);
    const double inner_mqps = scalar_mqps(*inner);
    const double overhead_pct =
        inner_mqps > 0 ? 100.0 * (inner_mqps - sharded_mqps) / inner_mqps
                       : 0.0;
    if (options.csv) {
      std::printf("SHARD16-scalar,1,%.2f,%.2f\nPF-scalar,1,%.2f,1.00\n",
                  sharded_mqps, overhead_pct, inner_mqps);
    } else {
      std::printf("%-22s | %6.1f | vs inner %6.1f -> %+.1f%% overhead "
                  "(scalar 1-key fast path)\n",
                  "SHARD16[PF[TC]] scalar", sharded_mqps, inner_mqps,
                  overhead_pct);
    }
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("scalar_query_mops", sharded_mqps);
    m.Set("inner_scalar_query_mops", inner_mqps);
    m.Set("scalar_overhead_pct", overhead_pct);
    runner.Add("SHARD16[PF[TC]]", "mixed-50-50,scalar", std::move(m));
  }
  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
