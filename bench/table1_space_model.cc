// Regenerates Table 1 (paper §3): analytic comparison of practical filters'
// space (bits/key), average cache misses per negative query (CM/NQ), and
// maximal load factor of the underlying fingerprint hash table.
//
// This is an analytic table — no filter is built; the formulas come from
// src/analysis/space_model.h.  The paper states it at a "typical" epsilon;
// we print it at the prefix filter's operating point eps ~ 2^-8 and at the
// 2.5% used in the introduction.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/analysis/space_model.h"

namespace {

void PrintTable(double eps, uint32_t k,
                prefixfilter::bench::BenchRunner* runner) {
  std::printf("epsilon = %.4f%%, prefix-filter bin capacity k = %u\n",
              eps * 100, k);
  std::printf("%-6s | %-38s | %-6s | %s\n", "Filter", "Bits per key",
              "CM/NQ", "Max load factor");
  std::printf("-------+----------------------------------------+--------+--------------\n");
  for (const auto& row : prefixfilter::analysis::Table1(eps, k)) {
    char load[16];
    if (row.max_load_factor > 0) {
      std::snprintf(load, sizeof(load), "%.1f%%", row.max_load_factor * 100);
    } else {
      std::snprintf(load, sizeof(load), "-");
    }
    std::printf("%-6s | %-38s | %-6.2f | %s\n", row.filter.c_str(),
                row.bits_per_key.c_str(), row.cache_misses_per_negative_query,
                load);

    char workload[32];
    std::snprintf(workload, sizeof(workload), "eps=%.4f", eps);
    prefixfilter::json::Value m = prefixfilter::json::Value::MakeObject();
    m.Set("cache_misses_per_negative_query",
          row.cache_misses_per_negative_query);
    m.Set("max_load_factor", row.max_load_factor);
    runner->Add(row.filter, workload, std::move(m));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = prefixfilter::bench::ParseOptions(argc, argv);
  prefixfilter::bench::BenchRunner runner("table1_space_model", options);
  std::printf("== Table 1: space / cache-miss / load-factor model ==\n\n");
  PrintTable(1.0 / 256, 25, &runner);  // the prototype's operating point (§4.3)
  PrintTable(0.025, 25, &runner);      // the introduction's "typical" 2.5%
  std::printf(
      "Paper check: PF row should read ~(1+g)(log2(1/eps)+2)+g bits/key with\n"
      "g = 1/sqrt(2*pi*25) ~ 0.0798, CM/NQ <= 1+2g ~ 1.16, load factor 100%%.\n");
  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
