// Ablation: the Prefix Invariant itself (paper §4 vs §4.4's BE filter).
//
// The prefix filter's one novel mechanism is its eviction policy — forward
// the *maximum* fingerprint so each bin keeps a sorted prefix, letting
// queries skip the spare.  This bench runs the prefix filter head-to-head
// against the BE-style baseline (identical bins, hashing, sizing, and spare;
// no eviction, so every bin miss continues to the spare) and against a
// batched-prefetch variant, reporting query throughput and spare traffic.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/core/be_filter.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::BeFilter;
using prefixfilter::PrefixFilter;
using prefixfilter::SpareCf12Traits;

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseOptions(argc, argv);
  const uint64_t n = options.n();
  const auto keys = prefixfilter::RandomKeys(n, options.seed);
  const auto negatives = prefixfilter::RandomKeys(n, options.seed ^ 0x1u);
  const auto positives =
      prefixfilter::SampleKeys(keys, n, n, options.seed ^ 0x2u);

  std::printf("== Ablation: Prefix Invariant (PF vs BE baseline), n = %llu ==\n\n",
              static_cast<unsigned long long>(n));

  prefixfilter::PrefixFilterOptions pf_options;
  pf_options.seed = options.seed;
  PrefixFilter<SpareCf12Traits> pf(n, pf_options);
  BeFilter<SpareCf12Traits> be(n, 0.95, options.seed);

  const auto [pf_build, pf_fail] = bench::TimeInserts(pf, keys, 0, n);
  const auto [be_build, be_fail] = bench::TimeInserts(be, keys, 0, n);

  const auto [pf_neg_secs, pf_neg_found] = bench::TimeQueries(pf, negatives);
  const auto [be_neg_secs, be_neg_found] = bench::TimeQueries(be, negatives);
  const auto [pf_pos_secs, pf_pos_found] = bench::TimeQueries(pf, positives);
  const auto [be_pos_secs, be_pos_found] = bench::TimeQueries(be, positives);
  bench::KeepAlive(pf_neg_found + be_neg_found + pf_pos_found + be_pos_found);

  // Batched negative queries on the PF (prefetch across the chunk).
  std::vector<uint8_t> out(negatives.size());
  bench::Timer batch_timer;
  pf.ContainsBatch(negatives.data(), negatives.size(), out.data());
  const double pf_batch_secs = batch_timer.Seconds();
  bench::KeepAlive(out[0]);

  std::printf("%-26s | %12s | %12s\n", "", "PrefixFilter", "BE baseline");
  std::printf("---------------------------+--------------+-------------\n");
  std::printf("%-26s | %9.1f Ms | %9.1f Ms\n", "build (Mkeys/s)",
              bench::OpsPerSec(n, pf_build) / 1e6,
              bench::OpsPerSec(n, be_build) / 1e6);
  std::printf("%-26s | %9.1f Ms | %9.1f Ms\n", "negative queries",
              bench::OpsPerSec(n, pf_neg_secs) / 1e6,
              bench::OpsPerSec(n, be_neg_secs) / 1e6);
  std::printf("%-26s | %9.1f Ms | %12s\n", "negative queries (batch)",
              bench::OpsPerSec(n, pf_batch_secs) / 1e6, "-");
  std::printf("%-26s | %9.1f Ms | %9.1f Ms\n", "positive queries",
              bench::OpsPerSec(n, pf_pos_secs) / 1e6,
              bench::OpsPerSec(n, be_pos_secs) / 1e6);
  std::printf("%-26s | %11.2f%% | %11.2f%%\n", "neg. queries -> spare",
              0.0, 100.0);  // by construction; measured below for PF
  std::printf("%-26s | %11.2f%% | %11.2f%%\n", "inserts -> spare",
              100.0 * pf.stats().SpareInsertFraction(),
              100.0 * be.stats().SpareInsertFraction());
  if (pf_fail || be_fail) {
    std::printf("(insert failures: PF=%llu BE=%llu)\n",
                static_cast<unsigned long long>(pf_fail),
                static_cast<unsigned long long>(be_fail));
  }
  std::printf(
      "\nMeasured PF spare-query fraction: %.2f%% (bound 7.98%%); the BE\n"
      "design forwards every bin miss, i.e. ~100%% of negative queries.\n"
      "The gap between the two negative-query rows is the value of the\n"
      "Prefix Invariant.\n",
      100.0 * pf.stats().SpareQueryFraction());

  bench::BenchRunner runner("ablation_prefix_invariant", options);
  prefixfilter::json::Value pf_m = prefixfilter::json::Value::MakeObject();
  pf_m.Set("build_mops", bench::OpsPerSec(n, pf_build) / 1e6);
  pf_m.Set("negative_query_mops", bench::OpsPerSec(n, pf_neg_secs) / 1e6);
  pf_m.Set("negative_query_batch_mops",
           bench::OpsPerSec(n, pf_batch_secs) / 1e6);
  pf_m.Set("positive_query_mops", bench::OpsPerSec(n, pf_pos_secs) / 1e6);
  pf_m.Set("spare_insert_fraction", pf.stats().SpareInsertFraction());
  pf_m.Set("spare_query_fraction", pf.stats().SpareQueryFraction());
  runner.Add("PF[CF12-Flex]", "full-load", std::move(pf_m));
  prefixfilter::json::Value be_m = prefixfilter::json::Value::MakeObject();
  be_m.Set("build_mops", bench::OpsPerSec(n, be_build) / 1e6);
  be_m.Set("negative_query_mops", bench::OpsPerSec(n, be_neg_secs) / 1e6);
  be_m.Set("positive_query_mops", bench::OpsPerSec(n, be_pos_secs) / 1e6);
  be_m.Set("spare_insert_fraction", be.stats().SpareInsertFraction());
  runner.Add("BE[CF12-Flex]", "full-load", std::move(be_m));
  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
