// Regenerates Figure 4 (paper §7.4): filter build time — the time to insert
// n random keys into an initially empty filter.  This is the LSM-tree
// workload the paper singles out (a run's filter is built once, then only
// queried), and the headline result: PF builds 1.39-1.46x faster than the
// vector quotient filter and >3.2x faster than the cuckoo filter.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/twochoicer.h"

namespace {

namespace bench = prefixfilter::bench;
using prefixfilter::PrefixFilter;

struct Result {
  std::string name;
  double seconds;
  uint64_t failures;
  bench::PhaseStats stats;
};

template <typename Filter>
Result Build(const std::string& name, Filter filter,
             const std::vector<uint64_t>& keys) {
  const bench::PhaseStats stats =
      bench::TimedInserts(filter, keys, 0, keys.size());
  bench::KeepAlive(filter.Contains(keys[0]));
  return {name, stats.seconds, stats.failures, stats};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseOptions(argc, argv);
  const uint64_t n = options.n();
  const uint64_t seed = options.seed;
  const auto keys = prefixfilter::RandomKeys(n, options.seed);

  std::printf("== Figure 4: build time for n = 0.94 * 2^%d = %llu keys ==\n\n",
              options.n_log2, static_cast<unsigned long long>(n));

  std::vector<Result> results;
  results.push_back(Build(
      "BBF", prefixfilter::BlockedBloomFilter::MakeNonFlexible(n, seed), keys));
  results.push_back(Build(
      "BBF-Flex", prefixfilter::BlockedBloomFilter::MakeFlexible(n, 10.67, seed),
      keys));
  prefixfilter::PrefixFilterOptions pf_options;
  pf_options.seed = seed;
  results.push_back(
      Build("PF[BBF-Flex]",
            PrefixFilter<prefixfilter::SpareBbfTraits>(n, pf_options), keys));
  results.push_back(
      Build("PF[TC]", PrefixFilter<prefixfilter::SpareTcTraits>(n, pf_options),
            keys));
  results.push_back(
      Build("PF[CF12-Flex]",
            PrefixFilter<prefixfilter::SpareCf12Traits>(n, pf_options), keys));
  results.push_back(Build("TC", prefixfilter::TwoChoicer(n, seed), keys));
  results.push_back(Build("BF-8[k=6]", prefixfilter::BloomFilter(n, 8, 6, seed),
                          keys));
  results.push_back(
      Build("BF-12[k=8]", prefixfilter::BloomFilter(n, 12, 8, seed), keys));
  results.push_back(Build("CF-8", prefixfilter::CuckooFilter8(n, false, seed),
                          keys));
  results.push_back(
      Build("CF-8-Flex", prefixfilter::CuckooFilter8(n, true, seed), keys));
  results.push_back(
      Build("BF-16[k=11]", prefixfilter::BloomFilter(n, 16, 11, seed), keys));
  results.push_back(Build("CF-12", prefixfilter::CuckooFilter12(n, false, seed),
                          keys));
  results.push_back(
      Build("CF-12-Flex", prefixfilter::CuckooFilter12(n, true, seed), keys));

  std::printf("%-14s | %10s | %10s\n", "Filter", "Seconds", "Mkeys/s");
  std::printf("---------------+------------+-----------\n");
  for (const auto& r : results) {
    std::printf("%-14s | %10.3f | %10.2f%s\n", r.name.c_str(), r.seconds,
                static_cast<double>(n) / r.seconds / 1e6,
                r.failures ? "  (!)" : "");
  }

  auto find = [&](const char* name) {
    return std::find_if(results.begin(), results.end(),
                        [&](const Result& r) { return r.name == name; })
        ->seconds;
  };
  const double pf_best =
      std::min({find("PF[BBF-Flex]"), find("PF[TC]"), find("PF[CF12-Flex]")});
  const double pf_worst =
      std::max({find("PF[BBF-Flex]"), find("PF[TC]"), find("PF[CF12-Flex]")});
  std::printf("\nSpeedups (paper: TC/PF 1.39-1.46x, CF/PF > 3.2x):\n");
  std::printf("  TC / PF(best)     = %.2fx\n", find("TC") / pf_best);
  std::printf("  TC / PF(worst)    = %.2fx\n", find("TC") / pf_worst);
  std::printf("  CF-12 / PF(best)  = %.2fx\n", find("CF-12") / pf_best);
  std::printf("  CF-12-Flex / PF   = %.2fx\n", find("CF-12-Flex") / pf_best);
  std::printf("  PF(worst)/PF(best)= %.2fx (paper: spare choice ~5.6%%)\n",
              pf_worst / pf_best);

  bench::BenchRunner runner("fig4_build_time", options);
  for (const auto& r : results) {
    prefixfilter::json::Value m = bench::PhaseMetrics(r.stats, "build");
    m.Set("build_seconds", r.seconds);
    m.Set("insert_failures", r.failures);
    runner.Add(r.name, "build", std::move(m));
  }
  prefixfilter::json::Value speedups = prefixfilter::json::Value::MakeObject();
  speedups.Set("tc_over_pf_best", find("TC") / pf_best);
  speedups.Set("cf12_over_pf_best", find("CF-12") / pf_best);
  runner.Add("summary", "build", std::move(speedups));
  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
