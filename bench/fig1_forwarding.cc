// Regenerates Figure 1 (paper §4.2.2): expected fraction of fingerprints
// forwarded to the spare, as a function of the bin capacity k, for bin-table
// maximal load factors alpha in {100%, 95%, 90%, 85%}, at n = 2^30.
//
// The curves are computed from the exact binomial expectation of §6.1
// (Theorem 5), not the 1/sqrt(2*pi*k) approximation.  A Monte-Carlo
// validation column at a small n cross-checks the analysis.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/analysis/binomial.h"
#include "src/util/random.h"

namespace {

using prefixfilter::analysis::ExpectedSpareFraction;
using prefixfilter::analysis::SpareFractionApproximation;

double SimulateFraction(uint64_t n, uint64_t m, uint32_t k, uint64_t seed) {
  prefixfilter::Xoshiro256 rng(seed);
  std::vector<uint32_t> bins(m, 0);
  uint64_t overflow = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t& b = bins[rng.Below(m)];
    if (b >= k) {
      ++overflow;
    } else {
      ++b;
    }
  }
  return static_cast<double>(overflow) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = prefixfilter::bench::ParseOptions(argc, argv);
  const uint64_t n = uint64_t{1} << 30;
  const double alphas[] = {1.00, 0.95, 0.90, 0.85};

  std::printf("== Figure 1: expected fraction of forwarded fingerprints ==\n");
  std::printf("n = 2^30; analytic values from Theorem 5 (exact binomial)\n\n");
  std::printf("%4s | %10s | %10s | %10s | %10s | %12s\n", "k", "a=100%",
              "a=95%", "a=90%", "a=85%", "1/sqrt(2pik)");
  std::printf("-----+------------+------------+------------+------------+-------------\n");
  for (uint32_t k = 20; k <= 120; k += 5) {
    std::printf("%4u |", k);
    for (double alpha : alphas) {
      const uint64_t m =
          static_cast<uint64_t>(std::ceil(static_cast<double>(n) / (alpha * k)));
      std::printf(" %9.4f%% |", 100.0 * ExpectedSpareFraction(n, m, k));
    }
    std::printf("  %9.4f%%\n", 100.0 * SpareFractionApproximation(k));
  }

  std::printf(
      "\nPaper check: at k=25, a=100%% the fraction is ~8%%; a=95%% reduces it\n"
      "by ~1.36x (to ~6%%); curves decrease in k and in 1/alpha.\n");

  // Monte-Carlo validation at a tractable n.
  prefixfilter::bench::BenchRunner runner("fig1_forwarding", options);
  const uint64_t n_sim = uint64_t{1} << 22;
  std::printf("\nMonte-Carlo validation (n = 2^22, single trial per cell):\n");
  std::printf("%4s | %8s | %10s | %10s\n", "k", "alpha", "analytic",
              "simulated");
  std::printf("-----+----------+------------+-----------\n");
  for (uint32_t k : {25u, 50u, 100u}) {
    for (double alpha : {1.00, 0.90}) {
      const uint64_t m = static_cast<uint64_t>(
          std::ceil(static_cast<double>(n_sim) / (alpha * k)));
      const double analytic = ExpectedSpareFraction(n_sim, m, k);
      const double simulated = SimulateFraction(n_sim, m, k, 42 + k);
      std::printf("%4u | %7.0f%% | %9.4f%% | %9.4f%%\n", k, alpha * 100,
                  100 * analytic, 100 * simulated);

      char workload[48];
      std::snprintf(workload, sizeof(workload), "k=%u,alpha=%.2f", k, alpha);
      prefixfilter::json::Value metrics =
          prefixfilter::json::Value::MakeObject();
      metrics.Set("spare_fraction_analytic", analytic);
      metrics.Set("spare_fraction_simulated", simulated);
      runner.Add("PF-model", workload, std::move(metrics));
    }
  }
  if (!runner.WriteJsonIfRequested()) return 1;
  return 0;
}
