// Quickstart: the prefix filter in five minutes.
//
//   build/examples/quickstart
//
// Creates a prefix filter for one million keys, inserts half a million,
// queries present and absent keys, and prints the space/accuracy numbers
// that motivate the data structure.
#include <cstdint>
#include <cstdio>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/util/random.h"

int main() {
  using prefixfilter::PrefixFilter;
  using prefixfilter::SpareTcTraits;

  // A filter for up to 1M keys.  The template parameter picks the spare
  // (the small second-level filter); PF[TC] is the paper's fastest-building
  // configuration.
  const uint64_t capacity = 1'000'000;
  PrefixFilter<SpareTcTraits> filter(capacity);

  // Insert 950k random keys (95% load).  Insert returns false only if the
  // filter failed (probability ~ 200*pi*k/n — negligible at this size).
  const auto keys = prefixfilter::RandomKeys(capacity * 95 / 100, /*seed=*/1);
  for (uint64_t key : keys) {
    if (!filter.Insert(key)) {
      std::fprintf(stderr, "filter failed (should be ~impossible)\n");
      return 1;
    }
  }

  // Inserted keys are always found: a filter has no false negatives.
  uint64_t found = 0;
  for (uint64_t key : keys) found += filter.Contains(key);
  std::printf("positive queries answered yes: %llu / %zu\n",
              static_cast<unsigned long long>(found), keys.size());

  // Fresh random keys are (almost) never found: the false positive rate is
  // ~0.38% at this configuration.
  const auto absent = prefixfilter::RandomKeys(1'000'000, /*seed=*/2);
  uint64_t false_positives = 0;
  for (uint64_t key : absent) false_positives += filter.Contains(key);
  std::printf("false positives: %llu / %zu (%.3f%%; bound %.3f%%)\n",
              static_cast<unsigned long long>(false_positives), absent.size(),
              100.0 * false_positives / absent.size(),
              100.0 * filter.FprBound(0.005));

  // The whole point: ~11.6 bits/key instead of 64+ for an exact set.
  std::printf("space: %.2f bits per key (capacity %llu keys, %zu KiB)\n",
              8.0 * filter.SpaceBytes() / capacity,
              static_cast<unsigned long long>(capacity),
              filter.SpaceBytes() / 1024);

  // Operational detail from the paper: only a small fraction of operations
  // ever touch the second level (one cache miss for everything else).
  std::printf("insertions that touched the spare: %.2f%%\n",
              100.0 * filter.stats().SpareInsertFraction());
  return 0;
}
