// pf_stat: scrape and pretty-print a membership server's telemetry.
//
//   build/example_pf_stat --connect=HOST:PORT          one snapshot
//   build/example_pf_stat --connect=HOST:PORT --diff   two scrapes one
//       --interval apart, printed as interval rates/percentiles
//   build/example_pf_stat --connect=HOST:PORT --watch  scrape every
//       --interval seconds until interrupted, printing interval diffs
//
//   build/example_pf_stat --connect=HOST:PORT --traces  fetch the server's
//       retained request traces and print each span timeline
//
// Speaks the STATS v2 wire request (src/net/protocol.h): one round trip
// returns the service counters plus the server's whole metrics-registry
// snapshot.  Against a pre-v2 server the same request degrades to the v1
// payload and pf_stat prints the service counters alone.  --traces uses the
// TRACES opcode; a pre-tracing server reads as "no traces retained".
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/net/membership_client.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

namespace net = prefixfilter::net;
namespace obs = prefixfilter::obs;

std::string LabelSuffix(const obs::MetricSample& s) {
  if (s.labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < s.labels.size(); ++i) {
    if (i != 0) out += ",";
    out += s.labels[i].first + "=" + s.labels[i].second;
  }
  out += "}";
  return out;
}

// cur - prev for cumulative histogram snapshots: interval percentiles come
// from the bucket-wise difference (both operands are monotone in time, so
// the difference is a valid histogram of the interval's samples).
obs::HistogramSnapshot DiffHist(const obs::HistogramSnapshot& cur,
                                const obs::HistogramSnapshot& prev) {
  obs::HistogramSnapshot d;
  size_t pi = 0;
  for (const auto& [index, count] : cur.buckets) {
    uint64_t base = 0;
    while (pi < prev.buckets.size() && prev.buckets[pi].first < index) ++pi;
    if (pi < prev.buckets.size() && prev.buckets[pi].first == index) {
      base = prev.buckets[pi].second;
    }
    if (count > base) d.buckets.emplace_back(index, count - base);
  }
  for (const auto& [index, count] : d.buckets) {
    d.count += count;
    (void)index;
  }
  d.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  if (!d.buckets.empty()) {
    d.min = obs::LatencyHistogram::BucketLowerBound(d.buckets.front().first);
    const uint32_t last = d.buckets.back().first;
    d.max = obs::LatencyHistogram::BucketLowerBound(last) +
            obs::LatencyHistogram::BucketWidth(last) - 1;
  }
  return d;
}

void PrintHistRow(const std::string& name, const obs::HistogramSnapshot& h) {
  if (h.count == 0) {
    std::printf("  %-44s (no samples)\n", name.c_str());
    return;
  }
  std::printf("  %-44s n=%-10" PRIu64
              " mean=%-10.0f p50=%-10.0f p90=%-10.0f p99=%-10.0f "
              "p999=%-10.0f max=%" PRIu64 "\n",
              name.c_str(), h.count, h.Mean(), h.Percentile(0.50),
              h.Percentile(0.90), h.Percentile(0.99), h.Percentile(0.999),
              h.max);
}

void PrintServiceSummary(const net::WireStats& w) {
  std::printf("service: %s  capacity=%" PRIu64 "  shards=%zu\n",
              w.filter_name.c_str(), w.capacity, w.shards.size());
  std::printf("  inserted=%" PRIu64 " (in %" PRIu64 " batches, %" PRIu64
              " failures)  queried=%" PRIu64 " (in %" PRIu64 " batches)\n",
              w.keys_inserted, w.insert_batches, w.insert_failures,
              w.keys_queried, w.query_batches);
  const uint64_t looks = w.front_cache_hits + w.front_cache_misses;
  if (looks != 0) {
    std::printf("  front-cache: %" PRIu64 " hits / %" PRIu64
                " misses (%.1f%% hit rate)\n",
                w.front_cache_hits, w.front_cache_misses,
                100.0 * static_cast<double>(w.front_cache_hits) /
                    static_cast<double>(looks));
  }
}

// Prints one scrape; `prev` (may be null) turns counters into interval
// deltas and histograms into interval distributions.
void PrintMetrics(const std::vector<obs::MetricSample>& cur,
                  const std::vector<obs::MetricSample>* prev,
                  double interval_s) {
  if (cur.empty()) {
    std::printf("metrics: (empty — server predates STATS v2 or was built "
                "with PF_OBS=OFF)\n");
    return;
  }
  std::printf("metrics (%zu series%s):\n", cur.size(),
              prev != nullptr ? ", interval values" : "");
  for (const obs::MetricSample& s : cur) {
    const std::string name = s.name + LabelSuffix(s);
    const obs::MetricSample* was =
        prev != nullptr
            ? obs::FindSample(*prev, s.name,
                              s.labels.empty() ? "" : s.labels[0].first,
                              s.labels.empty() ? "" : s.labels[0].second)
            : nullptr;
    switch (s.kind) {
      case obs::MetricKind::kCounter: {
        if (was != nullptr) {
          const int64_t delta = s.value - was->value;
          std::printf("  %-44s %" PRId64 "  (+%.0f/s)\n", name.c_str(),
                      s.value,
                      interval_s > 0 ? static_cast<double>(delta) / interval_s
                                     : 0.0);
        } else {
          std::printf("  %-44s %" PRId64 "\n", name.c_str(), s.value);
        }
        break;
      }
      case obs::MetricKind::kGauge:
        std::printf("  %-44s %" PRId64 " (gauge)\n", name.c_str(), s.value);
        break;
      case obs::MetricKind::kHistogram: {
        if (was != nullptr) {
          PrintHistRow(name, DiffHist(s.hist, was->hist));
        } else {
          PrintHistRow(name, s.hist);
        }
        break;
      }
    }
  }
}

// One trace as an indented span timeline, offsets relative to the trace
// start so a reader sees where the request's time actually went.
void PrintTrace(const obs::Trace& t) {
  const double total_us =
      static_cast<double>(t.end_ns - t.start_ns) / 1000.0;
  std::printf("  trace %016" PRIx64 "  op=%u loop=%u conn=%" PRIu64
              " keys=%u frames=%u  [%s%s]  total=%.1fus\n",
              t.trace_id, t.opcode, t.loop, t.conn_id, t.key_count, t.frames,
              t.sampled() ? "sampled" : "", t.slow() ? " slow" : "",
              total_us);
  if (t.spans_dropped != 0) {
    std::printf("    (%u spans dropped)\n", t.spans_dropped);
  }
  for (uint32_t i = 0; i < t.span_count && i < obs::kMaxTraceSpans; ++i) {
    const obs::TraceSpan& s = t.spans[i];
    const double offset_us =
        s.start_ns >= t.start_ns
            ? static_cast<double>(s.start_ns - t.start_ns) / 1000.0
            : 0.0;
    const double dur_us = static_cast<double>(s.end_ns - s.start_ns) / 1000.0;
    std::printf("    %-12s +%-10.1f %10.1fus",
                obs::TraceStageName(static_cast<obs::TraceStage>(s.stage)),
                offset_us, dur_us);
    switch (static_cast<obs::TraceStage>(s.stage)) {
      case obs::TraceStage::kMerge:
        std::printf("  frames=%" PRIu64, s.detail);
        break;
      case obs::TraceStage::kShardProbe:
        std::printf("  shard=%" PRIu64 " keys=%" PRIu64, s.detail >> 32,
                    s.detail & 0xffffffffu);
        break;
      default:
        break;
    }
    std::printf("\n");
  }
}

int PrintTraces(net::MembershipClient& client) {
  std::vector<obs::Trace> traces;
  if (!client.Traces(&traces)) {
    std::fprintf(stderr, "TRACES failed: %s\n", client.error().c_str());
    return 1;
  }
  if (traces.empty()) {
    std::printf("traces: none retained (start the server with "
                "--trace-sample=RATE and/or --trace-slow-ms=MS, or the "
                "server predates tracing)\n");
    return 0;
  }
  std::printf("traces: %zu retained (slow captures first)\n", traces.size());
  for (const obs::Trace& t : traces) PrintTrace(t);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool watch = false;
  bool diff = false;
  bool traces_mode = false;
  double interval_s = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string target = arg.substr(10);
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants HOST:PORT\n");
        return 2;
      }
      host = target.substr(0, colon);
      port = static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
    } else if (arg == "--watch") {
      watch = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--traces") {
      traces_mode = true;
    } else if (arg.rfind("--interval=", 0) == 0) {
      interval_s = std::atof(arg.c_str() + 11);
      if (interval_s <= 0) interval_s = 1.0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: example_pf_stat --connect=HOST:PORT "
                  "[--diff|--watch|--traces] [--interval=SECONDS]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "missing --connect=HOST:PORT\n");
    return 2;
  }

  net::ClientOptions options;
  options.host = host;
  options.port = port;
  net::MembershipClient client(options);

  if (traces_mode) return PrintTraces(client);

  net::WireStats scrape;
  if (!client.StatsV2(&scrape)) {
    std::fprintf(stderr, "scrape failed: %s\n", client.error().c_str());
    return 1;
  }
  PrintServiceSummary(scrape);
  if (!watch && !diff) {
    PrintMetrics(scrape.metrics, nullptr, 0);
    return 0;
  }

  // --diff is one iteration of --watch.
  net::WireStats prev = std::move(scrape);
  do {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_s));
    net::WireStats cur;
    if (!client.StatsV2(&cur)) {
      std::fprintf(stderr, "scrape failed: %s\n", client.error().c_str());
      return 1;
    }
    std::printf("--- +%.1fs: +%" PRIu64 " keys queried, +%" PRIu64
                " keys inserted ---\n",
                interval_s, cur.keys_queried - prev.keys_queried,
                cur.keys_inserted - prev.keys_inserted);
    PrintMetrics(cur.metrics, &prev.metrics, interval_s);
    prev = std::move(cur);
  } while (watch);
  return 0;
}
