// A tour of every filter in the library through the uniform AnyFilter
// interface: builds each configuration on the same dataset and prints a
// one-line profile (space, error rate, build speed) — a miniature of the
// paper's evaluation for choosing a filter in practice.
//
//   build/examples/filter_tour [num_keys]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/core/filter_factory.h"
#include "src/filters/xor.h"
#include "src/util/random.h"

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 500'000;
  const auto keys = prefixfilter::RandomKeys(n, 3);
  const auto probes = prefixfilter::RandomKeys(n, 4);

  std::printf("filter tour over %llu keys\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-14s | %9s | %9s | %11s | %s\n", "filter", "bits/key",
              "error(%)", "build Mops", "notes");
  std::printf("---------------+-----------+-----------+-------------+----------------\n");

  for (const auto& name : prefixfilter::KnownFilterNames()) {
    auto filter = prefixfilter::MakeFilter(name, n, /*seed=*/5);
    if (!filter) continue;

    const auto start = std::chrono::steady_clock::now();
    uint64_t failures = 0;
    for (uint64_t k : keys) failures += !filter->Insert(k);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    uint64_t fp = 0;
    for (uint64_t k : probes) fp += filter->Contains(k);

    std::printf("%-14s | %9.2f | %9.4f | %11.1f | %s\n", filter->Name().c_str(),
                8.0 * filter->SpaceBytes() / static_cast<double>(n),
                100.0 * static_cast<double>(fp) / static_cast<double>(n),
                static_cast<double>(n) / secs / 1e6,
                failures ? "insert failures!" : "");
  }

  // The static comparison point: an xor filter needs the whole key set up
  // front (no incremental inserts), in exchange for ~9.9 bits/key at 0.39%.
  {
    const auto start = std::chrono::steady_clock::now();
    prefixfilter::XorFilter8 xor8(keys, /*seed=*/5);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    uint64_t fp = 0;
    for (uint64_t k : probes) fp += xor8.Contains(k);
    std::printf("%-14s | %9.2f | %9.4f | %11.1f | %s\n", xor8.Name().c_str(),
                8.0 * xor8.SpaceBytes() / static_cast<double>(n),
                100.0 * static_cast<double>(fp) / static_cast<double>(n),
                static_cast<double>(n) / secs / 1e6,
                "static (bulk build)");
  }

  std::printf(
      "\nRules of thumb (paper §8): need raw speed and can spend bits ->\n"
      "blocked Bloom; need space efficiency with fast queries AND fast\n"
      "builds, no deletions -> prefix filter; need deletions -> cuckoo (slow\n"
      "builds) or TC (slower queries).\n");
  return 0;
}
