// Crawler-style deduplication: an incremental filter as a "have I seen this
// URL before?" gate.
//
//   build/examples/url_dedup
//
// A web crawler must not re-fetch pages.  An exact seen-set of string URLs
// costs tens of bytes per URL; a filter costs ~1.5 bytes at a 0.4% error
// rate (errors here mean "skipped a never-visited URL", usually acceptable).
// This example synthesizes a crawl stream with a realistic revisit pattern
// and measures what the filter saves and what it costs.
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/util/hash.h"
#include "src/util/random.h"

namespace {

// Synthesizes a URL for page `id` of `site`.
std::string MakeUrl(uint64_t site, uint64_t page) {
  return "https://site-" + std::to_string(site) + ".example.com/page/" +
         std::to_string(page);
}

}  // namespace

int main() {
  using prefixfilter::PrefixFilter;
  using prefixfilter::SpareCf12Traits;

  constexpr uint64_t kDistinctUrls = 2'000'000;
  constexpr uint64_t kCrawlEvents = 5'000'000;  // with many revisits

  PrefixFilter<SpareCf12Traits> seen(kDistinctUrls);
  std::unordered_set<std::string> exact_seen;  // ground truth for accounting
  exact_seen.reserve(kDistinctUrls);

  prefixfilter::Xoshiro256 rng(17);
  uint64_t fetches = 0;          // filter said "new": crawl it
  uint64_t skipped_revisits = 0; // filter said "seen" and it was
  uint64_t false_skips = 0;      // filter said "seen" but it was new (FP)

  for (uint64_t event = 0; event < kCrawlEvents; ++event) {
    // Zipf-ish revisit pattern: half the events hit a small hot set.
    const bool hot = (rng.Next() & 1) != 0;
    const uint64_t site = hot ? rng.Below(50) : rng.Below(10'000);
    const uint64_t page = hot ? rng.Below(1'000) : rng.Below(2'000);
    const std::string url = MakeUrl(site, page);
    const uint64_t key =
        prefixfilter::HashBytes(url.data(), url.size(), /*seed=*/0xc2a12lu);

    if (seen.Contains(key)) {
      if (exact_seen.count(url)) {
        ++skipped_revisits;
      } else {
        ++false_skips;  // the filter's false positive: a lost page
        exact_seen.insert(url);
      }
      continue;
    }
    seen.Insert(key);
    exact_seen.insert(url);
    ++fetches;
  }

  std::printf("crawl events:        %llu\n",
              static_cast<unsigned long long>(kCrawlEvents));
  std::printf("fetches performed:   %llu\n",
              static_cast<unsigned long long>(fetches));
  std::printf("revisits skipped:    %llu\n",
              static_cast<unsigned long long>(skipped_revisits));
  std::printf("pages lost to FPs:   %llu (%.4f%% of new URLs)\n",
              static_cast<unsigned long long>(false_skips),
              100.0 * false_skips / (fetches + false_skips));

  const double filter_mib = seen.SpaceBytes() / (1024.0 * 1024.0);
  // Estimate the exact set's footprint: string payload + hash-set overhead.
  size_t exact_bytes = 0;
  for (const auto& url : exact_seen) exact_bytes += url.size() + 48;
  std::printf("filter memory:       %.1f MiB (%.2f bits/URL)\n", filter_mib,
              8.0 * seen.SpaceBytes() / exact_seen.size());
  std::printf("exact-set memory:    %.1f MiB (%.0fx larger)\n",
              exact_bytes / (1024.0 * 1024.0),
              exact_bytes / static_cast<double>(seen.SpaceBytes()));
  std::printf(
      "\nThe trade: ~%.4f%% of genuinely new pages are never crawled, in\n"
      "exchange for keeping the seen-set in a sliver of RAM.\n",
      100.0 * false_skips / (fetches + false_skips));
  return 0;
}
