// Membership server: the sharded filter service, served over TCP.
//
// Two modes:
//
//   build/example_membership_server
//     Self-contained loopback demo: starts a MembershipServer on an
//     ephemeral port, drives it with MembershipClient threads (register
//     users, check memberships, STATS, snapshot/restore), verifies the
//     restored service answers identically, and exits.
//
//   build/example_membership_server --serve [--port=P] [--filter=NAME]
//       [--capacity=N] [--threads=T] [--loops=N] [--front-cache=SLOTS]
//       [--poll] [--http-port=P] [--trace-sample=RATE] [--trace-slow-ms=MS]
//     Long-running server for external clients (bench_net_loadgen, the CI
//     loopback smoke leg).  Prints "listening on 127.0.0.1:<port>" once
//     ready and serves until SIGINT/SIGTERM.  --http-port additionally
//     serves GET /metrics (Prometheus text format) and GET /traces
//     (request-trace JSON) on that port (0 = kernel-assigned; the chosen
//     port is printed).  --trace-sample head-samples that fraction of
//     requests into the trace rings; --trace-slow-ms tail-captures every
//     request slower than the threshold.
//
// See README "Network service" for the wire protocol.
#include <algorithm>
#include <csignal>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/membership_client.h"
#include "src/net/membership_server.h"
#include "src/service/filter_service.h"
#include "src/util/random.h"

namespace {

using prefixfilter::FilterService;
using prefixfilter::FilterServiceOptions;
using prefixfilter::ShardedFilter;
using prefixfilter::ShardedFilterOptions;
namespace net = prefixfilter::net;

std::shared_ptr<FilterService> MakeService(const std::string& filter_name,
                                           uint64_t capacity,
                                           uint32_t service_threads,
                                           size_t front_cache_slots) {
  FilterServiceOptions options;
  options.num_threads = service_threads;
  options.front_cache_slots = front_cache_slots;
  // Shared name-to-service bootstrap (src/service/filter_service.h).
  return prefixfilter::MakeFilterService(filter_name, capacity, options);
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Serve(const std::string& filter_name, uint64_t capacity, uint16_t port,
          uint32_t service_threads, size_t front_cache_slots, bool use_epoll,
          uint32_t loops, bool enable_http, uint16_t http_port,
          double trace_sample, double trace_slow_ms) {
  auto service =
      MakeService(filter_name, capacity, service_threads, front_cache_slots);
  if (service == nullptr) {
    std::fprintf(stderr, "unknown filter: %s\n", filter_name.c_str());
    return 2;
  }
  net::ServerOptions options;
  options.port = port;
  options.use_epoll = use_epoll;
  options.num_loops = loops;
  options.enable_http = enable_http;
  options.http_port = http_port;
  options.trace_sample_rate = trace_sample;
  options.trace_slow_ns =
      trace_slow_ms > 0 ? static_cast<uint64_t>(trace_slow_ms * 1e6) : 0;
  net::MembershipServer server(service, options);
  if (!server.Start()) {
    std::fprintf(stderr, "server start failed: %s\n", server.error().c_str());
    return 1;
  }
  std::printf("membership_server: %s (capacity %" PRIu64
              ", %u shards, %s, %u loop%s%s) listening on 127.0.0.1:%u\n",
              filter_name.c_str(), capacity, service->filter().num_shards(),
              server.poller_name(), server.num_loops(),
              server.num_loops() == 1 ? "" : "s",
              server.reuseport_active() ? ", reuseport" : "",
              server.port());
  if (enable_http) {
    std::printf("membership_server: metrics on "
                "http://127.0.0.1:%u/metrics, traces on "
                "http://127.0.0.1:%u/traces\n",
                server.http_port(), server.http_port());
  }
  if (trace_sample > 0 || trace_slow_ms > 0) {
    std::printf("membership_server: tracing %.4f%% of requests, slow "
                "threshold %.1f ms\n",
                trace_sample * 100.0, trace_slow_ms);
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const net::ServerStats stats = server.stats();
  server.Stop();
  std::printf("membership_server: served %" PRIu64 " frames (%" PRIu64
              " inserts, %" PRIu64 " queries, %" PRIu64
              " merged) on %" PRIu64 " connections; %" PRIu64
              " protocol errors, %" PRIu64 " drops\n",
              stats.frames_received, stats.inserts_served,
              stats.queries_served, stats.query_frames_merged,
              stats.connections_accepted, stats.protocol_errors,
              stats.connections_dropped);
  return 0;
}

int Demo() {
  // A service sized for 4M users, partitioned over 16 prefix-filter shards,
  // fronted by a real TCP server on an ephemeral loopback port.
  const uint64_t capacity = 4'000'000;
  auto service = MakeService("SHARD16[PF[TC]]", capacity,
                             /*service_threads=*/0, /*front_cache_slots=*/0);
  net::MembershipServer server(service);
  if (!server.Start()) {
    std::fprintf(stderr, "server start failed: %s\n", server.error().c_str());
    return 1;
  }
  std::printf("server: %s on 127.0.0.1:%u\n", server.poller_name(),
              server.port());

  net::ClientOptions client_options;
  client_options.port = server.port();

  // Four registration clients, each signing up 500k users in 8k batches
  // over its own connection.
  const auto users = prefixfilter::RandomKeys(2'000'000, /*seed=*/11);
  constexpr int kClients = 4;
  constexpr size_t kBatch = 8192;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      net::MembershipClient client(client_options);
      const size_t begin = users.size() * c / kClients;
      const size_t end = users.size() * (c + 1) / kClients;
      for (size_t base = begin; base < end; base += kBatch) {
        const size_t count = std::min(kBatch, end - base);
        uint64_t failures = 0;
        if (!client.InsertBatch(users.data() + base, count, &failures) ||
            failures != 0) {
          std::fprintf(stderr, "client %d: insert failures\n", c);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // A membership check: half known users, half strangers, pipelined.
  std::vector<uint64_t> probe = prefixfilter::RandomKeys(100'000, 12);
  for (size_t i = 0; i < probe.size(); i += 2) {
    probe[i] = users[i * 17 % users.size()];
  }
  net::MembershipClient client(client_options);
  std::vector<uint8_t> answers;
  if (!client.QueryPipelined(probe.data(), probe.size(), &answers)) {
    std::fprintf(stderr, "query failed: %s\n", client.error().c_str());
    return 1;
  }
  uint64_t members = 0;
  for (uint8_t a : answers) members += a;
  std::printf("membership check: %" PRIu64 " / %zu reported present "
              "(~half are registered users)\n",
              members, probe.size());

  // Per-shard accounting over the wire: the hash partition keeps shards
  // balanced, and the shard counters prove the batches rode BatchRouter.
  net::WireStats stats;
  if (!client.Stats(&stats)) {
    std::fprintf(stderr, "STATS failed: %s\n", client.error().c_str());
    return 1;
  }
  uint64_t min_load = ~uint64_t{0}, max_load = 0;
  for (const auto& shard : stats.shards) {
    min_load = std::min(min_load, shard.inserts);
    max_load = std::max(max_load, shard.inserts);
  }
  std::printf("service: %" PRIu64 " keys in %" PRIu64 " insert batches, "
              "%" PRIu64 " queried over %zu shards; shard load %" PRIu64
              "..%" PRIu64 " (%.1f%% spread)\n",
              stats.keys_inserted, stats.insert_batches, stats.keys_queried,
              stats.shards.size(), min_load, max_load,
              100.0 * static_cast<double>(max_load - min_load) /
                  static_cast<double>(max_load));

  // Snapshot over the wire, "restart", verify: the restored service answers
  // identically — the build-once/load-later lifecycle of §1, lifted to the
  // networked service.
  std::vector<uint8_t> snapshot;
  if (!client.Snapshot(&snapshot)) {
    std::fprintf(stderr, "snapshot failed: %s\n", client.error().c_str());
    return 1;
  }
  auto restored = FilterService::Restore(snapshot.data(), snapshot.size());
  if (restored == nullptr) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  FilterService revived(restored, FilterServiceOptions{});
  const auto answers2 = revived.QueryBatch(probe).get();
  uint64_t disagreements = 0;
  for (size_t i = 0; i < answers.size(); ++i) {
    disagreements += answers[i] != answers2[i];
  }
  std::printf("snapshot: %zu bytes over the wire; restored service "
              "disagreements: %" PRIu64 " (must be 0)\n",
              snapshot.size(), disagreements);
  return disagreements == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  bool use_epoll = true;
  uint16_t port = 0;
  std::string filter = "SHARD16[PF[TC]]";
  uint64_t capacity = 4'000'000;
  uint32_t service_threads = 0;
  uint32_t loops = 1;
  size_t front_cache = 0;
  bool enable_http = false;
  uint16_t http_port = 0;
  double trace_sample = 0.0;
  double trace_slow_ms = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(9);
    } else if (arg.rfind("--capacity=", 0) == 0) {
      capacity = std::strtoull(arg.c_str() + 11, nullptr, 0);
    } else if (arg.rfind("--threads=", 0) == 0) {
      service_threads = static_cast<uint32_t>(std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--loops=", 0) == 0) {
      loops = static_cast<uint32_t>(std::max(1, std::atoi(arg.c_str() + 8)));
    } else if (arg.rfind("--front-cache=", 0) == 0) {
      front_cache = static_cast<size_t>(std::atoll(arg.c_str() + 14));
    } else if (arg.rfind("--http-port=", 0) == 0) {
      enable_http = true;
      http_port = static_cast<uint16_t>(std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--trace-sample=", 0) == 0) {
      trace_sample = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--trace-slow-ms=", 0) == 0) {
      trace_slow_ms = std::atof(arg.c_str() + 16);
    } else if (arg == "--poll") {
      use_epoll = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: example_membership_server [--serve] [--port=P]\n"
          "         [--filter=NAME] [--capacity=N] [--threads=T]\n"
          "         [--loops=N] [--front-cache=SLOTS] [--poll]\n"
          "         [--http-port=P] [--trace-sample=RATE]\n"
          "         [--trace-slow-ms=MS]\n"
          "Without --serve, runs the self-contained loopback demo.\n"
          "--loops=N serves on N SO_REUSEPORT event loops; --threads=T\n"
          "adds T filter worker threads (queries then run off-loop).\n"
          "--trace-sample=RATE head-samples that fraction of requests into\n"
          "GET /traces; --trace-slow-ms=MS additionally captures every\n"
          "request slower than MS milliseconds.\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (serve) {
    return Serve(filter, capacity, port, service_threads, front_cache,
                 use_epoll, loops, enable_http, http_port, trace_sample,
                 trace_slow_ms);
  }
  return Demo();
}
