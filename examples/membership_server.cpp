// Membership server: the sharded filter service end to end.
//
//   build/example_membership_server
//
// Models the service deployment the ROADMAP targets: a shared FilterService
// (16 prefix-filter shards, 4 worker threads) serving several client threads
// that register users and check memberships in batches, then a
// snapshot/restart cycle — the build-once/load-later lifecycle of §1, lifted
// from a single filter to the whole sharded service.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/service/filter_service.h"
#include "src/util/random.h"

int main() {
  using prefixfilter::FilterService;
  using prefixfilter::FilterServiceOptions;
  using prefixfilter::ShardedFilter;
  using prefixfilter::ShardedFilterOptions;

  // A service sized for 4M users, partitioned over 16 prefix-filter shards.
  const uint64_t capacity = 4'000'000;
  ShardedFilterOptions sharded_options;
  sharded_options.num_shards = 16;
  sharded_options.backend = "PF[TC]";
  auto sharded = ShardedFilter::Make(capacity, sharded_options);
  if (sharded == nullptr) {
    std::fprintf(stderr, "failed to build the sharded filter\n");
    return 1;
  }
  FilterServiceOptions service_options;
  service_options.num_threads = 4;
  FilterService service(std::shared_ptr<ShardedFilter>(sharded.release()),
                        service_options);

  // Four registration clients, each signing up 500k users in 8k batches.
  const auto users = prefixfilter::RandomKeys(2'000'000, /*seed=*/11);
  constexpr int kClients = 4;
  constexpr size_t kBatch = 8192;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      const size_t begin = users.size() * c / kClients;
      const size_t end = users.size() * (c + 1) / kClients;
      for (size_t base = begin; base < end; base += kBatch) {
        const size_t count = std::min(kBatch, end - base);
        auto failures = service.InsertBatch(std::vector<uint64_t>(
            users.begin() + base, users.begin() + base + count));
        if (failures.get() != 0) {
          std::fprintf(stderr, "client %d: insert failures\n", c);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // A membership check: half known users, half strangers.
  std::vector<uint64_t> probe = prefixfilter::RandomKeys(100'000, 12);
  for (size_t i = 0; i < probe.size(); i += 2) probe[i] = users[i * 17 % users.size()];
  const auto answers = service.QueryBatch(probe).get();
  uint64_t members = 0;
  for (uint8_t a : answers) members += a;
  std::printf("membership check: %" PRIu64 " / %zu reported present "
              "(~half are registered users)\n",
              members, probe.size());

  // Per-shard accounting: the hash partition keeps shards balanced.
  const auto& filter = service.filter();
  uint64_t min_load = ~uint64_t{0}, max_load = 0;
  for (uint32_t s = 0; s < filter.num_shards(); ++s) {
    const auto stats = filter.shard_stats(s);
    min_load = std::min(min_load, stats.inserts);
    max_load = std::max(max_load, stats.inserts);
  }
  const auto service_stats = service.stats();
  std::printf("service: %" PRIu64 " keys in %" PRIu64 " insert batches, "
              "%" PRIu64 " queried; shard load %" PRIu64 "..%" PRIu64
              " (%.1f%% spread), %.2f bits/key\n",
              service_stats.keys_inserted, service_stats.insert_batches,
              service_stats.keys_queried, min_load, max_load,
              100.0 * static_cast<double>(max_load - min_load) /
                  static_cast<double>(max_load),
              8.0 * static_cast<double>(filter.SpaceBytes()) /
                  static_cast<double>(service_stats.keys_inserted));

  // Snapshot, "restart", verify: the restored service answers identically.
  std::vector<uint8_t> snapshot;
  if (!service.Snapshot(&snapshot)) {
    std::fprintf(stderr, "snapshot failed\n");
    return 1;
  }
  auto restored = FilterService::Restore(snapshot.data(), snapshot.size());
  if (restored == nullptr) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  FilterService revived(restored, FilterServiceOptions{});
  const auto answers2 = revived.QueryBatch(probe).get();
  uint64_t disagreements = 0;
  for (size_t i = 0; i < answers.size(); ++i) {
    disagreements += answers[i] != answers2[i];
  }
  std::printf("snapshot: %zu bytes; restored service disagreements: %" PRIu64
              " (must be 0)\n",
              snapshot.size(), disagreements);
  return disagreements == 0 ? 0 : 1;
}
