// LSM example: the paper's motivating application (§1).
//
//   build/examples/lsm_store [filter-name]
//
// Builds a small log-structured table whose immutable runs are each guarded
// by an incremental filter, then replays a read-heavy workload with many
// misses and reports how many "disk" accesses the filters saved, for the
// chosen filter (default PF[TC]) and for a filterless baseline.
#include <cstdio>
#include <string>

#include "src/lsm/table.h"
#include "src/util/random.h"

namespace lsm = prefixfilter::lsm;

namespace {

struct Outcome {
  uint64_t futile;
  uint64_t accesses;
  size_t filter_bytes;
};

Outcome RunWorkload(const std::string& filter_name) {
  lsm::TableOptions options;
  options.memtable_entries = 50'000;
  options.filter_name = filter_name;
  lsm::Table table(options);

  // Write phase: 600k upserts -> 12 immutable runs, each with a filter
  // built exactly once (the paper's "build time" workload).
  prefixfilter::Xoshiro256 rng(7);
  std::vector<uint64_t> written;
  written.reserve(600'000);
  for (int i = 0; i < 600'000; ++i) {
    const uint64_t key = rng.Next();
    table.Put(key, key ^ 0xdecafu);
    written.push_back(key);
  }
  table.Flush();

  // Read phase: 80% misses (fresh keys), 20% hits — the regime where
  // filters pay for themselves by suppressing futile run probes.
  prefixfilter::Xoshiro256 read_rng(8);
  uint64_t hits = 0;
  for (int i = 0; i < 200'000; ++i) {
    if (read_rng.Below(100) < 20) {
      const uint64_t key = written[read_rng.Below(written.size())];
      hits += table.Get(key).has_value();
    } else {
      table.Get(read_rng.Next());
    }
  }
  std::printf("  [%s] runs=%zu, point-lookup hits=%llu\n",
              filter_name.empty() ? "no filter" : filter_name.c_str(),
              table.NumRuns(), static_cast<unsigned long long>(hits));
  return {table.FutileAccesses(), table.DataAccesses(), table.FilterBytes()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string filter_name = argc > 1 ? argv[1] : "PF[TC]";
  std::printf("LSM table with per-run filters (paper §1's use case)\n\n");

  const Outcome with = RunWorkload(filter_name);
  const Outcome without = RunWorkload("");

  std::printf("\n%-22s %15s %15s\n", "", "with filter", "no filter");
  std::printf("%-22s %15llu %15llu\n", "data accesses",
              static_cast<unsigned long long>(with.accesses),
              static_cast<unsigned long long>(without.accesses));
  std::printf("%-22s %15llu %15llu\n", "futile data accesses",
              static_cast<unsigned long long>(with.futile),
              static_cast<unsigned long long>(without.futile));
  std::printf("%-22s %12.1f KiB %12.1f KiB\n", "filter memory",
              with.filter_bytes / 1024.0, without.filter_bytes / 1024.0);
  if (with.futile > 0) {
    std::printf("\nfutile-access reduction: %.0fx\n",
                static_cast<double>(without.futile) /
                    static_cast<double>(with.futile));
  } else {
    std::printf("\nfutile-access reduction: all futile accesses eliminated\n");
  }
  std::printf(
      "\nTry other filters: %s 'CF-12-Flex' | 'BBF-Flex' | 'PF[CF12-Flex]'\n",
      argv[0]);
  return 0;
}
