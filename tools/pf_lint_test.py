#!/usr/bin/env python3
"""Unit tests for pf_lint.py: every rule must fire on a bad fixture and stay
quiet on the equivalent good fixture, so a refactor of the linter cannot
silently disable a rule.  Run via ctest (`pf_lint_test`) or directly:
    python3 -m unittest discover -s tools -p pf_lint_test.py
"""

import shutil
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import pf_lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


class FixtureRepo:
    """Materializes a throwaway repo layout from fixture files."""

    def __init__(self):
        self.root = Path(tempfile.mkdtemp(prefix="pf_lint_test_"))

    def add(self, rel, fixture):
        dest = self.root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(FIXTURES / fixture, dest)
        return dest

    def cleanup(self):
        shutil.rmtree(self.root, ignore_errors=True)


class PfLintTest(unittest.TestCase):
    def setUp(self):
        self.repo = FixtureRepo()
        self.addCleanup(self.repo.cleanup)

    def run_rules(self, rules):
        return pf_lint.run(self.repo.root, rules)

    def rules_hit(self, violations):
        return sorted({v.rule for v in violations})

    # --- obs-compile-out ----------------------------------------------------

    def test_obs_compile_out_fires_on_unguarded_update(self):
        self.repo.add("src/obs/metrics.h", "obs_bad_metrics.h")
        violations = self.run_rules(("obs-compile-out",))
        self.assertEqual(self.rules_hit(violations), ["obs-compile-out"])
        # Exactly the unguarded Add(); the guarded Record() must pass.
        self.assertEqual(len(violations), 1)
        self.assertIn("Add()", violations[0].message)

    def test_obs_compile_out_quiet_on_guarded_updates(self):
        self.repo.add("src/obs/metrics.h", "obs_good_metrics.h")
        self.assertEqual(self.run_rules(("obs-compile-out",)), [])

    def test_obs_compile_out_ignores_read_methods(self):
        # Value() reads the stripes without a guard; that is legal.
        self.repo.add("src/obs/metrics.h", "obs_good_metrics.h")
        self.assertEqual(self.run_rules(("obs-compile-out",)), [])

    # --- wire-bounds-check --------------------------------------------------

    def test_wire_bounds_check_fires_on_unchecked_read(self):
        self.repo.add("src/net/protocol.cc", "parser_bad_bounds.cc")
        violations = self.run_rules(("wire-bounds-check",))
        self.assertEqual(self.rules_hit(violations), ["wire-bounds-check"])
        self.assertEqual(len(violations), 1)

    def test_wire_bounds_check_quiet_on_checked_reads(self):
        self.repo.add("src/net/protocol.cc", "parser_good.cc")
        self.assertEqual(self.run_rules(("wire-bounds-check",)), [])

    def test_wire_bounds_check_resets_per_function(self):
        # A guard in one function must not excuse a read in the next.
        self.repo.add("src/net/protocol.cc", "parser_bad_guard_reset.cc")
        violations = self.run_rules(("wire-bounds-check",))
        self.assertEqual(len(violations), 1)

    def test_wire_bounds_check_skips_getu_helpers(self):
        # The GetU* helper definitions read without a length check by
        # design; parser_good.cc contains one.
        self.repo.add("src/net/protocol.cc", "parser_good.cc")
        self.assertEqual(self.run_rules(("wire-bounds-check",)), [])

    # --- parser-reinterpret-cast --------------------------------------------

    def test_reinterpret_cast_fires_in_parser_file(self):
        self.repo.add("src/net/protocol.cc", "parser_bad_reinterpret.cc")
        violations = self.run_rules(("parser-reinterpret-cast",))
        self.assertEqual(self.rules_hit(violations),
                         ["parser-reinterpret-cast"])

    def test_reinterpret_cast_quiet_on_memcpy_style(self):
        self.repo.add("src/net/protocol.cc", "parser_good.cc")
        self.assertEqual(self.run_rules(("parser-reinterpret-cast",)), [])

    def test_reinterpret_cast_ignores_non_parser_files(self):
        # The same cast in a SIMD kernel file is out of scope.
        self.repo.add("src/core/simd_kernel.cc", "parser_bad_reinterpret.cc")
        self.assertEqual(self.run_rules(("parser-reinterpret-cast",)), [])

    # --- steady-clock -------------------------------------------------------

    def test_steady_clock_fires_outside_obs(self):
        self.repo.add("src/service/worker.cc", "clock_bad.cc")
        violations = self.run_rules(("steady-clock",))
        self.assertEqual(self.rules_hit(violations), ["steady-clock"])

    def test_steady_clock_allows_obs(self):
        self.repo.add("src/obs/metrics.cc", "clock_bad.cc")
        self.assertEqual(self.run_rules(("steady-clock",)), [])

    def test_steady_clock_honors_suppression(self):
        self.repo.add("src/service/worker.cc", "clock_suppressed.cc")
        self.assertEqual(self.run_rules(("steady-clock",)), [])

    def test_steady_clock_ignores_comment_mentions(self):
        self.repo.add("src/service/worker.cc", "clock_comment_only.cc")
        self.assertEqual(self.run_rules(("steady-clock",)), [])

    # --- suppressions & plumbing --------------------------------------------

    def test_suppression_only_matches_its_rule(self):
        # allow(steady-clock) must not silence a reinterpret_cast hit.
        self.repo.add("src/net/protocol.cc", "parser_bad_wrong_allow.cc")
        violations = self.run_rules(("parser-reinterpret-cast",))
        self.assertEqual(self.rules_hit(violations),
                         ["parser-reinterpret-cast"])

    def test_cli_exit_codes(self):
        self.repo.add("src/service/worker.cc", "clock_bad.cc")
        self.assertEqual(
            pf_lint.main(["--root", str(self.repo.root),
                          "--rules", "steady-clock"]), 1)
        self.assertEqual(
            pf_lint.main(["--root", str(self.repo.root),
                          "--rules", "wire-bounds-check"]), 0)
        self.assertEqual(
            pf_lint.main(["--root", str(self.repo.root),
                          "--rules", "no-such-rule"]), 2)
        self.assertEqual(pf_lint.main(["--root", "/no/such/dir"]), 2)

    def test_real_repo_is_clean(self):
        # The committed tree must satisfy its own lint (same invocation as
        # the `pf_lint` ctest entry).
        repo_root = Path(__file__).resolve().parent.parent
        self.assertEqual(pf_lint.run(repo_root, pf_lint.ALL_RULES), [])


if __name__ == "__main__":
    unittest.main()
