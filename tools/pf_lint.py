#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Run as `pf_lint.py --root <repo>` (registered in ctest as `pf_lint` and run
by the CI `static-analysis` job).  Exit 0 = clean, 1 = violations (printed
one per line as `file:line: rule: message`), 2 = usage error.

Rules
-----
obs-compile-out
    Every mutation method of the src/obs instruments (Add/Set/Record/
    Observe/Increment, plus NowNanos) must compile to a no-op under
    -DPF_OBS=OFF, i.e. its body must be guarded by PF_OBS_DISABLED.  This is
    the repo's "observability is free when off" contract — a hot-path
    counter bump that survives PF_OBS=OFF is a silent perf regression.

wire-bounds-check
    In the parser files (the code that consumes untrusted wire bytes), every
    raw fixed-width read (GetU8/GetU16/GetU32/GetU64) must be preceded,
    within the same function, by a bounds check on the available length.
    ByteReader-based reads are exempt: the reader bounds-checks internally
    and fails soft (callers check r.ok()).

parser-reinterpret-cast
    No naked reinterpret_cast in the parser files.  Wire decoding goes
    through memcpy-based helpers or ByteReader; type-punning payload bytes
    directly is how alignment and aliasing bugs get in.

steady-clock
    std::chrono::steady_clock / high_resolution_clock reads in src/ belong
    to src/obs (obs::NowNanos compiles the clock read out under PF_OBS=OFF).
    A direct clock call anywhere else either duplicates the metrics plumbing
    or sneaks timing into a hot path; genuinely-required sites (e.g. a
    shutdown deadline that must work with observability compiled out) carry
    an inline suppression.

Suppressions: append `// pf-lint: allow(<rule>)` to the offending line or
the line directly above it.  Each suppression documents a reviewed
exception; pf_lint_test.py pins that every rule still fires on fixtures.
"""

import argparse
import re
import sys
from pathlib import Path

ALL_RULES = (
    "obs-compile-out",
    "wire-bounds-check",
    "parser-reinterpret-cast",
    "steady-clock",
)

# Files that parse untrusted bytes (wire frames, snapshots, stats blobs,
# JSON).  Keep in sync with the fuzz targets in fuzz/.
PARSER_FILES = (
    "src/net/protocol.h",
    "src/net/protocol.cc",
    "src/obs/exposition.h",
    "src/obs/exposition.cc",
    "src/util/json.h",
    "src/util/json.cc",
    "src/util/serialize.h",
    "src/core/filter_factory.cc",
)

# Instrument headers whose mutation methods must compile out.  The first is
# the anchor of the whole obs contract and must exist; the tracing headers
# are optional (a checkout predating them, or a lint-test fixture, simply
# skips them).
OBS_INSTRUMENT_HEADERS = (
    "src/obs/metrics.h",
    "src/obs/trace.h",
    "src/obs/trace_sink.h",
)

ALLOW_RE = re.compile(r"//\s*pf-lint:\s*allow\(([a-z0-9-]+)\)")

# A mutation-method definition in an instrument header (longest names first
# so AddSpan/RecordWithExemplar capture whole, not as their prefixes).
OBS_UPDATE_RE = re.compile(
    r"^\s*(?:inline\s+)?(?:void|uint64_t)\s+"
    r"(AddSpan|Add|RecordWithExemplar|Record|Set|Observe|Increment|NowNanos"
    r"|Push)\s*\("
)

# Raw unchecked fixed-width read from a byte pointer.
RAW_READ_RE = re.compile(r"\bGetU(?:8|16|32|64)\s*\(")

# A bounds check on the available input length.  Deliberately broad: any
# comparison against the local length/size vocabulary counts as the guard.
GUARD_RE = re.compile(
    r"\b(?:len|size|count|available|remaining|buffered|payload_len|n)\b"
    r"\s*(?:\(\s*\))?\s*(?:==|!=|<=|>=|<|>)"
    r"|(?:==|!=|<=|>=|<|>)\s*"
    r"\b(?:len|size|count|available|remaining|buffered|payload_len|n)\b"
    r"|\.ok\s*\(\s*\)"
)

# Start of a function definition at namespace scope (repo style: return type
# in column 0, Google indentation).  Declarations end in ';' and are skipped.
FUNC_START_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_:<>,*& ]*\(")

FUNC_NAME_RE = re.compile(r"\b((?:[A-Za-z_][A-Za-z0-9_]*::)*[A-Za-z_][A-Za-z0-9_]*)\s*\($")

STEADY_CLOCK_RE = re.compile(r"\b(?:steady_clock|high_resolution_clock)\b")

REINTERPRET_RE = re.compile(r"\breinterpret_cast\s*<")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_line_comment(line):
    """Drops a // comment, tolerating // inside string literals."""
    out = []
    in_string = None
    i = 0
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
        elif c in "\"'":
            in_string = c
        elif c == "/" and line[i + 1 : i + 2] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def suppressed(lines, index, rule):
    """True when line `index` (0-based) carries or follows an allow(rule)."""
    for probe in (index, index - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def extract_body(lines, start):
    """Returns (body_text, end_index) for the brace block opening at/after
    lines[start], or (None, start) when the signature is body-less."""
    depth = 0
    opened = False
    body = []
    i = start
    while i < len(lines):
        code = strip_line_comment(lines[i])
        if not opened and ";" in code and "{" not in code:
            return None, start  # declaration, not a definition
        for c in code:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
        body.append(lines[i])
        if opened and depth == 0:
            return "\n".join(body), i
        i += 1
    return "\n".join(body), len(lines) - 1


def check_obs_compile_out(root, violations):
    for index, rel in enumerate(OBS_INSTRUMENT_HEADERS):
        path = root / rel
        if not path.is_file():
            if index == 0:
                violations.append(
                    Violation(rel, 1, "obs-compile-out",
                              "instrument header missing"))
            continue
        lines = path.read_text().splitlines()
        i = 0
        while i < len(lines):
            m = OBS_UPDATE_RE.match(strip_line_comment(lines[i]))
            if not m:
                i += 1
                continue
            body, end = extract_body(lines, i)
            if body is not None and "PF_OBS_DISABLED" not in body:
                if not suppressed(lines, i, "obs-compile-out"):
                    violations.append(
                        Violation(rel, i + 1, "obs-compile-out",
                                  f"update method {m.group(1)}() is not "
                                  "compiled out under PF_OBS=OFF (no "
                                  "PF_OBS_DISABLED guard in its body)"))
            i = end + 1


def check_parser_file(root, rel, violations):
    path = root / rel
    if not path.is_file():
        return
    lines = path.read_text().splitlines()
    guard_seen = False
    func_name = ""
    for i, raw in enumerate(lines):
        code = strip_line_comment(raw)
        if FUNC_START_RE.match(code) and ";" not in code:
            # New function: reads must re-establish their own bounds check.
            guard_seen = False
            m = FUNC_NAME_RE.search(code.split("(")[0] + "(")
            func_name = m.group(1) if m else ""
            continue
        if GUARD_RE.search(code):
            guard_seen = True
        if REINTERPRET_RE.search(code):
            if not suppressed(lines, i, "parser-reinterpret-cast"):
                violations.append(
                    Violation(rel, i + 1, "parser-reinterpret-cast",
                              "naked reinterpret_cast in a parser file "
                              "(use memcpy helpers or ByteReader)"))
        if RAW_READ_RE.search(code) and not guard_seen:
            # The GetU*/PutU* helpers themselves read exactly sizeof(T)
            # bytes from a pointer the caller has already checked.
            if func_name.startswith(("GetU", "PutU")):
                continue
            if not suppressed(lines, i, "wire-bounds-check"):
                violations.append(
                    Violation(rel, i + 1, "wire-bounds-check",
                              "raw wire read with no preceding bounds check "
                              "in this function"))


def check_steady_clock(root, violations):
    src = root / "src"
    if not src.is_dir():
        return
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/obs/"):
            continue
        lines = path.read_text().splitlines()
        for i, raw in enumerate(lines):
            code = strip_line_comment(raw)
            if STEADY_CLOCK_RE.search(code):
                if not suppressed(lines, i, "steady-clock"):
                    violations.append(
                        Violation(rel, i + 1, "steady-clock",
                                  "direct monotonic-clock read outside "
                                  "src/obs (use obs::NowNanos, or suppress "
                                  "with a justification)"))


def run(root, rules):
    violations = []
    if "obs-compile-out" in rules:
        check_obs_compile_out(root, violations)
    if "wire-bounds-check" in rules or "parser-reinterpret-cast" in rules:
        for rel in PARSER_FILES:
            file_violations = []
            check_parser_file(root, rel, file_violations)
            violations.extend(
                v for v in file_violations if v.rule in rules)
    if "steady-clock" in rules:
        check_steady_clock(root, violations)
    return violations


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True,
                        help="repository root to lint")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated subset of rules to run")
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"pf_lint: no such directory: {root}", file=sys.stderr)
        return 2
    rules = tuple(r for r in args.rules.split(",") if r)
    unknown = set(rules) - set(ALL_RULES)
    if unknown:
        print(f"pf_lint: unknown rules: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    violations = run(root, rules)
    for v in violations:
        print(v)
    if violations:
        print(f"pf_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
