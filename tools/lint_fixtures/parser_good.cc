// Fixture: memcpy-based read helpers plus a decode function whose raw reads
// all follow a bounds check.  Clean under every parser rule.
#include <cstdint>
#include <cstring>

namespace prefixfilter::net {

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool DecodeThing(const uint8_t* payload, size_t len, uint32_t* out) {
  if (len < 8) return false;
  *out = GetU32(payload) + GetU32(payload + 4);
  return true;
}

}  // namespace prefixfilter::net
