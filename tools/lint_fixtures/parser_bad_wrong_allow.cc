// Fixture: a suppression for a DIFFERENT rule must not silence the
// reinterpret_cast violation.
#include <cstdint>

namespace prefixfilter::net {

bool DecodeThing(const uint8_t* payload, size_t len, uint32_t* out) {
  if (len < 4) return false;
  // pf-lint: allow(steady-clock)
  *out = *reinterpret_cast<const uint32_t*>(payload);
  return true;
}

}  // namespace prefixfilter::net
