// Fixture: Counter::Add() mutates without a PF_OBS_DISABLED guard (BAD);
// Histogram::Record() is guarded (GOOD) so only one violation fires.
#include <atomic>

namespace prefixfilter::obs {

class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Histogram {
 public:
  void Record(uint64_t value) {
#ifndef PF_OBS_DISABLED
    count_.fetch_add(1, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

 private:
  std::atomic<uint64_t> count_{0};
};

}  // namespace prefixfilter::obs
