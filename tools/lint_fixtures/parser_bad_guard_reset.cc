// Fixture: the first function checks bounds, the second does not — the
// guard must not leak across function boundaries (one violation, in
// DecodeSecond).
#include <cstdint>
#include <cstring>

namespace prefixfilter::net {

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool DecodeFirst(const uint8_t* payload, size_t len, uint32_t* out) {
  if (len < 4) return false;
  *out = GetU32(payload);
  return true;
}

bool DecodeSecond(const uint8_t* payload, size_t len, uint32_t* out) {
  *out = GetU32(payload);
  (void)len;
  return true;
}

}  // namespace prefixfilter::net
