// Fixture: type-punning wire bytes with reinterpret_cast —
// parser-reinterpret-cast must fire when this lands in a parser file.
#include <cstdint>

namespace prefixfilter::net {

bool DecodeThing(const uint8_t* payload, size_t len, uint32_t* out) {
  if (len < 4) return false;
  *out = *reinterpret_cast<const uint32_t*>(payload);
  return true;
}

}  // namespace prefixfilter::net
