// Fixture: a direct monotonic-clock read — steady-clock fires everywhere in
// src/ except src/obs/.
#include <chrono>

namespace prefixfilter {

uint64_t Tick() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace prefixfilter
