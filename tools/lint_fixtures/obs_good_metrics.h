// Fixture: every update method compiles out under PF_OBS=OFF; Value() is a
// read and needs no guard.
#include <atomic>

namespace prefixfilter::obs {

inline uint64_t NowNanos() {
#ifdef PF_OBS_DISABLED
  return 0;
#else
  return 42;
#endif
}

class Counter {
 public:
  void Add(uint64_t delta = 1) {
#ifndef PF_OBS_DISABLED
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) {
#ifndef PF_OBS_DISABLED
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

 private:
  std::atomic<int64_t> value_{0};
};

}  // namespace prefixfilter::obs
