// Fixture: steady_clock appears only in comments (like this one and the
// next) — prose must never trip the steady-clock rule.
#include <cstdint>

namespace prefixfilter {

// We deliberately avoid std::chrono::steady_clock here; see obs::NowNanos.
uint64_t Tick() { return 0; }

}  // namespace prefixfilter
