// Fixture: the same clock read with an inline justification + suppression —
// steady-clock must stay quiet.
#include <chrono>

namespace prefixfilter {

uint64_t Tick() {
  // Deadline must work with observability compiled out.
  return static_cast<uint64_t>(  // pf-lint: allow(steady-clock)
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace prefixfilter
