// Fixture: a decode function that raw-reads the payload with no length
// check anywhere before it — wire-bounds-check must fire exactly once.
#include <cstdint>
#include <cstring>

namespace prefixfilter::net {

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool DecodeThing(const uint8_t* payload, size_t len, uint32_t* out) {
  *out = GetU32(payload);
  (void)len;
  return true;
}

}  // namespace prefixfilter::net
