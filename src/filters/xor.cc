#include "src/filters/xor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prefixfilter {

namespace {
// Peeling bookkeeping per table cell: xor of the hashes of incident keys
// plus their count.  When count == 1, the xor IS the remaining key's hash.
struct Cell {
  uint64_t key_xor = 0;
  uint32_t count = 0;
};
}  // namespace

XorFilter8::XorFilter8(const std::vector<uint64_t>& keys, uint64_t seed)
    : num_keys_(keys.size()),
      segment_length_(std::max<uint64_t>(
          64, static_cast<uint64_t>(std::ceil(1.23 * keys.size() / 3)) + 11)),
      fingerprints_(3 * segment_length_),
      hash_(seed),
      build_seed_(seed) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (TryBuild(keys)) return;
    build_seed_ = Mix64(build_seed_ + attempt + 1);
    hash_ = Dietzfelbinger64(build_seed_);
    std::fill(fingerprints_.data(),
              fingerprints_.data() + fingerprints_.size(), uint8_t{0});
  }
  // With table size 1.23n the 2-core is empty w.h.p.; 64 straight failures
  // indicate duplicate keys in the input, which peeling cannot resolve.
  throw std::runtime_error(
      "XorFilter8: construction failed; input likely contains duplicates");
}

XorFilter8::Positions XorFilter8::Hash(uint64_t key) const {
  const uint64_t h = hash_(key);
  Positions p;
  p.h0 = FastRange64(h, segment_length_);
  p.h1 = segment_length_ + FastRange64(Mix64(h ^ 0xb492b66fbe98f273ULL),
                                       segment_length_);
  p.h2 = 2 * segment_length_ +
         FastRange64(Mix64(h ^ 0x9ae16a3b2f90404fULL), segment_length_);
  p.fp = static_cast<uint8_t>(h ^ (h >> 32));
  return p;
}

bool XorFilter8::TryBuild(const std::vector<uint64_t>& keys) {
  const uint64_t table_size = 3 * segment_length_;
  std::vector<Cell> cells(table_size);
  for (uint64_t key : keys) {
    const Positions p = Hash(key);
    for (uint64_t idx : {p.h0, p.h1, p.h2}) {
      cells[idx].key_xor ^= key;
      ++cells[idx].count;
    }
  }

  // Peel: repeatedly detach keys that are the sole occupant of some cell.
  std::vector<uint64_t> queue;
  queue.reserve(table_size);
  for (uint64_t i = 0; i < table_size; ++i) {
    if (cells[i].count == 1) queue.push_back(i);
  }
  // (key, assigned cell) in peel order.
  std::vector<std::pair<uint64_t, uint64_t>> stack;
  stack.reserve(keys.size());
  while (!queue.empty()) {
    const uint64_t i = queue.back();
    queue.pop_back();
    if (cells[i].count != 1) continue;  // became stale
    const uint64_t key = cells[i].key_xor;
    stack.emplace_back(key, i);
    const Positions p = Hash(key);
    for (uint64_t idx : {p.h0, p.h1, p.h2}) {
      cells[idx].key_xor ^= key;
      if (--cells[idx].count == 1) queue.push_back(idx);
    }
  }
  if (stack.size() != keys.size()) return false;  // non-empty 2-core

  // Assign fingerprints in reverse peel order: when (key, i) is processed,
  // the other two cells already have their final values.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const auto [key, i] = *it;
    const Positions p = Hash(key);
    fingerprints_[i] = static_cast<uint8_t>(p.fp ^ fingerprints_[p.h0] ^
                                            fingerprints_[p.h1] ^
                                            fingerprints_[p.h2] ^
                                            fingerprints_[i]);
  }
  return true;
}

bool XorFilter8::Contains(uint64_t key) const {
  const Positions p = Hash(key);
  return p.fp == static_cast<uint8_t>(fingerprints_[p.h0] ^
                                      fingerprints_[p.h1] ^
                                      fingerprints_[p.h2]);
}

}  // namespace prefixfilter
