// Quotient filter baseline (paper §3, §7.1.1; Bender et al. [5]).
//
// The paper evaluates the quotient filter and omits it from the plots
// because it is strictly dominated by the vector quotient filter; we include
// it for completeness of the comparison surface.
//
// Design: a table of 2^q slots.  A key's fingerprint splits into a q-bit
// canonical slot index (the quotient) and an r-bit remainder stored in the
// table.  Collisions are resolved by keeping runs of equal-quotient
// remainders sorted and contiguous, shifted right past their canonical slot
// when necessary, with three metadata bits per slot reconstructing the
// mapping (is_occupied / is_continuation / is_shifted).  Each slot packs the
// 3 metadata bits and a 13-bit remainder into one uint16_t.
#ifndef PREFIXFILTER_SRC_FILTERS_QUOTIENT_H_
#define PREFIXFILTER_SRC_FILTERS_QUOTIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/hash.h"
#include "src/util/serialize.h"

namespace prefixfilter {

class QuotientFilter {
 public:
  static constexpr int kRemainderBits = 13;
  static constexpr double kMaxLoadFactor = 0.95;

  // A filter for up to `capacity` keys; the slot count is the smallest power
  // of two holding capacity / kMaxLoadFactor slots.
  explicit QuotientFilter(uint64_t capacity, uint64_t seed = 0x9f17u);

  bool Insert(uint64_t key);
  bool Contains(uint64_t key) const;

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  size_t SpaceBytes() const { return slots_.SizeBytes(); }
  std::string Name() const { return "QF"; }

  // --- persistence ----------------------------------------------------------

  static constexpr uint32_t kMagic = 0x50465146;  // "PFQF"

  void SerializeTo(std::vector<uint8_t>* out) const;
  static std::optional<QuotientFilter> Deserialize(const uint8_t* data,
                                                   size_t len);

 private:
  static constexpr uint16_t kOccupied = 1 << 0;
  static constexpr uint16_t kContinuation = 1 << 1;
  static constexpr uint16_t kShifted = 1 << 2;
  static constexpr int kMetaBits = 3;

  struct Fingerprint {
    uint64_t quotient;
    uint16_t remainder;
  };
  Fingerprint Split(uint64_t key) const;

  bool IsEmptySlot(uint64_t i) const { return (slots_[i] & 0x7) == 0; }
  uint16_t Remainder(uint64_t i) const { return slots_[i] >> kMetaBits; }
  void SetRemainder(uint64_t i, uint16_t r) {
    slots_[i] = static_cast<uint16_t>((slots_[i] & 0x7) |
                                      (r << kMetaBits));
  }
  uint64_t Next(uint64_t i) const { return (i + 1) & slot_mask_; }
  uint64_t Prev(uint64_t i) const { return (i - 1) & slot_mask_; }

  // Index of the start of the run belonging to quotient `fq` (which must
  // have its occupied bit set).
  uint64_t FindRunStart(uint64_t fq) const;

  // Single source of truth for the capacity -> slot-count geometry, shared
  // by the constructor and Deserialize (which must agree byte-for-byte).
  static uint64_t NumSlots(uint64_t capacity);

  uint64_t capacity_;
  uint64_t num_slots_;
  uint64_t slot_mask_;
  AlignedBuffer<uint16_t> slots_;
  Dietzfelbinger64 hash_;
  uint64_t seed_;
  uint64_t size_ = 0;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_QUOTIENT_H_
