// TwoChoicer "TC": the paper's re-implementation of the vector quotient
// filter (Pandey et al. [42]) on top of the pocket dictionary (§7.1.1).
//
// Structure: an array of PD512 bins ("mini-filters": Q=80, R=8, k=48, one
// cache line each).  Every key hashes to two candidate bins and to a
// (quotient, remainder) mini-fingerprint; insertion places the fingerprint
// in the less-loaded bin (power-of-two-choices), so insertion time is
// constant at any load — the property the paper contrasts with the cuckoo
// filter's kick loop.  The price is that *every* query must inspect both
// bins, i.e. two cache misses per negative query (Table 1).
//
// Insertion shortcut: below a threshold occupancy the first bin is used
// without loading the second.  This makes low-load insertions single-line
// and explains the throughput knee the paper observes for TC at ~50% load
// (§7.3: "TC's throughput degrades when the load exceeds 50% due to its
// insertion shortcut optimization").
#ifndef PREFIXFILTER_SRC_FILTERS_TWOCHOICER_H_
#define PREFIXFILTER_SRC_FILTERS_TWOCHOICER_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/pd/pd512.h"
#include "src/util/aligned.h"
#include "src/util/hash.h"
#include "src/util/serialize.h"

namespace prefixfilter {

class TwoChoicer {
 public:
  static constexpr double kMaxLoadFactor = 0.935;
  // Shortcut threshold: with bins of 48 and max load 93.5%, the average bin
  // holds ~44.9*load fingerprints; 24 puts the knee at ~50% filter load.
  static constexpr int kShortcutOccupancy = 24;

  explicit TwoChoicer(uint64_t capacity, uint64_t seed = 0x7c01u)
      : capacity_(capacity),
        num_bins_(std::max<uint64_t>(
            2, static_cast<uint64_t>(std::ceil(
                   capacity / (kMaxLoadFactor * PD512::kCapacity))))),
        bins_(num_bins_),
        hash_(seed),
        seed_(seed) {}

  bool Insert(uint64_t key) {
    const uint64_t h = hash_(key);
    uint64_t b1, b2;
    int q;
    uint8_t r;
    Fingerprint(h, &b1, &b2, &q, &r);
    PD512& pd1 = bins_[b1];
    const int t1 = pd1.Size();
    if (t1 < kShortcutOccupancy) {
      pd1.Insert(q, r);
      ++size_;
      return true;
    }
    PD512& pd2 = bins_[b2];
    const int t2 = pd2.Size();
    PD512& target = (t1 <= t2) ? pd1 : pd2;
    if (!target.Insert(q, r)) return false;  // both bins full: failure
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    uint64_t b1, b2;
    int q;
    uint8_t r;
    Fingerprint(h, &b1, &b2, &q, &r);
    return bins_[b1].Find(q, r) || bins_[b2].Find(q, r);
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  size_t SpaceBytes() const { return bins_.SizeBytes(); }
  uint64_t num_bins() const { return num_bins_; }
  std::string Name() const { return "TC"; }

  // --- persistence ----------------------------------------------------------

  static constexpr uint32_t kMagic = 0x50465443;  // "PFTC"

  void SerializeTo(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    w.U32(kMagic);
    w.U8(1);
    w.U64(capacity_);
    w.U64(seed_);
    w.U64(size_);
    w.Raw(bins_.data(), bins_.SizeBytes());
  }

  static std::optional<TwoChoicer> Deserialize(const uint8_t* data,
                                               size_t len) {
    ByteReader r(data, len);
    if (r.U32() != kMagic || r.U8() != 1) return std::nullopt;
    const uint64_t capacity = r.U64();
    const uint64_t seed = r.U64();
    const uint64_t size = r.U64();
    if (!r.ok() || capacity == 0) return std::nullopt;
    const uint64_t bins = std::max<uint64_t>(
        2, static_cast<uint64_t>(std::ceil(
               capacity / (kMaxLoadFactor * PD512::kCapacity))));
    if (bins > r.remaining() / sizeof(PD512) + 1 ||
        RoundUpToCacheLine(bins * sizeof(PD512)) != r.remaining()) {
      return std::nullopt;
    }
    TwoChoicer f(capacity, seed);
    if (!r.Raw(f.bins_.data(), f.bins_.SizeBytes()) || r.remaining() != 0) {
      return std::nullopt;
    }
    f.size_ = size;
    return f;
  }

 private:
  void Fingerprint(uint64_t h, uint64_t* b1, uint64_t* b2, int* q,
                   uint8_t* r) const {
    *b1 = FastRange64(h, num_bins_);
    const uint64_t g = Mix64(h);
    *b2 = FastRange64(g, num_bins_);
    *q = static_cast<int>(
        FastRange32(static_cast<uint32_t>(g >> 8), PD512::kNumLists));
    *r = static_cast<uint8_t>(g);
  }

  uint64_t capacity_;
  uint64_t num_bins_;
  AlignedBuffer<PD512> bins_;
  Dietzfelbinger64 hash_;
  uint64_t seed_;
  uint64_t size_ = 0;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_TWOCHOICER_H_
