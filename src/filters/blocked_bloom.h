// Blocked Bloom filter "BBF" / "BBF-Flex" (paper §7.1.1, [46]).
//
// Register-blocked Bloom filter: each key maps to one 256-bit block and sets
// one bit in each of the block's eight 32-bit lanes (the Impala-style SIMD
// kernel in util/simd.h).  Every operation touches exactly one cache line.
// The false positive rate is fixed by the 8-bits-set design and the load;
// the paper controls it only through the space budget:
//   * BBF ("non-flexible"): block count rounded up to a power of two,
//     approximating one byte per key — fast index computation, up to 2x
//     space overshoot.
//   * BBF-Flex: any block count (fastrange indexing), sized by bits/key.
#ifndef PREFIXFILTER_SRC_FILTERS_BLOCKED_BLOOM_H_
#define PREFIXFILTER_SRC_FILTERS_BLOCKED_BLOOM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/bits.h"
#include "src/util/hash.h"
#include "src/util/serialize.h"
#include "src/util/simd.h"

namespace prefixfilter {

class BlockedBloomFilter {
 public:
  static constexpr int kBlockBytes = 32;  // 256-bit blocks, 8 x 32-bit lanes

  // Flexible variant: ceil(capacity * bits_per_key / 256) blocks.  The
  // paper's BBF-Flex uses ~10.7 bits/key.
  static BlockedBloomFilter MakeFlexible(uint64_t capacity,
                                         double bits_per_key = 10.67,
                                         uint64_t seed = 0xbbfu) {
    const uint64_t blocks = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(capacity * bits_per_key / (kBlockBytes * 8))));
    return BlockedBloomFilter(capacity, blocks, /*flexible=*/true, seed);
  }

  // Non-flexible variant: one byte per key rounded up to a power of two, as
  // in the cuckoo-filter repository's implementation the paper benchmarks.
  static BlockedBloomFilter MakeNonFlexible(uint64_t capacity,
                                            uint64_t seed = 0xbbfu) {
    const uint64_t blocks = NextPow2((capacity + kBlockBytes - 1) / kBlockBytes);
    return BlockedBloomFilter(capacity, blocks, /*flexible=*/false, seed);
  }

  bool Insert(uint64_t key) {
    const uint64_t h = hash_(key);
    BlockedBloomAdd(static_cast<uint32_t>(h), BlockPtr(BlockIndex(h)));
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    return BlockedBloomContains(static_cast<uint32_t>(h),
                                BlockPtr(BlockIndex(h)));
  }

  // Prefetching batch probe: hash and prefetch a 16-key window, then run the
  // SIMD load-and-test over it.  Picked up by the AnyFilter adapter's
  // byte-batch detection, so routed shard groups run this concrete loop
  // instead of per-key virtual Contains.
  void ContainsBatch(const uint64_t* keys, size_t count, uint8_t* out) const {
    constexpr size_t kChunk = 16;
    uint64_t hashes[kChunk];
    uint64_t blocks[kChunk];
    for (size_t base = 0; base < count; base += kChunk) {
      const size_t chunk = std::min(kChunk, count - base);
      for (size_t i = 0; i < chunk; ++i) {
        hashes[i] = hash_(keys[base + i]);
        blocks[i] = BlockIndex(hashes[i]);
        __builtin_prefetch(BlockPtr(blocks[i]), 0, 1);
      }
      for (size_t i = 0; i < chunk; ++i) {
        out[base + i] = BlockedBloomContains(static_cast<uint32_t>(hashes[i]),
                                             BlockPtr(blocks[i])) ? 1 : 0;
      }
    }
  }

  // Portable-kernel twins for the kernel differential harness: identical
  // hashing and geometry, scalar lane loops on every build.
  bool InsertPortable(uint64_t key) {
    const uint64_t h = hash_(key);
    BlockedBloomAddPortable(static_cast<uint32_t>(h), BlockPtr(BlockIndex(h)));
    ++size_;
    return true;
  }

  bool ContainsPortable(uint64_t key) const {
    const uint64_t h = hash_(key);
    return BlockedBloomContainsPortable(static_cast<uint32_t>(h),
                                        BlockPtr(BlockIndex(h)));
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  size_t SpaceBytes() const { return lanes_.SizeBytes(); }
  std::string Name() const { return flexible_ ? "BBF-Flex" : "BBF"; }

  // --- persistence ----------------------------------------------------------

  static constexpr uint32_t kMagic = 0x50464242;  // "PFBB"

  void SerializeTo(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    w.U32(kMagic);
    w.U8(1);
    w.U64(capacity_);
    w.U64(num_blocks_);
    w.U8(flexible_ ? 1 : 0);
    w.U64(seed_);
    w.U64(size_);
    w.Raw(lanes_.data(), lanes_.SizeBytes());
  }

  static std::optional<BlockedBloomFilter> Deserialize(const uint8_t* data,
                                                       size_t len) {
    ByteReader r(data, len);
    if (r.U32() != kMagic || r.U8() != 1) return std::nullopt;
    const uint64_t capacity = r.U64();
    const uint64_t num_blocks = r.U64();
    const bool flexible = r.U8() != 0;
    const uint64_t seed = r.U64();
    const uint64_t size = r.U64();
    if (!r.ok() || num_blocks == 0) return std::nullopt;
    if (!flexible && (num_blocks & (num_blocks - 1)) != 0) return std::nullopt;
    if (num_blocks > r.remaining() / kBlockBytes + 1 ||
        RoundUpToCacheLine(num_blocks * kBlockBytes) != r.remaining()) {
      return std::nullopt;
    }
    BlockedBloomFilter f(capacity, num_blocks, flexible, seed);
    if (!r.Raw(f.lanes_.data(), f.lanes_.SizeBytes()) || r.remaining() != 0) {
      return std::nullopt;
    }
    f.size_ = size;
    return f;
  }

 private:
  BlockedBloomFilter(uint64_t capacity, uint64_t num_blocks, bool flexible,
                     uint64_t seed)
      : capacity_(capacity),
        num_blocks_(num_blocks),
        flexible_(flexible),
        block_mask_(flexible ? 0 : num_blocks - 1),
        lanes_(num_blocks * 8),
        hash_(seed),
        seed_(seed) {}

  uint64_t BlockIndex(uint64_t h) const {
    // Non-flex uses a mask of the high bits (power-of-two block count);
    // flex uses fastrange.  Both consume the upper hash bits, leaving the
    // low 32 bits for the lane-mask derivation.
    return flexible_ ? FastRange64(h, num_blocks_)
                     : (h >> 32) & block_mask_;
  }

  uint32_t* BlockPtr(uint64_t block) { return lanes_.data() + block * 8; }
  const uint32_t* BlockPtr(uint64_t block) const {
    return lanes_.data() + block * 8;
  }

  uint64_t capacity_;
  uint64_t num_blocks_;
  bool flexible_;
  uint64_t block_mask_;
  AlignedBuffer<uint32_t> lanes_;
  Dietzfelbinger64 hash_;
  uint64_t seed_;
  uint64_t size_ = 0;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_BLOCKED_BLOOM_H_
