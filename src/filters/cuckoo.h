// Cuckoo filter "CF-x" / "CF-x-Flex" (paper §7.1.1; Fan et al. [27]).
//
// A hash table of fingerprints with buckets of 4 tags and partial-key cuckoo
// hashing: each key has two candidate buckets; insertion into two full
// buckets evicts a random resident tag to its alternate bucket, looping up
// to a bounded number of kicks, with a single-slot victim stash as the last
// resort.  The paper's headline observation about the cuckoo filter — build
// throughput collapsing by ~27x as load approaches the 94% maximum — comes
// from exactly this kick loop.
//
// Variants:
//   * Non-flexible: power-of-two bucket count, alternate bucket computed with
//     the original XOR trick (i2 = i1 ^ H(tag)).
//   * Flexible (CF-x-Flex): arbitrary bucket count.  XOR does not commute
//     with "mod m", so the alternate bucket is the self-inverse
//     i2 = (H(tag) - i1) mod m, which satisfies alt(alt(i)) = i for any m.
//
// Tag width is a template parameter (8, 12, 16); 12-bit tags are stored
// bit-packed (48-bit buckets).  A zero tag marks an empty slot, so computed
// tags are remapped away from zero.
#ifndef PREFIXFILTER_SRC_FILTERS_CUCKOO_H_
#define PREFIXFILTER_SRC_FILTERS_CUCKOO_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/bits.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace prefixfilter {

template <int kTagBits>
class CuckooFilter {
 public:
  static constexpr int kTagsPerBucket = 4;
  static constexpr int kMaxKicks = 500;
  static constexpr double kMaxLoadFactor = 0.94;
  static constexpr uint32_t kTagMask = (uint32_t{1} << kTagBits) - 1;

  static_assert(kTagBits == 8 || kTagBits == 12 || kTagBits == 16,
                "supported tag widths: 8, 12, 16");

  // `flexible` selects the arbitrary-bucket-count variant; otherwise the
  // bucket count is rounded up to a power of two (faster indexing, possibly
  // ~2x space).
  CuckooFilter(uint64_t capacity, bool flexible, uint64_t seed = 0xcf17u)
      : capacity_(capacity),
        flexible_(flexible),
        num_buckets_(BucketCount(capacity, flexible)),
        bucket_mask_(flexible ? 0 : num_buckets_ - 1),
        // One slack byte so 12-bit unaligned 64-bit loads stay in bounds.
        bytes_(num_buckets_ * kTagsPerBucket * kTagBits / 8 + 8),
        hash_(seed),
        kick_rng_(seed ^ 0x5bd1e995u),
        seed_(seed) {}

  bool Insert(uint64_t key) {
    // Once the victim stash is occupied the filter is full: kicking further
    // would displace a resident tag with nowhere to put it (a lost key).
    if (has_victim_) return false;
    const uint64_t h = hash_(key);
    const uint32_t tag = TagHash(h);
    const uint64_t i1 = IndexHash(h);
    if (InsertIntoBucket(i1, tag) || InsertIntoBucket(AltIndex(i1, tag), tag)) {
      ++size_;
      return true;
    }
    // Kick loop: evict a random resident of the (full) current bucket and
    // move it to its own alternate bucket.
    uint64_t index = kick_rng_.Next() & 1 ? AltIndex(i1, tag) : i1;
    uint32_t cur = tag;
    for (int kick = 0; kick < kMaxKicks; ++kick) {
      const int slot = static_cast<int>(kick_rng_.Next() & 3);
      const uint32_t evicted = GetTag(index, slot);
      SetTag(index, slot, cur);
      cur = evicted;
      index = AltIndex(index, cur);
      if (InsertIntoBucket(index, cur)) {
        ++size_;
        return true;
      }
    }
    if (!has_victim_) {
      victim_tag_ = cur;
      victim_index_ = index;
      has_victim_ = true;
      ++size_;
      return true;
    }
    return false;  // filter failure (paper: "might occasionally fail")
  }

  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    const uint32_t tag = TagHash(h);
    const uint64_t i1 = IndexHash(h);
    if (BucketContains(i1, tag)) return true;
    const uint64_t i2 = AltIndex(i1, tag);
    if (BucketContains(i2, tag)) return true;
    return has_victim_ && victim_tag_ == tag &&
           (victim_index_ == i1 || victim_index_ == i2);
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  size_t SpaceBytes() const { return bytes_.SizeBytes(); }

  std::string Name() const {
    return "CF-" + std::to_string(kTagBits) + (flexible_ ? "-Flex" : "");
  }

  // --- persistence ----------------------------------------------------------

  static constexpr uint32_t kMagic = 0x50464346;  // "PFCF"

  void SerializeTo(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    w.U32(kMagic);
    w.U8(1);
    w.U8(static_cast<uint8_t>(kTagBits));
    w.U64(capacity_);
    w.U8(flexible_ ? 1 : 0);
    w.U64(seed_);
    w.U64(size_);
    w.U32(victim_tag_);
    w.U64(victim_index_);
    w.U8(has_victim_ ? 1 : 0);
    w.Raw(bytes_.data(), bytes_.SizeBytes());
  }

  static std::optional<CuckooFilter> Deserialize(const uint8_t* data,
                                                 size_t len) {
    ByteReader r(data, len);
    if (r.U32() != kMagic || r.U8() != 1 || r.U8() != kTagBits) {
      return std::nullopt;
    }
    const uint64_t capacity = r.U64();
    const bool flexible = r.U8() != 0;
    const uint64_t seed = r.U64();
    const uint64_t size = r.U64();
    const uint32_t victim_tag = r.U32();
    const uint64_t victim_index = r.U64();
    const bool has_victim = r.U8() != 0;
    if (!r.ok() || capacity == 0) return std::nullopt;
    // Geometry check before allocating.
    const uint64_t buckets = BucketCount(capacity, flexible);
    if (buckets > r.remaining() ||
        RoundUpToCacheLine(buckets * kTagsPerBucket * kTagBits / 8 + 8) !=
            r.remaining()) {
      return std::nullopt;
    }
    CuckooFilter f(capacity, flexible, seed);
    if (!r.Raw(f.bytes_.data(), f.bytes_.SizeBytes()) || r.remaining() != 0) {
      return std::nullopt;
    }
    f.size_ = size;
    f.victim_tag_ = victim_tag;
    f.victim_index_ = victim_index;
    f.has_victim_ = has_victim;
    return f;
  }

 private:
  static uint64_t BucketCount(uint64_t capacity, bool flexible) {
    const uint64_t needed = static_cast<uint64_t>(
        std::ceil(capacity / (kMaxLoadFactor * kTagsPerBucket)));
    return flexible ? std::max<uint64_t>(needed, 1) : NextPow2(needed);
  }

  uint64_t IndexHash(uint64_t h) const {
    return flexible_ ? FastRange64(h, num_buckets_) : (h >> 32) & bucket_mask_;
  }

  uint32_t TagHash(uint64_t h) const {
    const uint32_t tag = static_cast<uint32_t>(Mix64(h)) & kTagMask;
    return tag == 0 ? 1 : tag;  // zero marks an empty slot
  }

  uint64_t AltIndex(uint64_t index, uint32_t tag) const {
    // H(tag): an independent mix of the tag reduced to the bucket range.
    const uint64_t th = Mix64(static_cast<uint64_t>(tag) * 0x9e3779b97f4a7c15ULL);
    if (!flexible_) return index ^ (th & bucket_mask_);
    // Self-inverse for arbitrary m: alt(i) = (H - i) mod m.
    const uint64_t target = FastRange64(th, num_buckets_);
    return target >= index ? target - index : target + num_buckets_ - index;
  }

  // --- bit-packed tag table -------------------------------------------------
  //
  // A bucket's 4 tags occupy 4*kTagBits (= 32/48/64) contiguous bits, always
  // byte-aligned, so the whole bucket loads as one 64-bit word.  Queries use
  // the classic SWAR "hasvalue" trick (as in the authors' implementation):
  // a lane of (word ^ broadcast(tag)) is zero iff that slot holds the tag,
  // and (v - kLaneLsb) & ~v & kLaneMsb flags zero lanes exactly.

  static constexpr uint64_t kLaneLsb =
      kTagBits == 8 ? 0x01010101ULL
                    : (kTagBits == 12 ? 0x001001001001ULL
                                      : 0x0001000100010001ULL);
  static constexpr uint64_t kLaneMsb = kLaneLsb << (kTagBits - 1);

  static uint64_t ZeroLaneMarkers(uint64_t v) {
    return (v - kLaneLsb) & ~v & kLaneMsb;
  }

  uint64_t BucketWord(uint64_t bucket) const {
    uint64_t word;
    std::memcpy(&word, bytes_.data() + bucket * (kTagsPerBucket * kTagBits / 8),
                8);
    return word;
  }

  uint32_t GetTag(uint64_t bucket, int slot) const {
    const uint64_t bit = (bucket * kTagsPerBucket + slot) * kTagBits;
    uint64_t word;
    std::memcpy(&word, bytes_.data() + (bit >> 3), 8);
    return static_cast<uint32_t>(word >> (bit & 7)) & kTagMask;
  }

  void SetTag(uint64_t bucket, int slot, uint32_t tag) {
    const uint64_t bit = (bucket * kTagsPerBucket + slot) * kTagBits;
    uint64_t word;
    std::memcpy(&word, bytes_.data() + (bit >> 3), 8);
    const int shift = static_cast<int>(bit & 7);
    word &= ~(static_cast<uint64_t>(kTagMask) << shift);
    word |= static_cast<uint64_t>(tag) << shift;
    std::memcpy(bytes_.data() + (bit >> 3), &word, 8);
  }

  bool InsertIntoBucket(uint64_t bucket, uint32_t tag) {
    // Zero tags mark empty slots; find the lowest one in O(1).  For 8-bit
    // tags only the low 32 bits of the word are bucket lanes, which the
    // 4-lane constants already restrict to.
    const uint64_t markers = ZeroLaneMarkers(BucketWord(bucket));
    if (markers == 0) return false;
    const int slot = CountTrailingZeros64(markers) / kTagBits;
    SetTag(bucket, slot, tag);
    return true;
  }

  bool BucketContains(uint64_t bucket, uint32_t tag) const {
    const uint64_t lanes = BucketWord(bucket) ^ (kLaneLsb * tag);
    return ZeroLaneMarkers(lanes) != 0;
  }

  uint64_t capacity_;
  bool flexible_;
  uint64_t num_buckets_;
  uint64_t bucket_mask_;
  AlignedBuffer<uint8_t> bytes_;
  Dietzfelbinger64 hash_;
  Xoshiro256 kick_rng_;
  uint64_t seed_;
  uint64_t size_ = 0;
  uint32_t victim_tag_ = 0;
  uint64_t victim_index_ = 0;
  bool has_victim_ = false;
};

using CuckooFilter8 = CuckooFilter<8>;
using CuckooFilter12 = CuckooFilter<12>;
using CuckooFilter16 = CuckooFilter<16>;

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_CUCKOO_H_
