// Xor filter (Graf & Lemire [31]) — a *static* baseline.
//
// The paper's evaluation covers incremental filters; the xor filter is the
// natural static comparison point from the same authors whose flexible
// implementations ([30, 31]) the paper benchmarks.  It cannot be built
// incrementally — construction needs the whole key set up front to run the
// peeling algorithm — which is exactly the contrast that motivates
// incremental filters for LSM runs that are written streaming.
//
// Design: three hash positions, one per third ("segment") of a table of
// k-bit fingerprints sized ~1.23n.  A key is considered present iff
// fp(x) == B[h0(x)] ^ B[h1(x)] ^ B[h2(x)].  Construction peels keys of
// degree-1 cells onto a stack, then assigns fingerprints in reverse; it
// succeeds with high probability and retries with a fresh seed otherwise.
#ifndef PREFIXFILTER_SRC_FILTERS_XOR_H_
#define PREFIXFILTER_SRC_FILTERS_XOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/hash.h"

namespace prefixfilter {

class XorFilter8 {
 public:
  // Builds the filter from the (deduplicated) key set.  Construction is
  // O(n) expected; retries internally on unlucky seeds.
  explicit XorFilter8(const std::vector<uint64_t>& keys, uint64_t seed = 0x10fu);

  bool Contains(uint64_t key) const;

  uint64_t size() const { return num_keys_; }
  uint64_t capacity() const { return num_keys_; }
  size_t SpaceBytes() const { return fingerprints_.SizeBytes(); }
  std::string Name() const { return "Xor8"; }

 private:
  struct Positions {
    uint64_t h0, h1, h2;
    uint8_t fp;
  };
  Positions Hash(uint64_t key) const;

  // Attempts one peeling pass; returns false if a 2-core remains.
  bool TryBuild(const std::vector<uint64_t>& keys);

  uint64_t num_keys_;
  uint64_t segment_length_;
  AlignedBuffer<uint8_t> fingerprints_;
  Dietzfelbinger64 hash_;
  uint64_t build_seed_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_XOR_H_
