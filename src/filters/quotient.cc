#include "src/filters/quotient.h"

#include <cmath>

#include "src/util/bits.h"

namespace prefixfilter {

QuotientFilter::QuotientFilter(uint64_t capacity, uint64_t seed)
    : capacity_(capacity),
      num_slots_(NextPow2(std::max<uint64_t>(
          16, static_cast<uint64_t>(
                  std::ceil(capacity / kMaxLoadFactor))))),
      slot_mask_(num_slots_ - 1),
      slots_(num_slots_),
      hash_(seed) {}

QuotientFilter::Fingerprint QuotientFilter::Split(uint64_t key) const {
  const uint64_t h = hash_(key);
  // High bits select the canonical slot; the next kRemainderBits are the
  // stored remainder.
  const int q_bits = HighestSetBit64(num_slots_);
  const uint64_t quotient = h >> (64 - q_bits);
  const uint16_t remainder = static_cast<uint16_t>(
      (h >> (64 - q_bits - kRemainderBits)) & ((1u << kRemainderBits) - 1));
  return {quotient, remainder};
}

uint64_t QuotientFilter::FindRunStart(uint64_t fq) const {
  // Walk left to the start of the cluster (first unshifted slot), then walk
  // right matching run starts with occupied canonical slots.
  uint64_t b = fq;
  while (slots_[b] & kShifted) b = Prev(b);
  uint64_t s = b;
  while (b != fq) {
    do {
      s = Next(s);
    } while (slots_[s] & kContinuation);
    do {
      b = Next(b);
    } while (!(slots_[b] & kOccupied));
  }
  return s;
}

bool QuotientFilter::Insert(uint64_t key) {
  if (size_ >= static_cast<uint64_t>(num_slots_ * kMaxLoadFactor)) {
    return false;  // beyond the supported load factor
  }
  const Fingerprint fp = Split(key);
  const uint64_t fq = fp.quotient;

  if (IsEmptySlot(fq) && !(slots_[fq] & kOccupied)) {
    // Fast path: canonical slot is empty and no run exists for fq.
    slots_[fq] = static_cast<uint16_t>(kOccupied |
                                       (fp.remainder << kMetaBits));
    ++size_;
    return true;
  }

  const bool run_exists = (slots_[fq] & kOccupied) != 0;
  slots_[fq] = slots_[fq] | kOccupied;

  uint64_t s = FindRunStart(fq);
  const uint64_t run_start = s;
  if (run_exists) {
    // Keep the run sorted: advance within the run while remainders are
    // smaller.  Duplicate remainders are stored once (idempotent insert).
    do {
      const uint16_t rem = Remainder(s);
      if (rem == fp.remainder) {
        ++size_;
        return true;
      }
      if (rem > fp.remainder) break;
      s = Next(s);
    } while (slots_[s] & kContinuation);
  }

  // Insert at position s, shifting the remainder chain right up to the next
  // empty slot.  The is_occupied bit stays with the *slot*; continuation and
  // shifted travel with the element.
  uint16_t new_entry = static_cast<uint16_t>(fp.remainder << kMetaBits);
  if (run_exists && s != run_start) new_entry |= kContinuation;
  if (s != fq) new_entry |= kShifted;

  uint64_t i = s;
  uint16_t incoming = new_entry;
  bool displaced_was_run_start = run_exists && s == run_start;
  while (true) {
    const bool slot_empty = IsEmptySlot(i);
    const uint16_t old_entry = slots_[i];
    slots_[i] = static_cast<uint16_t>((old_entry & kOccupied) |
                                      (incoming & ~kOccupied));
    if (slot_empty) break;
    // The displaced element moves one slot right: it is now shifted, and if
    // it headed its run it becomes a continuation of the inserted element.
    incoming = static_cast<uint16_t>((old_entry & ~kOccupied) | kShifted);
    if (displaced_was_run_start) {
      incoming |= kContinuation;
      displaced_was_run_start = false;
    }
    i = Next(i);
  }
  ++size_;
  return true;
}

bool QuotientFilter::Contains(uint64_t key) const {
  const Fingerprint fp = Split(key);
  if (!(slots_[fp.quotient] & kOccupied)) return false;
  uint64_t s = FindRunStart(fp.quotient);
  do {
    const uint16_t rem = Remainder(s);
    if (rem == fp.remainder) return true;
    if (rem > fp.remainder) return false;  // runs are sorted
    s = Next(s);
  } while (slots_[s] & kContinuation);
  return false;
}

}  // namespace prefixfilter
