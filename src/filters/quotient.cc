#include "src/filters/quotient.h"

#include <cmath>

#include "src/util/bits.h"

namespace prefixfilter {

uint64_t QuotientFilter::NumSlots(uint64_t capacity) {
  return NextPow2(std::max<uint64_t>(
      16, static_cast<uint64_t>(std::ceil(capacity / kMaxLoadFactor))));
}

QuotientFilter::QuotientFilter(uint64_t capacity, uint64_t seed)
    : capacity_(capacity),
      num_slots_(NumSlots(capacity)),
      slot_mask_(num_slots_ - 1),
      slots_(num_slots_),
      hash_(seed),
      seed_(seed) {}

void QuotientFilter::SerializeTo(std::vector<uint8_t>* out) const {
  ByteWriter w(out);
  w.U32(kMagic);
  w.U8(1);
  w.U64(capacity_);
  w.U64(seed_);
  w.U64(size_);
  w.Raw(slots_.data(), slots_.SizeBytes());
}

std::optional<QuotientFilter> QuotientFilter::Deserialize(const uint8_t* data,
                                                          size_t len) {
  ByteReader r(data, len);
  if (r.U32() != kMagic || r.U8() != 1) return std::nullopt;
  const uint64_t capacity = r.U64();
  const uint64_t seed = r.U64();
  const uint64_t size = r.U64();
  // The capacity ceiling rejects crafted fields before the slot-count math
  // (whose double->uint64 cast and NextPow2 shift are undefined near 2^63).
  if (!r.ok() || capacity == 0 || capacity > (uint64_t{1} << 48)) {
    return std::nullopt;
  }
  // Geometry check before allocating: the slot table is determined by the
  // capacity, and the payload must hold exactly that table.
  const uint64_t slots = NumSlots(capacity);
  if (RoundUpToCacheLine(slots * sizeof(uint16_t)) != r.remaining()) {
    return std::nullopt;
  }
  // size_ gates Insert's load-factor guard; a crafted value must not unlock
  // insertion into a table that is actually full.
  if (size > static_cast<uint64_t>(slots * kMaxLoadFactor)) {
    return std::nullopt;
  }
  QuotientFilter f(capacity, seed);
  if (!r.Raw(f.slots_.data(), f.slots_.SizeBytes()) || r.remaining() != 0) {
    return std::nullopt;
  }
  f.size_ = size;
  return f;
}

QuotientFilter::Fingerprint QuotientFilter::Split(uint64_t key) const {
  const uint64_t h = hash_(key);
  // High bits select the canonical slot; the next kRemainderBits are the
  // stored remainder.
  const int q_bits = HighestSetBit64(num_slots_);
  const uint64_t quotient = h >> (64 - q_bits);
  const uint16_t remainder = static_cast<uint16_t>(
      (h >> (64 - q_bits - kRemainderBits)) & ((1u << kRemainderBits) - 1));
  return {quotient, remainder};
}

uint64_t QuotientFilter::FindRunStart(uint64_t fq) const {
  // Walk left to the start of the cluster (first unshifted slot), then walk
  // right matching run starts with occupied canonical slots.  Every walk is
  // budgeted: on a well-formed table each of the three cursors advances
  // monotonically, bounding the combined walk below 3*num_slots_ even when
  // one cluster spans nearly the whole table, so exhausting the budget
  // proves the metadata invariants are broken (e.g. a corrupted snapshot
  // whose every slot carries the shifted bit) — return the canonical slot
  // rather than ring-walking forever.  Callers then read garbage
  // remainders, which the filter contract tolerates; hanging is not.
  uint64_t budget = 3 * num_slots_ + 2;
  uint64_t b = fq;
  while (slots_[b] & kShifted) {
    b = Prev(b);
    if (budget-- == 0) return fq;
  }
  uint64_t s = b;
  while (b != fq) {
    do {
      s = Next(s);
      if (budget-- == 0) return fq;
    } while (slots_[s] & kContinuation);
    do {
      b = Next(b);
      if (budget-- == 0) return fq;
    } while (!(slots_[b] & kOccupied));
  }
  return s;
}

bool QuotientFilter::Insert(uint64_t key) {
  if (size_ >= static_cast<uint64_t>(num_slots_ * kMaxLoadFactor)) {
    return false;  // beyond the supported load factor
  }
  const Fingerprint fp = Split(key);
  const uint64_t fq = fp.quotient;

  if (IsEmptySlot(fq) && !(slots_[fq] & kOccupied)) {
    // Fast path: canonical slot is empty and no run exists for fq.
    slots_[fq] = static_cast<uint16_t>(kOccupied |
                                       (fp.remainder << kMetaBits));
    ++size_;
    return true;
  }

  const bool run_exists = (slots_[fq] & kOccupied) != 0;
  slots_[fq] = slots_[fq] | kOccupied;

  uint64_t s = FindRunStart(fq);
  const uint64_t run_start = s;
  if (run_exists) {
    // Keep the run sorted: advance within the run while remainders are
    // smaller.  Duplicate remainders are stored once (idempotent insert).
    // Budgeted like FindRunStart: a run cannot legally span the whole table.
    uint64_t budget = num_slots_;
    do {
      const uint16_t rem = Remainder(s);
      if (rem == fp.remainder) {
        // Idempotent: nothing stored, so nothing added to the load
        // accounting the full-table guard (and persisted size_) relies on.
        return true;
      }
      if (rem > fp.remainder) break;
      s = Next(s);
    } while ((slots_[s] & kContinuation) && --budget > 0);
  }

  // Insert at position s, shifting the remainder chain right up to the next
  // empty slot.  The is_occupied bit stays with the *slot*; continuation and
  // shifted travel with the element.
  uint16_t new_entry = static_cast<uint16_t>(fp.remainder << kMetaBits);
  if (run_exists && s != run_start) new_entry |= kContinuation;
  if (s != fq) new_entry |= kShifted;

  uint64_t i = s;
  uint16_t incoming = new_entry;
  bool displaced_was_run_start = run_exists && s == run_start;
  // The load-factor guard above leaves empty slots on a well-formed table;
  // the budget only trips on corrupted metadata (restored snapshots), where
  // failing the insert beats shifting around the ring forever.
  bool placed = false;
  for (uint64_t budget = num_slots_; budget > 0; --budget) {
    const bool slot_empty = IsEmptySlot(i);
    const uint16_t old_entry = slots_[i];
    slots_[i] = static_cast<uint16_t>((old_entry & kOccupied) |
                                      (incoming & ~kOccupied));
    if (slot_empty) {
      placed = true;
      break;
    }
    // The displaced element moves one slot right: it is now shifted, and if
    // it headed its run it becomes a continuation of the inserted element.
    incoming = static_cast<uint16_t>((old_entry & ~kOccupied) | kShifted);
    if (displaced_was_run_start) {
      incoming |= kContinuation;
      displaced_was_run_start = false;
    }
    i = Next(i);
  }
  if (!placed) return false;  // corrupted table: no empty slot in the ring
  ++size_;
  return true;
}

bool QuotientFilter::Contains(uint64_t key) const {
  const Fingerprint fp = Split(key);
  if (!(slots_[fp.quotient] & kOccupied)) return false;
  uint64_t s = FindRunStart(fp.quotient);
  uint64_t budget = num_slots_;  // terminates on corrupted metadata
  do {
    const uint16_t rem = Remainder(s);
    if (rem == fp.remainder) return true;
    if (rem > fp.remainder) return false;  // runs are sorted
    s = Next(s);
  } while ((slots_[s] & kContinuation) && --budget > 0);
  return false;
}

}  // namespace prefixfilter
