// FastMultiBlock filters "FMB32" / "FMB64" (Boost.Bloom's
// fast_multiblock32/64 technique; multi-block Bloom design of Putze et al.).
//
// Each key maps to one block and sets one bit in each of the block's eight
// lanes, so a membership probe is one (FMB64 under AVX-512) or two aligned
// vector loads plus a test — the "handful of vector instructions per query"
// regime the paper's PD kernels live in, applied to the Bloom side of the
// sweep:
//   * FMB32: 32-byte blocks of 8 x 32-bit lanes, 5-bit lane positions.
//     Sized loosely by default (8 bits/key, ~2.5% FPR) — the speed-first
//     configuration.
//   * FMB64: 64-byte blocks of 8 x 64-bit lanes, 6-bit lane positions.
//     A whole cache line per probe with less position quantization inside
//     each lane; default 12 bits/key lands mid-FPR (~0.3%).
// Both size by bits/key with fastrange block indexing (the BBF-Flex scheme):
// high hash bits pick the block, the low 32 bits feed the lane kernel.
//
// The SIMD kernels live in src/util/simd.h next to their always-compiled
// portable twins; InsertPortable/ContainsPortable run the portable kernels
// on any build so the kernel differential harness and the scalar-baseline
// ablation can compare both flavors in one binary.
#ifndef PREFIXFILTER_SRC_FILTERS_FAST_MULTIBLOCK_H_
#define PREFIXFILTER_SRC_FILTERS_FAST_MULTIBLOCK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/hash.h"
#include "src/util/serialize.h"
#include "src/util/simd.h"

namespace prefixfilter {

// Lane-width policies: the only parts that differ between the two variants.
struct Fmb32Traits {
  using Lane = uint32_t;
  static constexpr const char* kName = "FMB32";
  static constexpr uint32_t kMagic = 0x50464d33;  // "PFM3"
  static constexpr double kDefaultBitsPerKey = 8.0;
  static void Add(uint32_t h, Lane* block) { Fmb32Add(h, block); }
  static bool Contains(uint32_t h, const Lane* block) {
    return Fmb32Contains(h, block);
  }
  static void AddPortable(uint32_t h, Lane* block) {
    Fmb32AddPortable(h, block);
  }
  static bool ContainsPortable(uint32_t h, const Lane* block) {
    return Fmb32ContainsPortable(h, block);
  }
};

struct Fmb64Traits {
  using Lane = uint64_t;
  static constexpr const char* kName = "FMB64";
  static constexpr uint32_t kMagic = 0x50464d36;  // "PFM6"
  static constexpr double kDefaultBitsPerKey = 12.0;
  static void Add(uint32_t h, Lane* block) { Fmb64Add(h, block); }
  static bool Contains(uint32_t h, const Lane* block) {
    return Fmb64Contains(h, block);
  }
  static void AddPortable(uint32_t h, Lane* block) {
    Fmb64AddPortable(h, block);
  }
  static bool ContainsPortable(uint32_t h, const Lane* block) {
    return Fmb64ContainsPortable(h, block);
  }
};

template <typename Traits>
class FastMultiBlockFilter {
 public:
  using Lane = typename Traits::Lane;
  static constexpr int kLanesPerBlock = 8;
  static constexpr int kBlockBytes = kLanesPerBlock * sizeof(Lane);

  // ceil(capacity * bits_per_key / block_bits) blocks, fastrange-indexed.
  static FastMultiBlockFilter Make(
      uint64_t capacity, double bits_per_key = Traits::kDefaultBitsPerKey,
      uint64_t seed = 0xf3bu) {
    const uint64_t blocks = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(static_cast<double>(capacity) * bits_per_key /
                         (kBlockBytes * 8))));
    return FastMultiBlockFilter(capacity, blocks, bits_per_key, seed);
  }

  bool Insert(uint64_t key) {
    const uint64_t h = hash_(key);
    Traits::Add(static_cast<uint32_t>(h), BlockPtr(BlockIndex(h)));
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    return Traits::Contains(static_cast<uint32_t>(h), BlockPtr(BlockIndex(h)));
  }

  // Prefetching batch probe: hash and prefetch a 16-key window, then run the
  // one-load-per-key vector test over it.  Picked up by the AnyFilter
  // adapter's byte-batch detection, so routed shard groups and bench batch
  // loops land here with one dispatch per batch.
  void ContainsBatch(const uint64_t* keys, size_t count, uint8_t* out) const {
    constexpr size_t kChunk = 16;
    uint64_t hashes[kChunk];
    uint64_t blocks[kChunk];
    for (size_t base = 0; base < count; base += kChunk) {
      const size_t chunk = std::min(kChunk, count - base);
      for (size_t i = 0; i < chunk; ++i) {
        hashes[i] = hash_(keys[base + i]);
        blocks[i] = BlockIndex(hashes[i]);
        __builtin_prefetch(BlockPtr(blocks[i]), 0, 1);
      }
      for (size_t i = 0; i < chunk; ++i) {
        out[base + i] = Traits::Contains(static_cast<uint32_t>(hashes[i]),
                                         BlockPtr(blocks[i])) ? 1 : 0;
      }
    }
  }

  // Portable-kernel twins (same hashing and geometry, scalar lane loops):
  // the kernel differential harness inserts through one flavor and probes
  // through both; the ablation bench uses them as the scalar baseline.
  bool InsertPortable(uint64_t key) {
    const uint64_t h = hash_(key);
    Traits::AddPortable(static_cast<uint32_t>(h), BlockPtr(BlockIndex(h)));
    ++size_;
    return true;
  }

  bool ContainsPortable(uint64_t key) const {
    const uint64_t h = hash_(key);
    return Traits::ContainsPortable(static_cast<uint32_t>(h),
                                    BlockPtr(BlockIndex(h)));
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t num_blocks() const { return num_blocks_; }
  size_t SpaceBytes() const { return lanes_.SizeBytes(); }
  std::string Name() const { return Traits::kName; }

  // --- persistence ----------------------------------------------------------

  void SerializeTo(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    w.U32(Traits::kMagic);
    w.U8(1);
    w.U64(capacity_);
    w.U64(num_blocks_);
    w.F64(bits_per_key_);
    w.U64(seed_);
    w.U64(size_);
    w.Raw(lanes_.data(), lanes_.SizeBytes());
  }

  static std::optional<FastMultiBlockFilter> Deserialize(const uint8_t* data,
                                                         size_t len) {
    ByteReader r(data, len);
    if (r.U32() != Traits::kMagic || r.U8() != 1) return std::nullopt;
    const uint64_t capacity = r.U64();
    const uint64_t num_blocks = r.U64();
    const double bits_per_key = r.F64();
    const uint64_t seed = r.U64();
    const uint64_t size = r.U64();
    if (!r.ok() || num_blocks == 0 || !(bits_per_key > 0.0)) {
      return std::nullopt;
    }
    // Verify the advertised geometry against the actual byte count BEFORE
    // allocating, so corrupted block counts are rejected, not malloc'd.
    if (num_blocks > r.remaining() / kBlockBytes + 1 ||
        RoundUpToCacheLine(num_blocks * kBlockBytes) != r.remaining()) {
      return std::nullopt;
    }
    FastMultiBlockFilter f(capacity, num_blocks, bits_per_key, seed);
    if (!r.Raw(f.lanes_.data(), f.lanes_.SizeBytes()) || r.remaining() != 0) {
      return std::nullopt;
    }
    f.size_ = size;
    return f;
  }

 private:
  FastMultiBlockFilter(uint64_t capacity, uint64_t num_blocks,
                       double bits_per_key, uint64_t seed)
      : capacity_(capacity),
        num_blocks_(num_blocks),
        bits_per_key_(bits_per_key),
        lanes_(num_blocks * kLanesPerBlock),
        hash_(seed),
        seed_(seed) {}

  // High hash bits pick the block (fastrange); the lane kernels consume the
  // low 32 bits, so block choice and lane positions stay independent.
  uint64_t BlockIndex(uint64_t h) const {
    return FastRange64(h, num_blocks_);
  }

  Lane* BlockPtr(uint64_t block) {
    return lanes_.data() + block * kLanesPerBlock;
  }
  const Lane* BlockPtr(uint64_t block) const {
    return lanes_.data() + block * kLanesPerBlock;
  }

  uint64_t capacity_;
  uint64_t num_blocks_;
  double bits_per_key_;
  AlignedBuffer<Lane> lanes_;
  Dietzfelbinger64 hash_;
  uint64_t seed_;
  uint64_t size_ = 0;
};

using FastMultiBlock32 = FastMultiBlockFilter<Fmb32Traits>;
using FastMultiBlock64 = FastMultiBlockFilter<Fmb64Traits>;

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_FAST_MULTIBLOCK_H_
