// Standard Bloom filter "BF-x[k]" (paper §7.1.1).
//
// The paper evaluates an optimized Bloom filter that derives its k probe
// positions from two hash values via double hashing (g_i = h1 + i*h2), with
// x bits per key.  BF-8 uses k=6, BF-12 uses k=8, BF-16 uses k=11 — the
// optimal k = round(x * ln 2) for each size.
#ifndef PREFIXFILTER_SRC_FILTERS_BLOOM_H_
#define PREFIXFILTER_SRC_FILTERS_BLOOM_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/hash.h"
#include "src/util/serialize.h"

namespace prefixfilter {

class BloomFilter {
 public:
  // A filter for up to `capacity` keys using `bits_per_key` bits and
  // `num_hashes` probes per key.  num_hashes == 0 selects the optimal
  // round(bits_per_key * ln 2).
  BloomFilter(uint64_t capacity, double bits_per_key, int num_hashes = 0,
              uint64_t seed = 0x50f1u)
      : capacity_(capacity),
        num_hashes_(num_hashes > 0
                        ? num_hashes
                        : std::max(1, static_cast<int>(
                                          std::lround(bits_per_key * M_LN2)))),
        num_bits_(std::max<uint64_t>(
            64, static_cast<uint64_t>(bits_per_key * capacity))),
        words_((num_bits_ + 63) / 64),
        hash_(seed),
        seed_(seed) {}

  // --- persistence (the LSM build-once/load-later lifecycle, §1) -----------

  static constexpr uint32_t kMagic = 0x50464246;  // "PFBF"

  void SerializeTo(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    w.U32(kMagic);
    w.U8(1);
    w.U64(capacity_);
    w.U32(static_cast<uint32_t>(num_hashes_));
    w.U64(num_bits_);
    w.U64(seed_);
    w.U64(size_);
    w.Raw(words_.data(), words_.SizeBytes());
  }

  static std::optional<BloomFilter> Deserialize(const uint8_t* data,
                                                size_t len) {
    ByteReader r(data, len);
    if (r.U32() != kMagic || r.U8() != 1) return std::nullopt;
    const uint64_t capacity = r.U64();
    const int num_hashes = static_cast<int>(r.U32());
    const uint64_t num_bits = r.U64();
    const uint64_t seed = r.U64();
    const uint64_t size = r.U64();
    if (!r.ok() || capacity == 0 || num_hashes <= 0 || num_bits == 0 ||
        num_bits > (uint64_t{1} << 48)) {
      return std::nullopt;
    }
    // Geometry check before allocating: the payload must hold the table.
    if (RoundUpToCacheLine((num_bits + 63) / 64 * 8) != r.remaining()) {
      return std::nullopt;
    }
    BloomFilter f(RawParts{}, capacity, num_hashes, num_bits, seed);
    if (!r.Raw(f.words_.data(), f.words_.SizeBytes()) || r.remaining() != 0) {
      return std::nullopt;
    }
    f.size_ = size;
    return f;
  }

  bool Insert(uint64_t key) {
    uint64_t h1 = hash_(key);
    const uint64_t h2 = Mix64(h1) | 1;
    for (int i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = FastRange64(h1, num_bits_);
      words_[bit >> 6] |= uint64_t{1} << (bit & 63);
      h1 += h2;
    }
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    uint64_t h1 = hash_(key);
    const uint64_t h2 = Mix64(h1) | 1;
    for (int i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = FastRange64(h1, num_bits_);
      if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
      h1 += h2;
    }
    return true;
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  size_t SpaceBytes() const { return words_.SizeBytes(); }
  int num_hashes() const { return num_hashes_; }

  std::string Name() const {
    const int bpk = static_cast<int>(
        std::lround(static_cast<double>(num_bits_) / capacity_));
    return "BF-" + std::to_string(bpk) + "[k=" + std::to_string(num_hashes_) +
           "]";
  }

 private:
  // Field-exact constructor used by Deserialize (tag-disambiguated from the
  // public bits-per-key constructor).
  struct RawParts {};
  BloomFilter(RawParts, uint64_t capacity, int num_hashes, uint64_t num_bits,
              uint64_t seed)
      : capacity_(capacity),
        num_hashes_(num_hashes),
        num_bits_(num_bits),
        words_((num_bits + 63) / 64),
        hash_(seed),
        seed_(seed) {}

  uint64_t capacity_;
  int num_hashes_;
  uint64_t num_bits_;
  AlignedBuffer<uint64_t> words_;
  Dietzfelbinger64 hash_;
  uint64_t seed_;
  uint64_t size_ = 0;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_FILTERS_BLOOM_H_
