// Direct-mapped front cache of recent positive membership answers.
//
// Motivation (ROADMAP, PR-2 sweep): on the `adversarial-dup` workload (90%
// of queries drawn from a 64-key hot set) a blocked Bloom filter beats the
// prefix filter ~4x simply because the hot set is cache-resident.  A tiny
// exact-key cache in front of the service absorbs exactly that traffic: a
// repeat of a recently-positive key is answered from one cache line without
// touching the filter, shard lock, or router.
//
// Design:
//  * Power-of-two slot array of plain 64-bit keys; slot index is the high
//    bits of Mix64(key), so the placement is independent of every filter's
//    own hashing.
//  * Stores POSITIVE answers only.  Filters never delete, so a key once
//    reported present stays present — a cached positive can never go stale,
//    and a lookup miss simply falls through to the filter.  The cache
//    therefore cannot introduce false negatives, and every positive it
//    serves is an answer the filter itself gave earlier (the service's
//    observable answers are bit-identical with and without the cache).
//  * Thread-safe via relaxed atomics.  Races lose an insert or serve a miss
//    at worst; they never fabricate a hit for a different key because a hit
//    requires an exact 64-bit key match in the slot.  Deliberately carries
//    no PF_GUARDED_BY annotations: there is no mutex capability here — the
//    whole structure is a single atomic array, and the thread-safety
//    analysis (src/util/thread_annotations.h) has nothing to prove beyond
//    what the std::atomic types already guarantee.
//  * One reserved sentinel (the all-ones key) marks empty slots; that single
//    key is simply never cached.
#ifndef PREFIXFILTER_SRC_SERVICE_FRONT_CACHE_H_
#define PREFIXFILTER_SRC_SERVICE_FRONT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/util/bits.h"
#include "src/util/hash.h"

namespace prefixfilter {

class FrontCache {
 public:
  // `slots` is rounded up to a power of two (minimum 2).
  explicit FrontCache(size_t slots)
      : mask_(NextPow2(slots < 2 ? 2 : slots) - 1),
        slots_(new std::atomic<uint64_t>[mask_ + 1]) {
    for (size_t i = 0; i <= mask_; ++i) {
      slots_[i].store(kEmpty, std::memory_order_relaxed);
    }
  }

  // True iff `key` was recently stored as a positive.  The sentinel key is
  // explicitly excluded: an empty slot holds kEmpty, and matching it would
  // fabricate a positive the filter never gave.
  bool Lookup(uint64_t key) const {
    return key != kEmpty &&
           slots_[SlotOf(key)].load(std::memory_order_relaxed) == key;
  }

  // Records a positive answer for `key` (evicting whatever shared its slot).
  void Store(uint64_t key) {
    if (key == kEmpty) return;
    slots_[SlotOf(key)].store(key, std::memory_order_relaxed);
  }

  size_t num_slots() const { return mask_ + 1; }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  size_t SlotOf(uint64_t key) const {
    return static_cast<size_t>(Mix64(key)) & mask_;
  }

  size_t mask_;
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_SERVICE_FRONT_CACHE_H_
