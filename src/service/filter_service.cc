#include "src/service/filter_service.h"

#include <algorithm>
#include <utility>

namespace prefixfilter {

FilterService::FilterService(std::shared_ptr<ShardedFilter> filter,
                             FilterServiceOptions options)
    : filter_(std::move(filter)),
      num_threads_(options.num_threads),
      max_pending_(std::max<size_t>(1, options.max_pending)),
      front_cache_(options.front_cache_slots > 0
                       ? std::make_unique<FrontCache>(options.front_cache_slots)
                       : nullptr),
      registry_(options.registry != nullptr
                    ? options.registry
                    : &obs::MetricsRegistry::Global()),
      queue_depth_gauge_(registry_->GetGauge("service.queue.depth")),
      queue_wait_hist_(registry_->GetHistogram("service.queue.wait.ns")),
      insert_exec_hist_(
          registry_->GetHistogram("service.exec.ns", {{"op", "insert"}})),
      query_exec_hist_(
          registry_->GetHistogram("service.exec.ns", {{"op", "query"}})),
      insert_batch_keys_hist_(
          registry_->GetHistogram("service.batch.keys", {{"op", "insert"}})),
      query_batch_keys_hist_(
          registry_->GetHistogram("service.batch.keys", {{"op", "query"}})) {
  filter_->EnableMetrics(registry_);
  collector_id_ = registry_->AddCollector(
      [this](std::vector<obs::MetricSample>* samples) {
        const FilterServiceStats s = stats();
        const auto counter = [samples](const char* name, uint64_t value,
                                       obs::MetricsRegistry::Labels labels =
                                           {}) {
          obs::MetricSample sample;
          sample.name = name;
          sample.labels = std::move(labels);
          sample.kind = obs::MetricKind::kCounter;
          sample.value = static_cast<int64_t>(value);
          samples->push_back(std::move(sample));
        };
        counter("service.batches", s.insert_batches, {{"op", "insert"}});
        counter("service.batches", s.query_batches, {{"op", "query"}});
        counter("service.keys", s.keys_inserted, {{"op", "insert"}});
        counter("service.keys", s.keys_queried, {{"op", "query"}});
        counter("service.insert.failures", s.insert_failures);
        counter("service.front_cache.hits", s.front_cache_hits);
        counter("service.front_cache.misses", s.front_cache_misses);
      });
  workers_.reserve(num_threads_);
  for (uint32_t t = 0; t < num_threads_; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

FilterService::~FilterService() {
  Stop();
  // After this the collector can never fire again (RemoveCollector holds the
  // registry lock against in-flight Collect calls), so members it reads may
  // be torn down.
  registry_->RemoveCollector(collector_id_);
}

std::future<uint64_t> FilterService::InsertBatch(std::vector<uint64_t> keys) {
  Request request;
  request.is_insert = true;
  request.keys = std::move(keys);
  std::future<uint64_t> result = request.insert_result.get_future();
  Enqueue(std::move(request));
  return result;
}

std::future<std::vector<uint8_t>> FilterService::QueryBatch(
    std::vector<uint64_t> keys) {
  Request request;
  request.is_insert = false;
  request.keys = std::move(keys);
  std::future<std::vector<uint8_t>> result =
      request.query_result.get_future();
  Enqueue(std::move(request));
  return result;
}

void FilterService::QueryBatchAsync(std::vector<uint64_t> keys,
                                    QueryCallback done,
                                    std::shared_ptr<obs::ActiveTrace> trace) {
  Request request;
  request.is_insert = false;
  request.keys = std::move(keys);
  request.query_callback = std::move(done);
  request.trace = std::move(trace);
  Enqueue(std::move(request));
}

void FilterService::Enqueue(Request request) {
  if (num_threads_ == 0) {
    Execute(request);
    return;
  }
  request.enqueue_ns = obs::NowNanos();
  bool queued = false;
  {
    MutexLock lock(mutex_);
    while (!stopping_ && queue_.size() >= max_pending_) {
      queue_nonfull_.Wait(mutex_);
    }
    if (!stopping_) {
      queue_.push_back(std::move(request));
      queued = true;
    }
  }
  if (!queued) {
    // The pool is gone; degrade to synchronous execution rather than
    // dropping the batch or deadlocking the submitter.
    Execute(request);
    return;
  }
  queue_depth_gauge_->Add(1);
  queue_nonempty_.NotifyOne();
}

void FilterService::Execute(Request& request) {
  if (request.is_insert) {
    request.insert_result.set_value(
        InsertBatchSync(request.keys.data(), request.keys.size()));
  } else {
    std::vector<uint8_t> out(request.keys.size());
    QueryBatchSync(request.keys.data(), request.keys.size(), out.data(),
                   request.trace.get());
    if (request.query_callback) {
      request.query_callback(std::move(out));
    } else {
      request.query_result.set_value(std::move(out));
    }
  }
}

uint64_t FilterService::InsertBatchSync(const uint64_t* keys, size_t count) {
  obs::ScopedLatency timer(insert_exec_hist_);
  insert_batch_keys_hist_->Record(count);
  ReaderMutexLock snapshot_guard(snapshot_mutex_);
  const uint64_t failures = filter_->InsertBatch(keys, count);
  insert_batches_.fetch_add(1, std::memory_order_relaxed);
  keys_inserted_.fetch_add(count, std::memory_order_relaxed);
  insert_failures_.fetch_add(failures, std::memory_order_relaxed);
  return failures;
}

void FilterService::QueryBatchSync(const uint64_t* keys, size_t count,
                                   uint8_t* out, obs::ActiveTrace* trace) {
  if (query_fault_hook_armed_.load(std::memory_order_acquire)) {
    std::function<void(const uint64_t*, size_t)> hook;
    {
      MutexLock lock(query_fault_hook_mutex_);
      hook = query_fault_hook_;
    }
    if (hook) hook(keys, count);
  }
  obs::ScopedLatency timer(query_exec_hist_);
  query_batch_keys_hist_->Record(count);
  const uint64_t exec_start_ns = trace != nullptr ? obs::NowNanos() : 0;
  {
    ReaderMutexLock snapshot_guard(snapshot_mutex_);
    // Deep layers (ShardedFilter's per-shard probes) pick the trace up via
    // the thread-local; the shard-probe spans land inside the exec span.
    obs::ScopedCurrentTrace current(trace);
    QueryLocked(keys, count, out);
  }
  if (trace != nullptr) {
    trace->AddSpan(obs::TraceStage::kExec, exec_start_ns, obs::NowNanos());
  }
  query_batches_.fetch_add(1, std::memory_order_relaxed);
  keys_queried_.fetch_add(count, std::memory_order_relaxed);
}

namespace {

// Per-thread scratch for the cached query path (same pattern as
// ShardedFilter::ThreadLocalRouter): the batch path stays allocation-free
// after warm-up even with the front cache enabled.
struct QueryScratch {
  std::vector<uint64_t> miss_keys;
  std::vector<size_t> miss_pos;
  std::vector<uint8_t> miss_out;
};

QueryScratch& ThreadLocalQueryScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

void FilterService::QueryLocked(const uint64_t* keys, size_t count,
                                uint8_t* out) {
  if (front_cache_ == nullptr) {
    filter_->ContainsBatch(keys, count, out);
    return;
  }
  // Split the batch at the cache: hits are answered immediately (these are
  // answers the filter itself gave earlier, so observable results are
  // unchanged), only misses pay the router/shard path.
  QueryScratch& scratch = ThreadLocalQueryScratch();
  scratch.miss_keys.clear();
  scratch.miss_pos.clear();
  scratch.miss_keys.reserve(count);
  scratch.miss_pos.reserve(count);
  uint64_t cache_hits = 0;
  for (size_t i = 0; i < count; ++i) {
    if (front_cache_->Lookup(keys[i])) {
      out[i] = 1;
      ++cache_hits;
    } else {
      scratch.miss_keys.push_back(keys[i]);
      scratch.miss_pos.push_back(i);
    }
  }
  if (!scratch.miss_keys.empty()) {
    scratch.miss_out.resize(scratch.miss_keys.size());
    filter_->ContainsBatch(scratch.miss_keys.data(), scratch.miss_keys.size(),
                           scratch.miss_out.data());
    for (size_t m = 0; m < scratch.miss_keys.size(); ++m) {
      out[scratch.miss_pos[m]] = scratch.miss_out[m];
      if (scratch.miss_out[m]) front_cache_->Store(scratch.miss_keys[m]);
    }
    front_cache_misses_.fetch_add(scratch.miss_keys.size(),
                                  std::memory_order_relaxed);
  }
  if (cache_hits != 0) {
    front_cache_hits_.fetch_add(cache_hits, std::memory_order_relaxed);
  }
}

bool FilterService::Contains(uint64_t key) const {
  if (front_cache_ != nullptr) {
    if (front_cache_->Lookup(key)) {
      front_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    front_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    const bool hit = filter_->Contains(key);
    if (hit) front_cache_->Store(key);
    return hit;
  }
  return filter_->Contains(key);
}

void FilterService::WorkerLoop() {
  for (;;) {
    Request request;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) queue_nonempty_.Wait(mutex_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    queue_depth_gauge_->Add(-1);
    const uint64_t picked_up_ns = obs::NowNanos();
    queue_wait_hist_->Record(picked_up_ns - request.enqueue_ns);
    if (request.trace != nullptr) {
      request.trace->AddSpan(obs::TraceStage::kQueueWait, request.enqueue_ns,
                             picked_up_ns);
    }
    queue_nonfull_.NotifyOne();
    Execute(request);
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

void FilterService::Drain() {
  if (num_threads_ == 0) return;
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) idle_.Wait(mutex_);
}

bool FilterService::Snapshot(std::vector<uint8_t>* out) {
  Drain();
  // Exclusive against Execute: a batch racing the serialization would
  // otherwise be acknowledged yet only partially captured (its keys in
  // already-serialized shards silently dropped — false negatives after
  // Restore).  Held only for the serialization itself.
  WriterMutexLock snapshot_guard(snapshot_mutex_);
  return filter_->SerializeTo(out);
}

std::shared_ptr<ShardedFilter> FilterService::Restore(const uint8_t* data,
                                                      size_t len) {
  std::unique_ptr<AnyFilter> any = DeserializeFilter(data, len);
  auto* sharded = dynamic_cast<ShardedFilter*>(any.get());
  if (sharded == nullptr) return nullptr;
  any.release();
  return std::shared_ptr<ShardedFilter>(sharded);
}

FilterServiceStats FilterService::stats() const {
  FilterServiceStats s;
  s.insert_batches = insert_batches_.load(std::memory_order_relaxed);
  s.query_batches = query_batches_.load(std::memory_order_relaxed);
  s.keys_inserted = keys_inserted_.load(std::memory_order_relaxed);
  s.keys_queried = keys_queried_.load(std::memory_order_relaxed);
  s.insert_failures = insert_failures_.load(std::memory_order_relaxed);
  s.front_cache_hits = front_cache_hits_.load(std::memory_order_relaxed);
  s.front_cache_misses = front_cache_misses_.load(std::memory_order_relaxed);
  return s;
}

void FilterService::SetQueryFaultHookForTesting(
    std::function<void(const uint64_t* keys, size_t count)> hook) {
  MutexLock lock(query_fault_hook_mutex_);
  query_fault_hook_ = std::move(hook);
  query_fault_hook_armed_.store(query_fault_hook_ != nullptr,
                                std::memory_order_release);
}

void FilterService::Stop() {
  {
    // Idempotent: on a second call workers_ is already empty and the joins
    // below are no-ops.
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  queue_nonempty_.NotifyAll();
  queue_nonfull_.NotifyAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Workers exit only once the queue is empty, so every accepted batch has
  // completed by the time Stop() returns.
}

std::shared_ptr<FilterService> MakeFilterService(
    const std::string& filter_name, uint64_t capacity,
    FilterServiceOptions options, uint64_t seed) {
  ShardedFilterOptions sharded;
  if (!ShardedFilter::ParseName(filter_name, &sharded)) {
    sharded.num_shards = 1;
    sharded.backend = filter_name;
  }
  sharded.seed = seed;
  auto filter = ShardedFilter::Make(capacity, sharded);
  if (filter == nullptr) return nullptr;
  return std::make_shared<FilterService>(
      std::shared_ptr<ShardedFilter>(filter.release()), options);
}

}  // namespace prefixfilter
