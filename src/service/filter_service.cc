#include "src/service/filter_service.h"

#include <algorithm>
#include <utility>

namespace prefixfilter {

FilterService::FilterService(std::shared_ptr<ShardedFilter> filter,
                             FilterServiceOptions options)
    : filter_(std::move(filter)),
      num_threads_(options.num_threads),
      max_pending_(std::max<size_t>(1, options.max_pending)) {
  workers_.reserve(num_threads_);
  for (uint32_t t = 0; t < num_threads_; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

FilterService::~FilterService() { Stop(); }

std::future<uint64_t> FilterService::InsertBatch(std::vector<uint64_t> keys) {
  Request request;
  request.is_insert = true;
  request.keys = std::move(keys);
  std::future<uint64_t> result = request.insert_result.get_future();
  Enqueue(std::move(request));
  return result;
}

std::future<std::vector<uint8_t>> FilterService::QueryBatch(
    std::vector<uint64_t> keys) {
  Request request;
  request.is_insert = false;
  request.keys = std::move(keys);
  std::future<std::vector<uint8_t>> result =
      request.query_result.get_future();
  Enqueue(std::move(request));
  return result;
}

void FilterService::Enqueue(Request request) {
  if (num_threads_ == 0) {
    Execute(request);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      // The pool is gone; degrade to synchronous execution rather than
      // dropping the batch or deadlocking the submitter.
      lock.unlock();
      Execute(request);
      return;
    }
    queue_nonfull_.wait(lock, [this]() {
      return stopping_ || queue_.size() < max_pending_;
    });
    if (stopping_) {
      lock.unlock();
      Execute(request);
      return;
    }
    queue_.push_back(std::move(request));
  }
  queue_nonempty_.notify_one();
}

void FilterService::Execute(Request& request) {
  std::shared_lock<std::shared_mutex> snapshot_guard(snapshot_mutex_);
  if (request.is_insert) {
    const uint64_t failures =
        filter_->InsertBatch(request.keys.data(), request.keys.size());
    insert_batches_.fetch_add(1, std::memory_order_relaxed);
    keys_inserted_.fetch_add(request.keys.size(), std::memory_order_relaxed);
    insert_failures_.fetch_add(failures, std::memory_order_relaxed);
    request.insert_result.set_value(failures);
  } else {
    std::vector<uint8_t> out(request.keys.size());
    filter_->ContainsBatch(request.keys.data(), request.keys.size(),
                           out.data());
    query_batches_.fetch_add(1, std::memory_order_relaxed);
    keys_queried_.fetch_add(request.keys.size(), std::memory_order_relaxed);
    request.query_result.set_value(std::move(out));
  }
}

void FilterService::WorkerLoop() {
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_nonempty_.wait(lock,
                           [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    queue_nonfull_.notify_one();
    Execute(request);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void FilterService::Drain() {
  if (num_threads_ == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

bool FilterService::Snapshot(std::vector<uint8_t>* out) {
  Drain();
  // Exclusive against Execute: a batch racing the serialization would
  // otherwise be acknowledged yet only partially captured (its keys in
  // already-serialized shards silently dropped — false negatives after
  // Restore).  Held only for the serialization itself.
  std::unique_lock<std::shared_mutex> snapshot_guard(snapshot_mutex_);
  return filter_->SerializeTo(out);
}

std::shared_ptr<ShardedFilter> FilterService::Restore(const uint8_t* data,
                                                      size_t len) {
  std::unique_ptr<AnyFilter> any = DeserializeFilter(data, len);
  auto* sharded = dynamic_cast<ShardedFilter*>(any.get());
  if (sharded == nullptr) return nullptr;
  any.release();
  return std::shared_ptr<ShardedFilter>(sharded);
}

FilterServiceStats FilterService::stats() const {
  FilterServiceStats s;
  s.insert_batches = insert_batches_.load(std::memory_order_relaxed);
  s.query_batches = query_batches_.load(std::memory_order_relaxed);
  s.keys_inserted = keys_inserted_.load(std::memory_order_relaxed);
  s.keys_queried = keys_queried_.load(std::memory_order_relaxed);
  s.insert_failures = insert_failures_.load(std::memory_order_relaxed);
  return s;
}

void FilterService::Stop() {
  {
    // Idempotent: on a second call workers_ is already empty and the joins
    // below are no-ops.
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_nonempty_.notify_all();
  queue_nonfull_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Workers exit only once the queue is empty, so every accepted batch has
  // completed by the time Stop() returns.
}

}  // namespace prefixfilter
