// Hash-partitioned sharded filter: the scale-out building block of the
// filter service (ROADMAP: serve heavy multi-user traffic).
//
// The key universe is partitioned over N = 2^b shards by an independent
// mixer of the key; each shard is a complete, independently-seeded filter
// behind the AnyFilter interface (by default a prefix filter, whose
// single-cache-line queries the paper §5 makes the natural shard backend).
// Each shard is guarded by its own line-padded mutex, so concurrent clients
// contend only when they hit the same shard — the same per-partition-locking
// argument the paper makes for per-bin locking in §4.4, lifted one level up.
//
// Sizing: a shard receives Binomial(n, 1/N) of the n keys, so each shard is
// provisioned for n/N plus balls-into-bins headroom (4 standard deviations,
// the same rule the concurrent prefix filter's sharded spare uses).  Each
// shard therefore runs at essentially the load factor a single filter of
// capacity n would, which keeps the global false positive rate within a few
// percent of the unsharded equivalent (verified in tests/sharded_filter_test).
//
// Snapshots use the AnyFilter envelope of src/core/filter_factory.h: the
// sharded payload is the shard geometry followed by each shard's own
// length-prefixed envelope, so a snapshot round-trips through
// DeserializeFilter() like any other filter.
#ifndef PREFIXFILTER_SRC_SERVICE_SHARDED_FILTER_H_
#define PREFIXFILTER_SRC_SERVICE_SHARDED_FILTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/filter_factory.h"
#include "src/obs/metrics.h"
#include "src/util/hash.h"
#include "src/util/thread_annotations.h"

namespace prefixfilter {

struct ShardedFilterOptions {
  // Rounded up to a power of two.
  uint32_t num_shards = 16;
  // Factory name of the per-shard filter.  Sharded backends are rejected
  // (nesting would compound sizing headroom and allow unbounded recursion in
  // Deserialize).
  std::string backend = "PF[TC]";
  uint64_t seed = 0x5ead5u;
  // Balls-into-bins slack: per-shard capacity is
  //   n/N + headroom_stddevs * sqrt(n * (1/N) * (1 - 1/N)) + 16.
  double headroom_stddevs = 4.0;
};

// Per-shard operation counters (prefix_filter_stats.h style), maintained
// under the shard lock and snapshotted by value.
struct ShardStats {
  uint64_t inserts = 0;
  uint64_t insert_failures = 0;
  uint64_t queries = 0;
  uint64_t hits = 0;
};

class ShardedFilter final : public AnyFilter {
 public:
  // Builds an empty sharded filter for up to `capacity` keys.  Returns
  // nullptr iff options.backend is not an accepted non-sharded name.
  static std::unique_ptr<ShardedFilter> Make(uint64_t capacity,
                                             ShardedFilterOptions options);

  // Parses "SHARD<n>[<inner>]" into num_shards/backend.  Returns false (and
  // leaves *options untouched) for anything else, including sharded inners.
  static bool ParseName(const std::string& name,
                        ShardedFilterOptions* options);

  // Restores from the payload of an AnyFilter envelope whose name parsed to
  // `options` (see DeserializeFilter in src/core/filter_factory.h).
  static std::unique_ptr<AnyFilter> DeserializePayload(
      const uint8_t* payload, size_t len, const ShardedFilterOptions& options);

  // --- AnyFilter ------------------------------------------------------------

  bool Insert(uint64_t key) override;
  bool Contains(uint64_t key) const override;
  // Cross-shard batches route through BatchRouter so each shard group drains
  // through the backend's prefetching batch path (one lock + one pass per
  // shard instead of one lock per key).  Fast paths skip the grouping
  // machinery entirely for 1-key batches (inline route-on-query) and for
  // single-shard filters (everything is one group by construction).
  void ContainsBatch(const uint64_t* keys, size_t count,
                     uint8_t* out) const override;
  bool SerializeTo(std::vector<uint8_t>* out) const override;
  size_t SpaceBytes() const override;
  uint64_t Capacity() const override { return capacity_; }
  std::string Name() const override;

  // --- sharding surface (used by BatchRouter and FilterService) -------------

  uint32_t num_shards() const { return num_shards_; }
  uint32_t ShardOf(uint64_t key) const {
    // Independent of every backend's own hashing: the backends consume
    // Dietzfelbinger streams of the raw key, the shard selector a Mix64 of a
    // salted key.
    return shard_bits_ == 0
               ? 0
               : static_cast<uint32_t>(Mix64(key ^ shard_salt_) >>
                                       (64 - shard_bits_));
  }

  // Batch operations against one shard; each takes the shard lock once.
  // Keys must all map to `shard` (BatchRouter guarantees this).
  void QueryShard(uint32_t shard, const uint64_t* keys, size_t count,
                  uint8_t* out) const;
  // Returns the number of failed inserts.
  uint64_t InsertShard(uint32_t shard, const uint64_t* keys, size_t count);

  // Grouped insert (counting-sort by shard, then one lock + one concrete
  // batch call per shard).  Returns the number of failed inserts, per the
  // AnyFilter contract.
  uint64_t InsertBatch(const uint64_t* keys, size_t count) override;

  uint64_t per_shard_capacity() const { return per_shard_capacity_; }
  const std::string& backend() const { return options_.backend; }
  ShardStats shard_stats(uint32_t shard) const;
  // Aggregate over all shards.
  ShardStats TotalStats() const;

  // Attaches observability to `registry` (FilterService calls this when it
  // wraps the filter): per-shard-group batch sizes feed the
  // shard.group.keys histogram on the QueryShard/InsertShard paths, and a
  // scrape-time collector exposes per-shard occupancy/probe/hit counters
  // derived from the ShardStats this filter already maintains.  Deliberately
  // NOT called by the bare factory path, so standalone filters (bench_all's
  // scalar timing loops) carry zero instrumentation.  Detached automatically
  // in the destructor.
  void EnableMetrics(obs::MetricsRegistry* registry);

  ~ShardedFilter() override;

 private:
  ShardedFilter(uint64_t capacity, ShardedFilterOptions options);

  struct Shard {
    alignas(64) mutable Mutex mutex;
    // The shard lock guards both the filter contents and the counters; the
    // filter pointer itself is only written during construction/restore,
    // but taking the lock there too keeps the proof uniform (and free —
    // nothing contends at construction time).
    std::unique_ptr<AnyFilter> filter PF_GUARDED_BY(mutex);
    ShardStats stats PF_GUARDED_BY(mutex);
  };

  uint64_t capacity_;
  ShardedFilterOptions options_;
  uint32_t num_shards_;
  uint32_t shard_bits_;
  uint64_t shard_salt_;
  uint64_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Observability (null/0 until EnableMetrics; see its comment).
  obs::MetricsRegistry* registry_ = nullptr;
  obs::LatencyHistogram* group_keys_hist_ = nullptr;
  uint64_t collector_id_ = 0;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_SERVICE_SHARDED_FILTER_H_
