#include "src/service/sharded_filter.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/obs/trace.h"
#include "src/service/batch_router.h"
#include "src/util/bits.h"
#include "src/util/serialize.h"

namespace prefixfilter {
namespace {

constexpr uint32_t kMaxShards = 1 << 12;
// Bounds on constructor/snapshot inputs so the per-shard capacity math stays
// inside the exactly-representable double range (the double->uint64 cast in
// PerShardCapacity is undefined past 2^64; crafted snapshot fields must be
// rejected, not cast).
constexpr uint64_t kMaxCapacity = uint64_t{1} << 48;
constexpr double kMaxHeadroomStddevs = 64.0;

uint64_t PerShardCapacity(uint64_t capacity, uint32_t num_shards,
                          double headroom_stddevs) {
  const double p = 1.0 / num_shards;
  const double mean = static_cast<double>(capacity) * p;
  const double stddev =
      std::sqrt(static_cast<double>(capacity) * p * (1.0 - p));
  return static_cast<uint64_t>(std::ceil(mean + headroom_stddevs * stddev)) +
         16;
}

// One router per thread, shared by the batch query and insert paths (its
// scratch grows to the largest batch seen; two independent thread_locals
// would double that footprint on threads doing both).
BatchRouter& ThreadLocalRouter() {
  thread_local BatchRouter router;
  return router;
}

// Peeks the factory name out of an AnyFilter envelope without consuming it.
std::string PeekEnvelopeName(const uint8_t* data, size_t len) {
  ByteReader r(data, len);
  if (r.U32() != kAnyFilterMagic || r.U8() != 1) return std::string();
  std::string name = r.Str();
  return r.ok() ? name : std::string();
}

}  // namespace

ShardedFilter::ShardedFilter(uint64_t capacity, ShardedFilterOptions options)
    : capacity_(capacity),
      options_(std::move(options)),
      num_shards_(static_cast<uint32_t>(
          NextPow2(std::max<uint32_t>(1, options_.num_shards)))),
      shard_bits_(num_shards_ == 1 ? 0 : HighestSetBit64(num_shards_)),
      shard_salt_(Mix64(options_.seed ^ 0x5a4d9b4cf1e273a1ULL)),
      per_shard_capacity_(
          PerShardCapacity(capacity, num_shards_, options_.headroom_stddevs)) {
  options_.num_shards = num_shards_;
  shards_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::unique_ptr<ShardedFilter> ShardedFilter::Make(
    uint64_t capacity, ShardedFilterOptions options) {
  options.backend = CanonicalFilterName(options.backend);
  if (options.backend.rfind("SHARD", 0) == 0 || options.num_shards == 0 ||
      options.num_shards > kMaxShards || capacity == 0 ||
      capacity > kMaxCapacity || !(options.headroom_stddevs >= 0.0) ||
      options.headroom_stddevs > kMaxHeadroomStddevs) {
    return nullptr;
  }
  auto filter = std::unique_ptr<ShardedFilter>(
      new ShardedFilter(capacity, std::move(options)));
  for (uint32_t s = 0; s < filter->num_shards_; ++s) {
    // Independent per-shard seeds: each shard is a fully independent filter
    // (independent hash functions), as if it served its slice alone.
    const uint64_t shard_seed =
        filter->options_.seed ^ Mix64(filter->shard_salt_ + s);
    // The filter is not yet published, so the lock is uncontended; taking it
    // anyway satisfies the guarded_by proof without an analysis exception.
    Shard& shard = *filter->shards_[s];
    MutexLock guard(shard.mutex);
    shard.filter = MakeFilter(filter->options_.backend,
                              filter->per_shard_capacity_, shard_seed);
    if (shard.filter == nullptr) return nullptr;
  }
  return filter;
}

bool ShardedFilter::ParseName(const std::string& name,
                              ShardedFilterOptions* options) {
  constexpr char kPrefix[] = "SHARD";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.rfind(kPrefix, 0) != 0) return false;
  size_t i = kPrefixLen;
  uint64_t shards = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    shards = shards * 10 + static_cast<uint64_t>(name[i] - '0');
    if (shards > kMaxShards) return false;
    ++i;
  }
  // Power-of-two counts only: rounding here would make Name() differ from
  // the configuration name the filter was requested by, silently breaking
  // every registry keyed on the factory name.
  if (i == kPrefixLen || shards == 0 || (shards & (shards - 1)) != 0) {
    return false;
  }
  if (i >= name.size() || name[i] != '[') return false;
  if (name.back() != ']') return false;
  // Canonicalize the inner name here so Name(), shard construction, and the
  // per-shard snapshot envelopes all agree on one spelling (a snapshot
  // written under an alias backend would otherwise never restore: shard
  // blobs are tagged canonically while DeserializePayload compares against
  // the parsed backend string).
  const std::string inner =
      CanonicalFilterName(name.substr(i + 1, name.size() - i - 2));
  if (inner.empty() || inner.rfind(kPrefix, 0) == 0) return false;
  options->num_shards = static_cast<uint32_t>(shards);
  options->backend = inner;
  return true;
}

bool ShardedFilter::Insert(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  MutexLock guard(shard.mutex);
  ++shard.stats.inserts;
  if (shard.filter->Insert(key)) return true;
  ++shard.stats.insert_failures;
  return false;
}

bool ShardedFilter::Contains(uint64_t key) const {
  Shard& shard = *shards_[ShardOf(key)];
  MutexLock guard(shard.mutex);
  ++shard.stats.queries;
  const bool hit = shard.filter->Contains(key);
  shard.stats.hits += hit;
  return hit;
}

void ShardedFilter::ContainsBatch(const uint64_t* keys, size_t count,
                                  uint8_t* out) const {
  // Scalar fast path: a 1-key "batch" routes inline — counting-sorting a
  // single key would pay the router's full per-batch setup (the ~35-40%
  // single-thread overhead the PR-2 sweep flagged).
  if (count == 1) {
    out[0] = Contains(keys[0]) ? 1 : 0;
    return;
  }
  // Single-shard fast path: every key lands in shard 0, so the grouping
  // passes are pure overhead — drain the batch straight through the shard's
  // prefetching ContainsBatch under one lock.
  if (shard_bits_ == 0) {
    QueryShard(0, keys, count, out);
    return;
  }
  // Reusable per-thread scratch: callers hammering the batch path (service
  // workers, benches) pay no per-call allocations after warm-up.
  ThreadLocalRouter().Route(*this, keys, count, out);
}

void ShardedFilter::QueryShard(uint32_t shard_index, const uint64_t* keys,
                               size_t count, uint8_t* out) const {
  // Per-shard group size: how many keys of a routed batch landed together
  // (the distribution that tells whether counting-sort grouping is paying
  // off).  A null histogram (metrics not enabled) costs one predictable
  // branch.
  if (group_keys_hist_ != nullptr) group_keys_hist_->Record(count);
  // Traced requests record one span per shard group probed, including the
  // wait for the shard lock (lock contention is exactly what a slow-request
  // timeline needs to show).  Picked up through the thread-local so the
  // AnyFilter interface stays trace-free; constant-nullptr when PF_OBS=OFF.
  obs::ActiveTrace* trace = obs::CurrentTrace();
  const uint64_t probe_start_ns = trace != nullptr ? obs::NowNanos() : 0;
  {
    Shard& shard = *shards_[shard_index];
    MutexLock guard(shard.mutex);
    shard.filter->ContainsBatch(keys, count, out);
    shard.stats.queries += count;
    uint64_t hits = 0;
    for (size_t i = 0; i < count; ++i) hits += out[i];
    shard.stats.hits += hits;
  }
  if (trace != nullptr) {
    trace->AddSpan(obs::TraceStage::kShardProbe, probe_start_ns,
                   obs::NowNanos(),
                   (static_cast<uint64_t>(shard_index) << 32) |
                       static_cast<uint64_t>(count & 0xffffffffu));
  }
}

uint64_t ShardedFilter::InsertShard(uint32_t shard_index,
                                    const uint64_t* keys, size_t count) {
  if (group_keys_hist_ != nullptr) group_keys_hist_->Record(count);
  Shard& shard = *shards_[shard_index];
  MutexLock guard(shard.mutex);
  shard.stats.inserts += count;
  // One devirtualized batch call per shard group: the adapter's concrete
  // insert loop runs under the lock instead of count virtual Inserts.
  const uint64_t failures = shard.filter->InsertBatch(keys, count);
  shard.stats.insert_failures += failures;
  return failures;
}

uint64_t ShardedFilter::InsertBatch(const uint64_t* keys, size_t count) {
  // Mirrors the ContainsBatch fast paths: no grouping work when there is
  // nothing to group.
  if (count == 1) return Insert(keys[0]) ? 0 : 1;
  if (shard_bits_ == 0) return InsertShard(0, keys, count);
  uint64_t failures = 0;
  ThreadLocalRouter().GroupByShard(
      *this, keys, count, [&](uint32_t shard, const uint64_t* group, size_t n) {
        failures += InsertShard(shard, group, n);
      });
  return failures;
}

bool ShardedFilter::SerializeTo(std::vector<uint8_t>* out) const {
  WriteFilterEnvelope(Name(), out);
  ByteWriter w(out);
  w.U8(1);  // sharded payload version
  w.U32(num_shards_);
  w.U64(capacity_);
  w.U64(options_.seed);
  w.F64(options_.headroom_stddevs);
  w.Str(options_.backend);
  std::vector<uint8_t> blob;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& shard = *shards_[s];
    blob.clear();
    MutexLock guard(shard.mutex);
    if (!shard.filter->SerializeTo(&blob)) return false;
    w.U64(shard.stats.inserts);
    w.U64(shard.stats.insert_failures);
    w.U64(shard.stats.queries);
    w.U64(shard.stats.hits);
    w.U64(blob.size());
    w.Raw(blob.data(), blob.size());
  }
  return true;
}

std::unique_ptr<AnyFilter> ShardedFilter::DeserializePayload(
    const uint8_t* payload, size_t len, const ShardedFilterOptions& options) {
  ByteReader r(payload, len);
  if (r.U8() != 1) return nullptr;
  const uint32_t num_shards = r.U32();
  const uint64_t capacity = r.U64();
  const uint64_t seed = r.U64();
  const double headroom = r.F64();
  const std::string backend = r.Str();
  // The payload geometry must agree with the envelope name it was filed
  // under (the name encodes shard count and backend).
  if (!r.ok() || capacity == 0 || capacity > kMaxCapacity ||
      num_shards != options.num_shards ||
      (num_shards & (num_shards - 1)) != 0 || backend != options.backend ||
      !(headroom >= 0.0) || headroom > kMaxHeadroomStddevs ||
      backend.rfind("SHARD", 0) == 0) {
    return nullptr;
  }
  ShardedFilterOptions restored_options;
  restored_options.num_shards = num_shards;
  restored_options.backend = backend;
  restored_options.seed = seed;
  restored_options.headroom_stddevs = headroom;
  auto filter = std::unique_ptr<ShardedFilter>(
      new ShardedFilter(capacity, std::move(restored_options)));
  if (filter->num_shards_ != num_shards) return nullptr;
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardStats stats;
    stats.inserts = r.U64();
    stats.insert_failures = r.U64();
    stats.queries = r.U64();
    stats.hits = r.U64();
    const uint64_t blob_len = r.U64();
    if (!r.ok() || blob_len > r.remaining()) return nullptr;
    const uint8_t* blob = payload + (len - r.remaining());
    // Each shard blob must be an envelope for the declared backend; a valid
    // envelope of a *different* configuration is corruption, not a shard.
    if (PeekEnvelopeName(blob, blob_len) != backend) return nullptr;
    {
      // Unpublished filter: uncontended lock, same reasoning as Make().
      Shard& shard = *filter->shards_[s];
      MutexLock guard(shard.mutex);
      shard.filter = DeserializeFilter(blob, blob_len);
      if (shard.filter == nullptr) return nullptr;
      shard.stats = stats;
    }
    r.Skip(blob_len);
  }
  if (!r.ok() || r.remaining() != 0) return nullptr;
  return filter;
}

size_t ShardedFilter::SpaceBytes() const {
  // Takes each shard lock: the annotations surfaced that this walked
  // shard->filter (a guarded member) unlocked.  Today every backend's
  // SpaceBytes() reads construction-time geometry, so nothing races yet —
  // but the unlocked walk was one occupancy-derived backend away from a
  // silent data race, and it is exactly the kind of exception the analysis
  // exists to forbid.  See ShardedFilter.SpaceBytesConcurrentWithInserts.
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock guard(shard->mutex);
    total += shard->filter->SpaceBytes();
  }
  return total;
}

std::string ShardedFilter::Name() const {
  return "SHARD" + std::to_string(num_shards_) + "[" + options_.backend + "]";
}

ShardedFilter::~ShardedFilter() {
  // Must detach before the shards the collector reads are destroyed;
  // RemoveCollector blocks out any in-flight Collect().
  if (registry_ != nullptr) registry_->RemoveCollector(collector_id_);
}

void ShardedFilter::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr || registry_ != nullptr) return;
  registry_ = registry;
  group_keys_hist_ = registry->GetHistogram("shard.group.keys");
  // Scrape-time view over the ShardStats already maintained under the shard
  // locks — per-shard occupancy (keys the shard absorbed), probe counts, and
  // hits cost the hot path nothing extra.
  collector_id_ = registry->AddCollector(
      [this](std::vector<obs::MetricSample>* samples) {
        for (uint32_t s = 0; s < num_shards_; ++s) {
          const ShardStats stats = shard_stats(s);
          const std::string shard_label = std::to_string(s);
          obs::MetricSample occupancy;
          occupancy.name = "shard.occupancy.keys";
          occupancy.labels = {{"shard", shard_label}};
          occupancy.kind = obs::MetricKind::kGauge;
          occupancy.value =
              static_cast<int64_t>(stats.inserts - stats.insert_failures);
          samples->push_back(std::move(occupancy));
          obs::MetricSample probes;
          probes.name = "shard.probes";
          probes.labels = {{"shard", shard_label}};
          probes.kind = obs::MetricKind::kCounter;
          probes.value = static_cast<int64_t>(stats.queries);
          samples->push_back(std::move(probes));
          obs::MetricSample hits;
          hits.name = "shard.hits";
          hits.labels = {{"shard", shard_label}};
          hits.kind = obs::MetricKind::kCounter;
          hits.value = static_cast<int64_t>(stats.hits);
          samples->push_back(std::move(hits));
        }
      });
}

ShardStats ShardedFilter::shard_stats(uint32_t shard_index) const {
  const Shard& shard = *shards_[shard_index];
  MutexLock guard(shard.mutex);
  return shard.stats;
}

ShardStats ShardedFilter::TotalStats() const {
  ShardStats total;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const ShardStats stats = shard_stats(s);
    total.inserts += stats.inserts;
    total.insert_failures += stats.insert_failures;
    total.queries += stats.queries;
    total.hits += stats.hits;
  }
  return total;
}

}  // namespace prefixfilter
