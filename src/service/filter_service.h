// Thread-pool front-end over a ShardedFilter: the membership service the
// ROADMAP's north star asks for (many clients, batched traffic, async).
//
// Clients submit whole batches (the unit the paper's evaluation §7.3 uses)
// and receive std::futures; a fixed pool of workers drains an MPMC request
// queue, executing each batch through a per-worker BatchRouter so every
// batch pays one lock acquisition per touched shard and rides the
// prefetching ContainsBatch path inside each shard.
//
// Backpressure: the queue is bounded (options.max_pending); submitters block
// until a worker frees a slot, so a burst of clients cannot grow the queue
// without bound.  num_threads == 0 configures a synchronous service (batches
// execute on the submitting thread) — useful for tests and single-core
// deployments.
//
// Snapshot/restore: Snapshot() drains in-flight work and serializes the
// whole sharded filter through the AnyFilter envelope (ByteWriter wire
// format); Restore() is the inverse.  The snapshot is a plain byte vector:
// persist it next to your data like an LSM run's filter block (§1).
#ifndef PREFIXFILTER_SRC_SERVICE_FILTER_SERVICE_H_
#define PREFIXFILTER_SRC_SERVICE_FILTER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/front_cache.h"
#include "src/service/sharded_filter.h"
#include "src/util/thread_annotations.h"

namespace prefixfilter {

struct FilterServiceOptions {
  // Worker threads draining the request queue; 0 = synchronous execution on
  // the submitting thread.
  uint32_t num_threads = 4;
  // Bound on queued (not yet executing) requests; submitters block past it.
  size_t max_pending = 4096;
  // > 0 enables a direct-mapped front cache of recent positive answers with
  // this many slots (rounded up to a power of two) — see
  // src/service/front_cache.h.  Absorbs duplicate-heavy traffic without
  // changing any observable answer.  0 (the default) disables it.
  size_t front_cache_slots = 0;
  // Metrics registry the service (and its ShardedFilter) instruments into;
  // nullptr = the process-wide obs::MetricsRegistry::Global().  Tests pass a
  // local registry for isolation.
  obs::MetricsRegistry* registry = nullptr;
};

// Service-level counters (per-shard counters live in ShardedFilter).
struct FilterServiceStats {
  uint64_t insert_batches = 0;
  uint64_t query_batches = 0;
  uint64_t keys_inserted = 0;
  uint64_t keys_queried = 0;
  uint64_t insert_failures = 0;
  // Queries answered by the front cache without touching the filter.
  uint64_t front_cache_hits = 0;
  // Queries that consulted an enabled front cache and fell through to the
  // filter (0 when the cache is disabled — hit rate is hits/(hits+misses)).
  uint64_t front_cache_misses = 0;
};

class FilterService {
 public:
  explicit FilterService(std::shared_ptr<ShardedFilter> filter,
                         FilterServiceOptions options = {});
  ~FilterService();

  FilterService(const FilterService&) = delete;
  FilterService& operator=(const FilterService&) = delete;

  // Enqueues a batch insertion; the future yields the number of keys the
  // filter failed to absorb (0 on full success).
  std::future<uint64_t> InsertBatch(std::vector<uint64_t> keys);

  // Enqueues a batch query; the future yields one 0/1 byte per key, in the
  // order submitted.
  std::future<std::vector<uint8_t>> QueryBatch(std::vector<uint64_t> keys);

  // Completion callback for QueryBatchAsync: one 0/1 byte per key, in the
  // order submitted.  Invoked exactly once, on the worker thread that
  // executed the batch (or inline on the submitting thread when the service
  // is synchronous or stopping) — keep it cheap and non-blocking; the
  // network event loop hands completions back to itself through a wakeup fd.
  using QueryCallback = std::function<void(std::vector<uint8_t> results)>;

  // Callback flavor of QueryBatch: rides the same bounded queue and worker
  // pool, but delivers results without a future/promise rendezvous, so a
  // submitter that must not block (an event loop) can decouple decode from
  // filter execution.  Backpressure is unchanged — submission still blocks
  // while the queue is at max_pending (callers wanting a hard non-blocking
  // guarantee must cap their own in-flight count below max_pending).
  // A non-null `trace` rides along: the worker records queue-wait and exec
  // spans into it (plus per-shard probe spans via the thread-local
  // CurrentTrace()) before the callback fires.
  void QueryBatchAsync(std::vector<uint64_t> keys, QueryCallback done,
                       std::shared_ptr<obs::ActiveTrace> trace = nullptr);

  // Synchronous batch entry points for callers that already own a thread
  // (the network event loop hands decoded frames straight here): they bypass
  // the request queue but take the same snapshot shared-lock, update the
  // same stats, and ride the same BatchRouter/front-cache path as queued
  // batches.  Safe concurrently with queued traffic.
  uint64_t InsertBatchSync(const uint64_t* keys, size_t count);
  // A non-null `trace` receives the exec span and (via CurrentTrace()) the
  // per-shard probe spans recorded while the batch runs.
  void QueryBatchSync(const uint64_t* keys, size_t count, uint8_t* out,
                      obs::ActiveTrace* trace = nullptr);

  // Synchronous single-key fast path (bypasses the queue; safe concurrently
  // with batch traffic — shard locks serialize).  Served from the front
  // cache when enabled.
  bool Contains(uint64_t key) const;

  // Blocks until every previously submitted batch has completed.
  void Drain() PF_EXCLUDES(mutex_);

  // Drains, then appends a restorable snapshot of all shards, holding a
  // service-wide write exclusion while serializing so every batch whose
  // future resolved before the call is fully in the image (batches submitted
  // concurrently land entirely before or entirely after it — never half).
  // Returns false if any shard lacks a wire format.
  bool Snapshot(std::vector<uint8_t>* out)
      PF_EXCLUDES(mutex_, snapshot_mutex_);

  // Restores the sharded filter from a Snapshot() image (nullptr on
  // corruption or non-sharded images); wrap it in a new FilterService.
  static std::shared_ptr<ShardedFilter> Restore(const uint8_t* data,
                                                size_t len);

  const ShardedFilter& filter() const { return *filter_; }
  uint32_t num_threads() const { return num_threads_; }
  bool front_cache_enabled() const { return front_cache_ != nullptr; }
  FilterServiceStats stats() const;

  // Completes queued work and joins the workers.  Idempotent; batches
  // submitted after Stop() execute synchronously.
  void Stop() PF_EXCLUDES(mutex_);

  // Test-only fault injection: when set, the hook runs on the executing
  // thread at the top of every query batch (before the filter is touched),
  // seeing the batch's keys.  Tests use it to delay batches that contain a
  // marker key so out-of-order completion and backpressure paths become
  // deterministic.  Guarded by a mutex on both sides, so it may be installed
  // or cleared while traffic is flowing.  Pass nullptr to clear.
  void SetQueryFaultHookForTesting(
      std::function<void(const uint64_t* keys, size_t count)> hook)
      PF_EXCLUDES(query_fault_hook_mutex_);

 private:
  struct Request {
    bool is_insert = false;
    std::vector<uint64_t> keys;
    std::promise<uint64_t> insert_result;
    std::promise<std::vector<uint8_t>> query_result;
    // Non-null for QueryBatchAsync requests: invoked with the results
    // instead of fulfilling query_result.
    QueryCallback query_callback;
    // Enqueue timestamp feeding the service.queue.wait.ns histogram.
    uint64_t enqueue_ns = 0;
    // Non-null when the request is traced: the worker records queue-wait,
    // exec, and shard-probe spans into it.  shared_ptr because the network
    // layer keeps its own reference until the completion drains.
    std::shared_ptr<obs::ActiveTrace> trace;
  };

  void Enqueue(Request request) PF_EXCLUDES(mutex_);
  void Execute(Request& request);
  void WorkerLoop() PF_EXCLUDES(mutex_);
  // Query path shared by Execute and QueryBatchSync: front-cache lookup,
  // batch the misses through the filter, populate the cache with fresh
  // positives.  Caller holds the snapshot shared lock.
  void QueryLocked(const uint64_t* keys, size_t count, uint8_t* out)
      PF_REQUIRES_SHARED(snapshot_mutex_);

  std::shared_ptr<ShardedFilter> filter_;
  uint32_t num_threads_;
  size_t max_pending_;
  std::unique_ptr<FrontCache> front_cache_;

  // Batch execution takes this shared; Snapshot takes it exclusive while
  // serializing.  Direct filter() access bypasses it by design (shard locks
  // still make such access safe, just not snapshot-atomic).
  mutable SharedMutex snapshot_mutex_;

  Mutex mutex_;
  CondVar queue_nonempty_;
  CondVar queue_nonfull_;
  CondVar idle_;
  std::deque<Request> queue_ PF_GUARDED_BY(mutex_);
  size_t in_flight_ PF_GUARDED_BY(mutex_) = 0;
  bool stopping_ PF_GUARDED_BY(mutex_) = false;
  // Written by the constructor before any concurrency exists, then read only
  // by Stop() after the stopping_ handshake — not guarded by mutex_.
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> insert_batches_{0};
  std::atomic<uint64_t> query_batches_{0};
  std::atomic<uint64_t> keys_inserted_{0};
  std::atomic<uint64_t> keys_queried_{0};
  std::atomic<uint64_t> insert_failures_{0};
  // mutable: bumped from the const Contains() fast path.
  mutable std::atomic<uint64_t> front_cache_hits_{0};
  mutable std::atomic<uint64_t> front_cache_misses_{0};

  // Test-only query fault hook (see SetQueryFaultHookForTesting).  The
  // atomic flag keeps the disabled hot path to one relaxed load; the mutex
  // makes install/clear safe against in-flight batches.
  std::atomic<bool> query_fault_hook_armed_{false};
  mutable Mutex query_fault_hook_mutex_;
  std::function<void(const uint64_t*, size_t)> query_fault_hook_
      PF_GUARDED_BY(query_fault_hook_mutex_);

  // Observability: histograms/gauges resolved once at construction, updated
  // lock-free on the request path; the counters above reach the registry
  // through a scrape-time collector (zero extra hot-path cost).
  obs::MetricsRegistry* registry_;
  obs::Gauge* queue_depth_gauge_;
  obs::LatencyHistogram* queue_wait_hist_;
  obs::LatencyHistogram* insert_exec_hist_;
  obs::LatencyHistogram* query_exec_hist_;
  obs::LatencyHistogram* insert_batch_keys_hist_;
  obs::LatencyHistogram* query_batch_keys_hist_;
  uint64_t collector_id_ = 0;
};

// Builds a FilterService for any factory filter name: "SHARD<n>[<inner>]"
// configures the sharding, every other accepted name runs as a single-shard
// service.  The shared bootstrap of the membership-server example and the
// network load generator — one spelling of the name-to-service rule.
// Returns nullptr for unknown names.
std::shared_ptr<FilterService> MakeFilterService(
    const std::string& filter_name, uint64_t capacity,
    FilterServiceOptions options = {},
    uint64_t seed = ShardedFilterOptions{}.seed);

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_SERVICE_FILTER_SERVICE_H_
