// Shard-grouping front-end for cross-shard batch operations.
//
// A mixed query stream hits shards in random order; querying one key at a
// time would take and release a shard lock per key and forfeit the
// prefetching batch path inside each shard.  The router restores both
// properties: it counting-sorts a batch by destination shard (two linear
// passes, no comparisons), drains each shard group with ONE lock acquisition
// through AnyFilter::ContainsBatch — for prefix-filter backends that is the
// software-prefetching loop that keeps the paper's one-cache-miss-per-query
// property across a whole group — and scatters results back into the
// caller's order.
//
// A router instance owns reusable scratch buffers and is therefore NOT
// thread-safe; give each worker thread its own (they are cheap and grow to
// the largest batch seen).  Routing through the same ShardedFilter from many
// routers concurrently is the intended use.
#ifndef PREFIXFILTER_SRC_SERVICE_BATCH_ROUTER_H_
#define PREFIXFILTER_SRC_SERVICE_BATCH_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/service/sharded_filter.h"

namespace prefixfilter {

class BatchRouter {
 public:
  // Groups keys[0..count) by filter.ShardOf and invokes
  //   visit(shard, group_keys, group_count)
  // once per non-empty shard, with group_keys contiguous in router scratch.
  // After the call, origin(p) maps each grouped position p back to the
  // original stream index.
  template <typename Visitor>
  void GroupByShard(const ShardedFilter& filter, const uint64_t* keys,
                    size_t count, Visitor&& visit) {
    const uint32_t num_shards = filter.num_shards();
    counts_.assign(num_shards, 0);
    shard_of_.resize(count);
    grouped_keys_.resize(count);
    origin_.resize(count);
    for (size_t i = 0; i < count; ++i) {
      shard_of_[i] = filter.ShardOf(keys[i]);
      ++counts_[shard_of_[i]];
    }
    offsets_.assign(num_shards + 1, 0);
    for (uint32_t s = 0; s < num_shards; ++s) {
      offsets_[s + 1] = offsets_[s] + counts_[s];
    }
    fill_ = offsets_;
    for (size_t i = 0; i < count; ++i) {
      const size_t pos = fill_[shard_of_[i]]++;
      grouped_keys_[pos] = keys[i];
      origin_[pos] = i;
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (counts_[s] == 0) continue;
      visit(s, grouped_keys_.data() + offsets_[s], counts_[s]);
    }
  }

  // Batched membership over a sharded filter: out[i] answers keys[i].
  void Route(const ShardedFilter& filter, const uint64_t* keys, size_t count,
             uint8_t* out) {
    grouped_out_.resize(count);
    GroupByShard(filter, keys, count,
                 [&](uint32_t shard, const uint64_t* group, size_t n) {
                   const size_t base =
                       static_cast<size_t>(group - grouped_keys_.data());
                   filter.QueryShard(shard, group, n,
                                     grouped_out_.data() + base);
                 });
    for (size_t p = 0; p < count; ++p) {
      out[origin_[p]] = grouped_out_[p];
    }
  }

 private:
  std::vector<uint32_t> shard_of_;
  std::vector<size_t> counts_;
  std::vector<size_t> offsets_;
  std::vector<size_t> fill_;
  std::vector<uint64_t> grouped_keys_;
  std::vector<size_t> origin_;
  std::vector<uint8_t> grouped_out_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_SERVICE_BATCH_ROUTER_H_
