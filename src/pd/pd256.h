// PD256: the prefix filter's 32-byte pocket dictionary PD(25, 8, 25)
// (paper §5), extended with the max-element operations of §5.2.3.
//
// Layout (32 bytes, two PDs per 64-byte cache line):
//   bits   0..49   Elias-Fano style header (see below)
//   bits  50..54   quotient of the maximum element (valid once overflowed)
//   bit   55       overflow flag ("a fingerprint of this bin went to the spare")
//   bytes  7..31   body: up to 25 remainders of 8 bits, grouped by quotient
//
// Header encoding.  The paper encodes per-list occupancies in unary with `0`
// symbols separated by `1` terminators.  We store the *complement*: elements
// are `1` bits and list terminators are `0` bits, read LSB-first.  The two
// encodings are isomorphic, but the complemented form has two practical
// advantages: an all-zero PD is a valid empty PD (so zero-initialized memory
// needs no construction pass), and the occupancy is simply
// popcount(header).  With t stored elements the encoding occupies bits
// [0, 25 + t); all higher header bits are zero, which reads as "all
// remaining lists are empty".
//
// Decoding rules (positions within bits [0, 50)):
//   * the j-th `0` bit (j = 0-based) terminates list j;
//   * a `1` bit at position pos is an element of list (#zeros before pos),
//     and its body index is (#ones before pos).
// Hence body slot i holds an element of list q  iff  header bit (q + i) is 1
// and exactly i ones precede it — the O(1) membership check behind the
// paper's query cutoff (Algorithm 3).
//
// Query fast path (§5.2.2): a SIMD broadcast-compare over the whole 32-byte
// block yields the body match bitvector v_r.  If v_r == 0 the answer is "No"
// (>90% of random negative queries, Claim 3).  If v_r has a single set bit,
// one POPCOUNT decides membership (>95% of the remainder, Claim 4).  Only
// multi-match queries fall back to Select.
#ifndef PREFIXFILTER_SRC_PD_PD256_H_
#define PREFIXFILTER_SRC_PD_PD256_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/util/bits.h"
#include "src/util/simd.h"

namespace prefixfilter {

// Which path answered a PD256 query (for validating Claims 3 and 4).
enum class PdQueryPath : uint8_t {
  kEmptyMask = 0,        // v_r == 0: answered with no header work
  kSingleCandidate = 1,  // one body match: answered with one POPCOUNT
  kSelectFallback = 2,   // multiple body matches: Select-based range check
};

class alignas(32) PD256 {
 public:
  static constexpr int kNumLists = 25;    // Q
  static constexpr int kCapacity = 25;    // k
  static constexpr int kHeaderBits = kNumLists + kCapacity;  // 50
  static constexpr int kBodyOffset = 7;   // body starts at byte 7

  // A zero-initialized PD256 is a valid empty PD; there is intentionally no
  // user-declared constructor so arrays of PDs can live in zeroed memory.

  int Size() const { return PopCount64(Header()); }
  bool Full() const { return Size() == kCapacity; }
  bool Overflowed() const { return (bytes_[6] & 0x80) != 0; }

  // Membership test for (q, r).  q in [0, kNumLists), r in [0, 256).
  bool Find(int q, uint8_t r) const {
    return FindImpl<false>(q, r, nullptr);
  }

  // Like Find, but reports which query path produced the answer.
  bool FindWithPath(int q, uint8_t r, PdQueryPath* path) const {
    return FindImpl<true>(q, r, path);
  }

  // Inserts (q, r).  Returns false (and leaves the PD unchanged) if full.
  // If the PD has overflowed, the caller must go through ReplaceMax /
  // the prefix-filter insertion protocol instead once the PD is full.
  bool Insert(int q, uint8_t r) {
    const uint64_t header = Header();
    const int t = PopCount64(header);
    if (t == kCapacity) return false;
    const uint64_t terminators = ~header;  // 0-bits of the header
    const int z_q = Select64(terminators, q);  // position of list q's end
    const int body_index = z_q - q;            // append at end of list q
    const int insert_pos = (q == 0) ? 0 : Select64(terminators, q - 1) + 1;
    SetHeader(InsertOneBit64(header, insert_pos));
    uint8_t* body = bytes_ + kBodyOffset;
    std::memmove(body + body_index + 1, body + body_index,
                 static_cast<size_t>(t - body_index));
    body[body_index] = r;
    if (Overflowed() && body_index == kCapacity - 1) {
      // The insert landed in the last slot, displacing the cached maximum;
      // re-establish the relaxed invariant (only possible when the new
      // element joins the last non-empty list).
      EstablishMaxInvariant();
    }
    return true;
  }

  // --- Max-element support (paper §5.2.3) ----------------------------------
  //
  // The prefix filter's eviction policy needs the maximum element of a full
  // bin in O(1).  Relaxed invariant: once the PD has overflowed, the
  // remainder of its maximum element sits in the last body slot and its
  // quotient in the 5-bit metadata field.

  // Marks the PD as overflowed and establishes the relaxed invariant.
  // Requires Full().
  void MarkOverflowed() {
    EstablishMaxInvariant();
    bytes_[6] |= 0x80;
  }

  // The maximum stored fingerprint as q*256 + r.  Requires Overflowed() and
  // Full() (the prefix filter only consults the maximum of full bins).
  uint16_t MaxFingerprint() const {
    const uint16_t q = (bytes_[6] >> 2) & 0x1f;
    return static_cast<uint16_t>((q << 8) | bytes_[kBodyOffset + kCapacity - 1]);
  }

  // Evicts the maximum element and inserts (q, r) in its place, restoring
  // the relaxed invariant.  Requires Full(), Overflowed(), and
  // q*256 + r <= MaxFingerprint().
  void ReplaceMax(int q, uint8_t r) {
    // The maximum is the last element of the last non-empty list, i.e. the
    // highest 1-bit of the header; with everything above it zero, removing
    // it is a single bit clear.
    const uint64_t header = Header();
    SetHeader(header & ~(uint64_t{1} << HighestSetBit64(header)));
    Insert(q, r);
    EstablishMaxInvariant();
  }

  // --- Introspection (tests, invariant checks) -----------------------------

  int OccupancyOf(int q) const {
    const uint64_t header = Header();
    const uint64_t terminators = ~header;
    const int z_q = Select64(terminators, q);
    const int begin_pos = (q == 0) ? 0 : Select64(terminators, q - 1) + 1;
    return z_q - begin_pos;
  }

  // All stored elements as (quotient, remainder), grouped by quotient in
  // body order.
  std::vector<std::pair<int, uint8_t>> Decode() const {
    std::vector<std::pair<int, uint8_t>> out;
    const uint64_t header = Header();
    int q = 0;
    int body_index = 0;
    for (int pos = 0; pos < kHeaderBits && q < kNumLists; ++pos) {
      if ((header >> pos) & 1) {
        out.emplace_back(q, bytes_[kBodyOffset + body_index]);
        ++body_index;
      } else {
        ++q;
      }
    }
    return out;
  }

  const uint8_t* raw() const { return bytes_; }

 private:
  static constexpr uint64_t kHeaderMask = (uint64_t{1} << kHeaderBits) - 1;

  uint64_t Header() const {
    uint64_t w;
    std::memcpy(&w, bytes_, 8);
    return w & kHeaderMask;
  }

  void SetHeader(uint64_t h) {
    uint64_t w;
    std::memcpy(&w, bytes_, 8);
    w = (w & ~kHeaderMask) | (h & kHeaderMask);
    std::memcpy(bytes_, &w, 8);
  }

  void SetMaxQuotient(int q) {
    bytes_[6] = static_cast<uint8_t>((bytes_[6] & 0x83) |
                                     (static_cast<uint8_t>(q) << 2));
  }

  // Finds the maximum element (last non-empty list, maximal remainder),
  // swaps its remainder into the last body slot, and caches its quotient.
  // Requires Full().
  void EstablishMaxInvariant() {
    const uint64_t header = Header();
    const int last_pos = HighestSetBit64(header);
    // #zeros before last_pos = last_pos - (t - 1) with t = 25.
    const int q_max = last_pos - (kCapacity - 1);
    // The last list's elements are the trailing run of 1-bits; its body
    // range is [begin, kCapacity).
    const uint64_t terminators = ~header;
    const int begin =
        (q_max == 0) ? 0 : Select64(terminators, q_max - 1) + 1 - q_max;
    uint8_t* body = bytes_ + kBodyOffset;
    int max_index = begin;
    for (int i = begin + 1; i < kCapacity; ++i) {
      if (body[i] > body[max_index]) max_index = i;
    }
    std::swap(body[max_index], body[kCapacity - 1]);
    SetMaxQuotient(q_max);
  }

  template <bool kTrackPath>
  bool FindImpl(int q, uint8_t r, PdQueryPath* path) const {
    const uint32_t v = FindByteMask32(bytes_, r) >> kBodyOffset;
    if (v == 0) {
      if constexpr (kTrackPath) *path = PdQueryPath::kEmptyMask;
      return false;
    }
    const uint64_t header = Header();
    if ((v & (v - 1)) == 0) {
      if constexpr (kTrackPath) *path = PdQueryPath::kSingleCandidate;
      // Single candidate at body index i: it belongs to list q iff header
      // bit (q + i) is an element bit preceded by exactly i element bits.
      const int i = CountTrailingZeros64(v);
      const uint64_t w = static_cast<uint64_t>(v) << q;
      return (header & w) != 0 && PopCount64(header & (w - 1)) == i;
    }
    if constexpr (kTrackPath) *path = PdQueryPath::kSelectFallback;
    const uint64_t terminators = ~header;
    const int begin =
        (q == 0) ? 0 : Select64(terminators, q - 1) + 1 - q;
    const int end = Select64(terminators, q) - q;
    return (v & static_cast<uint32_t>(MaskRange64(begin, end))) != 0;
  }

  uint8_t bytes_[32];
};

static_assert(sizeof(PD256) == 32, "PD256 must occupy exactly 32 bytes");

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_PD_PD256_H_
