// Portable reference pocket dictionary (paper §5.1) — the oracle for
// differential tests.
//
// A pocket dictionary stores a multiset of at most `capacity` elements
// (q, r) in [num_lists] x [256], conceptually as `num_lists` lists of
// remainders.  This implementation favors obviousness over speed: it keeps
// an explicit sorted vector of (q, r) pairs grouped by quotient.  The
// optimized PD256/PD512 must agree with it on every operation.
#ifndef PREFIXFILTER_SRC_PD_PD_REFERENCE_H_
#define PREFIXFILTER_SRC_PD_PD_REFERENCE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace prefixfilter {

class ReferencePd {
 public:
  using Element = std::pair<int, uint8_t>;  // (quotient, remainder)

  ReferencePd(int num_lists, int capacity)
      : num_lists_(num_lists), capacity_(capacity) {}

  int size() const { return static_cast<int>(elements_.size()); }
  bool Full() const { return size() == capacity_; }

  bool Find(int q, uint8_t r) const {
    return std::find(elements_.begin(), elements_.end(), Element{q, r}) !=
           elements_.end();
  }

  // Inserts (q, r); returns false (and does nothing) if full.
  bool Insert(int q, uint8_t r) {
    if (Full()) return false;
    // Keep elements grouped by quotient (stable within a list).
    auto it = std::upper_bound(
        elements_.begin(), elements_.end(), q,
        [](int lhs, const Element& e) { return lhs < e.first; });
    elements_.insert(it, {q, r});
    return true;
  }

  // The maximum element under (q, r) lexicographic order.  Requires
  // non-empty.
  Element Max() const {
    return *std::max_element(elements_.begin(), elements_.end());
  }

  // Removes one occurrence of the maximum element.  Requires non-empty.
  Element RemoveMax() {
    auto it = std::max_element(elements_.begin(), elements_.end());
    Element e = *it;
    elements_.erase(it);
    return e;
  }

  int OccupancyOf(int q) const {
    return static_cast<int>(std::count_if(
        elements_.begin(), elements_.end(),
        [q](const Element& e) { return e.first == q; }));
  }

  // All elements sorted lexicographically (for invariant checks).
  std::vector<Element> Sorted() const {
    std::vector<Element> v = elements_;
    std::sort(v.begin(), v.end());
    return v;
  }

  int num_lists() const { return num_lists_; }
  int capacity() const { return capacity_; }

 private:
  int num_lists_;
  int capacity_;
  std::vector<Element> elements_;  // grouped by quotient
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_PD_PD_REFERENCE_H_
