// PD512: a 64-byte pocket dictionary PD(80, 8, 48) — the "mini-filter" bin
// of the vector quotient filter, which the paper re-implements as
// "TwoChoicer" on top of its own PD (§5, §7.1.1).
//
// Layout (64 bytes, one PD per cache line):
//   bits   0..127  header (Q + k = 80 + 48 = 128 bits, no spare bits)
//   bytes 16..63   body: up to 48 remainders of 8 bits, grouped by quotient
//
// The header uses the same complemented Elias-Fano encoding as PD256
// (1-bits are elements, 0-bits terminate lists; all-zero memory is a valid
// empty PD), spread across two 64-bit words.  TwoChoicer never evicts, so
// PD512 has no max-element machinery.
#ifndef PREFIXFILTER_SRC_PD_PD512_H_
#define PREFIXFILTER_SRC_PD_PD512_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/util/bits.h"
#include "src/util/simd.h"

namespace prefixfilter {

class alignas(64) PD512 {
 public:
  static constexpr int kNumLists = 80;   // Q
  static constexpr int kCapacity = 48;   // k
  static constexpr int kHeaderBits = kNumLists + kCapacity;  // 128
  static constexpr int kBodyOffset = 16;

  int Size() const { return PopCount128(Header()); }
  bool Full() const { return Size() == kCapacity; }

  // Membership test for (q, r); q in [0, 80), r in [0, 256).
  bool Find(int q, uint8_t r) const {
    const uint64_t v = FindByteMask64(bytes_, r) >> kBodyOffset;
    if (v == 0) return false;
    const Bits128 header = Header();
    if (AtMostOneBitSet64(v)) {
      const int i = CountTrailingZeros64(v);
      const int pos = q + i;  // <= 79 + 47 = 126 < 128
      return GetBit128(header, pos) && Rank128(header, pos) == i;
    }
    const Bits128 terminators{~header.lo, ~header.hi};
    const int begin = (q == 0) ? 0 : Select128(terminators, q - 1) + 1 - q;
    const int end = Select128(terminators, q) - q;
    return (v & MaskRange64(begin, end)) != 0;
  }

  // Inserts (q, r).  Returns false (and leaves the PD unchanged) if full.
  bool Insert(int q, uint8_t r) {
    Bits128 header = Header();
    const int t = PopCount128(header);
    if (t == kCapacity) return false;
    const Bits128 terminators{~header.lo, ~header.hi};
    const int z_q = Select128(terminators, q);
    const int body_index = z_q - q;
    const int insert_pos = (q == 0) ? 0 : Select128(terminators, q - 1) + 1;
    header = InsertZeroBit128(header, insert_pos);
    if (insert_pos < 64) {
      header.lo |= uint64_t{1} << insert_pos;
    } else {
      header.hi |= uint64_t{1} << (insert_pos - 64);
    }
    SetHeader(header);
    uint8_t* body = bytes_ + kBodyOffset;
    std::memmove(body + body_index + 1, body + body_index,
                 static_cast<size_t>(t - body_index));
    body[body_index] = r;
    return true;
  }

  int OccupancyOf(int q) const {
    const Bits128 header = Header();
    const Bits128 terminators{~header.lo, ~header.hi};
    const int z_q = Select128(terminators, q);
    const int begin_pos = (q == 0) ? 0 : Select128(terminators, q - 1) + 1;
    return z_q - begin_pos;
  }

  std::vector<std::pair<int, uint8_t>> Decode() const {
    std::vector<std::pair<int, uint8_t>> out;
    const Bits128 header = Header();
    int q = 0;
    int body_index = 0;
    for (int pos = 0; pos < kHeaderBits && q < kNumLists; ++pos) {
      if (GetBit128(header, pos)) {
        out.emplace_back(q, bytes_[kBodyOffset + body_index]);
        ++body_index;
      } else {
        ++q;
      }
    }
    return out;
  }

 private:
  Bits128 Header() const {
    Bits128 h;
    std::memcpy(&h.lo, bytes_, 8);
    std::memcpy(&h.hi, bytes_ + 8, 8);
    return h;
  }

  void SetHeader(Bits128 h) {
    std::memcpy(bytes_, &h.lo, 8);
    std::memcpy(bytes_ + 8, &h.hi, 8);
  }

  uint8_t bytes_[64];
};

static_assert(sizeof(PD512) == 64, "PD512 must occupy exactly 64 bytes");

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_PD_PD512_H_
