// Deterministic, seeded workload generation for benchmarks and tests.
//
// The paper's evaluation (§7.3) uses one workload shape: uniform insertions
// followed by uniform (negative w.o.p.) and sampled-positive query rounds.
// Production filter deployments see more: skewed key popularity, duplicate-
// heavy adversarial traffic, mixed insert/query streams, and query keys that
// are guaranteed (not just overwhelmingly likely) to be absent.  This layer
// generates all of those from a small declarative Spec, deterministically:
// the same Spec (including seed) always produces bit-identical streams, so
// benchmark runs are comparable PR-to-PR and FPR measurements are exactly
// reproducible.
//
// Universe partitioning: when `disjoint_negatives` is set, insert keys are
// drawn from the lower half of the 2^64 key universe (MSB clear) and
// negative queries from the upper half (MSB set), making negative queries
// disjoint from the inserted set by construction.  Otherwise both streams
// are uniform over the full universe and overlap only with probability
// ~ n^2 / 2^64 (the paper's "negative with overwhelming probability"
// regime) — this is the overlapping-negative stream shape.
#ifndef PREFIXFILTER_SRC_WORKLOAD_WORKLOAD_H_
#define PREFIXFILTER_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prefixfilter::workload {

struct Spec {
  std::string name;

  uint64_t num_keys = 0;     // keys to insert (the filter's working set)
  uint64_t num_queries = 0;  // queries in the stream

  // Fraction of queries that target inserted keys (ground-truth positives).
  double positive_fraction = 0.0;

  // > 0: positive queries pick inserted keys zipfian-skewed by insertion
  // rank (theta is the YCSB skew parameter, e.g. 0.99) instead of uniformly.
  double zipf_theta = 0.0;

  // Adversarial duplicate-heavy traffic: with probability `hot_fraction` a
  // query is drawn uniformly from a fixed hot set of `hot_set_size` keys
  // (half inserted, half absent) instead of the cold path above.  Models a
  // cache-busting repeated-key attack / pathological popular-key traffic.
  double hot_fraction = 0.0;
  uint64_t hot_set_size = 0;

  // Guaranteed-negative queries via universe partitioning (see file header).
  bool disjoint_negatives = false;

  // > 0: emit an interleaved op stream (Stream::ops) mixing inserts and
  // queries at this insert ratio, instead of phase-separated vectors.  The
  // phase-separated vectors are still filled (inserts in stream order).
  double insert_ratio = 0.0;

  uint64_t seed = 0x5eedf00dULL;
};

// One interleaved operation (only produced when spec.insert_ratio > 0).
struct Op {
  uint64_t key;
  uint8_t is_insert;          // 1 = insert, 0 = query
  uint8_t expected_positive;  // queries only: ground-truth membership
};

struct Stream {
  Spec spec;
  std::vector<uint64_t> insert_keys;     // spec.num_keys entries
  std::vector<uint64_t> queries;         // spec.num_queries entries
  std::vector<uint8_t> query_expected;   // parallel to `queries`
  std::vector<Op> ops;                   // non-empty iff insert_ratio > 0

  // Number of queries with ground truth "absent" (denominator for FPR).
  uint64_t NumNegativeQueries() const;
};

// Generates the full stream for `spec`.  Deterministic in `spec`.
Stream Generate(const Spec& spec);

// The named standard suite swept by bench_all (and pinned by
// bench/baseline.json):
//   uniform-negative    100% uniform negative queries (§7.3 panel b)
//   mixed-50-50         50% sampled positives / 50% uniform negatives
//   zipf-positive       100% positives, zipfian (theta = 0.99) popularity
//   adversarial-dup     90% of queries from a 64-key hot set (half absent)
//   disjoint-negative   100% guaranteed negatives (partitioned universe)
std::vector<Spec> StandardSuite(uint64_t num_keys, uint64_t num_queries,
                                uint64_t seed);

// Looks up a StandardSuite spec by name; returns false if unknown.
bool FindStandardSpec(const std::string& name, uint64_t num_keys,
                      uint64_t num_queries, uint64_t seed, Spec* out);

// The §7.3 round-structured workload used by the figure benches: one
// insertion stream cut into `rounds` equal slices, plus per-round uniform
// (negative) and sampled-positive query streams of one slice each.
struct RoundWorkload {
  std::vector<uint64_t> insert_keys;                    // n keys
  std::vector<std::vector<uint64_t>> uniform_queries;   // rounds x n/rounds
  std::vector<std::vector<uint64_t>> positive_queries;  // rounds x n/rounds

  static RoundWorkload Generate(uint64_t n, int rounds, uint64_t seed);
};

}  // namespace prefixfilter::workload

#endif  // PREFIXFILTER_SRC_WORKLOAD_WORKLOAD_H_
