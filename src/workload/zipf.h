// Zipfian rank generator (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD '94 — the YCSB formulation).
//
// Draws ranks in [0, n) where rank i has probability proportional to
// 1 / (i+1)^theta.  theta in (0, 1); YCSB's default skew is 0.99, under
// which the most popular ~10% of ranks receive ~80% of draws.  Construction
// computes the harmonic normalizer in O(n); generation is O(1) per draw.
//
// Deterministic: the distribution is fixed by (n, theta) and every draw
// consumes exactly one value from the caller's generator.
#ifndef PREFIXFILTER_SRC_WORKLOAD_ZIPF_H_
#define PREFIXFILTER_SRC_WORKLOAD_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "src/util/random.h"

namespace prefixfilter::workload {

class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    double zeta2 = 0, zetan = 0;
    for (uint64_t i = 1; i <= n_; ++i) {
      const double term = 1.0 / std::pow(static_cast<double>(i), theta_);
      zetan += term;
      if (i == 2) zeta2 = zetan;
    }
    zetan_ = zetan;
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Next(Xoshiro256& rng) {
    // 53-bit uniform in [0, 1).
    const double u =
        static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace prefixfilter::workload

#endif  // PREFIXFILTER_SRC_WORKLOAD_ZIPF_H_
