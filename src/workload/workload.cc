#include "src/workload/workload.h"

#include "src/util/random.h"
#include "src/workload/zipf.h"

namespace prefixfilter::workload {

namespace {

constexpr uint64_t kMsb = uint64_t{1} << 63;

// Seed-stream separation: each logical stream inside one workload derives
// its own generator so that changing e.g. num_queries never perturbs the
// insert keys.
enum SeedStream : uint64_t {
  kInsertStream = 0x496e73ULL,   // "Ins"
  kNegativeStream = 0x4e6567ULL, // "Neg"
  kChoiceStream = 0x43686fULL,   // "Cho"
  kHotStream = 0x486f74ULL,      // "Hot"
  kOpStream = 0x4f7073ULL,       // "Ops"
};

uint64_t SubSeed(uint64_t seed, SeedStream stream) {
  SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

}  // namespace

uint64_t Stream::NumNegativeQueries() const {
  uint64_t negatives = 0;
  for (uint8_t e : query_expected) negatives += (e == 0);
  return negatives;
}

Stream Generate(const Spec& spec) {
  Stream s;
  s.spec = spec;

  // Insert keys: uniform, MSB cleared when negatives must be disjoint.
  s.insert_keys = RandomKeys(spec.num_keys, SubSeed(spec.seed, kInsertStream));
  if (spec.disjoint_negatives) {
    for (auto& k : s.insert_keys) k &= ~kMsb;
  }

  Xoshiro256 negatives(SubSeed(spec.seed, kNegativeStream));
  auto next_negative = [&]() {
    const uint64_t k = negatives.Next();
    return spec.disjoint_negatives ? (k | kMsb) : k;
  };

  // Positive sampling: uniform rank, or zipfian rank when theta > 0.
  Xoshiro256 choice(SubSeed(spec.seed, kChoiceStream));
  ZipfianGenerator zipf(spec.num_keys > 0 ? spec.num_keys : 1,
                        spec.zipf_theta > 0 ? spec.zipf_theta : 0.99);
  auto next_positive = [&]() {
    const uint64_t rank = spec.zipf_theta > 0
                              ? zipf.Next(choice)
                              : choice.Below(spec.num_keys);
    return s.insert_keys[rank];
  };

  // Hot set for duplicate-heavy traffic: even slots inserted, odd absent.
  std::vector<uint64_t> hot_keys;
  std::vector<uint8_t> hot_expected;
  if (spec.hot_fraction > 0 && spec.hot_set_size > 0) {
    Xoshiro256 hot(SubSeed(spec.seed, kHotStream));
    for (uint64_t i = 0; i < spec.hot_set_size; ++i) {
      if (i % 2 == 0 && spec.num_keys > 0) {
        hot_keys.push_back(s.insert_keys[hot.Below(spec.num_keys)]);
        hot_expected.push_back(1);
      } else {
        const uint64_t k = hot.Next();
        hot_keys.push_back(spec.disjoint_negatives ? (k | kMsb) : k);
        hot_expected.push_back(0);
      }
    }
  }

  // Probability draws quantized to 2^-32 so streams are platform-exact.
  auto draw = [](Xoshiro256& rng, double p) {
    return static_cast<double>(rng.Next() >> 32) <
           p * 4294967296.0;  // 2^32
  };

  s.queries.reserve(spec.num_queries);
  s.query_expected.reserve(spec.num_queries);
  for (uint64_t i = 0; i < spec.num_queries; ++i) {
    uint64_t key;
    uint8_t expected;
    if (!hot_keys.empty() && draw(choice, spec.hot_fraction)) {
      const uint64_t slot = choice.Below(hot_keys.size());
      key = hot_keys[slot];
      expected = hot_expected[slot];
    } else if (spec.num_keys > 0 && draw(choice, spec.positive_fraction)) {
      key = next_positive();
      expected = 1;
    } else {
      key = next_negative();
      expected = 0;
    }
    s.queries.push_back(key);
    s.query_expected.push_back(expected);
  }

  // Interleaved op stream: spreads the inserts through the query stream at
  // `insert_ratio`, querying only keys already inserted (positives sample
  // the inserted prefix, re-deriving ground truth from the prefix).
  if (spec.insert_ratio > 0) {
    Xoshiro256 oprng(SubSeed(spec.seed, kOpStream));
    s.ops.reserve(spec.num_keys + spec.num_queries);
    uint64_t inserted = 0, queried = 0;
    while (inserted < spec.num_keys || queried < spec.num_queries) {
      const bool must_insert = queried >= spec.num_queries;
      const bool may_insert = inserted < spec.num_keys;
      if (may_insert && (must_insert || draw(oprng, spec.insert_ratio))) {
        s.ops.push_back(Op{s.insert_keys[inserted], 1, 1});
        ++inserted;
      } else {
        uint64_t key;
        uint8_t expected;
        if (inserted > 0 && draw(oprng, spec.positive_fraction)) {
          key = s.insert_keys[oprng.Below(inserted)];
          expected = 1;
        } else {
          const uint64_t k = oprng.Next();
          key = spec.disjoint_negatives ? (k | kMsb) : k;
          expected = 0;
        }
        s.ops.push_back(Op{key, 0, expected});
        ++queried;
      }
    }
  }
  return s;
}

std::vector<Spec> StandardSuite(uint64_t num_keys, uint64_t num_queries,
                                uint64_t seed) {
  std::vector<Spec> suite;

  Spec uniform;
  uniform.name = "uniform-negative";
  suite.push_back(uniform);

  Spec mixed;
  mixed.name = "mixed-50-50";
  mixed.positive_fraction = 0.5;
  suite.push_back(mixed);

  Spec zipf;
  zipf.name = "zipf-positive";
  zipf.positive_fraction = 1.0;
  zipf.zipf_theta = 0.99;
  suite.push_back(zipf);

  Spec adversarial;
  adversarial.name = "adversarial-dup";
  adversarial.hot_fraction = 0.9;
  adversarial.hot_set_size = 64;
  adversarial.positive_fraction = 0.5;
  suite.push_back(adversarial);

  Spec disjoint;
  disjoint.name = "disjoint-negative";
  disjoint.disjoint_negatives = true;
  suite.push_back(disjoint);

  for (auto& spec : suite) {
    spec.num_keys = num_keys;
    spec.num_queries = num_queries;
    spec.seed = seed;
  }
  return suite;
}

bool FindStandardSpec(const std::string& name, uint64_t num_keys,
                      uint64_t num_queries, uint64_t seed, Spec* out) {
  for (auto& spec : StandardSuite(num_keys, num_queries, seed)) {
    if (spec.name == name) {
      *out = spec;
      return true;
    }
  }
  return false;
}

RoundWorkload RoundWorkload::Generate(uint64_t n, int rounds, uint64_t seed) {
  RoundWorkload w;
  const uint64_t per_round = n / rounds;
  w.insert_keys = RandomKeys(n, seed);
  w.uniform_queries.reserve(rounds);
  w.positive_queries.reserve(rounds);
  for (int round = 0; round < rounds; ++round) {
    w.uniform_queries.push_back(
        RandomKeys(per_round, seed ^ (0x1111u + round)));
    const uint64_t inserted = per_round * (round + 1);
    w.positive_queries.push_back(
        SampleKeys(w.insert_keys, inserted, per_round,
                   seed ^ (0x2222u + round)));
  }
  return w;
}

}  // namespace prefixfilter::workload
