// Synchronous client library for the networked membership service.
//
// One MembershipClient owns one TCP connection (blocking socket) and speaks
// the batch protocol of src/net/protocol.h.  The simple RPCs (Insert, Query,
// Stats, Snapshot) send one request frame and wait for its response; the
// pipelined query path splits a large key stream into frames of
// `max_batch_keys` and keeps up to `pipeline_depth` frames in flight, which
// is what lets the server merge a pipeline window into one BatchRouter batch
// (the §7 batch-orientation win, preserved across the socket).  Pipelined
// responses are reassembled by the request id each response echoes, because
// a server offloading batches to its worker pool may answer them in any
// order (see protocol.h); responses_reordered() counts how often that
// actually happened.
//
// Reconnect: when `auto_reconnect` is set, an RPC that hits a dead socket
// tears the connection down, redials, and retries once.  Retrying an insert
// can re-deliver keys the server already absorbed; that is safe for every
// filter here (a duplicate insert wastes a slot, it never corrupts answers),
// matching at-least-once delivery semantics.
//
// Not thread-safe: one client per thread (they are cheap — a load generator
// opens dozens).
#ifndef PREFIXFILTER_SRC_NET_MEMBERSHIP_CLIENT_H_
#define PREFIXFILTER_SRC_NET_MEMBERSHIP_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/protocol.h"

namespace prefixfilter::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Keys per QUERY_BATCH frame on the pipelined path.
  size_t max_batch_keys = 4096;
  // QUERY_BATCH frames in flight before the client blocks on a response.
  // 1 = strict request/response; higher depths hide one RTT per frame and
  // give the server whole windows to merge.  Clamped to >= 1.
  size_t pipeline_depth = 8;
  bool auto_reconnect = true;
  // Non-empty: mirror every request frame this client puts on the wire and
  // every response frame it decodes into one file per frame under this
  // directory (which must exist) — genuine wire bytes for the fuzz seed
  // corpora (`net_loadgen --record-frames=DIR`).  Capped per client by
  // record_frames_limit so a long run cannot fill the disk.
  // The explicit initializer keeps designated aggregate inits of
  // ClientOptions clean under -Wmissing-field-initializers.
  std::string record_frames_dir{};
  size_t record_frames_limit = 256;
  // Fraction of QUERY_BATCH frames (single-frame and pipelined) sent with a
  // kFlagTraced context prefix, client-sampled (0 disables, >= 1 traces every
  // frame).  Before the first traced frame the client performs one STATS v3
  // roundtrip and only ever sets the flag when the server advertised
  // kCapTraceContext, so a traced client degrades cleanly against old
  // servers.
  double trace_sample_rate = 0.0;
};

class MembershipClient {
 public:
  explicit MembershipClient(ClientOptions options);
  ~MembershipClient();

  MembershipClient(const MembershipClient&) = delete;
  MembershipClient& operator=(const MembershipClient&) = delete;

  // Dials options.host:port.  Idempotent while connected.  False on failure
  // (see error()).
  bool Connect();
  void Disconnect();
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  // --- RPCs (each returns false on transport/protocol failure) --------------

  // Inserts a key batch; *failures receives the count the filter rejected.
  bool InsertBatch(const uint64_t* keys, size_t count, uint64_t* failures);

  // Queries a key batch with one frame; out->size() == count on success.
  bool QueryBatch(const uint64_t* keys, size_t count,
                  std::vector<uint8_t>* out);

  // Single-key convenience (one 1-key frame; the server's scalar fast path).
  bool Contains(uint64_t key, bool* present);

  // Pipelined batch query over a stream of any size (see file header).
  bool QueryPipelined(const uint64_t* keys, size_t count,
                      std::vector<uint8_t>* out);

  bool Stats(WireStats* out);
  // Requests the v2 stats payload (front_cache_misses + the server's full
  // metrics-registry snapshot).  A pre-v2 server ignores the request marker
  // and answers v1, which still decodes — out->metrics is simply empty, so
  // callers distinguish by out->metrics.empty().
  bool StatsV2(WireStats* out);
  // Requests the v3 stats payload (v2 + the capability bitmask that gates
  // trace-context negotiation).  Pre-v3 servers answer whatever they speak;
  // out->capabilities stays 0, which reads as "no capabilities".
  bool StatsV3(WireStats* out);
  bool Snapshot(std::vector<uint8_t>* out);

  // Fetches the server's recent trace captures (Opcode::kTraces).  A
  // pre-tracing server answers kUnsupported, which this treats as an empty
  // trace list, not a failure.
  bool Traces(std::vector<obs::Trace>* out);

  // --- client-side counters -------------------------------------------------

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t reconnects() const { return reconnects_; }
  // Server-reported per-RPC errors (error-flagged response frames).
  uint64_t remote_errors() const { return remote_errors_; }
  // Pipelined responses that arrived ahead of an older in-flight frame.
  uint64_t responses_reordered() const { return responses_reordered_; }
  // QUERY_BATCH frames sent with a sampled trace context.
  uint64_t frames_traced() const { return frames_traced_; }

 private:
  // Dials if disconnected; false when that fails.
  bool EnsureConnected();
  bool SendAll(const uint8_t* data, size_t len);
  // Blocks until one complete frame arrives.  False on EOF/socket/protocol
  // failure (the connection is closed).
  bool ReadFrame(Frame* frame);
  // Sends `request` and reads the response for `request_id`; handles the
  // one-shot reconnect-and-retry.  On success *response is the (non-error)
  // response frame.
  bool Roundtrip(const std::vector<uint8_t>& request, uint64_t request_id,
                 Frame* response);
  // Validates a response frame: id echo, response flag, error flag.
  bool CheckResponse(const Frame& frame, uint64_t request_id);
  void Fail(const std::string& message);
  // Appends one recorded frame file (see ClientOptions::record_frames_dir).
  void RecordFrameBytes(const char* tag, const uint8_t* data, size_t len);
  // True when trace_sample_rate is active and the server has advertised
  // kCapTraceContext; lazily runs the one-time STATS v3 negotiation.
  bool TraceNegotiated();
  // Coin flip for one frame: negotiated AND the sampler fires.
  bool ShouldTraceFrame();
  uint64_t NextTraceRandom();

  ClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  std::string error_;

  // Sampler state: threshold over the full u64 range (0 = tracing off), a
  // per-client xorshift64 stream, and the negotiation latch (-1 unknown,
  // 0 server lacks the capability, 1 negotiated).  Latched for the client's
  // lifetime: the capability is a property of the server build, and a
  // reconnect redials the same endpoint.
  uint64_t trace_threshold_ = 0;
  uint64_t trace_rng_ = 1;
  int trace_capable_ = -1;

  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t remote_errors_ = 0;
  uint64_t responses_reordered_ = 0;
  uint64_t frames_traced_ = 0;
  size_t frames_recorded_ = 0;
};

}  // namespace prefixfilter::net

#endif  // PREFIXFILTER_SRC_NET_MEMBERSHIP_CLIENT_H_
