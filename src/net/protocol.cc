#include "src/net/protocol.h"

#include <cstring>

#include "src/obs/exposition.h"
#include "src/util/serialize.h"

namespace prefixfilter::net {
namespace {

// Reflected CRC-32 table, built once (thread-safe since C++11 magic statics).
const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

bool IsKnownOpcode(uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kInsertBatch:
    case Opcode::kQueryBatch:
    case Opcode::kStats:
    case Opcode::kSnapshot:
    case Opcode::kTraces:
      return true;
  }
  return false;
}

uint32_t Crc32(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFrame(Opcode opcode, uint16_t flags, uint64_t request_id,
                 const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out) {
  const size_t base = out->size();
  out->resize(base + kFrameHeaderBytes + payload_len);
  uint8_t* h = out->data() + base;
  PutU32(h + 0, kFrameMagic);
  h[4] = kProtocolVersion;
  h[5] = static_cast<uint8_t>(opcode);
  PutU16(h + 6, flags);
  PutU64(h + 8, request_id);
  PutU32(h + 16, static_cast<uint32_t>(payload_len));
  PutU32(h + 20, Crc32(payload, payload_len));
  if (payload_len != 0) {
    std::memcpy(h + kFrameHeaderBytes, payload, payload_len);
  }
}

void EncodeKeyBatchRequest(Opcode opcode, uint64_t request_id,
                           const uint64_t* keys, size_t count,
                           std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload(4 + 8 * count);
  PutU32(payload.data(), static_cast<uint32_t>(count));
  if (count != 0) std::memcpy(payload.data() + 4, keys, 8 * count);
  AppendFrame(opcode, 0, request_id, payload.data(), payload.size(), out);
}

void EncodeEmptyRequest(Opcode opcode, uint64_t request_id,
                        std::vector<uint8_t>* out) {
  AppendFrame(opcode, 0, request_id, nullptr, 0, out);
}

void EncodeTracedKeyBatchRequest(Opcode opcode, uint64_t request_id,
                                 const TraceContext& context,
                                 const uint64_t* keys, size_t count,
                                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload(kTraceContextBytes + 4 + 8 * count);
  PutU64(payload.data(), context.trace_id);
  payload[8] = context.sampled ? kTraceContextSampled : 0;
  PutU32(payload.data() + kTraceContextBytes, static_cast<uint32_t>(count));
  if (count != 0) {
    std::memcpy(payload.data() + kTraceContextBytes + 4, keys, 8 * count);
  }
  AppendFrame(opcode, kFlagTraced, request_id, payload.data(), payload.size(),
              out);
}

bool DecodeTraceContext(const uint8_t* payload, size_t len,
                        TraceContext* context) {
  if (len < kTraceContextBytes) return false;
  context->trace_id = GetU64(payload);
  context->sampled = (payload[8] & kTraceContextSampled) != 0;
  return true;
}

void EncodeInsertResponse(uint64_t request_id, uint64_t failures,
                          std::vector<uint8_t>* out) {
  uint8_t payload[8];
  PutU64(payload, failures);
  AppendFrame(Opcode::kInsertBatch, kFlagResponse, request_id, payload,
              sizeof(payload), out);
}

void EncodeQueryResponse(uint64_t request_id, const uint8_t* results,
                         size_t count, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload(4 + count);
  PutU32(payload.data(), static_cast<uint32_t>(count));
  if (count != 0) std::memcpy(payload.data() + 4, results, count);
  AppendFrame(Opcode::kQueryBatch, kFlagResponse, request_id, payload.data(),
              payload.size(), out);
}

void EncodeSnapshotResponse(uint64_t request_id,
                            const std::vector<uint8_t>& snapshot,
                            std::vector<uint8_t>* out) {
  AppendFrame(Opcode::kSnapshot, kFlagResponse, request_id, snapshot.data(),
              snapshot.size(), out);
}

void EncodeErrorResponse(Opcode opcode, uint64_t request_id, ErrorCode code,
                         const std::string& message,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(static_cast<uint32_t>(code));
  w.Str(message);
  AppendFrame(opcode, kFlagResponse | kFlagError, request_id, payload.data(),
              payload.size(), out);
}

bool AppendKeyBatchPayload(const uint8_t* payload, size_t len,
                           std::vector<uint64_t>* keys) {
  if (len < 4) return false;
  const uint32_t count = GetU32(payload);
  if (count > kMaxKeysPerFrame || len != 4 + 8 * static_cast<size_t>(count)) {
    return false;
  }
  const size_t base = keys->size();
  keys->resize(base + count);
  if (count != 0) std::memcpy(keys->data() + base, payload + 4, 8 * count);
  return true;
}

bool DecodeKeyBatchPayload(const uint8_t* payload, size_t len,
                           std::vector<uint64_t>* keys) {
  keys->clear();
  return AppendKeyBatchPayload(payload, len, keys);
}

bool DecodeInsertResponsePayload(const uint8_t* payload, size_t len,
                                 uint64_t* failures) {
  if (len != 8) return false;
  *failures = GetU64(payload);
  return true;
}

bool DecodeQueryResponsePayload(const uint8_t* payload, size_t len,
                                std::vector<uint8_t>* results) {
  if (len < 4) return false;
  const uint32_t count = GetU32(payload);
  if (count > kMaxKeysPerFrame || len != 4 + static_cast<size_t>(count)) {
    return false;
  }
  results->assign(payload + 4, payload + 4 + count);
  return true;
}

bool DecodeErrorPayload(const uint8_t* payload, size_t len, ErrorCode* code,
                        std::string* message) {
  ByteReader r(payload, len);
  const uint32_t raw = r.U32();
  std::string text = r.Str();
  if (!r.ok() || r.remaining() != 0) return false;
  *code = static_cast<ErrorCode>(raw);
  *message = std::move(text);
  return true;
}

namespace {

// Shared by both response versions: everything the v1 payload carries after
// the version byte.  Keeping one spelling guarantees the v2 layout is a
// strict prefix-extension of v1.
void WriteStatsV1Fields(ByteWriter* w, const WireStats& stats) {
  w->Str(stats.filter_name);
  w->U64(stats.capacity);
  w->U64(stats.insert_batches);
  w->U64(stats.query_batches);
  w->U64(stats.keys_inserted);
  w->U64(stats.keys_queried);
  w->U64(stats.insert_failures);
  w->U64(stats.front_cache_hits);
  w->U32(static_cast<uint32_t>(stats.shards.size()));
  for (const WireShardStats& s : stats.shards) {
    w->U64(s.inserts);
    w->U64(s.insert_failures);
    w->U64(s.queries);
    w->U64(s.hits);
  }
}

}  // namespace

void EncodeStatsRequest(uint64_t request_id, uint8_t max_version,
                        std::vector<uint8_t>* out) {
  if (max_version <= kStatsPayloadV1) {
    // The legacy request is the empty payload; old servers require
    // remaining() == 0 semantics only on responses, but keep the historical
    // bytes anyway.
    AppendFrame(Opcode::kStats, 0, request_id, nullptr, 0, out);
    return;
  }
  const uint8_t payload[1] = {max_version};
  AppendFrame(Opcode::kStats, 0, request_id, payload, sizeof(payload), out);
}

uint8_t StatsRequestVersion(const uint8_t* payload, size_t len) {
  if (len == 0 || payload == nullptr) return kStatsPayloadV1;
  if (payload[0] >= kStatsPayloadV3) return kStatsPayloadV3;
  return payload[0] >= kStatsPayloadV2 ? kStatsPayloadV2 : kStatsPayloadV1;
}

void EncodeStatsResponse(uint64_t request_id, const WireStats& stats,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U8(kStatsPayloadV1);
  WriteStatsV1Fields(&w, stats);
  AppendFrame(Opcode::kStats, kFlagResponse, request_id, payload.data(),
              payload.size(), out);
}

void EncodeStatsV2Response(uint64_t request_id, const WireStats& stats,
                           std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U8(kStatsPayloadV2);
  WriteStatsV1Fields(&w, stats);
  w.U64(stats.front_cache_misses);
  obs::EncodeMetricSamples(stats.metrics, &payload);
  AppendFrame(Opcode::kStats, kFlagResponse, request_id, payload.data(),
              payload.size(), out);
}

void EncodeStatsV3Response(uint64_t request_id, const WireStats& stats,
                           std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U8(kStatsPayloadV3);
  WriteStatsV1Fields(&w, stats);
  w.U64(stats.front_cache_misses);
  obs::EncodeMetricSamples(stats.metrics, &payload);
  w.U32(stats.capabilities);
  AppendFrame(Opcode::kStats, kFlagResponse, request_id, payload.data(),
              payload.size(), out);
}

bool DecodeStatsPayload(const uint8_t* payload, size_t len, WireStats* stats) {
  ByteReader r(payload, len);
  const uint8_t version = r.U8();
  if (version < kStatsPayloadV1 || version > kStatsPayloadV3) return false;
  WireStats out;
  out.filter_name = r.Str();
  out.capacity = r.U64();
  out.insert_batches = r.U64();
  out.query_batches = r.U64();
  out.keys_inserted = r.U64();
  out.keys_queried = r.U64();
  out.insert_failures = r.U64();
  out.front_cache_hits = r.U64();
  const uint32_t num_shards = r.U32();
  // 32 bytes per shard must fit in what remains; bounds the allocation.
  if (!r.ok() || static_cast<size_t>(num_shards) * 32 > r.remaining()) {
    return false;
  }
  out.shards.resize(num_shards);
  for (WireShardStats& s : out.shards) {
    s.inserts = r.U64();
    s.insert_failures = r.U64();
    s.queries = r.U64();
    s.hits = r.U64();
  }
  if (version >= kStatsPayloadV2) {
    out.front_cache_misses = r.U64();
    if (!obs::DecodeMetricSamples(&r, &out.metrics)) return false;
  }
  if (version >= kStatsPayloadV3) {
    out.capabilities = r.U32();
  }
  if (!r.ok() || r.remaining() != 0) return false;
  *stats = std::move(out);
  return true;
}

void EncodeTracesResponse(uint64_t request_id,
                          const std::vector<obs::Trace>& traces,
                          std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  const size_t count =
      traces.size() < kMaxWireTraces ? traces.size() : kMaxWireTraces;
  w.U32(static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const obs::Trace& t = traces[i];
    w.U64(t.trace_id);
    w.U64(t.request_id);
    w.U64(t.conn_id);
    w.U64(t.start_ns);
    w.U64(t.end_ns);
    w.U32(t.loop);
    w.U32(t.key_count);
    w.U32(t.frames);
    w.U32(t.spans_dropped);
    w.U8(t.opcode);
    w.U8(t.flags);
    const uint32_t span_count = t.span_count <= obs::kMaxTraceSpans
                                    ? t.span_count
                                    : obs::kMaxTraceSpans;
    w.U32(span_count);
    for (uint32_t s = 0; s < span_count; ++s) {
      w.U8(t.spans[s].stage);
      w.U64(t.spans[s].start_ns);
      w.U64(t.spans[s].end_ns);
      w.U64(t.spans[s].detail);
    }
  }
  AppendFrame(Opcode::kTraces, kFlagResponse, request_id, payload.data(),
              payload.size(), out);
}

bool DecodeTracesPayload(const uint8_t* payload, size_t len,
                         std::vector<obs::Trace>* traces) {
  ByteReader r(payload, len);
  const uint32_t count = r.U32();
  // 51 bytes of fixed fields per trace must fit in what remains; bounds the
  // allocation against hostile counts.
  if (!r.ok() || count > kMaxWireTraces ||
      static_cast<size_t>(count) * 51 > r.remaining()) {
    return false;
  }
  std::vector<obs::Trace> out;
  out.resize(count);
  for (obs::Trace& t : out) {
    t.trace_id = r.U64();
    t.request_id = r.U64();
    t.conn_id = r.U64();
    t.start_ns = r.U64();
    t.end_ns = r.U64();
    t.loop = r.U32();
    t.key_count = r.U32();
    t.frames = r.U32();
    t.spans_dropped = r.U32();
    t.opcode = r.U8();
    t.flags = r.U8();
    const uint32_t span_count = r.U32();
    if (!r.ok() || span_count > obs::kMaxTraceSpans) return false;
    t.span_count = span_count;
    for (uint32_t s = 0; s < span_count; ++s) {
      t.spans[s].stage = r.U8();
      t.spans[s].start_ns = r.U64();
      t.spans[s].end_ns = r.U64();
      t.spans[s].detail = r.U64();
    }
  }
  if (!r.ok() || r.remaining() != 0) return false;
  *traces = std::move(out);
  return true;
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so a long-lived pipelined connection doesn't grow the buffer forever yet
  // steady-state appends stay O(len).
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + len);
}

DecodeStatus FrameDecoder::Next(Frame* frame) {
  if (error_ != DecodeStatus::kNeedMore) return error_;
  const uint8_t* p = buffer_.data() + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  if (GetU32(p) != kFrameMagic) return error_ = DecodeStatus::kBadMagic;
  if (p[4] != kProtocolVersion) return error_ = DecodeStatus::kBadVersion;
  const uint32_t payload_len = GetU32(p + 16);
  if (payload_len > kMaxPayload) return error_ = DecodeStatus::kBadLength;
  if (available < kFrameHeaderBytes + payload_len) {
    return DecodeStatus::kNeedMore;
  }
  const uint8_t* payload = p + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != GetU32(p + 20)) {
    return error_ = DecodeStatus::kBadChecksum;
  }
  frame->opcode = p[5];
  frame->flags = GetU16(p + 6);
  frame->request_id = GetU64(p + 8);
  frame->payload.assign(payload, payload + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return DecodeStatus::kFrame;
}

}  // namespace prefixfilter::net
