// Readiness-notification abstraction for the membership server's event loop.
//
// Two implementations behind one interface: a level-triggered epoll poller
// (Linux, the production path — O(ready) wakeups independent of connection
// count) and a portable poll(2) poller (any POSIX system, and a forcing
// option so tests exercise the fallback on Linux too).  Level-triggered
// semantics keep both implementations interchangeable: the event loop may
// leave data unread and will be woken again.
//
// Pollers are single-threaded objects owned by the event loop; none of the
// methods are thread-safe.
#ifndef PREFIXFILTER_SRC_NET_POLLER_H_
#define PREFIXFILTER_SRC_NET_POLLER_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace prefixfilter::net {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  // Error/hangup on the fd; the owner should tear the connection down (a
  // final read usually surfaces the errno).
  bool error = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  // Registers `fd` for read readiness, plus write readiness when
  // `want_write`.  A given fd is registered at most once.
  virtual bool Add(int fd, bool want_write) = 0;
  // Changes the interest set of an already-registered fd.  Dropping read
  // interest lets the owner park a half-closed connection that only has
  // output left to drain (a level-triggered EOF would otherwise wake the
  // loop forever).
  virtual bool Update(int fd, bool want_read, bool want_write) = 0;
  virtual void Remove(int fd) = 0;

  // Blocks up to `timeout_ms` (-1 = indefinitely) and fills `events` with
  // ready fds.  Returns false only on unrecoverable poller failure.
  virtual bool Wait(int timeout_ms, std::vector<PollEvent>* events) = 0;

  // Implementation name for logs/stats ("epoll" or "poll").
  virtual const char* name() const = 0;

  // Builds the best available poller: epoll on Linux unless `prefer_epoll`
  // is false, poll(2) otherwise.  Returns nullptr only when the kernel
  // refuses an epoll instance AND poll construction fails (never in
  // practice).
  static std::unique_ptr<Poller> Create(bool prefer_epoll);
};

}  // namespace prefixfilter::net

#endif  // PREFIXFILTER_SRC_NET_POLLER_H_
