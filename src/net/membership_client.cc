#include "src/net/membership_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "src/obs/metrics.h"

namespace prefixfilter::net {

MembershipClient::MembershipClient(ClientOptions options)
    : options_(std::move(options)) {
  if (options_.max_batch_keys == 0) options_.max_batch_keys = 1;
  if (options_.max_batch_keys > kMaxKeysPerFrame) {
    options_.max_batch_keys = kMaxKeysPerFrame;
  }
  if (options_.pipeline_depth == 0) options_.pipeline_depth = 1;
  // rate * 2^64 overflows the double->u64 cast at rate >= 1.0 (2^64 is not
  // representable), so "trace everything" clamps explicitly.
  if (options_.trace_sample_rate >= 1.0) {
    trace_threshold_ = ~uint64_t{0};
  } else if (options_.trace_sample_rate > 0.0) {
    trace_threshold_ = static_cast<uint64_t>(options_.trace_sample_rate *
                                             static_cast<double>(~uint64_t{0}));
  }
  // Clock-entropy seed, decorrelated across same-process clients by identity
  // (obs-disabled builds read a zero clock, hence the fallback constant).
  trace_rng_ = (obs::NowNanos() | 1) ^
               static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this));
  if (trace_rng_ == 0) trace_rng_ = 0x9e3779b97f4a7c15ULL;
}

MembershipClient::~MembershipClient() { Disconnect(); }

bool MembershipClient::Connect() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    Fail(std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    Fail("bad host address: " + options_.host);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    Fail(std::string("connect: ") + std::strerror(errno));
    return false;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder();  // a new byte stream starts clean
  error_.clear();
  return true;
}

void MembershipClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool MembershipClient::EnsureConnected() {
  return fd_ >= 0 || Connect();
}

void MembershipClient::Fail(const std::string& message) { error_ = message; }

void MembershipClient::RecordFrameBytes(const char* tag, const uint8_t* data,
                                        size_t len) {
  if (options_.record_frames_dir.empty() ||
      frames_recorded_ >= options_.record_frames_limit) {
    return;
  }
  // One file per frame, named uniquely per client instance so concurrent
  // loadgen workers recording into one directory never collide.
  char name[64];
  std::snprintf(name, sizeof(name), "/%s-%p-%05zu.bin", tag,
                static_cast<const void*>(this), frames_recorded_);
  std::ofstream out(options_.record_frames_dir + name,
                    std::ios::binary | std::ios::trunc);
  if (!out) return;  // recording is best-effort; never fail traffic for it
  out.write(reinterpret_cast<const char*>(data), static_cast<long>(len));
  ++frames_recorded_;
}

bool MembershipClient::SendAll(const uint8_t* data, size_t len) {
  RecordFrameBytes("tx", data, len);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Fail(std::string("send: ") + std::strerror(errno));
    Disconnect();
    return false;
  }
  return true;
}

bool MembershipClient::ReadFrame(Frame* frame) {
  uint8_t scratch[65536];
  for (;;) {
    const DecodeStatus status = decoder_.Next(frame);
    if (status == DecodeStatus::kFrame) {
      ++frames_received_;
      if (!options_.record_frames_dir.empty()) {
        // Re-encoding reproduces the exact wire bytes (the encoding is
        // deterministic: fixed header layout + CRC over the payload).
        std::vector<uint8_t> bytes;
        AppendFrame(static_cast<Opcode>(frame->opcode), frame->flags,
                    frame->request_id, frame->payload.data(),
                    frame->payload.size(), &bytes);
        RecordFrameBytes("rx", bytes.data(), bytes.size());
      }
      return true;
    }
    if (status != DecodeStatus::kNeedMore) {
      Fail(std::string("protocol error from server: ") +
           DecodeStatusName(status));
      Disconnect();
      return false;
    }
    const ssize_t n = ::recv(fd_, scratch, sizeof(scratch), 0);
    if (n > 0) {
      decoder_.Feed(scratch, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Fail(n == 0 ? "connection closed by server"
                : std::string("recv: ") + std::strerror(errno));
    Disconnect();
    return false;
  }
}

bool MembershipClient::CheckResponse(const Frame& frame, uint64_t request_id) {
  if (!frame.is_response() || frame.request_id != request_id) {
    // A stray or reordered response means this client and the server
    // disagree about the stream state; resynchronizing is not possible.
    Fail("response stream out of sync");
    Disconnect();
    return false;
  }
  if (frame.is_error()) {
    ++remote_errors_;
    ErrorCode code;
    std::string message;
    if (DecodeErrorPayload(frame.payload.data(), frame.payload.size(), &code,
                           &message)) {
      Fail("server error " + std::to_string(static_cast<uint32_t>(code)) +
           ": " + message);
    } else {
      Fail("server error (unparseable error payload)");
    }
    return false;
  }
  return true;
}

bool MembershipClient::Roundtrip(const std::vector<uint8_t>& request,
                                 uint64_t request_id, Frame* response) {
  const int attempts = options_.auto_reconnect ? 2 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++reconnects_;
    if (!EnsureConnected()) continue;
    if (!SendAll(request.data(), request.size())) continue;
    ++frames_sent_;
    if (!ReadFrame(response)) continue;
    // Response-level failures (error frames, desync) are not transport
    // failures; retrying would re-execute against a healthy server.
    return CheckResponse(*response, request_id);
  }
  return false;
}

bool MembershipClient::InsertBatch(const uint64_t* keys, size_t count,
                                   uint64_t* failures) {
  // Batches beyond the frame cap split transparently into multiple frames
  // (a single oversized frame would be a protocol violation the server must
  // reject).
  *failures = 0;
  size_t sent = 0;
  do {
    const size_t n = std::min<size_t>(count - sent, kMaxKeysPerFrame);
    const uint64_t id = next_request_id_++;
    std::vector<uint8_t> request;
    EncodeKeyBatchRequest(Opcode::kInsertBatch, id, keys + sent, n, &request);
    Frame response;
    uint64_t frame_failures = 0;
    if (!Roundtrip(request, id, &response)) return false;
    if (response.opcode != static_cast<uint8_t>(Opcode::kInsertBatch) ||
        !DecodeInsertResponsePayload(response.payload.data(),
                                     response.payload.size(),
                                     &frame_failures)) {
      Fail("malformed INSERT response");
      Disconnect();
      return false;
    }
    *failures += frame_failures;
    sent += n;
  } while (sent < count);
  return true;
}

uint64_t MembershipClient::NextTraceRandom() {
  uint64_t x = trace_rng_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  trace_rng_ = x;
  return x;
}

bool MembershipClient::TraceNegotiated() {
  if (trace_threshold_ == 0) return false;
  if (trace_capable_ < 0) {
    // One STATS v3 roundtrip decides whether the server understands
    // kFlagTraced.  Only a decoded answer latches the verdict; a transport
    // failure leaves the question open for the next RPC, so a server that was
    // briefly unreachable does not silence tracing forever.
    WireStats stats;
    if (!StatsV3(&stats)) return false;
    trace_capable_ = (stats.capabilities & kCapTraceContext) != 0 ? 1 : 0;
  }
  return trace_capable_ == 1;
}

bool MembershipClient::ShouldTraceFrame() {
  return TraceNegotiated() && NextTraceRandom() <= trace_threshold_;
}

bool MembershipClient::QueryBatch(const uint64_t* keys, size_t count,
                                  std::vector<uint8_t>* out) {
  // Over-cap batches ride the pipelined path, which already frames in
  // kMaxKeysPerFrame-or-smaller slices.
  if (count > kMaxKeysPerFrame) return QueryPipelined(keys, count, out);
  // Sampled before the id so the lazy negotiation roundtrip (which consumes
  // ids of its own) finishes before this frame's id is drawn.
  const bool traced = ShouldTraceFrame();
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> request;
  if (traced) {
    TraceContext context;
    context.trace_id = NextTraceRandom() | 1;  // 0 means "server assigns"
    context.sampled = true;
    EncodeTracedKeyBatchRequest(Opcode::kQueryBatch, id, context, keys, count,
                                &request);
    ++frames_traced_;
  } else {
    EncodeKeyBatchRequest(Opcode::kQueryBatch, id, keys, count, &request);
  }
  Frame response;
  if (!Roundtrip(request, id, &response)) return false;
  if (response.opcode != static_cast<uint8_t>(Opcode::kQueryBatch) ||
      !DecodeQueryResponsePayload(response.payload.data(),
                                  response.payload.size(), out) ||
      out->size() != count) {
    Fail("malformed QUERY response");
    Disconnect();
    return false;
  }
  return true;
}

bool MembershipClient::Contains(uint64_t key, bool* present) {
  std::vector<uint8_t> out;
  if (!QueryBatch(&key, 1, &out)) return false;
  *present = out[0] != 0;
  return true;
}

bool MembershipClient::QueryPipelined(const uint64_t* keys, size_t count,
                                      std::vector<uint8_t>* out) {
  // Negotiate before the window opens: the negotiation is its own strict
  // request/response exchange and must not interleave with in-flight
  // pipelined frames.
  const bool trace_eligible = TraceNegotiated();
  const int attempts = options_.auto_reconnect ? 2 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++reconnects_;
    if (!EnsureConnected()) continue;
    out->assign(count, 0);

    struct InFlight {
      size_t offset;  // where this frame's results land in `out`
      size_t count;
    };
    // Reassembly window keyed by request id: a multi-loop server offloading
    // batches to its worker pool may answer pipelined frames in any order
    // (protocol.h), so each response routes by its echoed id, not by send
    // position.  `order` keeps the send sequence purely for the
    // responses_reordered() counter.
    std::unordered_map<uint64_t, InFlight> window;
    std::deque<uint64_t> order;
    size_t sent = 0;       // keys encoded and sent
    size_t received = 0;   // keys answered
    std::vector<uint8_t> request;
    std::vector<uint8_t> results;
    bool transport_ok = true;

    while (received < count || (count == 0 && sent == 0)) {
      if (count == 0) break;
      // Top the window up to pipeline_depth before blocking on a response.
      while (sent < count && window.size() < options_.pipeline_depth) {
        const size_t n = std::min(options_.max_batch_keys, count - sent);
        const uint64_t id = next_request_id_++;
        request.clear();
        if (trace_eligible && NextTraceRandom() <= trace_threshold_) {
          TraceContext context;
          context.trace_id = NextTraceRandom() | 1;
          context.sampled = true;
          EncodeTracedKeyBatchRequest(Opcode::kQueryBatch, id, context,
                                      keys + sent, n, &request);
          ++frames_traced_;
        } else {
          EncodeKeyBatchRequest(Opcode::kQueryBatch, id, keys + sent, n,
                                &request);
        }
        if (!SendAll(request.data(), request.size())) {
          transport_ok = false;
          break;
        }
        ++frames_sent_;
        window.emplace(id, InFlight{sent, n});
        order.push_back(id);
        sent += n;
      }
      if (!transport_ok) break;

      Frame response;
      if (!ReadFrame(&response)) {
        transport_ok = false;
        break;
      }
      const auto it = window.find(response.request_id);
      if (!response.is_response() || it == window.end()) {
        // An id we never sent (or already answered): this client and the
        // server disagree about the stream state; resynchronizing is not
        // possible.
        Fail("response stream out of sync");
        Disconnect();
        return false;
      }
      if (!order.empty() && order.front() != response.request_id) {
        ++responses_reordered_;
      }
      order.erase(std::find(order.begin(), order.end(), response.request_id));
      // The id matched above, so CheckResponse only screens the error flag.
      if (!CheckResponse(response, response.request_id)) return false;
      const InFlight expect = it->second;
      window.erase(it);
      if (response.opcode != static_cast<uint8_t>(Opcode::kQueryBatch) ||
          !DecodeQueryResponsePayload(response.payload.data(),
                                      response.payload.size(), &results) ||
          results.size() != expect.count) {
        Fail("malformed QUERY response");
        Disconnect();
        return false;
      }
      std::memcpy(out->data() + expect.offset, results.data(), results.size());
      received += expect.count;
    }
    if (transport_ok && received == count) return true;
    // Transport died mid-pipeline: queries are idempotent, so a fresh
    // connection simply replays the whole stream.
  }
  return false;
}

bool MembershipClient::Stats(WireStats* out) {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> request;
  EncodeEmptyRequest(Opcode::kStats, id, &request);
  Frame response;
  if (!Roundtrip(request, id, &response)) return false;
  if (response.opcode != static_cast<uint8_t>(Opcode::kStats) ||
      !DecodeStatsPayload(response.payload.data(), response.payload.size(),
                          out)) {
    Fail("malformed STATS response");
    Disconnect();
    return false;
  }
  return true;
}

bool MembershipClient::StatsV2(WireStats* out) {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> request;
  EncodeStatsRequest(id, kStatsPayloadV2, &request);
  Frame response;
  if (!Roundtrip(request, id, &response)) return false;
  if (response.opcode != static_cast<uint8_t>(Opcode::kStats) ||
      !DecodeStatsPayload(response.payload.data(), response.payload.size(),
                          out)) {
    Fail("malformed STATS response");
    Disconnect();
    return false;
  }
  return true;
}

bool MembershipClient::StatsV3(WireStats* out) {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> request;
  EncodeStatsRequest(id, kStatsPayloadV3, &request);
  Frame response;
  if (!Roundtrip(request, id, &response)) return false;
  if (response.opcode != static_cast<uint8_t>(Opcode::kStats) ||
      !DecodeStatsPayload(response.payload.data(), response.payload.size(),
                          out)) {
    Fail("malformed STATS response");
    Disconnect();
    return false;
  }
  return true;
}

bool MembershipClient::Traces(std::vector<obs::Trace>* out) {
  out->clear();
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> request;
  EncodeEmptyRequest(Opcode::kTraces, id, &request);
  Frame response;
  if (!Roundtrip(request, id, &response)) {
    // A pre-tracing server answers kUnsupported (protocol.h): that reads as
    // "no traces", not a failure, so mixed fleets stay queryable.
    ErrorCode code;
    std::string message;
    if (response.is_response() && response.request_id == id &&
        response.is_error() &&
        DecodeErrorPayload(response.payload.data(), response.payload.size(),
                           &code, &message) &&
        code == ErrorCode::kUnsupported) {
      error_.clear();
      return true;
    }
    return false;
  }
  if (response.opcode != static_cast<uint8_t>(Opcode::kTraces) ||
      !DecodeTracesPayload(response.payload.data(), response.payload.size(),
                           out)) {
    Fail("malformed TRACES response");
    Disconnect();
    return false;
  }
  return true;
}

bool MembershipClient::Snapshot(std::vector<uint8_t>* out) {
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> request;
  EncodeEmptyRequest(Opcode::kSnapshot, id, &request);
  Frame response;
  if (!Roundtrip(request, id, &response)) return false;
  if (response.opcode != static_cast<uint8_t>(Opcode::kSnapshot)) {
    Fail("malformed SNAPSHOT response");
    Disconnect();
    return false;
  }
  *out = std::move(response.payload);
  return true;
}

}  // namespace prefixfilter::net
