// Wire protocol for the networked membership service.
//
// The service speaks a length-prefixed binary protocol over TCP, designed
// around the same batch orientation the paper's evaluation uses (§7.3): a
// client ships whole key batches per frame and the server answers each frame
// with one response frame, so a pipelined connection keeps large shard-
// grouped batches flowing into BatchRouter (src/service/batch_router.h).
//
// Frame layout (fixed 24-byte header, no varints; multi-byte fields are
// host-endian via memcpy — little-endian on every target this library
// supports, same stance as src/util/serialize.h; big-endian hosts are out
// of scope for the whole wire-format family):
//
//   offset  size  field
//        0     4  magic        0x50464E31 ("PFN1")
//        4     1  version      kProtocolVersion (1)
//        5     1  opcode       Opcode below
//        6     2  flags        bit 0 = response, bit 1 = error response,
//                              bit 2 = payload starts with a trace context
//        8     8  request_id   client-chosen, echoed verbatim in the response
//       16     4  payload_len  bytes following the header (<= kMaxPayload)
//       20     4  checksum     CRC-32 (IEEE) of the payload bytes
//
// Payloads:
//   INSERT_BATCH / QUERY_BATCH request:  u32 count, then count x u64 keys
//   INSERT_BATCH response:               u64 failed-insert count
//   QUERY_BATCH  response:               u32 count, then count x u8 (0/1)
//   STATS        request:                empty (v1) or u8 max payload
//                                        version the client accepts (>= 2)
//   STATS        response:               WireStats; payload version byte 1
//                                        (legacy fields), 2 (adds
//                                        front_cache_misses + metrics blob),
//                                        or 3 (adds u32 capabilities)
//   SNAPSHOT     request:                empty
//   SNAPSHOT     response:               AnyFilter envelope bytes (the same
//                                        image FilterService::Snapshot writes)
//   TRACES       request:                empty
//   TRACES       response:               captured trace records (see
//                                        EncodeTracesResponse)
//   error        response:               u32 ErrorCode, then u32-length-
//                                        prefixed UTF-8 message
//
// Trace context (kFlagTraced, bit 2): when set on a request, the payload is
// prefixed with kTraceContextBytes of trace context — u64 trace id + u8
// context flags (bit 0 = sampled) — and the opcode's normal payload follows.
// The bit is strictly opt-in and version-negotiated: a server advertises
// kCapTraceContext in its STATS v3 capabilities, and a client that has not
// seen that capability must never set the bit (a pre-tracing server's exact
// payload-length validation would reject the frame).  With the bit unset
// every frame is byte-identical to the pre-tracing protocol, so old and new
// peers interoperate both ways — the same discipline as STATS v2.
//
// Response ordering: the request_id echo is the correlation contract.  A
// synchronous (no worker pool) server answers every frame in request order,
// but a server offloading query batches to its worker pool may answer
// pipelined QUERY_BATCH frames out of order — both relative to each other
// and relative to a later non-query frame on the same connection.  Clients
// MUST match responses to requests by request_id (MembershipClient's
// pipelined path keeps a reassembly window keyed by id) and must not assume
// FIFO response order beyond one-frame-at-a-time request/response use.
//
// Versioning: the header's version byte gates the whole frame; a decoder
// seeing an unknown version reports kBadVersion without consuming past the
// header, so a future v2 can extend payloads freely behind a version bump.
//
// Robustness: FrameDecoder is incremental (feed arbitrary byte slices) and
// malformed-input-safe — bad magic/version/length poison the stream with a
// typed error (a byte stream cannot be resynchronized once framing is lost,
// so the connection must be dropped), a checksum mismatch rejects the frame,
// and payload parsers bound every count against the actual byte length
// before allocating.
#ifndef PREFIXFILTER_SRC_NET_PROTOCOL_H_
#define PREFIXFILTER_SRC_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace prefixfilter::net {

inline constexpr uint32_t kFrameMagic = 0x50464E31;  // "PFN1"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
// Upper bound on a frame payload.  Requests are key batches (a 1M-key batch
// is 8 MiB); responses include whole service snapshots, which for the
// capacities this repo benches stay well under this cap.
inline constexpr uint32_t kMaxPayload = 64u << 20;
// Largest key count a single INSERT/QUERY frame may carry.
inline constexpr uint32_t kMaxKeysPerFrame = 1u << 20;

enum class Opcode : uint8_t {
  kInsertBatch = 1,
  kQueryBatch = 2,
  kStats = 3,
  kSnapshot = 4,
  kTraces = 5,
};

// Returns true for the opcodes this version understands.
bool IsKnownOpcode(uint8_t raw);

inline constexpr uint16_t kFlagResponse = 1u << 0;
inline constexpr uint16_t kFlagError = 1u << 1;
// Request payload begins with a trace context (see the header comment; only
// valid after the server advertised kCapTraceContext via STATS v3).
inline constexpr uint16_t kFlagTraced = 1u << 2;

enum class ErrorCode : uint32_t {
  kBadRequest = 1,   // well-framed but semantically invalid payload
  kUnsupported = 2,  // unknown opcode
  kInternal = 3,     // server-side failure (e.g. snapshot serialization)
};

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `len` bytes.
uint32_t Crc32(const void* data, size_t len);

struct Frame {
  uint8_t opcode = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;

  bool is_response() const { return (flags & kFlagResponse) != 0; }
  bool is_error() const { return (flags & kFlagError) != 0; }
};

// --- encoding ---------------------------------------------------------------

// Appends one complete frame (header + payload) to `out`.
void AppendFrame(Opcode opcode, uint16_t flags, uint64_t request_id,
                 const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out);

// Request encoders.
void EncodeKeyBatchRequest(Opcode opcode, uint64_t request_id,
                           const uint64_t* keys, size_t count,
                           std::vector<uint8_t>* out);
void EncodeEmptyRequest(Opcode opcode, uint64_t request_id,
                        std::vector<uint8_t>* out);

// --- trace context (kFlagTraced payload prefix) -----------------------------

// The per-request trace context carried ahead of a traced request's payload.
struct TraceContext {
  uint64_t trace_id = 0;
  bool sampled = false;
};

// Wire size of the prefix: u64 trace_id + u8 context flags.
inline constexpr size_t kTraceContextBytes = 9;
inline constexpr uint8_t kTraceContextSampled = 1u << 0;

// Key-batch request with kFlagTraced set and the context prefixed to the
// payload.  Callers must have negotiated kCapTraceContext first.
void EncodeTracedKeyBatchRequest(Opcode opcode, uint64_t request_id,
                                 const TraceContext& context,
                                 const uint64_t* keys, size_t count,
                                 std::vector<uint8_t>* out);

// Parses the trace-context prefix of a kFlagTraced payload.  False when the
// payload is shorter than the prefix; on success the caller consumes
// kTraceContextBytes and parses the remainder as the opcode's normal payload.
bool DecodeTraceContext(const uint8_t* payload, size_t len,
                        TraceContext* context);

// Response encoders (server side).
void EncodeInsertResponse(uint64_t request_id, uint64_t failures,
                          std::vector<uint8_t>* out);
void EncodeQueryResponse(uint64_t request_id, const uint8_t* results,
                         size_t count, std::vector<uint8_t>* out);
void EncodeSnapshotResponse(uint64_t request_id,
                            const std::vector<uint8_t>& snapshot,
                            std::vector<uint8_t>* out);
void EncodeErrorResponse(Opcode opcode, uint64_t request_id, ErrorCode code,
                         const std::string& message,
                         std::vector<uint8_t>* out);

// --- payload parsers (all bounds-checked; false = malformed) ---------------

// INSERT/QUERY request payload -> keys.  Enforces count <= kMaxKeysPerFrame
// and an exact payload length match.
bool DecodeKeyBatchPayload(const uint8_t* payload, size_t len,
                           std::vector<uint64_t>* keys);
// Same validation, but APPENDS to *keys without clearing — the server's
// pipeline-merge path accumulates many frames into one batch with no
// per-frame allocation.  *keys is untouched on failure.
bool AppendKeyBatchPayload(const uint8_t* payload, size_t len,
                           std::vector<uint64_t>* keys);
bool DecodeInsertResponsePayload(const uint8_t* payload, size_t len,
                                 uint64_t* failures);
bool DecodeQueryResponsePayload(const uint8_t* payload, size_t len,
                                std::vector<uint8_t>* results);
bool DecodeErrorPayload(const uint8_t* payload, size_t len, ErrorCode* code,
                        std::string* message);

// --- STATS payload ----------------------------------------------------------

// Per-shard counters as served over the wire (mirrors ShardStats).
struct WireShardStats {
  uint64_t inserts = 0;
  uint64_t insert_failures = 0;
  uint64_t queries = 0;
  uint64_t hits = 0;
};

// Service-wide stats snapshot served by the STATS opcode.  The per-shard
// vector is the observable proof that socket traffic rides the
// BatchRouter/shard path (tests and the loadgen assert on it).
//
// Versioning (negotiated inside the STATS payloads, independent of the frame
// header version): a v1 request has an empty payload and gets the original
// v1 response; a v2-capable client sends a 1-byte payload [0x02] and a
// v2-capable server answers with payload version 2 — every v1 field, then
// front_cache_misses and the full metrics-registry snapshot.  Old servers
// ignore the request payload entirely and answer v1 (which the v2 decoder
// accepts), old clients never send the marker and keep getting byte-
// identical v1 responses.
struct WireStats {
  std::string filter_name;
  uint64_t capacity = 0;
  uint64_t insert_batches = 0;
  uint64_t query_batches = 0;
  uint64_t keys_inserted = 0;
  uint64_t keys_queried = 0;
  uint64_t insert_failures = 0;
  uint64_t front_cache_hits = 0;
  std::vector<WireShardStats> shards;
  // --- v2 fields (zero/empty when decoded from a v1 payload) ----------------
  uint64_t front_cache_misses = 0;
  std::vector<obs::MetricSample> metrics;
  // --- v3 fields (zero when decoded from a v1/v2 payload) -------------------
  // Capability bitmask (kCap*): the negotiation handle for optional protocol
  // extensions.  A pre-v3 server never sends it, so its absence reads as
  // "no capabilities" on old servers — exactly the safe default.
  uint32_t capabilities = 0;
};

inline constexpr uint8_t kStatsPayloadV1 = 1;
inline constexpr uint8_t kStatsPayloadV2 = 2;
inline constexpr uint8_t kStatsPayloadV3 = 3;

// WireStats::capabilities bits.
inline constexpr uint32_t kCapTraceContext = 1u << 0;  // accepts kFlagTraced
inline constexpr uint32_t kCapTraces = 1u << 1;        // serves Opcode::kTraces

// STATS request advertising the highest payload version the client decodes
// (kStatsPayloadV1 encodes the legacy empty payload).
void EncodeStatsRequest(uint64_t request_id, uint8_t max_version,
                        std::vector<uint8_t>* out);
// v1 response: byte-identical to the historical encoding (old clients
// require remaining() == 0 after the shard array).
void EncodeStatsResponse(uint64_t request_id, const WireStats& stats,
                         std::vector<uint8_t>* out);
// v2 response: v1 fields + front_cache_misses + stats.metrics.
void EncodeStatsV2Response(uint64_t request_id, const WireStats& stats,
                           std::vector<uint8_t>* out);
// v3 response: v2 fields + u32 capabilities.
void EncodeStatsV3Response(uint64_t request_id, const WireStats& stats,
                           std::vector<uint8_t>* out);
// Accepts payload versions 1, 2, and 3.
bool DecodeStatsPayload(const uint8_t* payload, size_t len, WireStats* stats);
// The payload version a STATS *request* asks for (empty payload = v1).  A
// request advertising a version newer than this build clamps to the newest
// version the build speaks — how old servers answer future clients.
uint8_t StatsRequestVersion(const uint8_t* payload, size_t len);

// --- TRACES payload ---------------------------------------------------------

// Cap on traces per response frame; bounds the decoder's allocation.
inline constexpr uint32_t kMaxWireTraces = 4096;

// Response payload: u32 trace count, then per trace the fixed Trace fields
// followed by its span list.  Request is EncodeEmptyRequest(kTraces, ...);
// pre-tracing servers answer kUnsupported, which clients treat as "no
// traces" rather than an error.
void EncodeTracesResponse(uint64_t request_id,
                          const std::vector<obs::Trace>& traces,
                          std::vector<uint8_t>* out);
bool DecodeTracesPayload(const uint8_t* payload, size_t len,
                         std::vector<obs::Trace>* traces);

// --- incremental decoding ---------------------------------------------------

enum class DecodeStatus {
  kFrame,       // *frame filled; more input may still be buffered
  kNeedMore,    // no complete frame buffered yet
  kBadMagic,    // stream is not this protocol (fatal)
  kBadVersion,  // unknown protocol version (fatal)
  kBadLength,   // advertised payload exceeds kMaxPayload (fatal)
  kBadChecksum, // framing intact but payload corrupted (fatal)
};

const char* DecodeStatusName(DecodeStatus status);

// Accumulates a byte stream and pops complete frames.  Any kBad* status is
// sticky: framing is lost, so every later Next() repeats the error and the
// owner must drop the connection.
class FrameDecoder {
 public:
  // Appends raw bytes from the socket.
  void Feed(const uint8_t* data, size_t len);

  // Pops the next complete frame into *frame.
  DecodeStatus Next(Frame* frame);

  // Bytes buffered but not yet consumed (diagnostics/tests).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out as frames
  DecodeStatus error_ = DecodeStatus::kNeedMore;  // sticky once kBad*
};

}  // namespace prefixfilter::net

#endif  // PREFIXFILTER_SRC_NET_PROTOCOL_H_
