#include "src/net/membership_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/exposition.h"

namespace prefixfilter::net {
namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Nagle off: the server's responses are complete frames; delaying them only
// adds latency to the pipelined request/response pattern the protocol wants.
void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

WireStats CollectWireStats(const FilterService& service) {
  WireStats wire;
  const FilterServiceStats stats = service.stats();
  wire.insert_batches = stats.insert_batches;
  wire.query_batches = stats.query_batches;
  wire.keys_inserted = stats.keys_inserted;
  wire.keys_queried = stats.keys_queried;
  wire.insert_failures = stats.insert_failures;
  wire.front_cache_hits = stats.front_cache_hits;
  wire.front_cache_misses = stats.front_cache_misses;
  const ShardedFilter& filter = service.filter();
  wire.filter_name = filter.Name();
  wire.capacity = filter.Capacity();
  wire.shards.reserve(filter.num_shards());
  for (uint32_t s = 0; s < filter.num_shards(); ++s) {
    const ShardStats shard = filter.shard_stats(s);
    WireShardStats w;
    w.inserts = shard.inserts;
    w.insert_failures = shard.insert_failures;
    w.queries = shard.queries;
    w.hits = shard.hits;
    wire.shards.push_back(w);
  }
  return wire;
}

MembershipServer::MembershipServer(std::shared_ptr<FilterService> service,
                                   ServerOptions options)
    : service_(std::move(service)),
      options_(std::move(options)),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &obs::MetricsRegistry::Global()),
      active_conns_gauge_(registry_->GetGauge("net.server.connections.active")),
      insert_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                   {{"op", "insert"}})),
      query_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                  {{"op", "query"}})),
      stats_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                  {{"op", "stats"}})),
      snapshot_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                     {{"op", "snapshot"}})),
      merge_frames_hist_(registry_->GetHistogram("net.server.merge.frames")),
      loop_iter_hist_(registry_->GetHistogram("net.loop.iter.ns")),
      wakeup_delay_hist_(registry_->GetHistogram("net.loop.wakeup.delay.ns")),
      completions_depth_hist_(
          registry_->GetHistogram("net.loop.completions.depth")),
      trace_sink_(options_.trace_capacity) {
  offload_enabled_ = service_ != nullptr && service_->num_threads() > 0 &&
                     options_.offload_queries;
  // Map the sampling rate onto the full u64 PRNG range once; the hot path
  // then decides with one compare.  rate >= 1 must not round through the
  // double->u64 cast (2^64 is not representable), so it clamps explicitly.
  const double rate = options_.trace_sample_rate;
  if (rate >= 1.0) {
    trace_threshold_ = ~uint64_t{0};
  } else if (rate > 0.0) {
    trace_threshold_ =
        static_cast<uint64_t>(rate * static_cast<double>(~uint64_t{0}));
  }
  // Sized (and never resized) here so the scrape-time collector below can
  // walk it without synchronizing against Start()/Stop().
  const uint32_t num_loops = std::max(1u, options_.num_loops);
  loop_traffic_.reserve(num_loops);
  for (uint32_t i = 0; i < num_loops; ++i) {
    loop_traffic_.push_back(std::make_unique<LoopTraffic>());
  }
  collector_id_ = registry_->AddCollector(
      [this](std::vector<obs::MetricSample>* samples) {
        const ServerStats s = stats();
        const auto counter = [samples](const char* name, uint64_t value) {
          obs::MetricSample sample;
          sample.name = name;
          sample.kind = obs::MetricKind::kCounter;
          sample.value = static_cast<int64_t>(value);
          samples->push_back(std::move(sample));
        };
        counter("net.server.connections.accepted", s.connections_accepted);
        counter("net.server.connections.dropped", s.connections_dropped);
        counter("net.server.frames.in", s.frames_received);
        counter("net.server.frames.out", s.frames_sent);
        counter("net.server.protocol.errors", s.protocol_errors);
        counter("net.server.keys.inserted", s.inserts_served);
        counter("net.server.keys.queried", s.queries_served);
        counter("net.server.frames.merged", s.query_frames_merged);
        counter("net.server.bytes.in", s.bytes_in);
        counter("net.server.bytes.out", s.bytes_out);
        counter("net.server.http.requests", s.http_requests);
        counter("net.server.batches.offloaded", s.batches_offloaded);
        counter("net.server.responses.reordered", s.responses_reordered);
        counter("net.server.backpressure.stalls", s.backpressure_stalls);
        const obs::TraceSinkStats trace_stats = trace_sink_.stats();
        counter("net.server.traces.sampled", trace_stats.sampled);
        counter("net.server.traces.slow", trace_stats.slow);
        counter("net.server.traces.dropped", trace_stats.dropped);
        // Per-loop balance: one labeled series per event loop, so /metrics
        // shows whether SO_REUSEPORT (or the fallback) spreads the load.
        for (size_t i = 0; i < loop_traffic_.size(); ++i) {
          const LoopTraffic& t = *loop_traffic_[i];
          const obs::MetricsRegistry::Labels labels = {
              {"loop", std::to_string(i)}};
          const auto loop_counter = [samples, &labels](const char* name,
                                                       uint64_t value) {
            obs::MetricSample sample;
            sample.name = name;
            sample.labels = labels;
            sample.kind = obs::MetricKind::kCounter;
            sample.value = static_cast<int64_t>(value);
            samples->push_back(std::move(sample));
          };
          loop_counter("net.server.loop.connections",
                       t.accepted.load(std::memory_order_relaxed));
          loop_counter("net.server.loop.frames",
                       t.frames.load(std::memory_order_relaxed));
          loop_counter("net.server.loop.keys",
                       t.keys.load(std::memory_order_relaxed));
        }
      });
}

MembershipServer::~MembershipServer() {
  Stop();
  registry_->RemoveCollector(collector_id_);
}

namespace {

// Opens a non-blocking listening socket on addr:port; returns -1 and fills
// *error on failure, else the fd with *bound_port resolved (port 0 cases).
// `reuseport` additionally requests SO_REUSEPORT (the kernel then balances
// accepts across every socket bound to the same addr:port); its failure is
// reported like any other so the caller can fall back.
int OpenListener(const std::string& address, uint16_t port, int backlog,
                 bool reuseport, uint16_t* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      *error = std::string("setsockopt(SO_REUSEPORT): ") +
               std::strerror(errno);
      ::close(fd);
      return -1;
    }
#else
    *error = "SO_REUSEPORT unavailable on this platform";
    ::close(fd);
    return -1;
#endif
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    *error = "bad bind address: " + address;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  *bound_port = ntohs(bound.sin_port);
  if (!SetNonBlocking(fd)) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool MembershipServer::Start() {
  if (started_) {
    error_ = "Start() called twice";
    return false;
  }
  started_ = true;

  const uint32_t num_loops = static_cast<uint32_t>(loop_traffic_.size());
  loops_.reserve(num_loops);
  for (uint32_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    // Distinct nonzero xorshift seeds per loop; the clock term keeps trace
    // ids from repeating across server restarts (0 under PF_OBS=OFF, where
    // the constant still keeps the state nonzero).
    loop->rng_state =
        (obs::NowNanos() | 1) ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    loops_.push_back(std::move(loop));
  }

  // Listeners.  Multi-loop prefers one SO_REUSEPORT socket per loop so the
  // kernel balances accepts with zero shared state; any reuseport failure
  // degrades the whole server to one shared listener accepted under a
  // mutex.  A single loop always binds a plain listener — SO_REUSEPORT on
  // it would let a second server bind the same port silently, and tests
  // (and operators) rely on that clash reporting EADDRINUSE.
  reuseport_active_ = false;
  if (num_loops > 1 && options_.use_reuseport) {
    const int first = OpenListener(options_.bind_address, options_.port,
                                   options_.backlog, /*reuseport=*/true,
                                   &port_, &error_);
    if (first >= 0) {
      loops_[0]->listen_fd = first;
      loops_[0]->owns_listen_fd = true;
      reuseport_active_ = true;
      for (uint32_t i = 1; i < num_loops && reuseport_active_; ++i) {
        uint16_t bound = 0;
        const int sibling =
            OpenListener(options_.bind_address, port_, options_.backlog,
                         /*reuseport=*/true, &bound, &error_);
        if (sibling < 0) {
          // Surprising (the first reuseport bind worked) but recoverable:
          // release every sibling and take the shared-accept path.
          for (uint32_t j = 0; j < i; ++j) {
            ::close(loops_[j]->listen_fd);
            loops_[j]->listen_fd = -1;
            loops_[j]->owns_listen_fd = false;
          }
          reuseport_active_ = false;
        } else {
          loops_[i]->listen_fd = sibling;
          loops_[i]->owns_listen_fd = true;
        }
      }
    }
  }
  if (!reuseport_active_) {
    const int fd = OpenListener(options_.bind_address, options_.port,
                                options_.backlog, /*reuseport=*/false, &port_,
                                &error_);
    if (fd < 0) return false;
    for (auto& loop : loops_) loop->listen_fd = fd;
    loops_[0]->owns_listen_fd = true;  // exactly one close in Stop()
  }
  error_.clear();

  if (options_.enable_http) {
    loops_[0]->http_listen_fd =
        OpenListener(options_.bind_address, options_.http_port,
                     options_.backlog, /*reuseport=*/false, &http_port_,
                     &error_);
    if (loops_[0]->http_listen_fd < 0) return false;  // Stop() cleans up
  }

  for (auto& loop : loops_) {
    int wake[2];
    if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) {
      error_ = std::string("pipe2: ") + std::strerror(errno);
      return false;
    }
    loop->wake_read_fd = wake[0];
    loop->wake_write_fd = wake[1];
    loop->poller = Poller::Create(options_.use_epoll);
    if (loop->poller == nullptr || !loop->poller->Add(loop->listen_fd, false) ||
        !loop->poller->Add(loop->wake_read_fd, false) ||
        (loop->http_listen_fd >= 0 &&
         !loop->poller->Add(loop->http_listen_fd, false))) {
      error_ = "poller setup failed";
      return false;
    }
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, l = loop.get()]() { LoopRun(*l); });
  }
  return true;
}

void MembershipServer::Stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    if (loop->wake_write_fd >= 0) {
      const char byte = 1;
      // The loop may have exited already; a failed wake write is fine.
      (void)!::write(loop->wake_write_fd, &byte, 1);
    }
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  running_.store(false, std::memory_order_release);
  // No loop thread is alive, but offloaded batches may still be executing
  // on FilterService workers, and their completion callbacks touch the
  // per-loop queues and wakeup pipes.  Drain the pool so no callback can
  // outlive the fds closed below (the completions themselves are dropped —
  // their connections are going away with the server).
  if (service_ != nullptr) service_->Drain();
  for (auto& loop : loops_) {
    {
      MutexLock lock(loop->completions_mutex);
      loop->completions.clear();
    }
    for (auto& [fd, conn] : loop->connections) {
      (void)conn;
      ::close(fd);
    }
    active_conns_gauge_->Add(-static_cast<int64_t>(loop->connections.size()));
    open_connections_.fetch_sub(loop->connections.size(),
                                std::memory_order_relaxed);
    loop->connections.clear();
    loop->fd_by_conn_id.clear();
    if (loop->owns_listen_fd && loop->listen_fd >= 0) ::close(loop->listen_fd);
    loop->listen_fd = -1;
    loop->owns_listen_fd = false;
    for (int* fd :
         {&loop->http_listen_fd, &loop->wake_read_fd, &loop->wake_write_fd}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    loop->poller.reset();
  }
}

const char* MembershipServer::poller_name() const {
  return !loops_.empty() && loops_[0]->poller != nullptr
             ? loops_[0]->poller->name()
             : "none";
}

ServerStats MembershipServer::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.inserts_served = inserts_served_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.query_frames_merged =
      query_frames_merged_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.http_requests = http_requests_.load(std::memory_order_relaxed);
  s.batches_offloaded = batches_offloaded_.load(std::memory_order_relaxed);
  s.responses_reordered =
      responses_reordered_.load(std::memory_order_relaxed);
  s.backpressure_stalls =
      backpressure_stalls_.load(std::memory_order_relaxed);
  return s;
}

uint64_t MembershipServer::LoopRandom(Loop& loop) {
  uint64_t x = loop.rng_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  loop.rng_state = x;
  return x;
}

void MembershipServer::FinishTrace(obs::ActiveTrace& trace) {
  obs::Trace& t = trace.t;
  t.end_ns = obs::NowNanos();
  if (options_.trace_slow_ns > 0 && t.end_ns >= t.start_ns &&
      t.end_ns - t.start_ns >= options_.trace_slow_ns) {
    t.flags |= obs::kTraceSlow;
  }
  // Tail-armed traces that finished fast and were never sampled carry no
  // retention flag: they existed only in case they turned out slow.
  if (t.flags != 0) trace_sink_.Push(t);
}

void MembershipServer::LoopRun(Loop& loop) {
  std::vector<PollEvent> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (!loop.poller->Wait(/*timeout_ms=*/500, &events)) break;
    // Busy iterations only: an empty wakeup (timeout) would flood the
    // iteration histogram with 500ms idle samples and bury the signal.
    const uint64_t iter_start_ns =
        events.empty() ? 0 : obs::NowNanos();
    for (const PollEvent& event : events) {
      if (event.fd == loop.wake_read_fd) {
        char drain[64];
        while (::read(loop.wake_read_fd, drain, sizeof(drain)) > 0) {
        }
        DrainCompletions(loop);
        continue;
      }
      if (event.fd == loop.listen_fd) {
        AcceptAll(loop, loop.listen_fd, /*is_http=*/false);
        continue;
      }
      if (loop.http_listen_fd >= 0 && event.fd == loop.http_listen_fd) {
        AcceptAll(loop, loop.http_listen_fd, /*is_http=*/true);
        continue;
      }
      auto it = loop.connections.find(event.fd);
      if (it == loop.connections.end()) continue;  // closed earlier this round
      Connection& conn = it->second;
      bool alive = !event.error;
      if (alive && event.readable) {
        alive = conn.is_http ? ServeHttpConnection(loop, conn)
                             : ServeConnection(loop, conn);
      }
      if (alive && event.writable) alive = FlushOutbox(loop, conn);
      if (!alive) {
        // A clean shutdown (EOF after everything was served) is not a drop.
        CloseConnection(loop, event.fd,
                        /*dropped=*/event.error || conn.dropped);
      }
    }
    if (iter_start_ns != 0) {
      loop_iter_hist_->Record(obs::NowNanos() - iter_start_ns);
    }
  }
  // Shutdown grace: batches already offloaded get a bounded window to
  // complete and reach their sockets, so Stop() does not abandon responses
  // workers have (or are about to have) computed.  Anything still in
  // flight past the deadline is dropped by Stop() after the pool drains.
  // steady_clock directly (not obs::NowNanos) — the deadline must work
  // with observability compiled out.
  const auto deadline =  // pf-lint: allow(steady-clock)
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    DrainCompletions(loop);
    bool inflight = false;
    for (const auto& [fd, conn] : loop.connections) {
      (void)fd;
      if (conn.inflight > 0) {
        inflight = true;
        break;
      }
    }
    // Same shutdown deadline as above.  // pf-lint: allow(steady-clock)
    if (!inflight || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void MembershipServer::AcceptAll(Loop& loop, int listen_fd, bool is_http) {
  // Shared-accept fallback: every loop polls the same listening socket, so
  // accepts serialize on a mutex (accept4 itself is thread-safe; the mutex
  // keeps the accept burst on one loop instead of splitting a level-
  // triggered wakeup into N racing slow paths).
  const bool shared = !loop.owns_listen_fd && loops_.size() > 1 && !is_http;
  for (;;) {
    int fd = -1;
    if (shared) {
      MutexLock lock(accept_mutex_);
      fd = ::accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    } else {
      fd = ::accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM): the pending
        // connection stays in the backlog, so a level-triggered poller
        // would re-report the listen fd instantly and spin the loop at
        // 100% CPU.  A short nap turns that into a bounded retry until an
        // fd frees up.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      return;  // wait for the next poller wakeup
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      ::close(fd);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SetNoDelay(fd);
    if (!loop.poller->Add(fd, false)) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn.is_http = is_http;
    loop.fd_by_conn_id.emplace(conn.id, fd);
    loop.connections.emplace(fd, std::move(conn));
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    loop_traffic_[loop.index]->accepted.fetch_add(1,
                                                  std::memory_order_relaxed);
    active_conns_gauge_->Add(1);
  }
}

bool MembershipServer::ServeConnection(Loop& loop, Connection& conn) {
  // Drain the socket (level-triggered pollers re-arm if the 64 KiB scratch
  // fills more than once per wakeup), but never buffer more undecoded input
  // than max_read_buffer: a flooding client neither grows server memory
  // without bound nor monopolizes the loop past one capped pass.  Re-entry
  // from DrainCompletions after the peer already half-closed skips straight
  // to the decoder — there is nothing left to read.
  const size_t read_cap =
      std::max<size_t>(options_.max_read_buffer,
                       kMaxPayload + kFrameHeaderBytes);
  const uint32_t inflight_cap = std::max(1u, options_.max_inflight_batches);
  // Trace clock zero for this serve pass: the read+decode span of any batch
  // admitted below starts here (0 when observability is compiled out).
  const uint64_t serve_start_ns = obs::NowNanos();
  bool peer_closed = false;
  if (!conn.peer_closed) {
    uint8_t scratch[65536];
    while (conn.decoder.buffered() < read_cap) {
      const ssize_t n = ::recv(conn.fd, scratch, sizeof(scratch), 0);
      if (n > 0) {
        bytes_in_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
        conn.decoder.Feed(scratch, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.dropped = true;  // hard socket error
      return false;
    }
  }

  // Decode every complete frame buffered so far.  Runs of consecutive
  // QUERY_BATCH frames accumulate into `pending` and execute as ONE merged
  // batch, so a pipelining client's keys reach BatchRouter together and the
  // counting-sort shard grouping spans the whole pipeline window.
  std::vector<uint64_t> pending_keys;
  std::vector<std::pair<uint64_t, uint32_t>> pending_queries;
  std::shared_ptr<obs::ActiveTrace> pending_trace;
  Frame frame;
  for (;;) {
    if (offload_enabled_ && conn.inflight >= inflight_cap) {
      // Backpressure: the connection is at its offload cap.  Stop decoding
      // (complete frames stay buffered in the decoder, unread bytes stay in
      // the kernel buffer → TCP pushback) and drop read interest until
      // completions bring the count back under the cap, when
      // DrainCompletions re-serves the connection.
      if (!conn.read_parked) {
        conn.read_parked = true;
        backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    const DecodeStatus status = conn.decoder.Next(&frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kFrame) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.dropped = true;  // framing lost; the connection cannot be saved
      return false;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    loop_traffic_[loop.index]->frames.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(loop, conn, frame, &pending_keys, &pending_queries,
                &pending_trace, serve_start_ns);
  }
  FlushQueries(loop, conn, &pending_keys, &pending_queries, &pending_trace,
               serve_start_ns);
  if (peer_closed) conn.peer_closed = true;
  // FlushOutbox owns the whole close-on-EOF rule: it returns false once a
  // half-closed connection drains its outbox AND its in-flight batches, and
  // until then keeps only the interest the connection needs.
  return FlushOutbox(loop, conn);
}

bool MembershipServer::ServeHttpConnection(Loop& loop, Connection& conn) {
  // Minimal HTTP/1.x service, just enough for scrapes: buffer until the
  // request head is complete, answer exactly one request, then close after
  // the response drains (the same peer_closed/FlushOutbox path wire
  // connections use).  Request bodies and keep-alive are not supported — a
  // Prometheus scrape or `curl` needs neither.
  constexpr size_t kMaxHttpHead = 16u << 10;
  uint8_t scratch[4096];
  bool peer_closed = false;
  while (conn.http_in.size() < kMaxHttpHead) {
    const ssize_t n = ::recv(conn.fd, scratch, sizeof(scratch), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn.http_in.insert(conn.http_in.end(), scratch, scratch + n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.dropped = true;
    return false;
  }
  if (!conn.outbox.empty()) return FlushOutbox(loop, conn);  // answered
  const std::string_view head(reinterpret_cast<const char*>(
                                  conn.http_in.data()),
                              conn.http_in.size());
  const size_t head_end = head.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (conn.http_in.size() >= kMaxHttpHead || peer_closed) {
      conn.dropped = true;  // oversized or truncated request head
      return false;
    }
    return true;  // wait for the rest of the head
  }

  // Request line: METHOD SP target SP version.  The target's query string
  // (if any) does not change the routing.
  const std::string_view line = head.substr(0, head.find("\r\n"));
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    conn.dropped = true;
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  http_requests_.fetch_add(1, std::memory_order_relaxed);
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    content_type = "text/plain; charset=utf-8";
    body = "method not allowed\n";
  } else if (target == "/metrics") {
    body = obs::RenderPrometheusText(registry_->Collect());
  } else if (target == "/traces") {
    content_type = "application/json; charset=utf-8";
    body = obs::RenderTracesJson(trace_sink_.Snapshot(), trace_sink_.stats());
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found; try /metrics or /traces\n";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  conn.outbox.insert(conn.outbox.end(), response.begin(), response.end());
  // One request per connection: drain the response, then close (FlushOutbox
  // returns false once a peer_closed connection's outbox empties).
  conn.peer_closed = true;
  return FlushOutbox(loop, conn);
}

void MembershipServer::HandleFrame(
    Loop& loop, Connection& conn, Frame& frame,
    std::vector<uint64_t>* pending_keys,
    std::vector<std::pair<uint64_t, uint32_t>>* pending_queries,
    std::shared_ptr<obs::ActiveTrace>* pending_trace,
    uint64_t serve_start_ns) {
  if (frame.is_response() || !IsKnownOpcode(frame.opcode)) {
    FlushQueries(loop, conn, pending_keys, pending_queries, pending_trace,
                 serve_start_ns);
    EncodeErrorResponse(static_cast<Opcode>(frame.opcode), frame.request_id,
                        ErrorCode::kUnsupported,
                        frame.is_response() ? "unexpected response flag"
                                            : "unknown opcode",
                        &conn.outbox);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Opcode opcode = static_cast<Opcode>(frame.opcode);

  // Traced frames carry a trace-context prefix ahead of the normal payload
  // (protocol.h): strip it here so every parser below sees exactly the
  // payload it always saw.  Untraced frames take one predictable branch.
  const uint8_t* payload = frame.payload.data();
  size_t payload_len = frame.payload.size();
  TraceContext wire_context;
  bool client_traced = false;
  if ((frame.flags & kFlagTraced) != 0) {
    if (!DecodeTraceContext(payload, payload_len, &wire_context)) {
      FlushQueries(loop, conn, pending_keys, pending_queries, pending_trace,
                   serve_start_ns);
      EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kBadRequest,
                          "malformed trace context", &conn.outbox);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    payload += kTraceContextBytes;
    payload_len -= kTraceContextBytes;
    client_traced = true;
  }

  if (opcode == Opcode::kQueryBatch) {
    // Appends straight onto the merged batch: no per-frame allocation on
    // the hottest path.
    const size_t before = pending_keys->size();
    if (!AppendKeyBatchPayload(payload, payload_len, pending_keys)) {
      FlushQueries(loop, conn, pending_keys, pending_queries, pending_trace,
                   serve_start_ns);
      EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kBadRequest,
                          "malformed key batch", &conn.outbox);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!pending_queries->empty()) {
      query_frames_merged_.fetch_add(1, std::memory_order_relaxed);
    }
    pending_queries->emplace_back(
        frame.request_id, static_cast<uint32_t>(pending_keys->size() - before));
    // Trace admission, once per merged batch: client propagation (the
    // sampled bit in the wire context), head sampling (loop PRNG), or the
    // armed tail-capture path (records everything, retains only what turns
    // out slow).  A later traced frame merging into an already-admitted
    // batch upgrades it to the client's identity.
    if (obs::kEnabled) {
      const bool client_sampled = client_traced && wire_context.sampled;
      if (*pending_trace == nullptr) {
        const bool head_sampled =
            trace_threshold_ != 0 && LoopRandom(loop) <= trace_threshold_;
        if (client_sampled || head_sampled || options_.trace_slow_ns > 0) {
          auto trace = std::make_shared<obs::ActiveTrace>();
          obs::Trace& t = trace->t;
          t.trace_id = client_sampled && wire_context.trace_id != 0
                           ? wire_context.trace_id
                           : (LoopRandom(loop) | 1);
          t.request_id = frame.request_id;
          t.conn_id = conn.id;
          t.loop = loop.index;
          t.opcode = frame.opcode;
          t.start_ns = serve_start_ns;
          if (client_sampled || head_sampled) t.flags |= obs::kTraceSampled;
          *pending_trace = std::move(trace);
        }
      } else if (client_sampled && !(*pending_trace)->t.sampled()) {
        obs::Trace& t = (*pending_trace)->t;
        if (wire_context.trace_id != 0) t.trace_id = wire_context.trace_id;
        t.flags |= obs::kTraceSampled;
      }
    }
    return;
  }

  // Every other opcode still flushes the accumulated queries first so a
  // merged batch never straddles it; with offload enabled the flush only
  // SUBMITS the batch, so this barrier response can reach the wire before
  // the query responses do — clients correlate by request id (see
  // protocol.h).
  FlushQueries(loop, conn, pending_keys, pending_queries, pending_trace,
               serve_start_ns);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  switch (opcode) {
    case Opcode::kInsertBatch: {
      obs::ScopedLatency timer(insert_request_hist_);
      std::vector<uint64_t> keys;
      if (!DecodeKeyBatchPayload(payload, payload_len, &keys)) {
        EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kBadRequest,
                            "malformed key batch", &conn.outbox);
        return;
      }
      const uint64_t failures =
          service_->InsertBatchSync(keys.data(), keys.size());
      inserts_served_.fetch_add(keys.size(), std::memory_order_relaxed);
      loop_traffic_[loop.index]->keys.fetch_add(keys.size(),
                                                std::memory_order_relaxed);
      EncodeInsertResponse(frame.request_id, failures, &conn.outbox);
      return;
    }
    case Opcode::kStats: {
      obs::ScopedLatency timer(stats_request_hist_);
      WireStats wire = CollectWireStats(*service_);
      const uint8_t version = StatsRequestVersion(payload, payload_len);
      if (version >= kStatsPayloadV3) {
        wire.metrics = registry_->Collect();
        // Capabilities advertise what this build actually serves: with
        // observability compiled out, traced frames would decode but never
        // record, so the server does not invite them.
        wire.capabilities =
            obs::kEnabled ? (kCapTraceContext | kCapTraces) : 0u;
        EncodeStatsV3Response(frame.request_id, wire, &conn.outbox);
      } else if (version >= kStatsPayloadV2) {
        wire.metrics = registry_->Collect();
        EncodeStatsV2Response(frame.request_id, wire, &conn.outbox);
      } else {
        // Byte-identical to the pre-v2 encoding: old clients keep working.
        EncodeStatsResponse(frame.request_id, wire, &conn.outbox);
      }
      return;
    }
    case Opcode::kTraces: {
      EncodeTracesResponse(frame.request_id, trace_sink_.Snapshot(),
                           &conn.outbox);
      return;
    }
    case Opcode::kSnapshot: {
      obs::ScopedLatency timer(snapshot_request_hist_);
      std::vector<uint8_t> snapshot;
      if (!service_->Snapshot(&snapshot)) {
        EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kInternal,
                            "snapshot serialization failed", &conn.outbox);
        return;
      }
      // An image beyond the frame cap cannot be framed (the u32 payload_len
      // would lie); answer with a typed error instead of a frame the client
      // must treat as fatal kBadLength.
      if (snapshot.size() > kMaxPayload) {
        EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kInternal,
                            "snapshot exceeds the frame payload cap",
                            &conn.outbox);
        return;
      }
      EncodeSnapshotResponse(frame.request_id, snapshot, &conn.outbox);
      return;
    }
    case Opcode::kQueryBatch:
      break;  // handled above
  }
}

void MembershipServer::FlushQueries(
    Loop& loop, Connection& conn, std::vector<uint64_t>* pending_keys,
    std::vector<std::pair<uint64_t, uint32_t>>* pending,
    std::shared_ptr<obs::ActiveTrace>* pending_trace,
    uint64_t serve_start_ns) {
  if (pending->empty()) return;
  merge_frames_hist_->Record(pending->size());
  queries_served_.fetch_add(pending_keys->size(), std::memory_order_relaxed);
  loop_traffic_[loop.index]->keys.fetch_add(pending_keys->size(),
                                            std::memory_order_relaxed);

  // The batch is sealed: close the decode (and merge) window.  The merge
  // span only exists when frames actually coalesced; its detail carries the
  // frame count.
  std::shared_ptr<obs::ActiveTrace> batch_trace = std::move(*pending_trace);
  if (batch_trace != nullptr) {
    obs::Trace& t = batch_trace->t;
    t.key_count = static_cast<uint32_t>(pending_keys->size());
    t.frames = static_cast<uint32_t>(pending->size());
    const uint64_t sealed_ns = obs::NowNanos();
    batch_trace->AddSpan(obs::TraceStage::kReadDecode, serve_start_ns,
                         sealed_ns);
    if (pending->size() > 1) {
      batch_trace->AddSpan(obs::TraceStage::kMerge, serve_start_ns, sealed_ns,
                           pending->size());
    }
  }

  if (offload_enabled_) {
    // Decode/filter decoupling: hand the merged batch to the FilterService
    // worker pool and keep the loop decoding.  The completion callback runs
    // on the worker thread — it only queues the result and tickles the
    // loop's wakeup pipe; all connection state stays loop-thread-only.
    batches_offloaded_.fetch_add(1, std::memory_order_relaxed);
    conn.inflight += 1;
    Completion comp;
    comp.conn_id = conn.id;
    comp.seq = conn.next_seq++;
    conn.inflight_seqs.push_back(comp.seq);
    comp.requests = std::move(*pending);
    comp.submit_ns = obs::NowNanos();
    comp.trace = batch_trace;
    Loop* owner = &loop;  // stable: loops_ holds unique_ptrs for our life
    const int wake_fd = loop.wake_write_fd;
    service_->QueryBatchAsync(
        std::move(*pending_keys),
        [owner, wake_fd,
         comp = std::move(comp)](std::vector<uint8_t> results) mutable {
          comp.results = std::move(results);
          // Worker-side completion stamp: DrainCompletions measures the
          // wakeup dispatch delay and the completion-transit span from it.
          comp.done_ns = obs::NowNanos();
          {
            MutexLock lock(owner->completions_mutex);
            owner->completions.push_back(std::move(comp));
          }
          const char byte = 1;
          // Full pipe (bounded by the inflight caps) or racing shutdown:
          // either way the loop will drain completions on its next wake.
          (void)!::write(wake_fd, &byte, 1);
        },
        std::move(batch_trace));
    pending_keys->clear();
    pending->clear();
    return;
  }

  // Synchronous path (no worker pool): execute on the loop thread and emit
  // one response per original frame, in request order.  One latency sample
  // per merged batch: the whole decode-to-encode window every frame in the
  // pipeline run shares.
  const uint64_t sync_start_ns = obs::NowNanos();
  std::vector<uint8_t> results(pending_keys->size());
  service_->QueryBatchSync(pending_keys->data(), pending_keys->size(),
                           results.data(), batch_trace.get());
  frames_sent_.fetch_add(pending->size(), std::memory_order_relaxed);
  const uint64_t write_start_ns = obs::NowNanos();
  size_t offset = 0;
  for (const auto& [request_id, count] : *pending) {
    EncodeQueryResponse(request_id, results.data() + offset, count,
                        &conn.outbox);
    offset += count;
  }
  if (batch_trace != nullptr) {
    batch_trace->AddSpan(obs::TraceStage::kWrite, write_start_ns,
                         obs::NowNanos());
    FinishTrace(*batch_trace);
    query_request_hist_->RecordWithExemplar(obs::NowNanos() - sync_start_ns,
                                            batch_trace->t.trace_id);
  } else {
    query_request_hist_->Record(obs::NowNanos() - sync_start_ns);
  }
  pending_keys->clear();
  pending->clear();
}

void MembershipServer::DrainCompletions(Loop& loop) {
  std::vector<Completion> completions;
  {
    MutexLock lock(loop.completions_mutex);
    completions.swap(loop.completions);
  }
  if (!completions.empty()) {
    completions_depth_hist_->Record(completions.size());
  }
  for (Completion& comp : completions) {
    const auto id_it = loop.fd_by_conn_id.find(comp.conn_id);
    if (id_it == loop.fd_by_conn_id.end()) continue;  // closed mid-flight
    const int fd = id_it->second;
    const auto conn_it = loop.connections.find(fd);
    if (conn_it == loop.connections.end()) continue;
    Connection& conn = conn_it->second;

    // Completing anything but the oldest in-flight batch means this
    // response overtakes an earlier one on the wire — the reordering
    // clients reassemble by request id.
    if (!conn.inflight_seqs.empty() && conn.inflight_seqs.front() != comp.seq) {
      responses_reordered_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto seq_it = std::find(conn.inflight_seqs.begin(),
                                  conn.inflight_seqs.end(), comp.seq);
    if (seq_it != conn.inflight_seqs.end()) conn.inflight_seqs.erase(seq_it);
    if (conn.inflight > 0) --conn.inflight;

    const uint64_t drained_ns = obs::NowNanos();
    // Wakeup dispatch delay: worker callback entry -> this loop pickup (the
    // completion-queue transit every offloaded response pays).
    if (comp.done_ns != 0 && drained_ns >= comp.done_ns) {
      wakeup_delay_hist_->Record(drained_ns - comp.done_ns);
    }
    if (comp.trace != nullptr) {
      comp.trace->AddSpan(obs::TraceStage::kCompletion, comp.done_ns,
                          drained_ns);
    }
    if (comp.submit_ns != 0) {
      const uint64_t request_ns = drained_ns - comp.submit_ns;
      if (comp.trace != nullptr) {
        query_request_hist_->RecordWithExemplar(request_ns,
                                                comp.trace->t.trace_id);
      } else {
        query_request_hist_->Record(request_ns);
      }
    }
    size_t offset = 0;
    for (const auto& [request_id, count] : comp.requests) {
      EncodeQueryResponse(request_id, comp.results.data() + offset, count,
                          &conn.outbox);
      offset += count;
    }
    frames_sent_.fetch_add(comp.requests.size(), std::memory_order_relaxed);
    if (comp.trace != nullptr) {
      comp.trace->AddSpan(obs::TraceStage::kWrite, drained_ns,
                          obs::NowNanos());
      FinishTrace(*comp.trace);
    }

    bool alive;
    if (conn.read_parked &&
        conn.inflight < std::max(1u, options_.max_inflight_batches)) {
      // Unpark: frames may already sit decoded-but-unserved in the decoder
      // and bytes in the kernel buffer — a full re-serve picks both up and
      // restores read interest via FlushOutbox.
      conn.read_parked = false;
      alive = ServeConnection(loop, conn);
    } else {
      alive = FlushOutbox(loop, conn);
    }
    if (!alive) CloseConnection(loop, fd, conn.dropped);
  }
}

bool MembershipServer::FlushOutbox(Loop& loop, Connection& conn) {
  while (conn.outbox_sent < conn.outbox.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + conn.outbox_sent,
               conn.outbox.size() - conn.outbox_sent, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      conn.outbox_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn.dropped = true;
    return false;
  }
  if (conn.outbox_sent == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_sent = 0;
  } else if (conn.outbox_sent > (1u << 20) &&
             conn.outbox_sent * 2 > conn.outbox.size()) {
    // Same lazy compaction the decoder uses: keep the unsent tail.
    conn.outbox.erase(conn.outbox.begin(),
                      conn.outbox.begin() +
                          static_cast<ptrdiff_t>(conn.outbox_sent));
    conn.outbox_sent = 0;
  }
  if (conn.outbox.size() - conn.outbox_sent > options_.max_write_buffer) {
    conn.dropped = true;  // peer stopped reading; shed the connection
    return false;
  }
  const bool want_write = conn.outbox_sent < conn.outbox.size();
  // A half-closed peer has nothing more to say: once the outbox drains AND
  // every offloaded batch has answered, the connection is done; until then
  // it keeps only the interest it needs (a level-triggered EOF with read
  // interest would spin the loop).
  if (conn.peer_closed && !HasPendingWork(conn)) return false;
  const bool want_read = !conn.peer_closed && !conn.read_parked;
  if (want_write != conn.want_write || want_read != conn.want_read) {
    conn.want_write = want_write;
    conn.want_read = want_read;
    loop.poller->Update(conn.fd, want_read, want_write);
  }
  return true;
}

void MembershipServer::CloseConnection(Loop& loop, int fd, bool dropped) {
  const auto it = loop.connections.find(fd);
  if (it != loop.connections.end()) {
    loop.fd_by_conn_id.erase(it->second.id);
    loop.connections.erase(it);
  }
  loop.poller->Remove(fd);
  ::close(fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  active_conns_gauge_->Add(-1);
  if (dropped) connections_dropped_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace prefixfilter::net
