#include "src/net/membership_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/exposition.h"

namespace prefixfilter::net {
namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Nagle off: the server's responses are complete frames; delaying them only
// adds latency to the pipelined request/response pattern the protocol wants.
void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

WireStats CollectWireStats(const FilterService& service) {
  WireStats wire;
  const FilterServiceStats stats = service.stats();
  wire.insert_batches = stats.insert_batches;
  wire.query_batches = stats.query_batches;
  wire.keys_inserted = stats.keys_inserted;
  wire.keys_queried = stats.keys_queried;
  wire.insert_failures = stats.insert_failures;
  wire.front_cache_hits = stats.front_cache_hits;
  wire.front_cache_misses = stats.front_cache_misses;
  const ShardedFilter& filter = service.filter();
  wire.filter_name = filter.Name();
  wire.capacity = filter.Capacity();
  wire.shards.reserve(filter.num_shards());
  for (uint32_t s = 0; s < filter.num_shards(); ++s) {
    const ShardStats shard = filter.shard_stats(s);
    WireShardStats w;
    w.inserts = shard.inserts;
    w.insert_failures = shard.insert_failures;
    w.queries = shard.queries;
    w.hits = shard.hits;
    wire.shards.push_back(w);
  }
  return wire;
}

MembershipServer::MembershipServer(std::shared_ptr<FilterService> service,
                                   ServerOptions options)
    : service_(std::move(service)),
      options_(std::move(options)),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &obs::MetricsRegistry::Global()),
      active_conns_gauge_(registry_->GetGauge("net.server.connections.active")),
      insert_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                   {{"op", "insert"}})),
      query_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                  {{"op", "query"}})),
      stats_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                  {{"op", "stats"}})),
      snapshot_request_hist_(registry_->GetHistogram("net.server.request.ns",
                                                     {{"op", "snapshot"}})),
      merge_frames_hist_(registry_->GetHistogram("net.server.merge.frames")) {
  collector_id_ = registry_->AddCollector(
      [this](std::vector<obs::MetricSample>* samples) {
        const ServerStats s = stats();
        const auto counter = [samples](const char* name, uint64_t value) {
          obs::MetricSample sample;
          sample.name = name;
          sample.kind = obs::MetricKind::kCounter;
          sample.value = static_cast<int64_t>(value);
          samples->push_back(std::move(sample));
        };
        counter("net.server.connections.accepted", s.connections_accepted);
        counter("net.server.connections.dropped", s.connections_dropped);
        counter("net.server.frames.in", s.frames_received);
        counter("net.server.frames.out", s.frames_sent);
        counter("net.server.protocol.errors", s.protocol_errors);
        counter("net.server.keys.inserted", s.inserts_served);
        counter("net.server.keys.queried", s.queries_served);
        counter("net.server.frames.merged", s.query_frames_merged);
        counter("net.server.bytes.in", s.bytes_in);
        counter("net.server.bytes.out", s.bytes_out);
        counter("net.server.http.requests", s.http_requests);
      });
}

MembershipServer::~MembershipServer() {
  Stop();
  registry_->RemoveCollector(collector_id_);
}

namespace {

// Opens a non-blocking listening socket on addr:port; returns -1 and fills
// *error on failure, else the fd with *bound_port resolved (port 0 cases).
int OpenListener(const std::string& address, uint16_t port, int backlog,
                 uint16_t* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    *error = "bad bind address: " + address;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  *bound_port = ntohs(bound.sin_port);
  if (!SetNonBlocking(fd)) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool MembershipServer::Start() {
  if (started_) {
    error_ = "Start() called twice";
    return false;
  }
  started_ = true;

  listen_fd_ = OpenListener(options_.bind_address, options_.port,
                            options_.backlog, &port_, &error_);
  if (listen_fd_ < 0) return false;
  if (options_.enable_http) {
    http_listen_fd_ = OpenListener(options_.bind_address, options_.http_port,
                                   options_.backlog, &http_port_, &error_);
    if (http_listen_fd_ < 0) return false;
  }

  int wake[2];
  if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) {
    error_ = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];

  poller_ = Poller::Create(options_.use_epoll);
  if (poller_ == nullptr || !poller_->Add(listen_fd_, false) ||
      !poller_->Add(wake_read_fd_, false) ||
      (http_listen_fd_ >= 0 && !poller_->Add(http_listen_fd_, false))) {
    error_ = "poller setup failed";
    return false;
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this]() { Loop(); });
  return true;
}

void MembershipServer::Stop() {
  if (!started_) return;
  if (loop_thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    const char byte = 1;
    // The loop may have exited already; a failed wake write is fine.
    (void)!::write(wake_write_fd_, &byte, 1);
    loop_thread_.join();
  }
  running_.store(false, std::memory_order_release);
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  active_conns_gauge_->Add(-static_cast<int64_t>(connections_.size()));
  connections_.clear();
  for (int* fd :
       {&listen_fd_, &http_listen_fd_, &wake_read_fd_, &wake_write_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  poller_.reset();
}

const char* MembershipServer::poller_name() const {
  return poller_ != nullptr ? poller_->name() : "none";
}

ServerStats MembershipServer::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.inserts_served = inserts_served_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.query_frames_merged =
      query_frames_merged_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.http_requests = http_requests_.load(std::memory_order_relaxed);
  return s;
}

void MembershipServer::Loop() {
  std::vector<PollEvent> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (!poller_->Wait(/*timeout_ms=*/500, &events)) break;
    for (const PollEvent& event : events) {
      if (event.fd == wake_read_fd_) {
        char drain[64];
        while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (event.fd == listen_fd_) {
        AcceptAll(listen_fd_, /*is_http=*/false);
        continue;
      }
      if (http_listen_fd_ >= 0 && event.fd == http_listen_fd_) {
        AcceptAll(http_listen_fd_, /*is_http=*/true);
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      Connection& conn = it->second;
      bool alive = !event.error;
      if (alive && event.readable) {
        alive = conn.is_http ? ServeHttpConnection(conn) : ServeConnection(conn);
      }
      if (alive && event.writable) alive = FlushOutbox(conn);
      if (!alive) {
        // A clean shutdown (EOF after everything was served) is not a drop.
        CloseConnection(event.fd, /*dropped=*/event.error || conn.dropped);
      }
    }
  }
  running_.store(false, std::memory_order_release);
}

void MembershipServer::AcceptAll(int listen_fd, bool is_http) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM): the pending
        // connection stays in the backlog, so a level-triggered poller
        // would re-report the listen fd instantly and spin the loop at
        // 100% CPU.  A short nap turns that into a bounded retry until an
        // fd frees up.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      return;  // wait for the next poller wakeup
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SetNoDelay(fd);
    if (!poller_->Add(fd, false)) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.is_http = is_http;
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_conns_gauge_->Add(1);
  }
}

bool MembershipServer::ServeConnection(Connection& conn) {
  // Drain the socket (level-triggered pollers re-arm if the 64 KiB scratch
  // fills more than once per wakeup), but never buffer more undecoded input
  // than max_read_buffer: a flooding client neither grows server memory
  // without bound nor monopolizes the loop past one capped pass.
  const size_t read_cap =
      std::max<size_t>(options_.max_read_buffer,
                       kMaxPayload + kFrameHeaderBytes);
  uint8_t scratch[65536];
  bool peer_closed = false;
  while (conn.decoder.buffered() < read_cap) {
    const ssize_t n = ::recv(conn.fd, scratch, sizeof(scratch), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn.decoder.Feed(scratch, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.dropped = true;  // hard socket error
    return false;
  }

  // Decode every complete frame buffered so far.  Runs of consecutive
  // QUERY_BATCH frames accumulate into `pending` and execute as ONE merged
  // batch, so a pipelining client's keys reach BatchRouter together and the
  // counting-sort shard grouping spans the whole pipeline window.
  std::vector<uint64_t> pending_keys;
  std::vector<std::pair<uint64_t, uint32_t>> pending_queries;
  Frame frame;
  for (;;) {
    const DecodeStatus status = conn.decoder.Next(&frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kFrame) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.dropped = true;  // framing lost; the connection cannot be saved
      return false;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, frame, &pending_keys, &pending_queries);
  }
  FlushQueries(conn, &pending_keys, &pending_queries);
  if (peer_closed) conn.peer_closed = true;
  // FlushOutbox owns the whole close-on-EOF rule: it returns false once a
  // half-closed connection's outbox drains, and until then parks it
  // write-interest-only so the level-triggered EOF cannot spin the loop.
  return FlushOutbox(conn);
}

bool MembershipServer::ServeHttpConnection(Connection& conn) {
  // Minimal HTTP/1.x service, just enough for scrapes: buffer until the
  // request head is complete, answer exactly one request, then close after
  // the response drains (the same peer_closed/FlushOutbox path wire
  // connections use).  Request bodies and keep-alive are not supported — a
  // Prometheus scrape or `curl` needs neither.
  constexpr size_t kMaxHttpHead = 16u << 10;
  uint8_t scratch[4096];
  bool peer_closed = false;
  while (conn.http_in.size() < kMaxHttpHead) {
    const ssize_t n = ::recv(conn.fd, scratch, sizeof(scratch), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn.http_in.insert(conn.http_in.end(), scratch, scratch + n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.dropped = true;
    return false;
  }
  if (!conn.outbox.empty()) return FlushOutbox(conn);  // already answered
  const std::string_view head(reinterpret_cast<const char*>(
                                  conn.http_in.data()),
                              conn.http_in.size());
  const size_t head_end = head.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (conn.http_in.size() >= kMaxHttpHead || peer_closed) {
      conn.dropped = true;  // oversized or truncated request head
      return false;
    }
    return true;  // wait for the rest of the head
  }

  // Request line: METHOD SP target SP version.  The target's query string
  // (if any) does not change the routing.
  const std::string_view line = head.substr(0, head.find("\r\n"));
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    conn.dropped = true;
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  http_requests_.fetch_add(1, std::memory_order_relaxed);
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    content_type = "text/plain; charset=utf-8";
    body = "method not allowed\n";
  } else if (target == "/metrics") {
    body = obs::RenderPrometheusText(registry_->Collect());
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found; try /metrics\n";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  conn.outbox.insert(conn.outbox.end(), response.begin(), response.end());
  // One request per connection: drain the response, then close (FlushOutbox
  // returns false once a peer_closed connection's outbox empties).
  conn.peer_closed = true;
  return FlushOutbox(conn);
}

void MembershipServer::HandleFrame(
    Connection& conn, Frame& frame, std::vector<uint64_t>* pending_keys,
    std::vector<std::pair<uint64_t, uint32_t>>* pending_queries) {
  if (frame.is_response() || !IsKnownOpcode(frame.opcode)) {
    FlushQueries(conn, pending_keys, pending_queries);
    EncodeErrorResponse(static_cast<Opcode>(frame.opcode), frame.request_id,
                        ErrorCode::kUnsupported,
                        frame.is_response() ? "unexpected response flag"
                                            : "unknown opcode",
                        &conn.outbox);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Opcode opcode = static_cast<Opcode>(frame.opcode);

  if (opcode == Opcode::kQueryBatch) {
    // Appends straight onto the merged batch: no per-frame allocation on
    // the hottest path.
    const size_t before = pending_keys->size();
    if (!AppendKeyBatchPayload(frame.payload.data(), frame.payload.size(),
                               pending_keys)) {
      FlushQueries(conn, pending_keys, pending_queries);
      EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kBadRequest,
                          "malformed key batch", &conn.outbox);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!pending_queries->empty()) {
      query_frames_merged_.fetch_add(1, std::memory_order_relaxed);
    }
    pending_queries->emplace_back(
        frame.request_id, static_cast<uint32_t>(pending_keys->size() - before));
    return;
  }

  // Every other opcode is a pipeline barrier: responses must come back in
  // request order, so the accumulated queries execute first.
  FlushQueries(conn, pending_keys, pending_queries);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  switch (opcode) {
    case Opcode::kInsertBatch: {
      obs::ScopedLatency timer(insert_request_hist_);
      std::vector<uint64_t> keys;
      if (!DecodeKeyBatchPayload(frame.payload.data(), frame.payload.size(),
                                 &keys)) {
        EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kBadRequest,
                            "malformed key batch", &conn.outbox);
        return;
      }
      const uint64_t failures =
          service_->InsertBatchSync(keys.data(), keys.size());
      inserts_served_.fetch_add(keys.size(), std::memory_order_relaxed);
      EncodeInsertResponse(frame.request_id, failures, &conn.outbox);
      return;
    }
    case Opcode::kStats: {
      obs::ScopedLatency timer(stats_request_hist_);
      WireStats wire = CollectWireStats(*service_);
      if (StatsRequestVersion(frame.payload.data(), frame.payload.size()) >=
          kStatsPayloadV2) {
        wire.metrics = registry_->Collect();
        EncodeStatsV2Response(frame.request_id, wire, &conn.outbox);
      } else {
        // Byte-identical to the pre-v2 encoding: old clients keep working.
        EncodeStatsResponse(frame.request_id, wire, &conn.outbox);
      }
      return;
    }
    case Opcode::kSnapshot: {
      obs::ScopedLatency timer(snapshot_request_hist_);
      std::vector<uint8_t> snapshot;
      if (!service_->Snapshot(&snapshot)) {
        EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kInternal,
                            "snapshot serialization failed", &conn.outbox);
        return;
      }
      // An image beyond the frame cap cannot be framed (the u32 payload_len
      // would lie); answer with a typed error instead of a frame the client
      // must treat as fatal kBadLength.
      if (snapshot.size() > kMaxPayload) {
        EncodeErrorResponse(opcode, frame.request_id, ErrorCode::kInternal,
                            "snapshot exceeds the frame payload cap",
                            &conn.outbox);
        return;
      }
      EncodeSnapshotResponse(frame.request_id, snapshot, &conn.outbox);
      return;
    }
    case Opcode::kQueryBatch:
      break;  // handled above
  }
}

void MembershipServer::FlushQueries(
    Connection& conn, std::vector<uint64_t>* pending_keys,
    std::vector<std::pair<uint64_t, uint32_t>>* pending) {
  if (pending->empty()) return;
  // One latency sample per merged batch: the whole decode-to-encode window
  // every frame in the pipeline run shares.
  obs::ScopedLatency timer(query_request_hist_);
  merge_frames_hist_->Record(pending->size());
  std::vector<uint8_t> results(pending_keys->size());
  service_->QueryBatchSync(pending_keys->data(), pending_keys->size(),
                           results.data());
  queries_served_.fetch_add(pending_keys->size(), std::memory_order_relaxed);
  frames_sent_.fetch_add(pending->size(), std::memory_order_relaxed);
  size_t offset = 0;
  for (const auto& [request_id, count] : *pending) {
    EncodeQueryResponse(request_id, results.data() + offset, count,
                        &conn.outbox);
    offset += count;
  }
  pending_keys->clear();
  pending->clear();
}

bool MembershipServer::FlushOutbox(Connection& conn) {
  while (conn.outbox_sent < conn.outbox.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + conn.outbox_sent,
               conn.outbox.size() - conn.outbox_sent, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      conn.outbox_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn.dropped = true;
    return false;
  }
  if (conn.outbox_sent == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_sent = 0;
  } else if (conn.outbox_sent > (1u << 20) &&
             conn.outbox_sent * 2 > conn.outbox.size()) {
    // Same lazy compaction the decoder uses: keep the unsent tail.
    conn.outbox.erase(conn.outbox.begin(),
                      conn.outbox.begin() +
                          static_cast<ptrdiff_t>(conn.outbox_sent));
    conn.outbox_sent = 0;
  }
  if (conn.outbox.size() - conn.outbox_sent > options_.max_write_buffer) {
    conn.dropped = true;  // peer stopped reading; shed the connection
    return false;
  }
  const bool want_write = conn.outbox_sent < conn.outbox.size();
  // A half-closed peer has nothing more to say: once its outbox drains the
  // connection is done, and until then only write readiness matters.
  if (conn.peer_closed && !want_write) return false;
  const bool want_read = !conn.peer_closed;
  if (want_write != conn.want_write || conn.peer_closed) {
    conn.want_write = want_write;
    poller_->Update(conn.fd, want_read, want_write);
  }
  return true;
}

void MembershipServer::CloseConnection(int fd, bool dropped) {
  poller_->Remove(fd);
  ::close(fd);
  connections_.erase(fd);
  active_conns_gauge_->Add(-1);
  if (dropped) connections_dropped_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace prefixfilter::net
