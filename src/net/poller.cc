#include "src/net/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <unordered_map>

#if defined(__linux__)
#define PF_NET_HAVE_EPOLL 1
#include <sys/epoll.h>
#endif

namespace prefixfilter::net {
namespace {

#if PF_NET_HAVE_EPOLL

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }

  bool Add(int fd, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, /*want_read=*/true, want_write);
  }
  bool Update(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  void Remove(int fd) override {
    epoll_event ev{};
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  bool Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    events->clear();
    epoll_event ready[128];
    const int n = epoll_wait(epfd_, ready, 128, timeout_ms);
    if (n < 0) return errno == EINTR;
    events->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = ready[i].data.fd;
      e.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (ready[i].events & EPOLLOUT) != 0;
      e.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(e);
    }
    return true;
  }

  const char* name() const override { return "epoll"; }

 private:
  bool Ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return epoll_ctl(epfd_, op, fd, &ev) == 0;
  }

  int epfd_;
};

#endif  // PF_NET_HAVE_EPOLL

class PollPoller final : public Poller {
 public:
  bool Add(int fd, bool want_write) override {
    if (interest_.count(fd) != 0) return false;
    interest_[fd] = {true, want_write};
    return true;
  }
  bool Update(int fd, bool want_read, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return false;
    it->second = {want_read, want_write};
    return true;
  }
  void Remove(int fd) override { interest_.erase(fd); }

  bool Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    events->clear();
    fds_.clear();
    fds_.reserve(interest_.size());
    for (const auto& [fd, interest] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>((interest.want_read ? POLLIN : 0) |
                                    (interest.want_write ? POLLOUT : 0));
      fds_.push_back(p);
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(e);
    }
    return true;
  }

  const char* name() const override { return "poll"; }

 private:
  struct Interest {
    bool want_read;
    bool want_write;
  };
  std::unordered_map<int, Interest> interest_;
  std::vector<pollfd> fds_;  // scratch rebuilt per Wait
};

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool prefer_epoll) {
#if PF_NET_HAVE_EPOLL
  if (prefer_epoll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->ok()) return epoll;
  }
#else
  (void)prefer_epoll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace prefixfilter::net
