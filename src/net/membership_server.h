// Networked membership service: a TCP front-end over FilterService.
//
// A single event-loop thread drives non-blocking sockets through a Poller
// (epoll on Linux, poll(2) fallback), speaking the length-prefixed binary
// protocol of src/net/protocol.h.  The loop is deliberately batch-first: all
// complete frames buffered on a connection are decoded in one pass, and runs
// of consecutive QUERY_BATCH frames are merged into ONE key batch handed to
// FilterService::QueryBatchSync — so a pipelining client's traffic reaches
// BatchRouter as large cross-shard batches and keeps the counting-sort
// shard-grouping win (§7 batch orientation) intact across the network hop.
// Responses are emitted per request frame, in request order, with each
// frame's request_id echoed.
//
// Filter work executes on the event-loop thread via the service's sync entry
// points; the FilterService worker pool (if any) keeps serving in-process
// batch traffic concurrently — shard locks and the snapshot shared-lock
// arbitrate.
//
// Lifecycle: Start() binds/listens (port 0 = kernel-assigned, see port()),
// spawns the loop thread; Stop() wakes the loop through a self-pipe and
// joins.  The destructor stops the server.
#ifndef PREFIXFILTER_SRC_NET_MEMBERSHIP_SERVER_H_
#define PREFIXFILTER_SRC_NET_MEMBERSHIP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/poller.h"
#include "src/net/protocol.h"
#include "src/obs/metrics.h"
#include "src/service/filter_service.h"

namespace prefixfilter::net {

struct ServerOptions {
  // IPv4 dotted-quad to bind; the loopback default matches the intended
  // deployment behind a local proxy/sidecar (no auth on the wire protocol).
  std::string bind_address = "127.0.0.1";
  // 0 = kernel-assigned ephemeral port, reported by port().
  uint16_t port = 0;
  int backlog = 128;
  // Connections beyond this are accepted and immediately closed.
  size_t max_connections = 1024;
  // false forces the portable poll(2) event loop even where epoll exists.
  bool use_epoll = true;
  // A connection whose outbound buffer exceeds this is dropped (a client
  // that stops reading must not grow server memory without bound).
  size_t max_write_buffer = 256u << 20;
  // Inbound counterpart: once a connection has this much undecoded input
  // buffered, the event loop stops recv()ing from it for the rest of the
  // wakeup (level-triggered pollers re-arm), bounding both per-connection
  // memory and how long one flooding client can monopolize the loop.
  // Clamped up to one max-size frame so a legal frame always fits.
  size_t max_read_buffer = kMaxPayload + kFrameHeaderBytes;
  // Serve a plaintext HTTP listener (GET /metrics -> Prometheus text
  // exposition of the metrics registry) on the same event loop.  0 =
  // kernel-assigned port, reported by http_port().
  bool enable_http = false;
  uint16_t http_port = 0;
  // Registry the server instruments into and the one /metrics + STATS v2
  // expose; nullptr = obs::MetricsRegistry::Global().  Must be the registry
  // the FilterService uses for its samples to appear in the same scrape.
  obs::MetricsRegistry* registry = nullptr;
};

// Event-loop counters, readable concurrently with the running server.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;  // protocol errors / overflow / rejects
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;          // response frames queued to outboxes
  uint64_t protocol_errors = 0;
  uint64_t inserts_served = 0;       // keys
  uint64_t queries_served = 0;       // keys
  uint64_t query_frames_merged = 0;  // extra frames coalesced into a batch
  uint64_t bytes_in = 0;             // raw socket bytes (both listeners)
  uint64_t bytes_out = 0;
  uint64_t http_requests = 0;        // HTTP requests answered (any status)
};

class MembershipServer {
 public:
  MembershipServer(std::shared_ptr<FilterService> service,
                   ServerOptions options = {});
  ~MembershipServer();

  MembershipServer(const MembershipServer&) = delete;
  MembershipServer& operator=(const MembershipServer&) = delete;

  // Binds, listens, and spawns the event loop.  False on socket errors (see
  // error()); calling Start() twice is an error.
  bool Start();
  // Idempotent; joins the loop thread and closes every connection.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves port 0), valid after Start() succeeded.
  uint16_t port() const { return port_; }
  // The bound HTTP port, valid after Start() when options.enable_http.
  uint16_t http_port() const { return http_port_; }
  const std::string& error() const { return error_; }
  // "epoll" or "poll", valid after Start().
  const char* poller_name() const;

  ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::vector<uint8_t> outbox;  // encoded responses not yet written
    size_t outbox_sent = 0;
    bool want_write = false;
    // Set when the connection dies for a reason the server holds against it
    // (protocol error, socket error, write-buffer overflow) as opposed to a
    // clean client shutdown; feeds connections_dropped.
    bool dropped = false;
    // Peer sent EOF; the connection only survives to drain its outbox
    // (write-interest only — a level-triggered EOF must not spin the loop).
    bool peer_closed = false;
    // Accepted on the HTTP listener: the byte stream is HTTP/1.x, served by
    // ServeHttpConnection, one request per connection (Connection: close).
    bool is_http = false;
    std::vector<uint8_t> http_in;  // unparsed HTTP request bytes
  };

  void Loop();
  void AcceptAll(int listen_fd, bool is_http);
  // Reads, decodes, and serves everything buffered on `conn`.  Returns false
  // when the connection must be closed.
  bool ServeConnection(Connection& conn);
  // HTTP counterpart: reads until a full request head, answers GET /metrics
  // with the Prometheus rendering of the registry, and closes after the
  // response drains (via the peer_closed/FlushOutbox path).
  bool ServeHttpConnection(Connection& conn);
  void HandleFrame(Connection& conn, Frame& frame,
                   std::vector<uint64_t>* pending_keys,
                   std::vector<std::pair<uint64_t, uint32_t>>* pending_queries);
  // Runs the accumulated pipelined query keys as one merged batch and emits
  // one response frame per original request.
  void FlushQueries(Connection& conn, std::vector<uint64_t>* pending_keys,
                    std::vector<std::pair<uint64_t, uint32_t>>* pending);
  // Attempts a non-blocking drain of conn.outbox; updates poller interest.
  bool FlushOutbox(Connection& conn);
  void CloseConnection(int fd, bool dropped);

  std::shared_ptr<FilterService> service_;
  ServerOptions options_;
  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, Connection> connections_;
  int listen_fd_ = -1;
  int http_listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t http_port_ = 0;
  std::string error_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> inserts_served_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> query_frames_merged_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> http_requests_{0};

  // Observability: histograms resolved once at construction and recorded on
  // the event-loop thread; the atomics above reach the registry through a
  // scrape-time collector (see the constructor).
  obs::MetricsRegistry* registry_;
  obs::Gauge* active_conns_gauge_;
  obs::LatencyHistogram* insert_request_hist_;
  obs::LatencyHistogram* query_request_hist_;
  obs::LatencyHistogram* stats_request_hist_;
  obs::LatencyHistogram* snapshot_request_hist_;
  obs::LatencyHistogram* merge_frames_hist_;
  uint64_t collector_id_ = 0;
};

// Fills a WireStats from a service (shared by the STATS handler and tests).
WireStats CollectWireStats(const FilterService& service);

}  // namespace prefixfilter::net

#endif  // PREFIXFILTER_SRC_NET_MEMBERSHIP_SERVER_H_
