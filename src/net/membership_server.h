// Networked membership service: a TCP front-end over FilterService.
//
// Scale-out is two layers deep (ROADMAP item 1):
//
// Loop-per-core: ServerOptions::num_loops spawns N independent event-loop
// threads, each with its own Poller (epoll on Linux, poll(2) fallback) and —
// where SO_REUSEPORT is available — its own listening socket bound to the
// same address, so the kernel balances incoming connections across loops
// with no shared accept state.  Where SO_REUSEPORT is unavailable (or
// disabled via ServerOptions::use_reuseport), every loop polls one shared
// listening socket and accepts under a shared mutex.  A connection is owned
// by exactly one loop for its whole life; per-loop traffic counters surface
// in the metrics registry labeled loop=<i> so /metrics shows the balance.
//
// Decode/filter decoupling: each loop is batch-first — all complete frames
// buffered on a connection are decoded in one pass, and runs of consecutive
// QUERY_BATCH frames are merged into ONE key batch, so a pipelining client's
// traffic reaches BatchRouter as large cross-shard batches and keeps the
// counting-sort shard-grouping win (§7 batch orientation) intact across the
// network hop.  When the FilterService has worker threads (and
// ServerOptions::offload_queries), merged batches are handed to the pool via
// QueryBatchAsync instead of executing inline on the loop thread: the loop
// keeps decoding while workers filter, completions come back through a
// per-loop queue plus a wakeup fd, and responses are emitted in COMPLETION
// order with each frame's request_id echoed — concurrent batches from one
// connection may answer out of order, and clients reassemble by request id
// (MembershipClient::QueryPipelined does).  A per-connection cap on
// offloaded batches in flight (ServerOptions::max_inflight_batches) parks
// the connection's read interest when reached, so one firehose client gets
// TCP backpressure instead of unbounded server memory.  Without workers the
// loop serves batches synchronously via QueryBatchSync, responses in request
// order, exactly as before.
//
// Lifecycle: Start() binds/listens (port 0 = kernel-assigned, see port()),
// spawns the loop threads; Stop() wakes every loop through its wakeup pipe,
// joins them (each loop grants in-flight offloaded batches a short grace
// window to complete and flush), drains the worker pool so no completion
// callback can outlive the server, and closes every fd.  The destructor
// stops the server.
#ifndef PREFIXFILTER_SRC_NET_MEMBERSHIP_SERVER_H_
#define PREFIXFILTER_SRC_NET_MEMBERSHIP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/poller.h"
#include "src/net/protocol.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_sink.h"
#include "src/service/filter_service.h"
#include "src/util/thread_annotations.h"

namespace prefixfilter::net {

struct ServerOptions {
  // IPv4 dotted-quad to bind; the loopback default matches the intended
  // deployment behind a local proxy/sidecar (no auth on the wire protocol).
  std::string bind_address = "127.0.0.1";
  // 0 = kernel-assigned ephemeral port, reported by port().
  uint16_t port = 0;
  int backlog = 128;
  // false forces the portable poll(2) Poller even where epoll exists (each
  // loop creates its own Poller either way).
  bool use_epoll = true;
  // Event-loop threads.  Each loop owns a Poller and a slice of the
  // connections; >1 binds one SO_REUSEPORT listener per loop (kernel-
  // balanced accept) where available, else falls back to shared-mutex
  // accept on one socket.  Clamped to >= 1.
  uint32_t num_loops = 1;
  // false forces the shared-accept fallback even where SO_REUSEPORT exists
  // (tests exercise the fallback deterministically).  Irrelevant when
  // num_loops == 1, which always uses a single plain listener.
  bool use_reuseport = true;
  // Offload merged QUERY_BATCH batches to the FilterService worker pool
  // (see file header).  Only effective when the service has worker threads;
  // a synchronous service always serves inline on the loop thread.
  bool offload_queries = true;
  // Offloaded batches a single connection may have in flight before the
  // loop stops reading from it (resumes as completions drain).  Clamped to
  // >= 1.  Bounds per-connection server memory and queue share.
  uint32_t max_inflight_batches = 32;
  // Connections beyond this are accepted and immediately closed (counted
  // across all loops).
  size_t max_connections = 1024;
  // A connection whose outbound buffer exceeds this is dropped (a client
  // that stops reading must not grow server memory without bound).
  size_t max_write_buffer = 256u << 20;
  // Inbound counterpart: once a connection has this much undecoded input
  // buffered, the event loop stops recv()ing from it for the rest of the
  // wakeup (level-triggered pollers re-arm), bounding both per-connection
  // memory and how long one flooding client can monopolize the loop.
  // Clamped up to one max-size frame so a legal frame always fits.
  size_t max_read_buffer = kMaxPayload + kFrameHeaderBytes;
  // Serve a plaintext HTTP listener (GET /metrics -> Prometheus text
  // exposition of the metrics registry) on loop 0.  0 = kernel-assigned
  // port, reported by http_port().
  bool enable_http = false;
  uint16_t http_port = 0;
  // Registry the server instruments into and the one /metrics + STATS v2
  // expose; nullptr = obs::MetricsRegistry::Global().  Must be the registry
  // the FilterService uses for its samples to appear in the same scrape.
  obs::MetricsRegistry* registry = nullptr;
  // Head-based trace sampling: fraction of merged query batches (0.0..1.0)
  // admitted to tracing at decode time.  0 (the default) disables head
  // sampling; client-propagated trace context (kFlagTraced with the sampled
  // bit) is always honored.  No-op under PF_OBS=OFF.
  double trace_sample_rate = 0.0;
  // Tail capture: when > 0, every merged query batch is timed and those
  // slower than this many nanoseconds are retained in the slow ring even if
  // not head-sampled.  Costs one small allocation per merged batch while
  // armed; 0 (the default) disables it.
  uint64_t trace_slow_ns = 0;
  // Retained traces per ring (sampled and slow each); 0 = default 256.
  size_t trace_capacity = 0;
};

// Server-wide counters, readable concurrently with the running server
// (aggregated across loops).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;  // protocol errors / overflow / rejects
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;          // response frames queued to outboxes
  uint64_t protocol_errors = 0;
  uint64_t inserts_served = 0;       // keys
  uint64_t queries_served = 0;       // keys
  uint64_t query_frames_merged = 0;  // extra frames coalesced into a batch
  uint64_t bytes_in = 0;             // raw socket bytes (all listeners)
  uint64_t bytes_out = 0;
  uint64_t http_requests = 0;        // HTTP requests answered (any status)
  uint64_t batches_offloaded = 0;    // merged batches handed to the pool
  // Completions that arrived ahead of an older batch still in flight on the
  // same connection — the out-of-order path clients must reassemble.
  uint64_t responses_reordered = 0;
  // Times a connection hit max_inflight_batches and had its read interest
  // parked until completions drained.
  uint64_t backpressure_stalls = 0;
};

class MembershipServer {
 public:
  MembershipServer(std::shared_ptr<FilterService> service,
                   ServerOptions options = {});
  ~MembershipServer();

  MembershipServer(const MembershipServer&) = delete;
  MembershipServer& operator=(const MembershipServer&) = delete;

  // Binds, listens, and spawns the event loops.  False on socket errors (see
  // error()); calling Start() twice is an error.
  bool Start();
  // Idempotent; joins every loop thread, drains in-flight worker-pool
  // batches, and closes every fd the server owns.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves port 0), valid after Start() succeeded.
  uint16_t port() const { return port_; }
  // The bound HTTP port, valid after Start() when options.enable_http.
  uint16_t http_port() const { return http_port_; }
  const std::string& error() const { return error_; }
  // "epoll" or "poll", valid after Start().
  const char* poller_name() const;
  // Loops actually running (options.num_loops clamped), valid after Start().
  uint32_t num_loops() const { return static_cast<uint32_t>(loops_.size()); }
  // True when every loop owns its own SO_REUSEPORT listener; false on the
  // shared-accept fallback (always false for a single loop).
  bool reuseport_active() const { return reuseport_active_; }

  ServerStats stats() const;

  // The server's trace retention (sampled + slow rings); what GET /traces
  // and the TRACES opcode render.  Valid for the server's lifetime.
  const obs::TraceSink& trace_sink() const { return trace_sink_; }

 private:
  struct Connection {
    int fd = -1;
    // Server-wide unique id: completions name connections by id, never by
    // fd, so a completion for a closed connection cannot hit an unrelated
    // connection that recycled the fd.
    uint64_t id = 0;
    FrameDecoder decoder;
    std::vector<uint8_t> outbox;  // encoded responses not yet written
    size_t outbox_sent = 0;
    // Poller interest currently registered (Update is only issued when the
    // desired interest diverges from these).
    bool want_read = true;
    bool want_write = false;
    // Set when the connection dies for a reason the server holds against it
    // (protocol error, socket error, write-buffer overflow) as opposed to a
    // clean client shutdown; feeds connections_dropped.
    bool dropped = false;
    // Peer sent EOF; the connection only survives to drain its outbox and
    // in-flight offloaded batches (write-interest only — a level-triggered
    // EOF must not spin the loop).
    bool peer_closed = false;
    // Offloaded batches not yet completed, and the backpressure park flag
    // (read interest dropped until completions bring inflight under cap).
    uint32_t inflight = 0;
    bool read_parked = false;
    // Per-connection submit sequence numbers of in-flight batches, oldest
    // first: completing anything but the front is a reordered response.
    uint64_t next_seq = 0;
    std::vector<uint64_t> inflight_seqs;
    // Accepted on the HTTP listener: the byte stream is HTTP/1.x, served by
    // ServeHttpConnection, one request per connection (Connection: close).
    bool is_http = false;
    std::vector<uint8_t> http_in;  // unparsed HTTP request bytes
  };

  // A merged query batch completed by the worker pool, queued back to the
  // owning loop (see FlushQueries / DrainCompletions).
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    // (request_id, key count) per original frame, in merge order.
    std::vector<std::pair<uint64_t, uint32_t>> requests;
    std::vector<uint8_t> results;
    uint64_t submit_ns = 0;
    // When the worker finished the batch (callback entry); feeds the
    // completion-transit span and the wakeup-dispatch-delay histogram.
    uint64_t done_ns = 0;
    // Non-null when the batch is traced: the loop finishes the trace
    // (completion + write spans, slow check, sink push) while draining.
    std::shared_ptr<obs::ActiveTrace> trace;
  };

  // Everything one event-loop thread owns.  Only that thread touches the
  // poller and connection maps (single-owner discipline, not a mutex —
  // Stop() reads them only after joining the thread); `completions` is the
  // single cross-thread handoff point (mutex + wakeup pipe).
  struct Loop {
    uint32_t index = 0;
    std::unique_ptr<Poller> poller;
    std::unordered_map<int, Connection> connections;
    std::unordered_map<uint64_t, int> fd_by_conn_id;
    int listen_fd = -1;
    bool owns_listen_fd = false;  // reuseport: own socket; fallback: shared
    int http_listen_fd = -1;      // loop 0 only
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    std::thread thread;
    Mutex completions_mutex;
    std::vector<Completion> completions PF_GUARDED_BY(completions_mutex);
    // Loop-thread-only xorshift state behind head sampling and server-side
    // trace-id generation (seeded in Start()).
    uint64_t rng_state = 1;
  };

  // Per-loop traffic counters behind the loop=<i> metric labels.  Fixed at
  // construction so the scrape-time collector never races loop setup.
  struct LoopTraffic {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> keys{0};
  };

  void LoopRun(Loop& loop);
  void AcceptAll(Loop& loop, int listen_fd, bool is_http);
  // Reads, decodes, and serves everything buffered on `conn`.  Returns false
  // when the connection must be closed.
  bool ServeConnection(Loop& loop, Connection& conn);
  // HTTP counterpart: reads until a full request head, answers GET /metrics
  // with the Prometheus rendering of the registry, and closes after the
  // response drains (via the peer_closed/FlushOutbox path).
  bool ServeHttpConnection(Loop& loop, Connection& conn);
  void HandleFrame(Loop& loop, Connection& conn, Frame& frame,
                   std::vector<uint64_t>* pending_keys,
                   std::vector<std::pair<uint64_t, uint32_t>>* pending_queries,
                   std::shared_ptr<obs::ActiveTrace>* pending_trace,
                   uint64_t serve_start_ns);
  // Runs the accumulated pipelined query keys as one merged batch: offloads
  // to the worker pool when configured (responses emitted on completion),
  // else executes inline and emits one response frame per original request.
  // *pending_trace (when non-null) rides with the batch and is consumed.
  void FlushQueries(Loop& loop, Connection& conn,
                    std::vector<uint64_t>* pending_keys,
                    std::vector<std::pair<uint64_t, uint32_t>>* pending,
                    std::shared_ptr<obs::ActiveTrace>* pending_trace,
                    uint64_t serve_start_ns);
  // Stamps end_ns, applies the slow-threshold tail check, and retains the
  // trace in the sink when it is sampled or slow.
  void FinishTrace(obs::ActiveTrace& trace);
  // Loop-thread-only xorshift64 step (head sampling, trace-id generation).
  static uint64_t LoopRandom(Loop& loop);
  // Emits responses for every queued completion on this loop; unparks and
  // re-serves connections that were capped.
  void DrainCompletions(Loop& loop);
  // Attempts a non-blocking drain of conn.outbox; updates poller interest.
  bool FlushOutbox(Loop& loop, Connection& conn);
  void CloseConnection(Loop& loop, int fd, bool dropped);
  // True while `conn` must survive: outbox bytes unsent or batches in
  // flight.
  static bool HasPendingWork(const Connection& conn) {
    return conn.outbox_sent < conn.outbox.size() || conn.inflight > 0;
  }

  std::shared_ptr<FilterService> service_;
  ServerOptions options_;
  bool offload_enabled_ = false;  // resolved in Start()
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::unique_ptr<LoopTraffic>> loop_traffic_;
  bool reuseport_active_ = false;
  Mutex accept_mutex_;  // shared-accept fallback only
  uint16_t port_ = 0;
  uint16_t http_port_ = 0;
  std::string error_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  std::atomic<uint64_t> next_conn_id_{1};
  // Across all loops; checked against options.max_connections on accept.
  std::atomic<size_t> open_connections_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> inserts_served_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> query_frames_merged_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> http_requests_{0};
  std::atomic<uint64_t> batches_offloaded_{0};
  std::atomic<uint64_t> responses_reordered_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};

  // Observability: histograms resolved once at construction and recorded on
  // the loop threads; the atomics above reach the registry through a
  // scrape-time collector (see the constructor).
  obs::MetricsRegistry* registry_;
  obs::Gauge* active_conns_gauge_;
  obs::LatencyHistogram* insert_request_hist_;
  obs::LatencyHistogram* query_request_hist_;
  obs::LatencyHistogram* stats_request_hist_;
  obs::LatencyHistogram* snapshot_request_hist_;
  obs::LatencyHistogram* merge_frames_hist_;
  // Loop self-telemetry: busy-iteration duration, completion dispatch delay
  // (worker callback -> loop drain), and completion-queue depth per drain.
  obs::LatencyHistogram* loop_iter_hist_;
  obs::LatencyHistogram* wakeup_delay_hist_;
  obs::LatencyHistogram* completions_depth_hist_;
  // Request-trace retention (see trace_sink()); bounded lock-free rings.
  obs::TraceSink trace_sink_;
  // options_.trace_sample_rate mapped onto the u64 PRNG range (0 = never,
  // UINT64_MAX = always); resolved once in the constructor.
  uint64_t trace_threshold_ = 0;
  uint64_t collector_id_ = 0;
};

// Fills a WireStats from a service (shared by the STATS handler and tests).
WireStats CollectWireStats(const FilterService& service);

}  // namespace prefixfilter::net

#endif  // PREFIXFILTER_SRC_NET_MEMBERSHIP_SERVER_H_
