// An immutable sorted run — the storage unit of an LSM tree (paper §1).
//
// The paper motivates incremental filters with log-structured merge trees:
// data lives in immutable sorted files ("runs"), each guarded by an
// in-memory filter built once at run creation and only queried afterwards.
// This module is a compact in-memory model of that substrate: a sorted
// key/value array with binary search, an access counter standing in for
// the "slow data store" I/O the filter is meant to save, and an attached
// incremental filter.
#ifndef PREFIXFILTER_SRC_LSM_RUN_H_
#define PREFIXFILTER_SRC_LSM_RUN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/filter_factory.h"

namespace prefixfilter::lsm {

class Run {
 public:
  // Builds a run from entries (sorted by key internally; duplicate keys keep
  // the last value).  A filter of configuration `filter_name` is built over
  // the keys; an empty name disables filtering (every Get probes the data).
  Run(std::vector<std::pair<uint64_t, uint64_t>> entries,
      const std::string& filter_name, uint64_t seed);

  // Point lookup.  Consults the filter first: a negative filter response
  // skips the (counted) data access entirely.
  std::optional<uint64_t> Get(uint64_t key) const;

  size_t NumEntries() const { return keys_.size(); }
  size_t DataBytes() const {
    return (keys_.size() + values_.size()) * sizeof(uint64_t);
  }
  size_t FilterBytes() const { return filter_ ? filter_->SpaceBytes() : 0; }

  // Number of binary searches performed (the stand-in for disk I/O).
  uint64_t data_accesses() const { return data_accesses_; }
  // Of those, how many found nothing (futile I/O a better filter would save).
  uint64_t futile_accesses() const { return futile_accesses_; }

  uint64_t MinKey() const { return keys_.empty() ? 0 : keys_.front(); }
  uint64_t MaxKey() const { return keys_.empty() ? 0 : keys_.back(); }

  // Read access for compaction (runs are immutable; merging builds new ones).
  const std::vector<uint64_t>& keys() const { return keys_; }
  const std::vector<uint64_t>& values() const { return values_; }

 private:
  std::vector<uint64_t> keys_;    // sorted
  std::vector<uint64_t> values_;  // parallel to keys_
  std::unique_ptr<AnyFilter> filter_;
  mutable uint64_t data_accesses_ = 0;
  mutable uint64_t futile_accesses_ = 0;
};

}  // namespace prefixfilter::lsm

#endif  // PREFIXFILTER_SRC_LSM_RUN_H_
