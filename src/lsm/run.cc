#include "src/lsm/run.h"

#include <algorithm>

namespace prefixfilter::lsm {

Run::Run(std::vector<std::pair<uint64_t, uint64_t>> entries,
         const std::string& filter_name, uint64_t seed) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  keys_.reserve(entries.size());
  values_.reserve(entries.size());
  for (const auto& [k, v] : entries) {
    if (!keys_.empty() && keys_.back() == k) {
      values_.back() = v;  // keep the last write
      continue;
    }
    keys_.push_back(k);
    values_.push_back(v);
  }
  if (!filter_name.empty() && !keys_.empty()) {
    filter_ = MakeFilter(filter_name, keys_.size(), seed);
    if (filter_ != nullptr) {
      for (uint64_t k : keys_) filter_->Insert(k);
    }
  }
}

std::optional<uint64_t> Run::Get(uint64_t key) const {
  if (filter_ != nullptr && !filter_->Contains(key)) {
    return std::nullopt;  // guaranteed absent: data access saved
  }
  ++data_accesses_;
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) {
    ++futile_accesses_;
    return std::nullopt;
  }
  return values_[static_cast<size_t>(it - keys_.begin())];
}

}  // namespace prefixfilter::lsm
