// A miniature LSM table: a memtable plus levels of immutable runs, each run
// guarded by an incremental filter (paper §1's motivating application).
//
// Writes go to an in-memory buffer; when it fills, it is sealed into an
// immutable Run (building the run's filter exactly once — the paper's
// "build time" workload, §7.4).  Reads probe the memtable, then runs from
// newest to oldest; each run's filter short-circuits runs that cannot
// contain the key, so the filter quality directly controls how many counted
// "I/Os" a point lookup costs.
#ifndef PREFIXFILTER_SRC_LSM_TABLE_H_
#define PREFIXFILTER_SRC_LSM_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/lsm/run.h"

namespace prefixfilter::lsm {

struct TableOptions {
  size_t memtable_entries = 64 * 1024;  // seal threshold
  std::string filter_name = "PF[TC]";   // filter per run ("" = none)
  uint64_t seed = 0x15a7ab1eu;
};

class Table {
 public:
  explicit Table(TableOptions options = {}) : options_(options) {}

  void Put(uint64_t key, uint64_t value);
  std::optional<uint64_t> Get(uint64_t key) const;

  // Seals the current memtable into a run (no-op when empty).
  void Flush();

  // Merges all runs (and the memtable) into a single run, dropping shadowed
  // versions and building one fresh filter — the LSM compaction that makes
  // "filters are built once per immutable run" the common case (§1).
  void Compact();

  size_t NumRuns() const { return runs_.size(); }
  size_t FilterBytes() const;
  size_t DataBytes() const;
  // Total counted data accesses across runs (the "I/O" the filters gate).
  uint64_t DataAccesses() const;
  uint64_t FutileAccesses() const;

 private:
  TableOptions options_;
  std::map<uint64_t, uint64_t> memtable_;
  std::vector<std::unique_ptr<Run>> runs_;  // newest last
  uint64_t run_counter_ = 0;
};

}  // namespace prefixfilter::lsm

#endif  // PREFIXFILTER_SRC_LSM_TABLE_H_
