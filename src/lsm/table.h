// A miniature LSM table: a memtable plus levels of immutable runs, each run
// guarded by an incremental filter (paper §1's motivating application).
//
// Writes go to an in-memory buffer; when it fills, it is sealed into an
// immutable Run (building the run's filter exactly once — the paper's
// "build time" workload, §7.4).  Reads probe the memtable, then runs from
// newest to oldest; each run's filter short-circuits runs that cannot
// contain the key, so the filter quality directly controls how many counted
// "I/Os" a point lookup costs.
#ifndef PREFIXFILTER_SRC_LSM_TABLE_H_
#define PREFIXFILTER_SRC_LSM_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/lsm/run.h"
#include "src/service/filter_service.h"

namespace prefixfilter::lsm {

struct TableOptions {
  size_t memtable_entries = 64 * 1024;  // seal threshold
  std::string filter_name = "PF[TC]";   // filter per run ("" = none)
  uint64_t seed = 0x15a7ab1eu;
  // Optional shared membership service: when set, every sealed run's keys
  // are batch-inserted into the service's sharded filter, and Get consults
  // it as a table-level gate before probing any run (one sharded-filter
  // query saves a whole newest-to-oldest run walk for absent keys), while
  // MultiGet batches the gate through the service queue.  The service's
  // filter must be provisioned for the table's total key volume (duplicate
  // Puts of a key across memtables re-insert it); if it ever fails to absorb
  // a key the table stops consulting it — correctness (no lost keys) is
  // preserved, only the shortcut is lost.  The service may be shared by many
  // tables or other clients.
  std::shared_ptr<FilterService> filter_service;
};

class Table {
 public:
  explicit Table(TableOptions options = {}) : options_(options) {}

  void Put(uint64_t key, uint64_t value);
  std::optional<uint64_t> Get(uint64_t key) const;

  // Batched point lookups (results positionally parallel to `keys`).  With a
  // filter_service configured, the table-level gate for the whole batch is
  // one QueryBatch round-trip through the service's shard-routing path.
  std::vector<std::optional<uint64_t>> MultiGet(
      const std::vector<uint64_t>& keys) const;

  // Seals the current memtable into a run (no-op when empty).
  void Flush();

  // Merges all runs (and the memtable) into a single run, dropping shadowed
  // versions and building one fresh filter — the LSM compaction that makes
  // "filters are built once per immutable run" the common case (§1).
  void Compact();

  size_t NumRuns() const { return runs_.size(); }
  size_t FilterBytes() const;
  size_t DataBytes() const;
  // Total counted data accesses across runs (the "I/O" the filters gate).
  uint64_t DataAccesses() const;
  uint64_t FutileAccesses() const;

 private:
  // True while the shared service filter can be trusted as a gate (set to
  // false forever if it ever fails to absorb a key: a key missing from the
  // filter would otherwise read as a false negative and lose the key).
  bool ServiceGateUsable() const;

  TableOptions options_;
  std::map<uint64_t, uint64_t> memtable_;
  std::vector<std::unique_ptr<Run>> runs_;  // newest last
  uint64_t run_counter_ = 0;
  bool service_filter_ok_ = true;
};

}  // namespace prefixfilter::lsm

#endif  // PREFIXFILTER_SRC_LSM_TABLE_H_
