#include "src/lsm/table.h"

#include <utility>

namespace prefixfilter::lsm {

void Table::Put(uint64_t key, uint64_t value) {
  memtable_[key] = value;
  if (memtable_.size() >= options_.memtable_entries) Flush();
}

void Table::Flush() {
  if (memtable_.empty()) return;
  std::vector<std::pair<uint64_t, uint64_t>> entries(memtable_.begin(),
                                                     memtable_.end());
  memtable_.clear();
  if (options_.filter_service != nullptr && service_filter_ok_) {
    // Feed the sealed keys to the shared membership service before the run
    // becomes probe-able, so the table-level gate never under-approximates
    // the run set.
    std::vector<uint64_t> keys;
    keys.reserve(entries.size());
    for (const auto& [key, value] : entries) keys.push_back(key);
    const uint64_t failures =
        options_.filter_service->InsertBatch(std::move(keys)).get();
    if (failures != 0) service_filter_ok_ = false;
  }
  runs_.push_back(std::make_unique<Run>(std::move(entries),
                                        options_.filter_name,
                                        options_.seed + run_counter_));
  ++run_counter_;
}

void Table::Compact() {
  Flush();
  if (runs_.size() <= 1) return;
  // Oldest-to-newest replay: later writes overwrite earlier ones.
  std::map<uint64_t, uint64_t> merged;
  for (const auto& run : runs_) {
    const auto& keys = run->keys();
    const auto& values = run->values();
    for (size_t i = 0; i < keys.size(); ++i) merged[keys[i]] = values[i];
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries(merged.begin(),
                                                     merged.end());
  runs_.clear();
  runs_.push_back(std::make_unique<Run>(std::move(entries),
                                        options_.filter_name,
                                        options_.seed + run_counter_));
  ++run_counter_;
}

bool Table::ServiceGateUsable() const {
  return options_.filter_service != nullptr && service_filter_ok_;
}

std::optional<uint64_t> Table::Get(uint64_t key) const {
  if (const auto it = memtable_.find(key); it != memtable_.end()) {
    return it->second;
  }
  // Table-level gate: one sharded-filter probe instead of a walk over every
  // run's filter (no false negatives, so a miss proves absence).
  if (ServiceGateUsable() && !runs_.empty() &&
      !options_.filter_service->Contains(key)) {
    return std::nullopt;
  }
  // Newest run first: later writes shadow earlier ones.
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (auto v = (*it)->Get(key)) return v;
  }
  return std::nullopt;
}

std::vector<std::optional<uint64_t>> Table::MultiGet(
    const std::vector<uint64_t>& keys) const {
  std::vector<std::optional<uint64_t>> results(keys.size());
  std::vector<uint8_t> maybe_present;
  if (ServiceGateUsable() && !runs_.empty()) {
    maybe_present = options_.filter_service->QueryBatch(keys).get();
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (const auto it = memtable_.find(keys[i]); it != memtable_.end()) {
      results[i] = it->second;
      continue;
    }
    if (!maybe_present.empty() && maybe_present[i] == 0) continue;
    for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
      if (auto v = (*it)->Get(keys[i])) {
        results[i] = v;
        break;
      }
    }
  }
  return results;
}

size_t Table::FilterBytes() const {
  size_t total = 0;
  for (const auto& run : runs_) total += run->FilterBytes();
  return total;
}

size_t Table::DataBytes() const {
  size_t total = 0;
  for (const auto& run : runs_) total += run->DataBytes();
  return total;
}

uint64_t Table::DataAccesses() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run->data_accesses();
  return total;
}

uint64_t Table::FutileAccesses() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run->futile_accesses();
  return total;
}

}  // namespace prefixfilter::lsm
