#include "src/lsm/table.h"

#include <utility>

namespace prefixfilter::lsm {

void Table::Put(uint64_t key, uint64_t value) {
  memtable_[key] = value;
  if (memtable_.size() >= options_.memtable_entries) Flush();
}

void Table::Flush() {
  if (memtable_.empty()) return;
  std::vector<std::pair<uint64_t, uint64_t>> entries(memtable_.begin(),
                                                     memtable_.end());
  memtable_.clear();
  runs_.push_back(std::make_unique<Run>(std::move(entries),
                                        options_.filter_name,
                                        options_.seed + run_counter_));
  ++run_counter_;
}

void Table::Compact() {
  Flush();
  if (runs_.size() <= 1) return;
  // Oldest-to-newest replay: later writes overwrite earlier ones.
  std::map<uint64_t, uint64_t> merged;
  for (const auto& run : runs_) {
    const auto& keys = run->keys();
    const auto& values = run->values();
    for (size_t i = 0; i < keys.size(); ++i) merged[keys[i]] = values[i];
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries(merged.begin(),
                                                     merged.end());
  runs_.clear();
  runs_.push_back(std::make_unique<Run>(std::move(entries),
                                        options_.filter_name,
                                        options_.seed + run_counter_));
  ++run_counter_;
}

std::optional<uint64_t> Table::Get(uint64_t key) const {
  if (const auto it = memtable_.find(key); it != memtable_.end()) {
    return it->second;
  }
  // Newest run first: later writes shadow earlier ones.
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (auto v = (*it)->Get(key)) return v;
  }
  return std::nullopt;
}

size_t Table::FilterBytes() const {
  size_t total = 0;
  for (const auto& run : runs_) total += run->FilterBytes();
  return total;
}

size_t Table::DataBytes() const {
  size_t total = 0;
  for (const auto& run : runs_) total += run->DataBytes();
  return total;
}

uint64_t Table::DataAccesses() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run->data_accesses();
  return total;
}

uint64_t Table::FutileAccesses() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run->futile_accesses();
  return total;
}

}  // namespace prefixfilter::lsm
