// The analytic space/access model of Table 1 (paper §3, §4.3).
//
// Table 1 compares practical filters by three analytic quantities: bits per
// key, average cache misses per negative query (CM/NQ), and the maximal load
// factor of the underlying fingerprint hash table.  This module evaluates
// those formulas, plus the information-theoretic minimum log2(1/eps) used by
// Table 3's "Optimal bits/key" column.
#ifndef PREFIXFILTER_SRC_ANALYSIS_SPACE_MODEL_H_
#define PREFIXFILTER_SRC_ANALYSIS_SPACE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prefixfilter::analysis {

// Information-theoretic minimum bits/key for false positive rate eps
// (Carter et al. [13]): log2(1/eps).
double OptimalBitsPerKey(double eps);

struct SpaceModelRow {
  std::string filter;       // e.g. "CF", "PF"
  std::string bits_per_key; // formula rendered with numbers substituted
  double bits_per_key_value;
  double cache_misses_per_negative_query;
  double max_load_factor;   // 0 if not a hash table of fingerprints ("-")
};

// Evaluates Table 1 at false positive rate `eps`, prefix-filter bin capacity
// `k`, and hash-table load factor `alpha` (the paper uses alpha = 0.94 for
// CF, 0.945 for VQF, 0.95 for PF's bin table).
std::vector<SpaceModelRow> Table1(double eps, uint32_t k);

// Individual formulas (all bits/key):
double BloomBitsPerKey(double eps);                       // 1.44 log2(1/eps)
double CuckooBitsPerKey(double eps, double alpha);        // (log2(1/eps)+3)/a
double VqfBitsPerKey(double eps, double alpha);           // (log2(1/eps)+2.9)/a
// Prefix filter (Theorem 2(4) with a cuckoo-filter spare of the same eps):
// (1+gamma)/alpha * (log2(1/eps)+2) + gamma/alpha, gamma = 1/sqrt(2*pi*k).
double PrefixFilterBitsPerKey(double eps, double alpha, uint32_t k);

}  // namespace prefixfilter::analysis

#endif  // PREFIXFILTER_SRC_ANALYSIS_SPACE_MODEL_H_
