// Failure-probability bounds and spare sizing (paper §4.2.1, §6.1, §6.1.1).
//
// The spare's capacity must be fixed at construction time even though the
// number of forwarded fingerprints X is a random variable.  The paper sets
// n' = 1.1 * E[X] and bounds Pr[X > n'] two ways: a second-moment bound
// (Cantelli), better for small n, and a Hoeffding bound over the negatively
// associated bin loads, exponentially better for large n.  Figure 2 plots
// both; this module computes them.
#ifndef PREFIXFILTER_SRC_ANALYSIS_BOUNDS_H_
#define PREFIXFILTER_SRC_ANALYSIS_BOUNDS_H_

#include <cstdint>

namespace prefixfilter::analysis {

// Cantelli bound on Pr[X >= (1+delta) E[X]] as derived in Proposition 10:
// 2*pi*k / (delta^2 * 0.99 * n).  Stated for m = n/k bins, k >= 20, n >= 5k.
double CantelliFailureBound(uint64_t n, uint32_t k, double delta);

// Hoeffding bound of Proposition 13:
// exp(-delta^2 * m * 0.99 * (1-p) / (pi * k)), with p = 1/m, m = n/k.
double HoeffdingFailureBound(uint64_t n, uint32_t k, double delta);

// min of the two (Theorem 5, Eq. 2), clamped to [0, 1].
double FailureBound(uint64_t n, uint32_t k, double delta);

// The spare sizing rule of §4.2.1: n' = ceil(slack * E[X]) where E[X] is the
// exact expectation for n keys in m bins of capacity k.  The paper's default
// slack is 1.1 (Claim 16: failure probability <= 200*pi*k/(0.99*n)); §6.1.1
// notes slack 1.015 suffices for failure < 2^-40 once n >= 2^28 * k.
uint64_t SpareCapacity(uint64_t n, uint64_t m, uint32_t k,
                       double slack = 1.1);

// Upper bound on the prefix filter's false positive rate (Corollary 31):
// n/(m*s) + epsilon_spare / sqrt(2*pi*k).
double PrefixFilterFprBound(uint64_t n, uint64_t m, uint32_t k, uint32_t s,
                            double spare_fpr);

}  // namespace prefixfilter::analysis

#endif  // PREFIXFILTER_SRC_ANALYSIS_BOUNDS_H_
