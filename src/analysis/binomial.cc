#include "src/analysis/binomial.h"

#include <cmath>

namespace prefixfilter::analysis {

double LogBinomialCoefficient(double n, double k) {
  if (k < 0 || k > n) return -INFINITY;
  return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

double LogBinomialPmf(double n, double p, double k) {
  if (k < 0 || k > n) return -INFINITY;
  if (p <= 0) return k == 0 ? 0.0 : -INFINITY;
  if (p >= 1) return k == n ? 0.0 : -INFINITY;
  return LogBinomialCoefficient(n, k) + k * std::log(p) +
         (n - k) * std::log1p(-p);
}

double BinomialPmf(double n, double p, double k) {
  return std::exp(LogBinomialPmf(n, p, k));
}

double BinomialCdf(double n, double p, double k) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // All callers have k = O(bin capacity) <= ~256, so direct summation with
  // incremental ratios is both exact and fast.
  double pmf = BinomialPmf(n, p, 0);
  double cdf = pmf;
  const double odds = p / (1 - p);
  for (double j = 0; j < k; ++j) {
    pmf *= (n - j) / (j + 1) * odds;
    cdf += pmf;
  }
  return cdf < 1.0 ? cdf : 1.0;
}

double ExpectedOverflowPerBin(double n, double p, double k) {
  // E[max(B-k,0)] = sum_{j>k} (j-k) * Pr[B=j].  The pmf past the mean decays
  // geometrically, so we sum upward from j = k+1 until the running term is
  // negligible.  Start from the pmf at k+1 in log space to avoid underflow
  // issues at small expectations.
  double pmf = BinomialPmf(n, p, k + 1);
  if (pmf == 0.0) return 0.0;
  const double odds = p / (1 - p);
  double sum = 0.0;
  for (double j = k + 1; j <= n; ++j) {
    const double term = (j - k) * pmf;
    sum += term;
    if (term < sum * 1e-15 && j > n * p + 10) break;
    pmf *= (n - j) / (j + 1) * odds;
  }
  return sum;
}

double ExpectedSpareSize(uint64_t n, uint64_t m, uint32_t k) {
  const double p = 1.0 / static_cast<double>(m);
  return static_cast<double>(m) *
         ExpectedOverflowPerBin(static_cast<double>(n), p,
                                static_cast<double>(k));
}

double ExpectedSpareFraction(uint64_t n, uint64_t m, uint32_t k) {
  return ExpectedSpareSize(n, m, k) / static_cast<double>(n);
}

double SpareFractionApproximation(uint32_t k) {
  return 1.0 / std::sqrt(2.0 * M_PI * static_cast<double>(k));
}

double NegativeQuerySpareProbability(uint64_t n, uint64_t m, uint32_t k) {
  const double p = 1.0 / static_cast<double>(m);
  return BinomialPmf(static_cast<double>(n), p, static_cast<double>(k) + 1);
}

StirlingBounds StirlingPmfBounds(double n, double k) {
  // Proposition 9 with p = k/n:
  //   exp(t0)/sqrt(2*pi*k*(1-p)) < Pr[B = k] < exp(t1)/sqrt(2*pi*k*(1-p))
  const double p = k / n;
  const double base = 1.0 / std::sqrt(2.0 * M_PI * k * (1.0 - p));
  const double t0 =
      1.0 / (12.0 * n + 1.0) - (1.0 / (12.0 * k) + 1.0 / (12.0 * (n - k)));
  const double t1 = 1.0 / (12.0 * n) -
                    (1.0 / (12.0 * k + 1.0) + 1.0 / (12.0 * (n - k) + 1.0));
  return {base * std::exp(t0), base * std::exp(t1)};
}

}  // namespace prefixfilter::analysis
