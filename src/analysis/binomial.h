// Exact binomial computations backing the paper's analysis (§6).
//
// The paper's guarantees are stated through a balls-into-bins experiment:
// n fingerprints thrown into m bins of capacity k.  Everything the prefix
// filter needs at construction time — the expected number of fingerprints
// forwarded to the spare (Theorem 5, Eq. 1), the probability a query reaches
// the spare (Theorem 17), the Stirling bounds of Proposition 9 — reduces to
// binomial pmf/cdf evaluations, which we compute exactly in log space rather
// than through the 1/sqrt(2*pi*k) approximations the paper uses for
// presentation.
#ifndef PREFIXFILTER_SRC_ANALYSIS_BINOMIAL_H_
#define PREFIXFILTER_SRC_ANALYSIS_BINOMIAL_H_

#include <cstdint>

namespace prefixfilter::analysis {

// log(C(n, k)) via lgamma; exact to double precision.
double LogBinomialCoefficient(double n, double k);

// log Pr[Binomial(n, p) = k].
double LogBinomialPmf(double n, double p, double k);

// Pr[Binomial(n, p) = k].
double BinomialPmf(double n, double p, double k);

// Pr[Binomial(n, p) <= k], by direct summation (k is small in all uses).
double BinomialCdf(double n, double p, double k);

// E[max(B - k, 0)] for B ~ Binomial(n, p): the expected number of balls a
// single bin of capacity k forwards to the spare (paper §6.1).  Computed by
// direct tail summation with incremental pmf ratios, so it is accurate even
// when the expectation is tiny (alpha < 1).
double ExpectedOverflowPerBin(double n, double p, double k);

// E[X]: expected total number of fingerprints forwarded to the spare when n
// keys are inserted into m bins of capacity k (Theorem 5, Eq. 1 — but exact,
// valid for any m, not just m = n/k).
double ExpectedSpareSize(uint64_t n, uint64_t m, uint32_t k);

// E[X]/n, the expected *fraction* of fingerprints forwarded (Figure 1).
double ExpectedSpareFraction(uint64_t n, uint64_t m, uint32_t k);

// The paper's closed-form approximation of E[X]/n at full bin-table load
// (m = n/k): 1/sqrt(2*pi*k).  Kept for comparisons against the exact value.
double SpareFractionApproximation(uint32_t k);

// Pr[Binomial(n, 1/m) = k+1]: the exact probability that a negative query is
// forwarded to the spare (Theorem 17).
double NegativeQuerySpareProbability(uint64_t n, uint64_t m, uint32_t k);

// The Stirling sandwich of Proposition 9: lower/upper bounds on
// Pr[Binomial(n, p) = k] for p = k/n.
struct StirlingBounds {
  double lower;
  double upper;
};
StirlingBounds StirlingPmfBounds(double n, double k);

}  // namespace prefixfilter::analysis

#endif  // PREFIXFILTER_SRC_ANALYSIS_BINOMIAL_H_
