#include "src/analysis/space_model.h"

#include <cmath>
#include <cstdio>

namespace prefixfilter::analysis {

double OptimalBitsPerKey(double eps) { return std::log2(1.0 / eps); }

double BloomBitsPerKey(double eps) {
  return 1.44 * OptimalBitsPerKey(eps);
}

double CuckooBitsPerKey(double eps, double alpha) {
  return (OptimalBitsPerKey(eps) + 3.0) / alpha;
}

double VqfBitsPerKey(double eps, double alpha) {
  return (OptimalBitsPerKey(eps) + 2.9) / alpha;
}

double PrefixFilterBitsPerKey(double eps, double alpha, uint32_t k) {
  const double gamma = 1.0 / std::sqrt(2.0 * M_PI * static_cast<double>(k));
  return (1.0 + gamma) / alpha * (OptimalBitsPerKey(eps) + 2.0) + gamma / alpha;
}

namespace {
std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::vector<SpaceModelRow> Table1(double eps, uint32_t k) {
  const double gamma = 1.0 / std::sqrt(2.0 * M_PI * static_cast<double>(k));
  std::vector<SpaceModelRow> rows;
  rows.push_back({"BF", Fmt("1.44*log2(1/eps) = %.2f", BloomBitsPerKey(eps)),
                  BloomBitsPerKey(eps), 2.0, 0.0});
  // The paper quotes BBF as "~10-40% above BF"; we report the midpoint of
  // that range as the analytic value (the empirical value is in Table 3).
  rows.push_back({"BBF", Fmt("~1.25x BF = %.2f", 1.25 * BloomBitsPerKey(eps)),
                  1.25 * BloomBitsPerKey(eps), 1.0, 0.0});
  rows.push_back({"CF",
                  Fmt("(log2(1/eps)+3)/0.94 = %.2f", CuckooBitsPerKey(eps, 0.94)),
                  CuckooBitsPerKey(eps, 0.94), 2.0, 0.94});
  rows.push_back({"VQF",
                  Fmt("(log2(1/eps)+2.9)/0.945 = %.2f", VqfBitsPerKey(eps, 0.945)),
                  VqfBitsPerKey(eps, 0.945), 2.0, 0.945});
  rows.push_back(
      {"PF",
       Fmt("(1+g)/a*(log2(1/eps)+2)+g/a = %.2f", PrefixFilterBitsPerKey(eps, 1.0, k)),
       PrefixFilterBitsPerKey(eps, 1.0, k), 1.0 + 2.0 * gamma, 1.0});
  return rows;
}

}  // namespace prefixfilter::analysis
