#include "src/analysis/bounds.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/binomial.h"

namespace prefixfilter::analysis {

double CantelliFailureBound(uint64_t n, uint32_t k, double delta) {
  return 2.0 * M_PI * static_cast<double>(k) /
         (delta * delta * 0.99 * static_cast<double>(n));
}

double HoeffdingFailureBound(uint64_t n, uint32_t k, double delta) {
  const double m = static_cast<double>(n) / static_cast<double>(k);
  const double p = 1.0 / m;
  return std::exp(-delta * delta * m * 0.99 * (1.0 - p) /
                  (M_PI * static_cast<double>(k)));
}

double FailureBound(uint64_t n, uint32_t k, double delta) {
  const double b =
      std::min(CantelliFailureBound(n, k, delta), HoeffdingFailureBound(n, k, delta));
  return std::clamp(b, 0.0, 1.0);
}

uint64_t SpareCapacity(uint64_t n, uint64_t m, uint32_t k, double slack) {
  const double expected = ExpectedSpareSize(n, m, k);
  const uint64_t capacity = static_cast<uint64_t>(std::ceil(slack * expected));
  // Never build a zero-capacity spare: tiny filters still forward a handful
  // of fingerprints with non-negligible probability.
  return std::max<uint64_t>(capacity, 64);
}

double PrefixFilterFprBound(uint64_t n, uint64_t m, uint32_t k, uint32_t s,
                            double spare_fpr) {
  const double collision = static_cast<double>(n) /
                           (static_cast<double>(m) * static_cast<double>(s));
  return collision + spare_fpr * SpareFractionApproximation(k);
}

}  // namespace prefixfilter::analysis
