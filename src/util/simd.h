// SIMD substrate for the pocket-dictionary bodies (paper §5.2.2).
//
// The paper's key implementation idea is that a PD query can usually be
// answered by a single broadcast-and-compare over the PD's body: build a
// bitvector v_r with v_r[i] = 1 iff body[i] == r (VPBROADCAST + VPCMP in the
// paper), then reason about v_r instead of running Select over the header.
// This header provides those byte-match kernels for 32-byte and 64-byte
// blocks with AVX-512BW, AVX2, and portable fallbacks, plus the 8-lane
// blocked-Bloom mask kernel.
#ifndef PREFIXFILTER_SRC_UTIL_SIMD_H_
#define PREFIXFILTER_SRC_UTIL_SIMD_H_

#include <cstdint>
#include <cstring>

#if defined(__AVX512BW__) && defined(__AVX512VL__)
#define PF_HAVE_AVX512 1
#else
#define PF_HAVE_AVX512 0
#endif
#if defined(__AVX2__)
#define PF_HAVE_AVX2 1
#else
#define PF_HAVE_AVX2 0
#endif

#if PF_HAVE_AVX2 || PF_HAVE_AVX512
#include <immintrin.h>
#endif

namespace prefixfilter {

// Portable byte-match over `len` bytes; bit i of the result is set iff
// block[i] == needle.  Used as the reference implementation in tests and as
// the fallback on machines without AVX2.
inline uint64_t FindByteMaskScalar(const void* block, uint8_t needle, int len) {
  const uint8_t* p = static_cast<const uint8_t*>(block);
  uint64_t mask = 0;
  for (int i = 0; i < len; ++i) {
    mask |= static_cast<uint64_t>(p[i] == needle) << i;
  }
  return mask;
}

// Byte-match over a 32-byte block (the PD256 of the prefix filter).
// `block` must be 32-byte aligned.
inline uint32_t FindByteMask32(const void* block, uint8_t needle) {
#if PF_HAVE_AVX512
  const __m256i v = _mm256_load_si256(static_cast<const __m256i*>(block));
  return _mm256_cmpeq_epi8_mask(v, _mm256_set1_epi8(static_cast<char>(needle)));
#elif PF_HAVE_AVX2
  const __m256i v = _mm256_load_si256(static_cast<const __m256i*>(block));
  const __m256i eq =
      _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(needle)));
  return static_cast<uint32_t>(_mm256_movemask_epi8(eq));
#else
  return static_cast<uint32_t>(FindByteMaskScalar(block, needle, 32));
#endif
}

// Byte-match over a 64-byte block (the PD512 "mini-filter" of TwoChoicer).
// `block` must be 64-byte aligned.
inline uint64_t FindByteMask64(const void* block, uint8_t needle) {
#if PF_HAVE_AVX512
  const __m512i v = _mm512_load_si512(block);
  return _mm512_cmpeq_epi8_mask(v, _mm512_set1_epi8(static_cast<char>(needle)));
#elif PF_HAVE_AVX2
  const __m256i* p = static_cast<const __m256i*>(block);
  const __m256i needle8 = _mm256_set1_epi8(static_cast<char>(needle));
  const uint32_t lo = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_load_si256(p), needle8)));
  const uint32_t hi = static_cast<uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(_mm256_load_si256(p + 1), needle8)));
  return (static_cast<uint64_t>(hi) << 32) | lo;
#else
  return FindByteMaskScalar(block, needle, 64);
#endif
}

// Which SIMD kernel is compiled in (reported by benches / ablations).
inline const char* SimdKernelName() {
#if PF_HAVE_AVX512
  return "avx512bw";
#elif PF_HAVE_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Blocked-Bloom kernel (paper §7.1.1, "BBF"/"BBF-Flex"): register-blocked
// Bloom filter with 256-bit blocks viewed as 8 x 32-bit lanes, one bit set
// per lane.  The per-lane bit index is derived from the key hash by
// multiplying with 8 odd constants and keeping the top 5 bits (the classic
// Impala kernel used by both implementations the paper evaluates).
// ---------------------------------------------------------------------------

namespace bbf_internal {
// Odd multipliers from the Impala / cuckoofilter-repo blocked Bloom filter.
inline constexpr uint32_t kSalts[8] = {
    0x47b6137bU, 0x44974d91U, 0x8824ad5bU, 0xa2b7289dU,
    0x705495c7U, 0x2df1424bU, 0x9efc4947U, 0x5c6bfb31U};
}  // namespace bbf_internal

// Computes the 8 lane masks for hash `h` into `out[0..8)`.
inline void BlockedBloomMaskScalar(uint32_t h, uint32_t out[8]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = uint32_t{1} << ((h * bbf_internal::kSalts[i]) >> 27);
  }
}

// Sets the key's 8 bits in the 32-byte block (one per lane).
inline void BlockedBloomAdd(uint32_t h, uint32_t* block) {
#if PF_HAVE_AVX2
  const __m256i salts = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(bbf_internal::kSalts));
  const __m256i hv = _mm256_set1_epi32(static_cast<int>(h));
  const __m256i shifted = _mm256_srli_epi32(_mm256_mullo_epi32(hv, salts), 27);
  const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(1), shifted);
  __m256i* b = reinterpret_cast<__m256i*>(block);
  _mm256_store_si256(b, _mm256_or_si256(_mm256_load_si256(b), mask));
#else
  uint32_t mask[8];
  BlockedBloomMaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) block[i] |= mask[i];
#endif
}

// Tests whether all 8 of the key's bits are set in the block.
inline bool BlockedBloomContains(uint32_t h, const uint32_t* block) {
#if PF_HAVE_AVX2
  const __m256i salts = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(bbf_internal::kSalts));
  const __m256i hv = _mm256_set1_epi32(static_cast<int>(h));
  const __m256i shifted = _mm256_srli_epi32(_mm256_mullo_epi32(hv, salts), 27);
  const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(1), shifted);
  const __m256i b =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(block));
  // testc returns 1 iff (~b & mask) == 0, i.e. every mask bit is set in b.
  return _mm256_testc_si256(b, mask) != 0;
#else
  uint32_t mask[8];
  BlockedBloomMaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) {
    if ((block[i] & mask[i]) != mask[i]) return false;
  }
  return true;
#endif
}

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_SIMD_H_
