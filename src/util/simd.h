// SIMD substrate for the pocket-dictionary bodies (paper §5.2.2).
//
// The paper's key implementation idea is that a PD query can usually be
// answered by a single broadcast-and-compare over the PD's body: build a
// bitvector v_r with v_r[i] = 1 iff body[i] == r (VPBROADCAST + VPCMP in the
// paper), then reason about v_r instead of running Select over the header.
// This header provides those byte-match kernels for 32-byte and 64-byte
// blocks with AVX-512BW, AVX2, and portable fallbacks, plus the 8-lane
// blocked-Bloom mask kernel.
#ifndef PREFIXFILTER_SRC_UTIL_SIMD_H_
#define PREFIXFILTER_SRC_UTIL_SIMD_H_

#include <cstdint>
#include <cstring>

#if defined(__AVX512BW__) && defined(__AVX512VL__)
#define PF_HAVE_AVX512 1
#else
#define PF_HAVE_AVX512 0
#endif
#if defined(__AVX2__)
#define PF_HAVE_AVX2 1
#else
#define PF_HAVE_AVX2 0
#endif

#if PF_HAVE_AVX2 || PF_HAVE_AVX512
#include <immintrin.h>
#endif

namespace prefixfilter {

// Portable byte-match over `len` bytes; bit i of the result is set iff
// block[i] == needle.  Used as the reference implementation in tests and as
// the fallback on machines without AVX2.
inline uint64_t FindByteMaskScalar(const void* block, uint8_t needle, int len) {
  const uint8_t* p = static_cast<const uint8_t*>(block);
  uint64_t mask = 0;
  for (int i = 0; i < len; ++i) {
    mask |= static_cast<uint64_t>(p[i] == needle) << i;
  }
  return mask;
}

// Byte-match over a 32-byte block (the PD256 of the prefix filter).
// `block` must be 32-byte aligned.
inline uint32_t FindByteMask32(const void* block, uint8_t needle) {
#if PF_HAVE_AVX512
  const __m256i v = _mm256_load_si256(static_cast<const __m256i*>(block));
  return _mm256_cmpeq_epi8_mask(v, _mm256_set1_epi8(static_cast<char>(needle)));
#elif PF_HAVE_AVX2
  const __m256i v = _mm256_load_si256(static_cast<const __m256i*>(block));
  const __m256i eq =
      _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(needle)));
  return static_cast<uint32_t>(_mm256_movemask_epi8(eq));
#else
  return static_cast<uint32_t>(FindByteMaskScalar(block, needle, 32));
#endif
}

// Byte-match over a 64-byte block (the PD512 "mini-filter" of TwoChoicer).
// `block` must be 64-byte aligned.
inline uint64_t FindByteMask64(const void* block, uint8_t needle) {
#if PF_HAVE_AVX512
  const __m512i v = _mm512_load_si512(block);
  return _mm512_cmpeq_epi8_mask(v, _mm512_set1_epi8(static_cast<char>(needle)));
#elif PF_HAVE_AVX2
  const __m256i* p = static_cast<const __m256i*>(block);
  const __m256i needle8 = _mm256_set1_epi8(static_cast<char>(needle));
  const uint32_t lo = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_load_si256(p), needle8)));
  const uint32_t hi = static_cast<uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(_mm256_load_si256(p + 1), needle8)));
  return (static_cast<uint64_t>(hi) << 32) | lo;
#else
  return FindByteMaskScalar(block, needle, 64);
#endif
}

// Which SIMD kernel is compiled in (reported by benches / ablations).
inline const char* SimdKernelName() {
#if PF_HAVE_AVX512
  return "avx512bw";
#elif PF_HAVE_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Blocked-Bloom kernel (paper §7.1.1, "BBF"/"BBF-Flex"): register-blocked
// Bloom filter with 256-bit blocks viewed as 8 x 32-bit lanes, one bit set
// per lane.  The per-lane bit index is derived from the key hash by
// multiplying with 8 odd constants and keeping the top 5 bits (the classic
// Impala kernel used by both implementations the paper evaluates).
// ---------------------------------------------------------------------------

namespace bbf_internal {
// Odd multipliers from the Impala / cuckoofilter-repo blocked Bloom filter.
inline constexpr uint32_t kSalts[8] = {
    0x47b6137bU, 0x44974d91U, 0x8824ad5bU, 0xa2b7289dU,
    0x705495c7U, 0x2df1424bU, 0x9efc4947U, 0x5c6bfb31U};
}  // namespace bbf_internal

// Computes the 8 lane masks for hash `h` into `out[0..8)`.
inline void BlockedBloomMaskScalar(uint32_t h, uint32_t out[8]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = uint32_t{1} << ((h * bbf_internal::kSalts[i]) >> 27);
  }
}

// Portable add/contains, always compiled regardless of ISA so the kernel
// differential harness (tests/kernel_differential_test.cc) and the scalar-
// baseline ablation bench can compare the dispatched kernel against the
// reference on the SAME build.  The dispatched functions below fall back to
// these when no vector ISA is available, so in portable builds the pair is
// trivially identical.
inline void BlockedBloomAddPortable(uint32_t h, uint32_t* block) {
  uint32_t mask[8];
  BlockedBloomMaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) block[i] |= mask[i];
}

inline bool BlockedBloomContainsPortable(uint32_t h, const uint32_t* block) {
  uint32_t mask[8];
  BlockedBloomMaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) {
    if ((block[i] & mask[i]) != mask[i]) return false;
  }
  return true;
}

// Sets the key's 8 bits in the 32-byte block (one per lane).
inline void BlockedBloomAdd(uint32_t h, uint32_t* block) {
#if PF_HAVE_AVX2
  const __m256i salts = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(bbf_internal::kSalts));
  const __m256i hv = _mm256_set1_epi32(static_cast<int>(h));
  const __m256i shifted = _mm256_srli_epi32(_mm256_mullo_epi32(hv, salts), 27);
  const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(1), shifted);
  __m256i* b = reinterpret_cast<__m256i*>(block);
  _mm256_store_si256(b, _mm256_or_si256(_mm256_load_si256(b), mask));
#else
  BlockedBloomAddPortable(h, block);
#endif
}

// Tests whether all 8 of the key's bits are set in the block.
inline bool BlockedBloomContains(uint32_t h, const uint32_t* block) {
#if PF_HAVE_AVX2
  const __m256i salts = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(bbf_internal::kSalts));
  const __m256i hv = _mm256_set1_epi32(static_cast<int>(h));
  const __m256i shifted = _mm256_srli_epi32(_mm256_mullo_epi32(hv, salts), 27);
  const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(1), shifted);
  const __m256i b =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(block));
  // testc returns 1 iff (~b & mask) == 0, i.e. every mask bit is set in b.
  return _mm256_testc_si256(b, mask) != 0;
#else
  return BlockedBloomContainsPortable(h, block);
#endif
}

// ---------------------------------------------------------------------------
// FastMultiBlock kernels (Boost.Bloom's fast_multiblock32/64 technique, and
// the multi-block design of Putze et al.'s cache-efficient Bloom filters):
// one key sets one bit in each of 8 consecutive lanes, so a query is one or
// two aligned vector loads plus a test — no per-word scalar loop.
//   * FMB32: 8 x 32-bit lanes (32-byte block), 5-bit lane positions.
//   * FMB64: 8 x 64-bit lanes (one full 64-byte cache line), 6-bit lane
//     positions — a single AVX-512 load-and-test per query, and fewer
//     position collisions within a lane than the 32-bit variant.
// Lane positions come from the same odd-multiplier scheme as the blocked-
// Bloom kernel (a multiply distributes the low hash bits across lanes) with
// an independent salt set, so the two filter families are uncorrelated.
// ---------------------------------------------------------------------------

namespace fmb_internal {
// Odd 32-bit multipliers, independent of bbf_internal::kSalts.
inline constexpr uint32_t kSalts[8] = {
    0x9e3779b1U, 0x85ebca77U, 0xc2b2ae3dU, 0x27d4eb2fU,
    0x165667b1U, 0xd3a2646dU, 0xfd7046c5U, 0xb55a4f09U};
}  // namespace fmb_internal

// The 8 lane masks for hash `h`: 32-bit lanes, top 5 bits of h * salt.
inline void Fmb32MaskScalar(uint32_t h, uint32_t out[8]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = uint32_t{1} << ((h * fmb_internal::kSalts[i]) >> 27);
  }
}

// The 8 lane masks for hash `h`: 64-bit lanes, top 6 bits of h * salt.
inline void Fmb64MaskScalar(uint32_t h, uint64_t out[8]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = uint64_t{1} << ((h * fmb_internal::kSalts[i]) >> 26);
  }
}

inline void Fmb32AddPortable(uint32_t h, uint32_t* block) {
  uint32_t mask[8];
  Fmb32MaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) block[i] |= mask[i];
}

inline bool Fmb32ContainsPortable(uint32_t h, const uint32_t* block) {
  uint32_t mask[8];
  Fmb32MaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) {
    if ((block[i] & mask[i]) != mask[i]) return false;
  }
  return true;
}

inline void Fmb64AddPortable(uint32_t h, uint64_t* block) {
  uint64_t mask[8];
  Fmb64MaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) block[i] |= mask[i];
}

inline bool Fmb64ContainsPortable(uint32_t h, const uint64_t* block) {
  uint64_t mask[8];
  Fmb64MaskScalar(h, mask);
  for (int i = 0; i < 8; ++i) {
    if ((block[i] & mask[i]) != mask[i]) return false;
  }
  return true;
}

#if PF_HAVE_AVX2
namespace fmb_internal {
// 8 x 32-bit lane masks in one ymm register (mirrors Fmb32MaskScalar).
inline __m256i Mask32(uint32_t h) {
  const __m256i salts =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kSalts));
  const __m256i hv = _mm256_set1_epi32(static_cast<int>(h));
  const __m256i shifted = _mm256_srli_epi32(_mm256_mullo_epi32(hv, salts), 27);
  return _mm256_sllv_epi32(_mm256_set1_epi32(1), shifted);
}

// 8 x 6-bit lane positions, one per 32-bit lane (mirrors the >> 26 of
// Fmb64MaskScalar); widened to 64-bit shift counts by the callers.
inline __m256i Shift64(uint32_t h) {
  const __m256i salts =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kSalts));
  const __m256i hv = _mm256_set1_epi32(static_cast<int>(h));
  return _mm256_srli_epi32(_mm256_mullo_epi32(hv, salts), 26);
}
}  // namespace fmb_internal
#endif

// Sets the key's 8 bits in the 32-byte block.  `block` 32-byte aligned.
inline void Fmb32Add(uint32_t h, uint32_t* block) {
#if PF_HAVE_AVX2
  const __m256i mask = fmb_internal::Mask32(h);
  __m256i* b = reinterpret_cast<__m256i*>(block);
  _mm256_store_si256(b, _mm256_or_si256(_mm256_load_si256(b), mask));
#else
  Fmb32AddPortable(h, block);
#endif
}

// Tests whether all 8 of the key's bits are set in the 32-byte block.
inline bool Fmb32Contains(uint32_t h, const uint32_t* block) {
#if PF_HAVE_AVX2
  const __m256i mask = fmb_internal::Mask32(h);
  const __m256i b = _mm256_load_si256(reinterpret_cast<const __m256i*>(block));
  return _mm256_testc_si256(b, mask) != 0;
#else
  return Fmb32ContainsPortable(h, block);
#endif
}

// Sets the key's 8 bits in the 64-byte block.  `block` 64-byte aligned.
inline void Fmb64Add(uint32_t h, uint64_t* block) {
#if PF_HAVE_AVX512
  // maskz_ variants (all-ones mask): same instructions, but a zeroing
  // pass-through instead of the _mm512_undefined_* the unmasked forms use,
  // which trips -Wmaybe-uninitialized through inlining on GCC.
  const __m512i shifts =
      _mm512_maskz_cvtepu32_epi64(0xff, fmb_internal::Shift64(h));
  const __m512i mask =
      _mm512_maskz_sllv_epi64(0xff, _mm512_set1_epi64(1), shifts);
  _mm512_store_si512(block, _mm512_or_si512(_mm512_load_si512(block), mask));
#elif PF_HAVE_AVX2
  const __m256i shifts = fmb_internal::Shift64(h);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i lo = _mm256_sllv_epi64(
      one, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(shifts)));
  const __m256i hi = _mm256_sllv_epi64(
      one, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(shifts, 1)));
  __m256i* b = reinterpret_cast<__m256i*>(block);
  _mm256_store_si256(b, _mm256_or_si256(_mm256_load_si256(b), lo));
  _mm256_store_si256(b + 1, _mm256_or_si256(_mm256_load_si256(b + 1), hi));
#else
  Fmb64AddPortable(h, block);
#endif
}

// Tests whether all 8 of the key's bits are set in the 64-byte block.
inline bool Fmb64Contains(uint32_t h, const uint64_t* block) {
#if PF_HAVE_AVX512
  const __m512i shifts =
      _mm512_maskz_cvtepu32_epi64(0xff, fmb_internal::Shift64(h));
  const __m512i mask =
      _mm512_maskz_sllv_epi64(0xff, _mm512_set1_epi64(1), shifts);
  const __m512i b = _mm512_load_si512(block);
  // All mask bits present iff (b & mask) == mask in every lane.
  return _mm512_cmpeq_epi64_mask(_mm512_and_si512(b, mask), mask) == 0xff;
#elif PF_HAVE_AVX2
  const __m256i shifts = fmb_internal::Shift64(h);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i lo = _mm256_sllv_epi64(
      one, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(shifts)));
  const __m256i hi = _mm256_sllv_epi64(
      one, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(shifts, 1)));
  const __m256i* b = reinterpret_cast<const __m256i*>(block);
  return _mm256_testc_si256(_mm256_load_si256(b), lo) != 0 &&
         _mm256_testc_si256(_mm256_load_si256(b + 1), hi) != 0;
#else
  return Fmb64ContainsPortable(h, block);
#endif
}

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_SIMD_H_
