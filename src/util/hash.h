// Hashing substrate (paper §7.1: "All filters use the same hash function,
// by Dietzfelbinger [21, Theorem 1]").
//
// Dietzfelbinger's multiply-shift scheme hashes a w-bit key x to
// ((a*x + b) mod 2^{2w}) div 2^w for random 2w-bit a (odd) and b; for w = 64
// this is one 64x64->128 multiply plus an add.  On top of it we provide
// fastrange (Lemire's multiply-shift alternative to modulo reduction) and a
// strong 64-bit finalizer for deriving independent streams from one hash.
#ifndef PREFIXFILTER_SRC_UTIL_HASH_H_
#define PREFIXFILTER_SRC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace prefixfilter {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using uint128_t = unsigned __int128;
#pragma GCC diagnostic pop

// Maps a 64-bit value to [0, range) without modulo bias beyond 2^-64
// (Lemire's fastrange).
inline uint64_t FastRange64(uint64_t hash, uint64_t range) {
  return static_cast<uint64_t>(
      (static_cast<uint128_t>(hash) * static_cast<uint128_t>(range)) >> 64);
}

// Maps a 32-bit value to [0, range) for small ranges (used for the pocket
// dictionary quotient, range <= 80).
inline uint32_t FastRange32(uint32_t hash, uint32_t range) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(hash) * static_cast<uint64_t>(range)) >> 32);
}

// Fibonacci/murmur-style 64-bit finalizer; bijective, so it can be used to
// derive a second near-independent stream from one hash value.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Dietzfelbinger multiply-shift: h_{a,b}(x) = ((a*x + b) mod 2^128) div 2^64.
// `a` must be odd.  This is a 2-universal family from 64-bit keys to 64-bit
// hashes, which is exactly what the paper's analysis (§6.3) requires.
class Dietzfelbinger64 {
 public:
  Dietzfelbinger64() : Dietzfelbinger64(0x9e3779b97f4a7c15ULL) {}

  // Derives the 128-bit parameters (a, b) from `seed` via a splitmix stream.
  explicit Dietzfelbinger64(uint64_t seed) {
    uint64_t s = seed;
    auto next = [&s]() {
      s += 0x9e3779b97f4a7c15ULL;
      return Mix64(s);
    };
    a_ = (static_cast<uint128_t>(next()) << 64) | (next() | 1ULL);
    b_ = (static_cast<uint128_t>(next()) << 64) | next();
  }

  uint64_t operator()(uint64_t x) const {
    return static_cast<uint64_t>((a_ * x + b_) >> 64);
  }

 private:
  uint128_t a_;
  uint128_t b_;
};

// Hashes an arbitrary byte string to a uniform 64-bit value (for reducing
// variable-length keys to the 64-bit universe the filters consume).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed);

// Splits one uniform 64-bit hash into the prefix filter's fingerprint parts.
// See core/prefix_filter.h for how (bin, q, r) are consumed.
struct HashParts {
  // Bin index in [0, num_bins); uses (predominantly) the high hash bits.
  static uint64_t Bin(uint64_t h, uint64_t num_bins) {
    return FastRange64(h, num_bins);
  }
  // Quotient in [0, q_range); uses remixed low bits so it is (practically)
  // independent of the bin index.
  static uint32_t Quotient(uint64_t h, uint32_t q_range) {
    return FastRange32(static_cast<uint32_t>(Mix64(h) >> 32), q_range);
  }
  // 8-bit remainder.
  static uint8_t Remainder(uint64_t h) {
    return static_cast<uint8_t>(Mix64(h));
  }
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_HASH_H_
