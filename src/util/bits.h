// Bit-manipulation substrate used by the pocket dictionaries (paper §5).
//
// The pocket dictionary header is a unary/Elias-Fano encoding packed into one
// (PD256) or two (PD512) machine words.  Every operation below is a small,
// branch-light building block for decoding that encoding: rank, select,
// inserting/removing a bit at an arbitrary position, and range masks.
#ifndef PREFIXFILTER_SRC_UTIL_BITS_H_
#define PREFIXFILTER_SRC_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#if defined(__BMI2__)
#include <immintrin.h>
#define PF_HAVE_BMI2 1
#else
#define PF_HAVE_BMI2 0
#endif

namespace prefixfilter {

// Number of set bits in `x`.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

// Index of the least-significant set bit. Undefined for x == 0.
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

// Index of the most-significant set bit (0-based). Undefined for x == 0.
inline int HighestSetBit64(uint64_t x) { return 63 - std::countl_zero(x); }

// A mask with bits [0, n) set. Requires 0 <= n <= 64.
inline uint64_t MaskLow64(int n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

// A mask with bits [lo, hi) set. Requires 0 <= lo <= hi <= 64.
inline uint64_t MaskRange64(int lo, int hi) {
  return MaskLow64(hi) & ~MaskLow64(lo);
}

// Rank(x, i): number of set bits of `x` in positions [0, i).
inline int Rank64(uint64_t x, int i) { return PopCount64(x & MaskLow64(i)); }

// Select(x, j): index of the j-th (0-based) set bit of `x`; 64 if there is
// no such bit.  This is the "fast x86 Select" of Pandey et al. [41] that the
// paper's PD implementation works hard to avoid on its fast path: PDEP
// deposits a single bit at the position of the j-th one, TZCNT extracts it.
inline int Select64(uint64_t x, int j) {
#if PF_HAVE_BMI2
  return static_cast<int>(_tzcnt_u64(_pdep_u64(uint64_t{1} << j, x)));
#else
  for (int i = 0; i < 64; ++i) {
    if ((x >> i) & 1) {
      if (j == 0) return i;
      --j;
    }
  }
  return 64;
#endif
}

// Inserts a 0-bit at position `pos`, shifting bits [pos, 63) up by one.  The
// previous bit 63 is discarded (PD headers never occupy the full word).
inline uint64_t InsertZeroBit64(uint64_t x, int pos) {
  const uint64_t lo = MaskLow64(pos);
  return (x & lo) | ((x & ~lo) << 1);
}

// Inserts a 1-bit at position `pos`, shifting bits [pos, 63) up by one.
inline uint64_t InsertOneBit64(uint64_t x, int pos) {
  return InsertZeroBit64(x, pos) | (uint64_t{1} << pos);
}

// Removes the bit at position `pos`, shifting bits (pos, 64) down by one.
// Bit 63 of the result is zero.
inline uint64_t RemoveBit64(uint64_t x, int pos) {
  const uint64_t lo = MaskLow64(pos);
  return (x & lo) | ((x >> 1) & ~lo);
}

// Returns true iff `x` has at most one set bit.
inline bool AtMostOneBitSet64(uint64_t x) { return (x & (x - 1)) == 0; }

// Next power of two >= x (x >= 1). Saturates at 2^63.
inline uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(x - 1));
}

// ---------------------------------------------------------------------------
// 128-bit header helpers (for PD512, whose header spans two words).
// Bits are numbered 0..127 with word 0 holding bits [0, 64).
// ---------------------------------------------------------------------------

struct Bits128 {
  uint64_t lo;
  uint64_t hi;
};

inline int PopCount128(Bits128 x) { return PopCount64(x.lo) + PopCount64(x.hi); }

inline bool GetBit128(Bits128 x, int pos) {
  return pos < 64 ? ((x.lo >> pos) & 1) != 0 : ((x.hi >> (pos - 64)) & 1) != 0;
}

// Number of set bits in positions [0, i), 0 <= i <= 128.
inline int Rank128(Bits128 x, int i) {
  if (i <= 64) return Rank64(x.lo, i);
  return PopCount64(x.lo) + Rank64(x.hi, i - 64);
}

// Index of the j-th (0-based) set bit; 128 if there is no such bit.
inline int Select128(Bits128 x, int j) {
  const int c = PopCount64(x.lo);
  if (j < c) return Select64(x.lo, j);
  const int s = Select64(x.hi, j - c);
  return s == 64 ? 128 : 64 + s;
}

// Inserts a 0-bit at `pos`, shifting everything above up by one; bit 127 is
// discarded.
inline Bits128 InsertZeroBit128(Bits128 x, int pos) {
  if (pos < 64) {
    const uint64_t carry = x.lo >> 63;
    return {InsertZeroBit64(x.lo, pos), (x.hi << 1) | carry};
  }
  return {x.lo, InsertZeroBit64(x.hi, pos - 64)};
}

// Removes the bit at `pos`, shifting everything above down by one.
inline Bits128 RemoveBit128(Bits128 x, int pos) {
  if (pos < 64) {
    const uint64_t borrow = x.hi << 63;
    return {RemoveBit64(x.lo, pos) | borrow, x.hi >> 1};
  }
  return {x.lo, RemoveBit64(x.hi, pos - 64)};
}

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_BITS_H_
