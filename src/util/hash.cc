#include "src/util/hash.h"

#include <cstddef>
#include <cstring>

namespace prefixfilter {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // A compact 64-bit string hash in the murmur/xx family: mix 8-byte lanes
  // with multiply-xorshift, finalize with Mix64.  Used by the examples to
  // reduce variable-length keys (e.g. URLs) to the 64-bit universe every
  // filter in this library consumes.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ (static_cast<uint64_t>(len) * 0x9e3779b97f4a7c15ULL);
  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    h = Mix64(h ^ (k * 0xff51afd7ed558ccdULL));
    p += 8;
    len -= 8;
  }
  if (len > 0) {
    uint64_t k = 0;
    std::memcpy(&k, p, len);
    h = Mix64(h ^ (k * 0xc4ceb9fe1a85ec53ULL));
  }
  return Mix64(h);
}

}  // namespace prefixfilter
