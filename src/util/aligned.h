// Cache-line-aligned storage for filter tables.
//
// The paper's single-cache-miss guarantee (§5.2.1 constraint 1) requires the
// bin array to be laid out so no PD straddles a cache-line boundary: PD256s
// are packed two per 64-byte line, PD512s one per line.  AlignedBuffer
// provides zero-initialized, 64-byte-aligned arrays for that purpose.
#ifndef PREFIXFILTER_SRC_UTIL_ALIGNED_H_
#define PREFIXFILTER_SRC_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace prefixfilter {

inline constexpr size_t kCacheLineBytes = 64;

// A fixed-size, 64-byte-aligned, zero-initialized array of trivially
// constructible elements.  Move-only.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() : data_(nullptr), size_(0) {}

  explicit AlignedBuffer(size_t size) : size_(size) {
    const size_t bytes = RoundUp(size * sizeof(T), kCacheLineBytes);
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t SizeBytes() const { return RoundUp(size_ * sizeof(T), kCacheLineBytes); }

 private:
  static size_t RoundUp(size_t v, size_t unit) {
    return (v + unit - 1) / unit * unit;
  }
  void Free() {
    std::free(data_);
    data_ = nullptr;
  }

  T* data_;
  size_t size_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_ALIGNED_H_
