// Minimal JSON document model: enough to write the benchmark results the
// harness emits and to parse them back in the regression gate and tests.
//
// Scope (deliberately small, zero dependencies):
//  * Values: null, bool, number (double; integral values round-trip exactly
//    up to 2^53), string, array, object.
//  * Objects preserve insertion order and assume unique keys (duplicate keys
//    on parse keep the last occurrence, like most parsers).
//  * Serialization escapes control characters, quotes, and backslashes;
//    non-ASCII bytes pass through untouched (streams are UTF-8 end to end).
//  * Parsing accepts any document this library writes plus ordinary
//    hand-written JSON (whitespace, nested containers, \uXXXX escapes).
#ifndef PREFIXFILTER_SRC_UTIL_JSON_H_
#define PREFIXFILTER_SRC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace prefixfilter::json {

class Value;

using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}           // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}              // NOLINT
  Value(int64_t i)                                                // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(uint64_t u)                                               // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}   // NOLINT

  static Value MakeObject() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value MakeArray() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  Array& AsArray() { return array_; }
  const std::vector<Member>& AsObject() const { return members_; }

  // Object access.  Set() overwrites an existing key in place; Get() returns
  // nullptr when the key is absent or this value is not an object.
  void Set(const std::string& key, Value value);
  const Value* Get(const std::string& key) const;
  Value* Get(const std::string& key) {
    return const_cast<Value*>(static_cast<const Value*>(this)->Get(key));
  }

  // Typed lookups with defaults, for tolerant consumers.
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  // Array append.
  void Append(Value value) { array_.push_back(std::move(value)); }

  // Compact serialization (no whitespace).  `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  // Parses `text`; returns false (and leaves *out untouched) on malformed
  // input or trailing garbage.  `error` (optional) receives a short
  // byte-offset diagnostic.
  static bool Parse(const std::string& text, Value* out,
                    std::string* error = nullptr);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  std::vector<Member> members_;
};

}  // namespace prefixfilter::json

#endif  // PREFIXFILTER_SRC_UTIL_JSON_H_
