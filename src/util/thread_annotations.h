// Clang thread-safety annotations (PF_* macros) and annotated lock types.
//
// The macros expand to clang's thread-safety attributes when the compiler
// supports them and to nothing otherwise, so GCC builds see plain
// std::mutex-equivalent code while clang builds (CI's static-analysis job,
// -Werror=thread-safety) get a compile-time proof of lock discipline:
// every member annotated PF_GUARDED_BY can only be touched while its mutex
// is held, and every function annotated PF_REQUIRES can only be called with
// the capability already acquired.
//
// Use the annotated wrappers below instead of the std types directly —
// std::lock_guard/std::unique_lock are opaque to the analysis (their
// acquire/release happens inside system headers), so guarded members
// accessed under them would still warn.  MutexLock / ReaderMutexLock /
// WriterMutexLock are scoped capabilities the analysis understands.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef PREFIXFILTER_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define PREFIXFILTER_SRC_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PF_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define PF_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define PF_CAPABILITY(x) PF_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define PF_SCOPED_CAPABILITY PF_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define PF_GUARDED_BY(x) PF_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PF_PT_GUARDED_BY(x) PF_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define PF_ACQUIRED_BEFORE(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define PF_ACQUIRED_AFTER(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define PF_REQUIRES(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define PF_REQUIRES_SHARED(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define PF_ACQUIRE(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define PF_ACQUIRE_SHARED(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define PF_RELEASE(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define PF_RELEASE_SHARED(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define PF_RELEASE_GENERIC(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define PF_TRY_ACQUIRE(...) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define PF_EXCLUDES(...) PF_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define PF_ASSERT_CAPABILITY(x) \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define PF_RETURN_CAPABILITY(x) PF_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch.  Per the repo lint policy (ISSUE 9 acceptance criteria) this
// may only appear with an inline justification comment, and at most a
// handful of sites; prefer restructuring the code so the analysis can see
// the discipline.
#define PF_NO_THREAD_SAFETY_ANALYSIS \
  PF_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace prefixfilter {

// std::mutex with the capability attribute, so members can be declared
// PF_GUARDED_BY(mutex_) and functions PF_REQUIRES(mutex_).  Lowercase
// lock()/unlock()/try_lock() keep it a standard Lockable: it works with
// CondVar below (condition_variable_any) and generic code.
class PF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PF_ACQUIRE() { mu_.lock(); }
  void unlock() PF_RELEASE() { mu_.unlock(); }
  bool try_lock() PF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// std::shared_mutex with the capability attribute: exclusive writers via
// WriterMutexLock, shared readers via ReaderMutexLock.
class PF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PF_ACQUIRE() { mu_.lock(); }
  void unlock() PF_RELEASE() { mu_.unlock(); }
  void lock_shared() PF_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() PF_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock over Mutex — the annotated replacement for
// std::lock_guard<std::mutex>/std::unique_lock<std::mutex>.
class PF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped shared (reader) lock over SharedMutex.
class PF_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) PF_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() PF_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped exclusive (writer) lock over SharedMutex.
class PF_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) PF_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() PF_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable that waits on the annotated Mutex directly
// (condition_variable_any), so waiters stay inside the analysis:
// Wait() declares PF_REQUIRES(mu), and callers hold the MutexLock across
// the canonical while (!predicate) cv.Wait(mu) loop.  The temporary
// unlock/relock inside wait() happens in a system header, which clang's
// analysis deliberately does not diagnose.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PF_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_THREAD_ANNOTATIONS_H_
