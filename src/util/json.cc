#include "src/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace prefixfilter::json {

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double d, std::string* out) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; emit null like most writers
    *out += "null";
    return;
  }
  const double rounded = std::nearbyint(d);
  char buf[32];
  if (rounded == d && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  *out += buf;
}

struct Parser {
  const char* p;
  const char* end;
  std::string* error;

  bool Fail(const char* what, const char* at) {
    if (error != nullptr) {
      *error = std::string(what) + " at byte " + std::to_string(at - start);
    }
    return false;
  }

  const char* start;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (static_cast<size_t>(end - p) < len || std::memcmp(p, lit, len) != 0) {
      return Fail("invalid literal", p);
    }
    p += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return Fail("expected string", p);
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (++p >= end) return Fail("dangling escape", p);
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end - p < 5) return Fail("truncated \\u escape", p);
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= c - '0';
              else if (c >= 'a' && c <= 'f') code |= c - 'a' + 10;
              else if (c >= 'A' && c <= 'F') code |= c - 'A' + 10;
              else return Fail("bad \\u escape", p);
            }
            p += 4;
            // Encode as UTF-8 (surrogate pairs unsupported; rare in metrics).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Fail("unknown escape", p);
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return Fail("unterminated string", p);
    ++p;  // closing quote
    return true;
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > 64) return Fail("nesting too deep", p);
    SkipWs();
    if (p >= end) return Fail("unexpected end of input", p);
    switch (*p) {
      case 'n':
        if (!Literal("null")) return false;
        *out = Value();
        return true;
      case 't':
        if (!Literal("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        *out = Value(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case '[': {
        ++p;
        Value arr = Value::MakeArray();
        SkipWs();
        if (p < end && *p == ']') {
          ++p;
          *out = std::move(arr);
          return true;
        }
        while (true) {
          Value elem;
          if (!ParseValue(&elem, depth + 1)) return false;
          arr.Append(std::move(elem));
          SkipWs();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            *out = std::move(arr);
            return true;
          }
          return Fail("expected ',' or ']'", p);
        }
      }
      case '{': {
        ++p;
        Value obj = Value::MakeObject();
        SkipWs();
        if (p < end && *p == '}') {
          ++p;
          *out = std::move(obj);
          return true;
        }
        while (true) {
          SkipWs();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWs();
          if (p >= end || *p != ':') return Fail("expected ':'", p);
          ++p;
          Value member;
          if (!ParseValue(&member, depth + 1)) return false;
          obj.Set(key, std::move(member));
          SkipWs();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            *out = std::move(obj);
            return true;
          }
          return Fail("expected ',' or '}'", p);
        }
      }
      default: {
        char* num_end = nullptr;
        const double d = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) return Fail("expected value", p);
        p = num_end;
        *out = Value(d);
        return true;
      }
    }
  }
};

}  // namespace

void Value::Set(const std::string& key, Value value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Value* Value::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::GetDouble(const std::string& key, double fallback) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

std::string Value::GetString(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: NumberInto(number_, out); break;
    case Type::kString: EscapeInto(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        EscapeInto(members_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Value::Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), error,
                text.data()};
  Value v;
  if (!parser.ParseValue(&v, 0)) return false;
  parser.SkipWs();
  if (parser.p != parser.end) {
    return parser.Fail("trailing garbage", parser.p);
  }
  *out = std::move(v);
  return true;
}

}  // namespace prefixfilter::json
