// Minimal byte-stream serialization for persisting filters.
//
// LSM systems persist each run's filter next to the run and load it back on
// restart (the build-once/query-forever lifecycle of §1); these helpers give
// every filter in the library a compact, versioned, little-endian wire
// format.  No attempt is made at cross-endianness portability beyond
// little-endian (matching the x86 targets of the paper's SIMD kernels).
#ifndef PREFIXFILTER_SRC_UTIL_SERIALIZE_H_
#define PREFIXFILTER_SRC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace prefixfilter {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Raw(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + len);
  }
  // Length-prefixed string (u32 length + bytes), used by the type-erased
  // filter envelope to tag payloads with their factory configuration name.
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

 private:
  std::vector<uint8_t>* out_;
};

// Reads fail-soft: after any short read, ok() is false and subsequent reads
// return zeros; callers check ok() once at the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : p_(data), remaining_(len) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  bool Raw(void* out, size_t len) {
    if (!ok_ || remaining_ < len) {
      ok_ = false;
      std::memset(out, 0, len);
      return false;
    }
    std::memcpy(out, p_, len);
    p_ += len;
    remaining_ -= len;
    return true;
  }

  // Length-prefixed string.  Lengths beyond `max_len` (or the remaining
  // payload) poison the reader instead of allocating attacker-chosen sizes.
  std::string Str(size_t max_len = 4096) {
    const uint32_t len = U32();
    if (!ok_ || len > max_len || len > remaining_) {
      ok_ = false;
      return std::string();
    }
    std::string s(len, '\0');
    Raw(s.data(), len);
    return s;
  }

  // Advances past `len` bytes (e.g. a nested blob handed to another reader).
  bool Skip(size_t len) {
    if (!ok_ || remaining_ < len) {
      ok_ = false;
      return false;
    }
    p_ += len;
    remaining_ -= len;
    return true;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return remaining_; }

 private:
  const uint8_t* p_;
  size_t remaining_;
  bool ok_ = true;
};

// Cache-line rounding used by AlignedBuffer::SizeBytes — Deserialize
// implementations use it to verify a payload's advertised geometry against
// the actual byte count BEFORE allocating (so corrupted size fields are
// rejected instead of triggering huge allocations).
inline size_t RoundUpToCacheLine(size_t v) { return (v + 63) / 64 * 64; }

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_SERIALIZE_H_
