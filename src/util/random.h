// Pseudo-random number generation for tests and benchmark workloads.
//
// The evaluation (§7.3) pre-generates sequences of uniformly random 64-bit
// keys, queries uniform keys (negative with overwhelming probability), and
// samples random permutations of previously-inserted keys for positive
// queries.  xoshiro256** is used for bulk key generation (fast, passes
// BigCrush); splitmix64 seeds it and provides cheap one-off streams.
#ifndef PREFIXFILTER_SRC_UTIL_RANDOM_H_
#define PREFIXFILTER_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/util/hash.h"

namespace prefixfilter {

// splitmix64: the canonical seeding generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: fast general-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, range) via fastrange.
  uint64_t Below(uint64_t range) { return FastRange64(Next(), range); }

  // For use with <random>-style algorithms (e.g. std::shuffle).
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Generates `count` uniformly random 64-bit keys.  With a 2^64 universe and
// practical set sizes, independently drawn keys are distinct (and queries
// for fresh draws are negative) with overwhelming probability, which is how
// the paper's harness obtains its insertion and negative-query streams.
inline std::vector<uint64_t> RandomKeys(size_t count, uint64_t seed) {
  std::vector<uint64_t> keys(count);
  Xoshiro256 rng(seed);
  for (auto& k : keys) k = rng.Next();
  return keys;
}

// Samples `count` elements from keys[0, limit) uniformly with replacement.
// Used for positive-query streams ("a randomly permuted sample of keys that
// were inserted in some previous round", §7.3).
inline std::vector<uint64_t> SampleKeys(const std::vector<uint64_t>& keys,
                                        size_t limit, size_t count,
                                        uint64_t seed) {
  std::vector<uint64_t> out(count);
  Xoshiro256 rng(seed);
  for (auto& k : out) k = keys[rng.Below(limit)];
  return out;
}

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_UTIL_RANDOM_H_
