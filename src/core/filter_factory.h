// Type-erased filter interface and by-name factory.
//
// The benchmarks use concrete filter types (templates, no virtual dispatch
// in timing loops); the examples and the LSM substrate want to switch filter
// implementations at run time.  AnyFilter wraps every filter in this library
// behind a uniform incremental-filter interface.
#ifndef PREFIXFILTER_SRC_CORE_FILTER_FACTORY_H_
#define PREFIXFILTER_SRC_CORE_FILTER_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace prefixfilter {

// The incremental-filter contract (paper §2): Insert may assume the key is
// not already present; Contains never reports a false negative.
class AnyFilter {
 public:
  virtual ~AnyFilter() = default;

  // Returns false iff the filter failed to absorb the key.
  virtual bool Insert(uint64_t key) = 0;
  virtual bool Contains(uint64_t key) const = 0;
  virtual size_t SpaceBytes() const = 0;
  virtual uint64_t Capacity() const = 0;
  virtual std::string Name() const = 0;
};

// Constructs a filter by configuration name for up to `capacity` keys.
// Known names: "BF-8", "BF-12", "BF-16", "BBF", "BBF-Flex", "CF-8",
// "CF-8-Flex", "CF-12", "CF-12-Flex", "CF-16", "CF-16-Flex", "TC", "QF",
// "PF[BBF-Flex]", "PF[CF12-Flex]", "PF[TC]".  Returns nullptr for unknown
// names.
std::unique_ptr<AnyFilter> MakeFilter(const std::string& name,
                                      uint64_t capacity, uint64_t seed = 42);

// All configuration names MakeFilter understands, in Table 3 order.
std::vector<std::string> KnownFilterNames();

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_FILTER_FACTORY_H_
