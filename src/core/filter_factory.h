// Type-erased filter interface and by-name factory.
//
// The benchmarks use concrete filter types (templates, no virtual dispatch
// in timing loops); the examples, the LSM substrate, and the sharded filter
// service want to switch filter implementations at run time.  AnyFilter
// wraps every filter in this library behind a uniform incremental-filter
// interface, including batched queries and a name-tagged wire format.
#ifndef PREFIXFILTER_SRC_CORE_FILTER_FACTORY_H_
#define PREFIXFILTER_SRC_CORE_FILTER_FACTORY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace prefixfilter {

// Detects a concrete filter's prefetching byte-output batch path
// (`void ContainsBatch(const uint64_t*, size_t, uint8_t*) const`).  The
// adapter below, the benches, and the differential-test harness all use this
// to route batches to the concrete loop when one exists.
template <typename F, typename = void>
struct HasByteBatch : std::false_type {};
template <typename F>
struct HasByteBatch<
    F, std::void_t<decltype(std::declval<const F&>().ContainsBatch(
           static_cast<const uint64_t*>(nullptr), size_t{0},
           static_cast<uint8_t*>(nullptr)))>> : std::true_type {};

// Batch probe over a CONCRETE filter: its prefetching byte-batch path if it
// has one, otherwise a concrete (devirtualized) scalar loop.
template <typename F>
void ContainsBatchOrScalar(const F& filter, const uint64_t* keys, size_t count,
                           uint8_t* out) {
  if constexpr (HasByteBatch<F>::value) {
    filter.ContainsBatch(keys, count, out);
  } else {
    for (size_t i = 0; i < count; ++i) out[i] = filter.Contains(keys[i]) ? 1 : 0;
  }
}

// The incremental-filter contract (paper §2): Insert may assume the key is
// not already present; Contains never reports a false negative.
class AnyFilter {
 public:
  virtual ~AnyFilter() = default;

  // Returns false iff the filter failed to absorb the key.
  virtual bool Insert(uint64_t key) = 0;
  virtual bool Contains(uint64_t key) const = 0;

  // Batched membership: out[i] = 1 if keys[i] may be present, else 0.
  // The factory adapter always overrides this with a concrete loop (one
  // virtual dispatch per batch, not per key); this default exists only for
  // AnyFilter implementations outside the factory.
  virtual void ContainsBatch(const uint64_t* keys, size_t count,
                             uint8_t* out) const {
    for (size_t i = 0; i < count; ++i) out[i] = Contains(keys[i]) ? 1 : 0;
  }

  // Batched insert: returns the number of FAILED inserts (0 == every key
  // absorbed), matching the sharded filter / service / wire-protocol
  // convention.  Same devirtualization story as ContainsBatch: the adapter
  // overrides with a concrete loop, one dispatch per batch.
  virtual uint64_t InsertBatch(const uint64_t* keys, size_t count) {
    uint64_t failures = 0;
    for (size_t i = 0; i < count; ++i) {
      failures += !Insert(keys[i]);
    }
    return failures;
  }

  // Appends a self-describing snapshot (envelope: magic + factory name +
  // payload) that DeserializeFilter() can restore without knowing the
  // concrete type.  Returns false iff this filter has no wire format.
  virtual bool SerializeTo(std::vector<uint8_t>* out) const = 0;

  virtual size_t SpaceBytes() const = 0;
  virtual uint64_t Capacity() const = 0;
  virtual std::string Name() const = 0;
};

// Constructs a filter by configuration name for up to `capacity` keys.
//
// Accepted names (KnownFilterNames() is the authoritative list; every entry
// below is spelled exactly as MakeFilter() matches it):
//   Bloom family:  "BF-8", "BF-12", "BF-16", "BBF", "BBF-Flex",
//                  "FMB32", "FMB64" (fast_multiblock SIMD kernels)
//   Cuckoo family: "CF-8", "CF-8-Flex", "CF-12", "CF-12-Flex", "CF-16",
//                  "CF-16-Flex"
//   Others:        "TC", "QF"
//   Prefix filter: "PF[BBF-Flex]", "PF[CF12-Flex]", "PF[TC]"
//   Sharded:       "SHARD<n>[<inner>]" for any power-of-two n <= 4096 and
//                  accepted non-sharded inner name, e.g. "SHARD16[PF[TC]]"
//                  (hash-partitioned over n independently-locked shards;
//                  see src/service/).
// The prefix-filter spare tag "CF12-Flex" (no dash, the spare's own Name())
// intentionally differs from the standalone "CF-12-Flex"; the alias
// "PF[CF-12-Flex]" is accepted and canonicalized to "PF[CF12-Flex]".
// Returns nullptr for unknown names.
std::unique_ptr<AnyFilter> MakeFilter(const std::string& name,
                                      uint64_t capacity, uint64_t seed = 42);

// All configuration names MakeFilter understands, in Table 3 order, plus the
// sharded-service configurations (aliases omitted).
std::vector<std::string> KnownFilterNames();

// Maps accepted alias spellings to the canonical name MakeFilter stores and
// snapshots are tagged with (currently "PF[CF-12-Flex]" -> "PF[CF12-Flex]");
// canonical names pass through unchanged.
std::string CanonicalFilterName(const std::string& name);

// Restores a filter from an AnyFilter::SerializeTo image.  Returns nullptr
// on unknown names, corrupted headers, or payload/type mismatches.
std::unique_ptr<AnyFilter> DeserializeFilter(const uint8_t* data, size_t len);

// Every AnyFilter snapshot starts with this envelope: magic, format version,
// then the length-prefixed factory configuration name, then the concrete
// filter's own payload.  Exposed for implementations (e.g. ShardedFilter)
// that write their envelope themselves.
inline constexpr uint32_t kAnyFilterMagic = 0x50464145;  // "PFAE"
void WriteFilterEnvelope(const std::string& factory_name,
                         std::vector<uint8_t>* out);

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_FILTER_FACTORY_H_
