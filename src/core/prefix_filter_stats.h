// Operation counters for validating the paper's access-cost claims.
//
// Theorem 2(3): if the filter does not fail, a query touches a single cache
// line with probability >= 1 - 1/sqrt(2*pi*k), and at most a 1.1/sqrt(2*pi*k)
// fraction of insertions access the spare.  The prefix filter counts spare
// traffic (cheap increments on the rare path only) so benches and tests can
// verify those bounds empirically.
#ifndef PREFIXFILTER_SRC_CORE_PREFIX_FILTER_STATS_H_
#define PREFIXFILTER_SRC_CORE_PREFIX_FILTER_STATS_H_

#include <cstdint>

namespace prefixfilter {

struct PrefixFilterStats {
  uint64_t inserts = 0;          // total insertions
  uint64_t spare_inserts = 0;    // insertions that forwarded a fingerprint
  uint64_t evictions = 0;        // forwarded fingerprint was a resident max
  uint64_t queries = 0;          // total queries
  uint64_t spare_queries = 0;    // queries forwarded to the spare

  double SpareInsertFraction() const {
    return inserts == 0 ? 0.0
                        : static_cast<double>(spare_inserts) /
                              static_cast<double>(inserts);
  }
  double SpareQueryFraction() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(spare_queries) /
                              static_cast<double>(queries);
  }
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_PREFIX_FILTER_STATS_H_
