// Concurrent prefix filter (paper §4.4).
//
// The paper observes that the prefix filter admits a simple, highly scalable
// concurrent implementation: because every operation touches exactly one
// bin, fine-grained per-bin locking suffices — unlike cuckoo or
// power-of-two-choices schemes, which may need to hold two bucket locks at
// once.  (A concurrent evaluation is outside the paper's scope; this module
// implements the scheme the paper sketches.)
//
// Locking discipline:
//   * Bin table: striped spinlocks, one stripe per cache line of bins (two
//     PD256s share a line, so per-line locking is the natural granularity).
//   * Spare: the paper assumes "a concurrent spare implementation".  We
//     build one by sharding: the spare's keyspace is hash-partitioned over
//     16 independent sub-filters, each guarded by its own (line-padded)
//     mutex, so the ~1/sqrt(2*pi*k) fraction of operations that reach the
//     spare contend only 1/16th of the time.
//   * The per-operation order is lock bin -> operate -> (if forwarding)
//     lock spare shard while still holding the bin lock, so the Prefix
//     Invariant ("bin holds a prefix; the rest is in the spare") is never
//     observed broken.  Lock order is always bin-then-shard: no deadlocks.
#ifndef PREFIXFILTER_SRC_CORE_CONCURRENT_PREFIX_FILTER_H_
#define PREFIXFILTER_SRC_CORE_CONCURRENT_PREFIX_FILTER_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/bounds.h"
#include "src/pd/pd256.h"
#include "src/util/aligned.h"
#include "src/util/bits.h"
#include "src/util/hash.h"
#include "src/util/thread_annotations.h"

namespace prefixfilter {

namespace internal {

// A test-and-set spinlock padded to a full cache line.  Padding matters:
// unpadded one-byte locks pack 64 to a line, so every acquisition
// invalidates a line shared by 64 stripes and lock traffic serializes the
// whole table (false sharing) — the opposite of the per-bin-locking point.
class PF_CAPABILITY("mutex") alignas(64) SpinLock {
 public:
  void lock() PF_ACQUIRE() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  void unlock() PF_RELEASE() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Scoped acquisition of a SpinLock the thread-safety analysis understands
// (std::lock_guard<SpinLock> acquires inside a system header, invisible to
// the analysis).
class PF_SCOPED_CAPABILITY SpinLockHolder {
 public:
  explicit SpinLockHolder(SpinLock& lock) PF_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockHolder() PF_RELEASE() { lock_.unlock(); }

  SpinLockHolder(const SpinLockHolder&) = delete;
  SpinLockHolder& operator=(const SpinLockHolder&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace internal

template <typename SpareTraits>
class ConcurrentPrefixFilter {
 public:
  using Spare = typename SpareTraits::FilterType;

  static constexpr uint32_t kBinCapacity = PD256::kCapacity;
  static constexpr uint32_t kNumLists = PD256::kNumLists;
  static constexpr uint32_t kMiniFpRange = kNumLists * 256;

  // `spare_shards` partitions the concurrent spare into that many
  // independently-locked sub-filters (rounded up to a power of two;
  // default 16).  More shards buy less contention on the forwarding path at
  // the cost of per-shard sizing headroom.
  explicit ConcurrentPrefixFilter(uint64_t capacity,
                                  double bin_load_factor = 0.95,
                                  uint64_t seed = 0x9f1e61a5u,
                                  uint32_t spare_shards = kDefaultSpareShards)
      : capacity_(capacity),
        num_bins_(std::max<uint64_t>(
            2, static_cast<uint64_t>(
                   std::ceil(static_cast<double>(capacity) /
                             (bin_load_factor * kBinCapacity))))),
        spare_capacity_(
            analysis::SpareCapacity(capacity, num_bins_, kBinCapacity, 1.1)),
        bins_(num_bins_),
        num_lock_stripes_(std::min<uint64_t>(
            kMaxLockStripes, NextPow2((num_bins_ + kBinsPerLock - 1) /
                                      kBinsPerLock))),
        locks_(std::make_unique<internal::SpinLock[]>(num_lock_stripes_)),
        num_spare_shards_(static_cast<uint32_t>(NextPow2(std::clamp<uint32_t>(
            spare_shards, 1, kMaxSpareShards)))) {
    // Sharded concurrent spare: each shard holds its hash-partitioned slice
    // of the expected spare population plus balls-into-bins headroom.
    const uint64_t per_shard =
        spare_capacity_ / num_spare_shards_ +
        4 * static_cast<uint64_t>(std::sqrt(
                static_cast<double>(spare_capacity_) / num_spare_shards_)) +
        64;
    shards_.reserve(num_spare_shards_);
    for (uint32_t s = 0; s < num_spare_shards_; ++s) {
      shards_.push_back(std::make_unique<SpareShard>(
          SpareTraits::Create(per_shard, seed ^ (0x51a7eull + s))));
    }
    hash_ = Dietzfelbinger64(seed);
  }

  bool Insert(uint64_t key) {
    const uint64_t h = hash_(key);
    const uint64_t b = HashParts::Bin(h, num_bins_);
    const int q = static_cast<int>(HashParts::Quotient(h, kNumLists));
    const uint8_t r = HashParts::Remainder(h);

    internal::SpinLockHolder bin_guard(LockFor(b));
    PD256& bin = bins_[b];
    if (bin.Insert(q, r)) return true;
    if (!bin.Overflowed()) bin.MarkOverflowed();
    const uint16_t fp_new = static_cast<uint16_t>((q << 8) | r);
    const uint16_t fp_max = bin.MaxFingerprint();
    const uint16_t forwarded = fp_new > fp_max ? fp_new : fp_max;
    if (fp_new <= fp_max) bin.ReplaceMax(q, r);
    const uint64_t spare_key = b * kMiniFpRange + forwarded;
    SpareShard& shard = ShardFor(spare_key);
    MutexLock spare_guard(shard.mutex);
    return shard.filter.Insert(spare_key);
  }

  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    const uint64_t b = HashParts::Bin(h, num_bins_);
    const int q = static_cast<int>(HashParts::Quotient(h, kNumLists));
    const uint8_t r = HashParts::Remainder(h);

    internal::SpinLockHolder bin_guard(LockFor(b));
    const PD256& bin = bins_[b];
    const uint16_t fp = static_cast<uint16_t>((q << 8) | r);
    if (bin.Overflowed() && fp > bin.MaxFingerprint()) {
      const uint64_t spare_key = b * kMiniFpRange + fp;
      SpareShard& shard = ShardFor(spare_key);
      MutexLock spare_guard(shard.mutex);
      return shard.filter.Contains(spare_key);
    }
    return bin.Find(q, r);
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t num_bins() const { return num_bins_; }
  uint32_t spare_shards() const { return num_spare_shards_; }
  size_t SpaceBytes() const {
    // bins_.SizeBytes() is construction-time geometry, but shard->filter is
    // a guarded member and the annotations flagged this walk as unlocked.
    // No backend races today (every SpaceBytes() reads fixed geometry); the
    // locks close the exception before a future occupancy-derived spare
    // turns it into a real race — see
    // ConcurrentPrefixFilter.SpaceBytesConcurrentWithInserts.
    size_t total = bins_.SizeBytes();
    for (const auto& shard : shards_) {
      MutexLock guard(shard->mutex);
      total += shard->filter.SpaceBytes();
    }
    return total;
  }
  std::string Name() const {
    return std::string("ConcurrentPF[") + SpareTraits::Name() + "]";
  }

 private:
  // Two 32-byte PDs share a 64-byte cache line; lock at line granularity,
  // striped (bins sharing a line always share a stripe, so the locking is
  // still logically per-bin-line; the cap only bounds lock memory).
  static constexpr uint64_t kBinsPerLock = 2;
  static constexpr uint64_t kMaxLockStripes = 1 << 16;
  static constexpr uint32_t kDefaultSpareShards = 16;
  // Bounds the shard count before NextPow2 (whose uint64_t result would
  // otherwise truncate to 0 in uint32_t for requests above 2^31).
  static constexpr uint32_t kMaxSpareShards = 1 << 12;

  struct SpareShard {
    explicit SpareShard(Spare f) : filter(std::move(f)) {}
    alignas(64) Mutex mutex;
    Spare filter PF_GUARDED_BY(mutex);
  };

  internal::SpinLock& LockFor(uint64_t bin) const {
    return locks_[(bin / kBinsPerLock) & (num_lock_stripes_ - 1)];
  }

  SpareShard& ShardFor(uint64_t spare_key) const {
    return *shards_[Mix64(spare_key * 0x9e3779b97f4a7c15ULL) &
                    (num_spare_shards_ - 1)];
  }

  uint64_t capacity_;
  uint64_t num_bins_;
  uint64_t spare_capacity_;
  AlignedBuffer<PD256> bins_;
  uint64_t num_lock_stripes_;
  mutable std::unique_ptr<internal::SpinLock[]> locks_;
  uint32_t num_spare_shards_;
  mutable std::vector<std::unique_ptr<SpareShard>> shards_;
  Dietzfelbinger64 hash_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_CONCURRENT_PREFIX_FILTER_H_
