#include "src/core/filter_factory.h"

#include <utility>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/bloom.h"
#include "src/filters/fast_multiblock.h"
#include "src/filters/cuckoo.h"
#include "src/filters/quotient.h"
#include "src/filters/twochoicer.h"
// Deliberate .cc-level reach into src/service/ for the SHARD<n>[...] names:
// the headers stay acyclic (service includes core, never the reverse), and
// the alternative — a static-init registration hook — silently breaks in a
// static library, where the linker drops sharded_filter.o (and its
// registrar) from any binary that names sharded configs without referencing
// a service symbol directly.
#include "src/service/sharded_filter.h"
#include "src/util/serialize.h"

namespace prefixfilter {
namespace {

// Adapts any concrete filter to the AnyFilter interface.  `factory_name` is
// the canonical MakeFilter() spelling, kept so snapshots are tagged with a
// name DeserializeFilter() can dispatch on (a filter's own Name() may embed
// derived parameters, e.g. "BF-8[k=6]").
template <typename F>
class FilterAdapter final : public AnyFilter {
 public:
  FilterAdapter(F filter, std::string factory_name)
      : filter_(std::move(filter)), factory_name_(std::move(factory_name)) {}

  bool Insert(uint64_t key) override { return filter_.Insert(key); }
  bool Contains(uint64_t key) const override { return filter_.Contains(key); }
  // Devirtualized batch hot paths: one virtual dispatch per batch, then a
  // concrete loop over filter_ (inlined Contains/Insert — no per-key virtual
  // calls, even for filters without their own batch path).
  void ContainsBatch(const uint64_t* keys, size_t count,
                     uint8_t* out) const override {
    ContainsBatchOrScalar(filter_, keys, count, out);
  }
  uint64_t InsertBatch(const uint64_t* keys, size_t count) override {
    uint64_t failures = 0;
    for (size_t i = 0; i < count; ++i) {
      failures += !filter_.Insert(keys[i]);
    }
    return failures;
  }
  bool SerializeTo(std::vector<uint8_t>* out) const override {
    WriteFilterEnvelope(factory_name_, out);
    filter_.SerializeTo(out);
    return true;
  }
  size_t SpaceBytes() const override { return filter_.SpaceBytes(); }
  uint64_t Capacity() const override { return filter_.capacity(); }
  std::string Name() const override { return filter_.Name(); }

  F& filter() { return filter_; }

 private:
  F filter_;
  std::string factory_name_;
};

template <typename F>
std::unique_ptr<AnyFilter> Wrap(F filter, std::string factory_name) {
  return std::make_unique<FilterAdapter<F>>(std::move(filter),
                                            std::move(factory_name));
}

// Restores a concrete filter from an envelope payload and re-wraps it.
// The restored filter's self-reported Name() must agree with the envelope
// tag ("payload/type mismatches -> nullptr"): payload fields fully determine
// the geometry, so a CF-8-Flex payload filed under a rewritten "CF-8" tag
// would otherwise restore with geometry the tag does not promise.  Bloom
// filters append derived parameters ("BF-8[k=6]"), hence the prefix form.
template <typename F>
std::unique_ptr<AnyFilter> Rewrap(const uint8_t* payload, size_t len,
                                  const std::string& factory_name) {
  auto filter = F::Deserialize(payload, len);
  if (!filter.has_value()) return nullptr;
  const std::string actual = filter->Name();
  if (actual != factory_name &&
      actual.rfind(factory_name + "[", 0) != 0) {
    return nullptr;
  }
  return Wrap(std::move(*filter), factory_name);
}

}  // namespace

// "PF[CF-12-Flex]" is accepted as an alias: the spare traits' own tag is
// "CF12-Flex" (see src/core/spare.h), which is what Name() reports.
std::string CanonicalFilterName(const std::string& name) {
  if (name == "PF[CF-12-Flex]") return "PF[CF12-Flex]";
  return name;
}

std::unique_ptr<AnyFilter> MakeFilter(const std::string& raw_name,
                                      uint64_t capacity, uint64_t seed) {
  const std::string name = CanonicalFilterName(raw_name);
  PrefixFilterOptions pf_options;
  pf_options.seed = seed;
  if (name == "BF-8") return Wrap(BloomFilter(capacity, 8.0, 6, seed), name);
  if (name == "BF-12") return Wrap(BloomFilter(capacity, 12.0, 8, seed), name);
  if (name == "BF-16") return Wrap(BloomFilter(capacity, 16.0, 11, seed), name);
  if (name == "BBF") {
    return Wrap(BlockedBloomFilter::MakeNonFlexible(capacity, seed), name);
  }
  if (name == "BBF-Flex") {
    return Wrap(BlockedBloomFilter::MakeFlexible(capacity, 10.67, seed), name);
  }
  if (name == "FMB32") {
    return Wrap(FastMultiBlock32::Make(capacity, 8.0, seed), name);
  }
  if (name == "FMB64") {
    return Wrap(FastMultiBlock64::Make(capacity, 12.0, seed), name);
  }
  if (name == "CF-8") return Wrap(CuckooFilter8(capacity, false, seed), name);
  if (name == "CF-8-Flex") {
    return Wrap(CuckooFilter8(capacity, true, seed), name);
  }
  if (name == "CF-12") return Wrap(CuckooFilter12(capacity, false, seed), name);
  if (name == "CF-12-Flex") {
    return Wrap(CuckooFilter12(capacity, true, seed), name);
  }
  if (name == "CF-16") return Wrap(CuckooFilter16(capacity, false, seed), name);
  if (name == "CF-16-Flex") {
    return Wrap(CuckooFilter16(capacity, true, seed), name);
  }
  if (name == "TC") return Wrap(TwoChoicer(capacity, seed), name);
  if (name == "QF") return Wrap(QuotientFilter(capacity, seed), name);
  if (name == "PF[BBF-Flex]") {
    return Wrap(PrefixFilter<SpareBbfTraits>(capacity, pf_options), name);
  }
  if (name == "PF[CF12-Flex]") {
    return Wrap(PrefixFilter<SpareCf12Traits>(capacity, pf_options), name);
  }
  if (name == "PF[TC]") {
    return Wrap(PrefixFilter<SpareTcTraits>(capacity, pf_options), name);
  }
  // "SHARD<n>[<inner>]": hash-partitioned sharded filter over any
  // non-sharded inner configuration (src/service/sharded_filter.h).
  if (ShardedFilterOptions parsed; ShardedFilter::ParseName(name, &parsed)) {
    parsed.seed = seed;
    return ShardedFilter::Make(capacity, parsed);
  }
  return nullptr;
}

std::vector<std::string> KnownFilterNames() {
  return {"CF-8",  "CF-8-Flex",  "CF-12",    "CF-12-Flex",    "CF-16",
          "CF-16-Flex", "PF[BBF-Flex]", "PF[CF12-Flex]", "PF[TC]",
          "BBF",   "BBF-Flex",   "FMB32",    "FMB64",         "BF-8",
          "BF-12", "BF-16",      "TC",       "QF",
          "SHARD16[PF[TC]]"};
}

void WriteFilterEnvelope(const std::string& factory_name,
                         std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.U32(kAnyFilterMagic);
  w.U8(1);
  w.Str(factory_name);
}

std::unique_ptr<AnyFilter> DeserializeFilter(const uint8_t* data, size_t len) {
  ByteReader r(data, len);
  if (r.U32() != kAnyFilterMagic || r.U8() != 1) return nullptr;
  const std::string name = r.Str();
  if (!r.ok() || name.empty()) return nullptr;
  const uint8_t* payload = data + (len - r.remaining());
  const size_t payload_len = r.remaining();

  if (name == "BF-8" || name == "BF-12" || name == "BF-16") {
    return Rewrap<BloomFilter>(payload, payload_len, name);
  }
  if (name == "BBF" || name == "BBF-Flex") {
    return Rewrap<BlockedBloomFilter>(payload, payload_len, name);
  }
  if (name == "FMB32") {
    return Rewrap<FastMultiBlock32>(payload, payload_len, name);
  }
  if (name == "FMB64") {
    return Rewrap<FastMultiBlock64>(payload, payload_len, name);
  }
  if (name == "CF-8" || name == "CF-8-Flex") {
    return Rewrap<CuckooFilter8>(payload, payload_len, name);
  }
  if (name == "CF-12" || name == "CF-12-Flex") {
    return Rewrap<CuckooFilter12>(payload, payload_len, name);
  }
  if (name == "CF-16" || name == "CF-16-Flex") {
    return Rewrap<CuckooFilter16>(payload, payload_len, name);
  }
  if (name == "TC") return Rewrap<TwoChoicer>(payload, payload_len, name);
  if (name == "QF") return Rewrap<QuotientFilter>(payload, payload_len, name);
  if (name == "PF[BBF-Flex]") {
    return Rewrap<PrefixFilter<SpareBbfTraits>>(payload, payload_len, name);
  }
  if (name == "PF[CF12-Flex]") {
    return Rewrap<PrefixFilter<SpareCf12Traits>>(payload, payload_len, name);
  }
  if (name == "PF[TC]") {
    return Rewrap<PrefixFilter<SpareTcTraits>>(payload, payload_len, name);
  }
  if (ShardedFilterOptions parsed; ShardedFilter::ParseName(name, &parsed)) {
    return ShardedFilter::DeserializePayload(payload, payload_len, parsed);
  }
  return nullptr;
}

}  // namespace prefixfilter
