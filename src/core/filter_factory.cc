#include "src/core/filter_factory.h"

#include <utility>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/quotient.h"
#include "src/filters/twochoicer.h"

namespace prefixfilter {
namespace {

// Adapts any concrete filter to the AnyFilter interface.
template <typename F>
class FilterAdapter final : public AnyFilter {
 public:
  explicit FilterAdapter(F filter) : filter_(std::move(filter)) {}

  bool Insert(uint64_t key) override { return filter_.Insert(key); }
  bool Contains(uint64_t key) const override { return filter_.Contains(key); }
  size_t SpaceBytes() const override { return filter_.SpaceBytes(); }
  uint64_t Capacity() const override { return filter_.capacity(); }
  std::string Name() const override { return filter_.Name(); }

  F& filter() { return filter_; }

 private:
  F filter_;
};

template <typename F>
std::unique_ptr<AnyFilter> Wrap(F filter) {
  return std::make_unique<FilterAdapter<F>>(std::move(filter));
}

}  // namespace

std::unique_ptr<AnyFilter> MakeFilter(const std::string& name,
                                      uint64_t capacity, uint64_t seed) {
  PrefixFilterOptions pf_options;
  pf_options.seed = seed;
  if (name == "BF-8") return Wrap(BloomFilter(capacity, 8.0, 6, seed));
  if (name == "BF-12") return Wrap(BloomFilter(capacity, 12.0, 8, seed));
  if (name == "BF-16") return Wrap(BloomFilter(capacity, 16.0, 11, seed));
  if (name == "BBF") {
    return Wrap(BlockedBloomFilter::MakeNonFlexible(capacity, seed));
  }
  if (name == "BBF-Flex") {
    return Wrap(BlockedBloomFilter::MakeFlexible(capacity, 10.67, seed));
  }
  if (name == "CF-8") return Wrap(CuckooFilter8(capacity, false, seed));
  if (name == "CF-8-Flex") return Wrap(CuckooFilter8(capacity, true, seed));
  if (name == "CF-12") return Wrap(CuckooFilter12(capacity, false, seed));
  if (name == "CF-12-Flex") return Wrap(CuckooFilter12(capacity, true, seed));
  if (name == "CF-16") return Wrap(CuckooFilter16(capacity, false, seed));
  if (name == "CF-16-Flex") return Wrap(CuckooFilter16(capacity, true, seed));
  if (name == "TC") return Wrap(TwoChoicer(capacity, seed));
  if (name == "QF") return Wrap(QuotientFilter(capacity, seed));
  if (name == "PF[BBF-Flex]") {
    return Wrap(PrefixFilter<SpareBbfTraits>(capacity, pf_options));
  }
  if (name == "PF[CF12-Flex]") {
    return Wrap(PrefixFilter<SpareCf12Traits>(capacity, pf_options));
  }
  if (name == "PF[TC]") {
    return Wrap(PrefixFilter<SpareTcTraits>(capacity, pf_options));
  }
  return nullptr;
}

std::vector<std::string> KnownFilterNames() {
  return {"CF-8",  "CF-8-Flex",  "CF-12",    "CF-12-Flex",    "CF-16",
          "CF-16-Flex", "PF[BBF-Flex]", "PF[CF12-Flex]", "PF[TC]",
          "BBF",   "BBF-Flex",   "BF-8",     "BF-12",         "BF-16",
          "TC",    "QF"};
}

}  // namespace prefixfilter
