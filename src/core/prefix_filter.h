// The prefix filter (paper §4): an incremental filter whose operations
// typically touch a single cache line.
//
// Two-level structure:
//   * Level 1, the *bin table*: m = ceil(n / (alpha * k)) pocket dictionaries
//     PD(25, 8, 25), two per cache line.  A key's fingerprint
//     FP(x) = (bin(x), fp(x)) maps it to one bin and to a mini-fingerprint
//     fp(x) = (q, r) in [25] x [256] (s = 6400, so k/s = 1/256).
//   * Level 2, the *spare*: any incremental filter over the fingerprint
//     universe, holding the fingerprints that do not fit in the bin table.
//
// Insertion (Algorithm 1) maintains the Prefix Invariant: a full bin keeps a
// maximal *prefix* of the sorted multiset of mini-fingerprints mapped to it,
// by always forwarding the maximum of {resident fingerprints} U {new one} to
// the spare.  Queries (Algorithm 2) therefore consult the spare only when
// the bin has overflowed AND the probed fingerprint is larger than the bin's
// maximum — which happens with probability <= 1/sqrt(2*pi*k) (Theorem 17).
// This is what removes the second cache miss that cuckoo/two-choice filters
// pay on every negative query.
//
// The spare's capacity is fixed at construction: n' = slack * E[X], where
// E[X] (the expected number of forwarded fingerprints) is computed exactly
// from the binomial analysis of §6.1, and slack defaults to the paper's 1.1.
#ifndef PREFIXFILTER_SRC_CORE_PREFIX_FILTER_H_
#define PREFIXFILTER_SRC_CORE_PREFIX_FILTER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/bounds.h"
#include "src/core/prefix_filter_stats.h"
#include "src/pd/pd256.h"
#include "src/util/aligned.h"
#include "src/util/hash.h"
#include "src/util/serialize.h"

namespace prefixfilter {

struct PrefixFilterOptions {
  // Maximal load factor of the bin table (the paper evaluates 0.95; 1.0
  // reproduces the worst-case analysis setting m = n/k).
  double bin_load_factor = 0.95;
  // Spare capacity slack over E[X] (§4.2.1 suggests 1.1; §6.1.1 shows 1.015
  // suffices for n >= 2^28 * k).
  double spare_slack = 1.1;
  // §4.4: query the spare before forwarding and skip duplicate fingerprints.
  // Off by default, matching the paper's prototype.
  bool avoid_spare_duplicates = false;
  uint64_t seed = 0x9f1e61a5u;
};

// SpareTraits must provide:
//   using FilterType = ...;                      // the spare filter
//   static FilterType Create(uint64_t n_prime, uint64_t seed);
//   static const char* Name();
// where FilterType supports Insert(uint64_t) -> bool, Contains(uint64_t)
// const -> bool, and SpaceBytes() const.  Create() applies the §7.1.1
// failure-avoidance sizing for that spare type.
template <typename SpareTraits>
class PrefixFilter {
 public:
  using Spare = typename SpareTraits::FilterType;

  static constexpr uint32_t kBinCapacity = PD256::kCapacity;   // k = 25
  static constexpr uint32_t kNumLists = PD256::kNumLists;      // 25
  static constexpr uint32_t kMiniFpRange = kNumLists * 256;    // s = 6400

  explicit PrefixFilter(uint64_t capacity, PrefixFilterOptions options = {})
      : capacity_(capacity),
        options_(options),
        num_bins_(NumBins(capacity, options.bin_load_factor)),
        spare_capacity_(analysis::SpareCapacity(capacity, num_bins_,
                                                kBinCapacity,
                                                options.spare_slack)),
        bins_(num_bins_),
        spare_(SpareTraits::Create(spare_capacity_, options.seed ^ 0x51a7eull)),
        hash_(options.seed) {}

  // Inserts a key (assumed not already present, per the incremental-filter
  // contract).  Returns false iff the filter failed, i.e. the spare could
  // not absorb a forwarded fingerprint.
  bool Insert(uint64_t key) {
    const uint64_t h = hash_(key);
    const uint64_t b = HashParts::Bin(h, num_bins_);
    const int q = static_cast<int>(HashParts::Quotient(h, kNumLists));
    const uint8_t r = HashParts::Remainder(h);
    ++stats_.inserts;

    PD256& bin = bins_[b];
    if (bin.Insert(q, r)) return true;  // bin not full: common case

    // Bin full: forward max{FP(x), max of bin} to the spare (Algorithm 1).
    if (!bin.Overflowed()) bin.MarkOverflowed();
    const uint16_t fp_new = MiniFp(q, r);
    const uint16_t fp_max = bin.MaxFingerprint();
    const uint16_t forwarded = fp_new > fp_max ? fp_new : fp_max;
    ++stats_.spare_inserts;
    if (fp_new <= fp_max) {
      ++stats_.evictions;
      bin.ReplaceMax(q, r);
    }
    const uint64_t spare_key = SpareKey(b, forwarded);
    if (options_.avoid_spare_duplicates && spare_.Contains(spare_key)) {
      return true;
    }
    return spare_.Insert(spare_key);
  }

  // Approximate membership: no false negatives; false positives with
  // probability bounded by FprBound().  Implements Algorithm 2: the Prefix
  // Invariant says the fingerprint can only be in the spare if the bin
  // overflowed and fp(x) exceeds the bin maximum.
  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    return ContainsHashed(h, HashParts::Bin(h, num_bins_));
  }

  // Batched membership with software prefetching.  Since almost every query
  // resolves within one cache line (Theorem 2(3)), issuing the bin loads for
  // a whole chunk before resolving any of them overlaps the misses that a
  // one-at-a-time loop would serialize.  Results are written to out[0..n).
  //
  // The uint8_t overload (0/1 results) is the canonical one: callers batching
  // into byte buffers (tests, benches, the service BatchRouter) use it
  // directly instead of aliasing a byte buffer as bool*.
  void ContainsBatch(const uint64_t* keys, size_t count, uint8_t* out) const {
    ContainsBatchImpl(keys, count, out);
  }
  void ContainsBatch(const uint64_t* keys, size_t count, bool* out) const {
    ContainsBatchImpl(keys, count, out);
  }

  uint64_t size() const { return stats_.inserts; }
  uint64_t capacity() const { return capacity_; }
  uint64_t num_bins() const { return num_bins_; }
  uint64_t spare_capacity() const { return spare_capacity_; }

  size_t SpaceBytes() const { return bins_.SizeBytes() + spare_.SpaceBytes(); }
  double BitsPerKey() const {
    return 8.0 * static_cast<double>(SpaceBytes()) /
           static_cast<double>(capacity_);
  }

  // Corollary 31: analytic upper bound on the false positive rate, using the
  // spare's own analytic/empirical rate `spare_fpr` (<= 1 always valid).
  double FprBound(double spare_fpr = 1.0) const {
    return analysis::PrefixFilterFprBound(capacity_, num_bins_, kBinCapacity,
                                          kMiniFpRange, spare_fpr);
  }

  const PrefixFilterStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PrefixFilterStats(); }
  // Zeroes only the query counters (keeps insertion accounting; useful for
  // measuring spare-query fractions at a given load).
  void ResetQueryStats() {
    stats_.queries = 0;
    stats_.spare_queries = 0;
  }
  const Spare& spare() const { return spare_; }

  std::string Name() const {
    return std::string("PF[") + SpareTraits::Name() + "]";
  }

  // Test hook: direct read access to a bin.
  const PD256& bin(uint64_t index) const { return bins_[index]; }

  // --- persistence (the LSM lifecycle: build once, persist next to the run,
  // load on restart) ---------------------------------------------------------

  static constexpr uint32_t kMagic = 0x50465046;  // "PFPF"

  void SerializeTo(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    w.U32(kMagic);
    w.U8(1);
    w.U64(capacity_);
    w.F64(options_.bin_load_factor);
    w.F64(options_.spare_slack);
    w.U8(options_.avoid_spare_duplicates ? 1 : 0);
    w.U64(options_.seed);
    w.U64(stats_.inserts);
    w.U64(stats_.spare_inserts);
    w.U64(stats_.evictions);
    w.Raw(bins_.data(), bins_.SizeBytes());
    spare_.SerializeTo(out);
  }

  static std::optional<PrefixFilter> Deserialize(const uint8_t* data,
                                                 size_t len) {
    ByteReader r(data, len);
    if (r.U32() != kMagic || r.U8() != 1) return std::nullopt;
    PrefixFilterOptions options;
    const uint64_t capacity = r.U64();
    options.bin_load_factor = r.F64();
    options.spare_slack = r.F64();
    options.avoid_spare_duplicates = r.U8() != 0;
    options.seed = r.U64();
    PrefixFilterStats stats;
    stats.inserts = r.U64();
    stats.spare_inserts = r.U64();
    stats.evictions = r.U64();
    if (!r.ok() || capacity == 0 || options.bin_load_factor <= 0 ||
        options.bin_load_factor > 1.0 || options.spare_slack < 1.0) {
      return std::nullopt;
    }
    // Geometry check before allocating: the bin table alone must fit in the
    // remaining payload (corrupted capacity fields would otherwise trigger
    // enormous allocations).
    const uint64_t num_bins = NumBins(capacity, options.bin_load_factor);
    if (num_bins > r.remaining() / sizeof(PD256) + 1 ||
        RoundUpToCacheLine(num_bins * sizeof(PD256)) > r.remaining()) {
      return std::nullopt;
    }
    PrefixFilter f(capacity, options);
    if (!r.Raw(f.bins_.data(), f.bins_.SizeBytes())) return std::nullopt;
    auto spare = Spare::Deserialize(data + (len - r.remaining()), r.remaining());
    if (!spare.has_value()) return std::nullopt;
    f.spare_ = std::move(*spare);
    f.stats_ = stats;
    return f;
  }

 private:
  template <typename Out>
  void ContainsBatchImpl(const uint64_t* keys, size_t count, Out* out) const {
    constexpr size_t kChunk = 16;
    uint64_t hashes[kChunk];
    uint64_t bins[kChunk];
    for (size_t base = 0; base < count; base += kChunk) {
      const size_t chunk = std::min(kChunk, count - base);
      for (size_t i = 0; i < chunk; ++i) {
        hashes[i] = hash_(keys[base + i]);
        bins[i] = HashParts::Bin(hashes[i], num_bins_);
        __builtin_prefetch(&bins_[bins[i]], 0, 1);
      }
      for (size_t i = 0; i < chunk; ++i) {
        out[base + i] = static_cast<Out>(ContainsHashed(hashes[i], bins[i]));
      }
    }
  }

  bool ContainsHashed(uint64_t h, uint64_t b) const {
    const int q = static_cast<int>(HashParts::Quotient(h, kNumLists));
    const uint8_t r = HashParts::Remainder(h);
    ++stats_.queries;
    const PD256& bin = bins_[b];
    if (bin.Overflowed() && MiniFp(q, r) > bin.MaxFingerprint()) {
      ++stats_.spare_queries;
      return spare_.Contains(SpareKey(b, MiniFp(q, r)));
    }
    return bin.Find(q, r);
  }

  static uint64_t NumBins(uint64_t capacity, double load_factor) {
    const double bins = std::ceil(
        static_cast<double>(capacity) / (load_factor * kBinCapacity));
    return std::max<uint64_t>(2, static_cast<uint64_t>(bins));
  }

  static uint16_t MiniFp(int q, uint8_t r) {
    return static_cast<uint16_t>((q << 8) | r);
  }

  // The spare approximates the multiset of full fingerprints; encode
  // (bin, mini-fp) injectively into the 64-bit universe the spare hashes.
  uint64_t SpareKey(uint64_t b, uint16_t fp) const {
    return b * kMiniFpRange + fp;
  }

  uint64_t capacity_;
  PrefixFilterOptions options_;
  uint64_t num_bins_;
  uint64_t spare_capacity_;
  AlignedBuffer<PD256> bins_;
  Spare spare_;
  Dietzfelbinger64 hash_;
  mutable PrefixFilterStats stats_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_PREFIX_FILTER_H_
