// Spare adapters (paper §4.2, §7.1.1).
//
// The spare can be any incremental filter over the fingerprint universe.
// The paper evaluates three: a flexible blocked Bloom filter, a flexible
// 12-bit cuckoo filter, and the TwoChoicer.  Each traits struct below
// applies the corresponding §7.1.1 sizing rule to the analytically derived
// spare dataset size n':
//   * PF[BBF-Flex]: capacity 2n' (halves the spare's false positive rate —
//     a BBF cannot fail, so no failure slack is needed);
//   * PF[CF12-Flex]: capacity n'/0.94 (cuckoo failure-avoidance headroom);
//   * PF[TC]:        capacity n'/0.935 (two-choice failure-avoidance).
#ifndef PREFIXFILTER_SRC_CORE_SPARE_H_
#define PREFIXFILTER_SRC_CORE_SPARE_H_

#include <cmath>
#include <cstdint>

#include "src/filters/blocked_bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/twochoicer.h"

namespace prefixfilter {

struct SpareBbfTraits {
  using FilterType = BlockedBloomFilter;
  static FilterType Create(uint64_t n_prime, uint64_t seed) {
    return BlockedBloomFilter::MakeFlexible(2 * n_prime, /*bits_per_key=*/10.67,
                                            seed);
  }
  static const char* Name() { return "BBF-Flex"; }
};

struct SpareCf12Traits {
  using FilterType = CuckooFilter12;
  static FilterType Create(uint64_t n_prime, uint64_t seed) {
    const uint64_t capacity =
        static_cast<uint64_t>(std::ceil(static_cast<double>(n_prime) / 0.94));
    return CuckooFilter12(capacity, /*flexible=*/true, seed);
  }
  static const char* Name() { return "CF12-Flex"; }
};

struct SpareTcTraits {
  using FilterType = TwoChoicer;
  static FilterType Create(uint64_t n_prime, uint64_t seed) {
    const uint64_t capacity =
        static_cast<uint64_t>(std::ceil(static_cast<double>(n_prime) / 0.935));
    return TwoChoicer(capacity, seed);
  }
  static const char* Name() { return "TC"; }
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_SPARE_H_
