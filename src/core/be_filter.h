// The BE filter (Bercea & Even [6, 7]) — the prefix filter's theoretical
// ancestor, implemented here as an ablation baseline (paper §4.4).
//
// Architecture: the same two-level structure as the prefix filter — a bin
// table of pocket dictionaries plus a spare — but WITHOUT the eviction
// policy.  On insertion into a full bin, the *incoming* fingerprint goes to
// the spare (no comparison with residents), so bins hold an arbitrary
// subset of their fingerprints rather than a maximal prefix.  Consequently a
// negative query can never rule out the spare and must always search both
// levels: two cache lines per query instead of ~1.08.
//
// Differences from the theoretical BE filter that we keep from the prefix
// filter (so the ablation isolates exactly the eviction policy / Prefix
// Invariant):
//   * the spare is a filter over fingerprints, not a dictionary of keys
//     (§4.4 difference (2)/(3); a dictionary spare would be hopeless at
//     practical sizes, as the paper observes);
//   * identical bin table geometry, hashing, and sizing.
#ifndef PREFIXFILTER_SRC_CORE_BE_FILTER_H_
#define PREFIXFILTER_SRC_CORE_BE_FILTER_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "src/analysis/bounds.h"
#include "src/core/prefix_filter_stats.h"
#include "src/pd/pd256.h"
#include "src/util/aligned.h"
#include "src/util/hash.h"

namespace prefixfilter {

template <typename SpareTraits>
class BeFilter {
 public:
  using Spare = typename SpareTraits::FilterType;

  static constexpr uint32_t kBinCapacity = PD256::kCapacity;
  static constexpr uint32_t kNumLists = PD256::kNumLists;
  static constexpr uint32_t kMiniFpRange = kNumLists * 256;

  explicit BeFilter(uint64_t capacity, double bin_load_factor = 0.95,
                    uint64_t seed = 0x9f1e61a5u)
      : capacity_(capacity),
        num_bins_(std::max<uint64_t>(
            2, static_cast<uint64_t>(
                   std::ceil(static_cast<double>(capacity) /
                             (bin_load_factor * kBinCapacity))))),
        spare_capacity_(
            analysis::SpareCapacity(capacity, num_bins_, kBinCapacity, 1.1)),
        bins_(num_bins_),
        spare_(SpareTraits::Create(spare_capacity_, seed ^ 0x51a7eull)),
        hash_(seed) {}

  bool Insert(uint64_t key) {
    const uint64_t h = hash_(key);
    const uint64_t b = HashParts::Bin(h, num_bins_);
    const int q = static_cast<int>(HashParts::Quotient(h, kNumLists));
    const uint8_t r = HashParts::Remainder(h);
    ++stats_.inserts;
    PD256& bin = bins_[b];
    if (bin.Insert(q, r)) return true;
    // Full bin: forward the new fingerprint, no eviction (the BE design).
    ++stats_.spare_inserts;
    return spare_.Insert(SpareKey(b, q, r));
  }

  bool Contains(uint64_t key) const {
    const uint64_t h = hash_(key);
    const uint64_t b = HashParts::Bin(h, num_bins_);
    const int q = static_cast<int>(HashParts::Quotient(h, kNumLists));
    const uint8_t r = HashParts::Remainder(h);
    ++stats_.queries;
    if (bins_[b].Find(q, r)) return true;
    // Without the Prefix Invariant there is no way to skip the spare.
    ++stats_.spare_queries;
    return spare_.Contains(SpareKey(b, q, r));
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t num_bins() const { return num_bins_; }
  size_t SpaceBytes() const { return bins_.SizeBytes() + spare_.SpaceBytes(); }
  const PrefixFilterStats& stats() const { return stats_; }
  std::string Name() const {
    return std::string("BE[") + SpareTraits::Name() + "]";
  }

 private:
  uint64_t SpareKey(uint64_t b, int q, uint8_t r) const {
    return b * kMiniFpRange + static_cast<uint64_t>((q << 8) | r);
  }

  uint64_t capacity_;
  uint64_t num_bins_;
  uint64_t spare_capacity_;
  AlignedBuffer<PD256> bins_;
  Spare spare_;
  Dietzfelbinger64 hash_;
  mutable PrefixFilterStats stats_;
};

}  // namespace prefixfilter

#endif  // PREFIXFILTER_SRC_CORE_BE_FILTER_H_
