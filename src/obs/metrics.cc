#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"

namespace prefixfilter::obs {

namespace internal {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace internal

// --- histogram bucket geometry ----------------------------------------------

uint32_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  const uint32_t msb = HighestSetBit64(value);
  uint32_t exp = msb - kSubBits;  // octave number, 0 for [16, 32)
  if (exp > kOctaves - 1) {
    // Beyond the representable range: clamp into the last bucket.
    return kNumBuckets - 1;
  }
  const uint32_t sub =
      static_cast<uint32_t>((value >> exp) - kSubBuckets);  // [0, 16)
  return kSubBuckets * (exp + 1) + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(uint32_t index) {
  if (index >= kNumBuckets) index = kNumBuckets - 1;
  if (index < kSubBuckets) return index;
  const uint32_t exp = index / kSubBuckets - 1;
  const uint32_t sub = index % kSubBuckets;
  return static_cast<uint64_t>(kSubBuckets + sub) << exp;
}

uint64_t LatencyHistogram::BucketWidth(uint32_t index) {
  if (index >= kNumBuckets) index = kNumBuckets - 1;
  if (index < kSubBuckets) return 1;
  return uint64_t{1} << (index / kSubBuckets - 1);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == ~uint64_t{0} ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) snap.buckets.emplace_back(i, c);
  }
  // Concurrent Record() calls can make count_ lag the bucket array (the
  // bucket is bumped first); re-derive the total so the snapshot is
  // internally consistent for percentile walks.
  uint64_t bucket_total = 0;
  for (const auto& [index, c] : snap.buckets) bucket_total += c;
  snap.count = bucket_total;
  for (uint32_t i = 0; i < kExemplarCells; ++i) {
    const uint64_t trace_id =
        exemplars_[i].trace_id.load(std::memory_order_relaxed);
    if (trace_id == 0) continue;  // cell never wrote an exemplar
    HistogramSnapshot::Exemplar ex;
    ex.value = exemplars_[i].value.load(std::memory_order_relaxed);
    ex.trace_id = trace_id;
    snap.exemplars.push_back(ex);
  }
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
  exemplars.insert(exemplars.end(), other.exemplars.begin(),
                   other.exemplars.end());
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (const auto& [index, c] : buckets) {
    cumulative += c;
    if (cumulative >= rank) {
      const uint64_t upper = LatencyHistogram::BucketLowerBound(index) +
                             LatencyHistogram::BucketWidth(index) - 1;
      // Clamp into the observed [min, max] (min/max are racy best-effort, so
      // order them defensively rather than assuming min <= max).
      const uint64_t hi = std::max(min, max);
      return static_cast<double>(std::min(std::max(upper, min), hi));
    }
  }
  return static_cast<double>(max);
}

// --- registry ----------------------------------------------------------------

namespace {

// Canonical map key: kind byte, name, then sorted label pairs, separated by
// 0x1f (a byte that cannot appear in sane metric names).
std::string EntryKey(MetricKind kind, const std::string& name,
                     const MetricsRegistry::Labels& labels) {
  std::string key;
  key.reserve(name.size() + 16);
  key.push_back(static_cast<char>('0' + static_cast<int>(kind)));
  key.push_back('\x1f');
  key += name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key += k;
    key.push_back('\x1f');
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  Labels&& labels,
                                                  MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = EntryKey(kind, name, labels);
  MutexLock guard(mutex_);
  Entry& entry = entries_[key];
  if (entry.name.empty()) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  }
  return entry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  return GetEntry(name, std::move(labels), MetricKind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  return GetEntry(name, std::move(labels), MetricKind::kGauge).gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                Labels labels) {
  return GetEntry(name, std::move(labels), MetricKind::kHistogram)
      .histogram.get();
}

uint64_t MetricsRegistry::AddCollector(CollectFn fn) {
#ifdef PF_OBS_DISABLED
  (void)fn;
  return 0;
#else
  MutexLock guard(mutex_);
  const uint64_t id = next_collector_id_++;
  collectors_[id] = std::move(fn);
  return id;
#endif
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  if (id == 0) return;
  // Holding the mutex here serializes removal against Collect(), so once
  // RemoveCollector returns the callback can never run again — the owner's
  // destructor may safely free the state it reads.
  MutexLock guard(mutex_);
  collectors_.erase(id);
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> samples;
#ifdef PF_OBS_DISABLED
  return samples;
#else
  {
    MutexLock guard(mutex_);
    samples.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      MetricSample s;
      s.name = entry.name;
      s.labels = entry.labels;
      s.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          s.value = static_cast<int64_t>(entry.counter->Value());
          break;
        case MetricKind::kGauge:
          s.value = entry.gauge->Value();
          break;
        case MetricKind::kHistogram:
          s.hist = entry.histogram->Snapshot();
          break;
      }
      samples.push_back(std::move(s));
    }
    for (const auto& [id, fn] : collectors_) fn(&samples);
  }
  for (MetricSample& s : samples) std::sort(s.labels.begin(), s.labels.end());
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.labels != b.labels) return a.labels < b.labels;
              return a.kind < b.kind;
            });
  // Aggregate duplicate series (several instances sharing one registry).
  std::vector<MetricSample> out;
  out.reserve(samples.size());
  for (MetricSample& s : samples) {
    if (!out.empty() && out.back().name == s.name &&
        out.back().labels == s.labels && out.back().kind == s.kind) {
      if (s.kind == MetricKind::kHistogram) {
        out.back().hist.Merge(s.hist);
      } else {
        out.back().value += s.value;
      }
    } else {
      out.push_back(std::move(s));
    }
  }
  return out;
#endif
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const MetricSample* FindSample(const std::vector<MetricSample>& samples,
                               const std::string& name,
                               const std::string& label_key,
                               const std::string& label_value) {
  for (const MetricSample& s : samples) {
    if (s.name != name) continue;
    if (label_key.empty()) return &s;
    for (const auto& [k, v] : s.labels) {
      if (k == label_key && v == label_value) return &s;
    }
  }
  return nullptr;
}

}  // namespace prefixfilter::obs
