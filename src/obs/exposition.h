// Exposition formats for MetricsRegistry snapshots.
//
// Two consumers, one sample model:
//  * the STATS v2 wire payload carries EncodeMetricSamples bytes inside the
//    existing binary protocol (ByteWriter/ByteReader framing, bounds-checked
//    like every other payload parser in src/net/protocol.cc);
//  * the HTTP /metrics endpoint renders the same samples as Prometheus text
//    exposition format (dotted names become underscore-separated with a
//    "pf_" prefix; histograms expand to cumulative _bucket/_sum/_count
//    series with integer `le` upper bounds in nanoseconds).
#ifndef PREFIXFILTER_SRC_OBS_EXPOSITION_H_
#define PREFIXFILTER_SRC_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/serialize.h"

namespace prefixfilter::obs {

// Appends a length-delimited binary encoding of `samples` to *out.
void EncodeMetricSamples(const std::vector<MetricSample>& samples,
                         std::vector<uint8_t>* out);

// Decodes samples appended by EncodeMetricSamples from *r.  False on
// malformed input (reader poisoned or bounds violated); *out untouched then.
bool DecodeMetricSamples(ByteReader* r, std::vector<MetricSample>* out);

// Renders samples as Prometheus text exposition format (version 0.0.4).
std::string RenderPrometheusText(const std::vector<MetricSample>& samples);

// "net.server.bytes.in" -> "net_server_bytes_in" (any byte outside
// [A-Za-z0-9_] becomes '_'); the renderer prepends the "pf_" namespace.
std::string PrometheusName(const std::string& dotted);

}  // namespace prefixfilter::obs

#endif  // PREFIXFILTER_SRC_OBS_EXPOSITION_H_
