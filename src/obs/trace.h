// Request-scoped tracing: the per-request counterpart to the aggregate
// metrics of src/obs/metrics.h.
//
// A Trace is a fixed-size, trivially-copyable record of one request's walk
// through the pipeline: identity (trace id, request id, opcode, connection,
// event loop), wall-clock bounds, and up to kMaxTraceSpans stage spans
// (decode, merge, queue wait, worker exec, per-shard probe, completion
// transit, response write).  Fixed size is deliberate — traces move through
// the lock-free seqlock rings of trace_sink.h as raw words, so they must
// carry no heap state.
//
// The types here are always defined, even under -DPF_OBS=OFF: the wire
// codec in src/net/protocol.cc (TRACES opcode) must compile in every
// configuration.  Only the *mutating* paths compile out: ActiveTrace::
// AddSpan collapses to nothing and CurrentTrace() is a constant nullptr, so
// a disabled build carries no thread-local reads and no stores.
//
// Sampling model (decided by the caller, recorded here): head-based
// probabilistic sampling marks a trace kTraceSampled at admission; the
// tail-capture path marks requests slower than the server's threshold
// kTraceSlow at completion.  Either flag makes the trace worth retaining.
#ifndef PREFIXFILTER_SRC_OBS_TRACE_H_
#define PREFIXFILTER_SRC_OBS_TRACE_H_

#include <cstdint>
#include <type_traits>

namespace prefixfilter::obs {

// Pipeline stages a span can label.  Wire-stable: values are serialized by
// the TRACES codec, so only append.
enum class TraceStage : uint8_t {
  kReadDecode = 0,  // socket read + frame decode on the event loop
  kMerge = 1,       // pipelined QUERY frames coalescing into one batch
  kQueueWait = 2,   // service queue wait (enqueue -> worker pickup)
  kExec = 3,        // worker filter execution
  kShardProbe = 4,  // one shard group's probe under its shard lock
  kCompletion = 5,  // completion-queue transit (worker done -> loop drain)
  kWrite = 6,       // response encode + socket write on the event loop
};

inline constexpr uint32_t kNumTraceStages = 7;

// Stable lower-case name for JSON/CLI output ("decode", "queue_wait", ...).
const char* TraceStageName(TraceStage stage);

struct TraceSpan {
  uint8_t stage = 0;  // TraceStage
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  // Stage-specific payload: kMerge = frames merged into the batch,
  // kShardProbe = shard index << 32 | keys probed, otherwise 0.
  uint64_t detail = 0;
};

// Spans per trace: 16 shard-probe spans (one per shard group of a
// 16-shard batch) plus every pipeline stage fit without dropping.
inline constexpr uint32_t kMaxTraceSpans = 28;

// Trace::flags bits.
inline constexpr uint8_t kTraceSampled = 1u << 0;  // head-sampled at admission
inline constexpr uint8_t kTraceSlow = 1u << 1;     // exceeded the slow threshold

struct Trace {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint64_t conn_id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t loop = 0;        // owning event-loop index
  uint32_t key_count = 0;   // keys carried by the request (merged batch)
  uint32_t frames = 0;      // frames merged into this request's batch
  uint32_t spans_dropped = 0;
  uint32_t span_count = 0;
  uint8_t opcode = 0;       // net::Opcode of the request
  uint8_t flags = 0;        // kTraceSampled | kTraceSlow

  bool sampled() const { return (flags & kTraceSampled) != 0; }
  bool slow() const { return (flags & kTraceSlow) != 0; }

  TraceSpan spans[kMaxTraceSpans];
};
static_assert(std::is_trivially_copyable_v<Trace>,
              "traces move through the seqlock rings as raw words");
static_assert(sizeof(Trace) % 8 == 0,
              "trace_sink.h stores traces as arrays of atomic u64 words");

// A trace under construction.  Written by exactly one thread at a time —
// the event loop hands it to a worker through the service queue and gets it
// back through the completion queue, each hop ordered by a mutex — so the
// spans need no internal synchronization.
struct ActiveTrace {
  Trace t;

  void AddSpan(TraceStage stage, uint64_t start_ns, uint64_t end_ns,
               uint64_t detail = 0) {
#ifndef PF_OBS_DISABLED
    if (t.span_count < kMaxTraceSpans) {
      TraceSpan& span = t.spans[t.span_count++];
      span.stage = static_cast<uint8_t>(stage);
      span.start_ns = start_ns;
      span.end_ns = end_ns;
      span.detail = detail;
    } else {
      ++t.spans_dropped;
    }
#else
    (void)stage;
    (void)start_ns;
    (void)end_ns;
    (void)detail;
#endif
  }
};

// Thread-local current trace, so deep layers (ShardedFilter's per-shard
// probes) can record spans without widening the AnyFilter interface.  Set
// by FilterService around filter execution; nullptr everywhere else.
#ifndef PF_OBS_DISABLED
ActiveTrace* CurrentTrace();
void SetCurrentTrace(ActiveTrace* trace);
#else
inline ActiveTrace* CurrentTrace() { return nullptr; }
inline void SetCurrentTrace(ActiveTrace*) {}
#endif

// RAII guard: installs `trace` as the thread's current trace for a scope.
class ScopedCurrentTrace {
 public:
  explicit ScopedCurrentTrace(ActiveTrace* trace) { SetCurrentTrace(trace); }
  ~ScopedCurrentTrace() { SetCurrentTrace(nullptr); }
  ScopedCurrentTrace(const ScopedCurrentTrace&) = delete;
  ScopedCurrentTrace& operator=(const ScopedCurrentTrace&) = delete;
};

}  // namespace prefixfilter::obs

#endif  // PREFIXFILTER_SRC_OBS_TRACE_H_
