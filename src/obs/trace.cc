#include "src/obs/trace.h"

namespace prefixfilter::obs {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kReadDecode:
      return "decode";
    case TraceStage::kMerge:
      return "merge";
    case TraceStage::kQueueWait:
      return "queue_wait";
    case TraceStage::kExec:
      return "exec";
    case TraceStage::kShardProbe:
      return "shard_probe";
    case TraceStage::kCompletion:
      return "completion";
    case TraceStage::kWrite:
      return "write";
  }
  return "unknown";
}

#ifndef PF_OBS_DISABLED
namespace {
thread_local ActiveTrace* g_current_trace = nullptr;
}  // namespace

ActiveTrace* CurrentTrace() { return g_current_trace; }

void SetCurrentTrace(ActiveTrace* trace) { g_current_trace = trace; }
#endif

}  // namespace prefixfilter::obs
