// Low-overhead in-process metrics: counters, gauges, latency histograms,
// and the process-wide registry behind the STATS v2 / /metrics exposition.
//
// Design constraints (ROADMAP: production-scale membership service):
//  * Hot-path updates must be cheap enough to stay always-on — a counter
//    increment is one relaxed fetch_add on a thread-striped cache line, a
//    histogram record is one array-index computation plus two relaxed
//    fetch_adds.  No locks, no allocation, no syscalls on the update path.
//  * Reads (scrapes) are rare and may be linear: Value() sums the stripes,
//    Snapshot() walks the bucket array.  Scrape-time cost never shows up in
//    request latency.
//  * Histograms are fixed-footprint and mergeable: log-linear HDR-style
//    buckets (16 sub-buckets per power-of-two octave, exact below 16) give
//    a bounded ~6% relative bucket error at every magnitude, so p50..p999
//    extraction works identically on live instruments, wire-decoded
//    snapshots, and merged snapshots.
//
// Compile-out: configuring with -DPF_OBS=OFF defines PF_OBS_DISABLED and
// turns every update into an inline no-op (NowNanos stops reading the
// clock), which is how the "within 3% of instrumentation compiled out"
// acceptance bound is measured.  obs::kEnabled lets tests and exposition
// paths skip themselves in that configuration.
#ifndef PREFIXFILTER_SRC_OBS_METRICS_H_
#define PREFIXFILTER_SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/thread_annotations.h"

namespace prefixfilter::obs {

#ifdef PF_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Monotonic nanoseconds for latency measurement.  Returns 0 when the
// subsystem is compiled out so disabled builds do not pay the clock read.
inline uint64_t NowNanos() {
#ifdef PF_OBS_DISABLED
  return 0;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace internal {
// Stable per-thread stripe index: threads are assigned round-robin at first
// use, so up to kStripes concurrent writers touch distinct cache lines.
size_t ThreadStripe();
}  // namespace internal

// Monotonically increasing event count.  Thread-striped: concurrent writers
// land on distinct cache lines (modulo thread count), readers sum on demand.
class Counter {
 public:
  static constexpr size_t kStripes = 16;  // power of two

  void Add(uint64_t delta = 1) {
#ifndef PF_OBS_DISABLED
    stripes_[internal::ThreadStripe() & (kStripes - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  Stripe stripes_[kStripes];
};

// Instantaneous signed level (queue depth, active connections).  A single
// atomic: gauges move far less often than counters and must read exactly.
class Gauge {
 public:
  void Add(int64_t delta) {
#ifndef PF_OBS_DISABLED
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void Set(int64_t value) {
#ifndef PF_OBS_DISABLED
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time copy of a histogram, detached from its atomics: mergeable,
// wire-encodable, and the unit percentile extraction operates on.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  // Sparse (bucket index, count) pairs in ascending index order.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
  // Best-effort trace exemplars: the most recent (value, trace id) pair per
  // octave that went through RecordWithExemplar — the jump-off point from a
  // histogram's tail to the /traces timeline that produced it.  NOT part of
  // the STATS wire encoding (old decoders require the payload to end after
  // the buckets); the Prometheus text exposition renders them as comments.
  struct Exemplar {
    uint64_t value = 0;
    uint64_t trace_id = 0;
  };
  std::vector<Exemplar> exemplars;

  void Merge(const HistogramSnapshot& other);
  // Value at quantile q in [0, 1]: the upper edge of the bucket holding the
  // ceil(q * count)-th observation, clamped into [min, max].  Exact for
  // values < 16; within one sub-bucket (~6%) above.  0 when empty.
  double Percentile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

// Fixed-footprint log-linear histogram of non-negative 64-bit values
// (nanoseconds by convention).  Values 0..15 get exact unit buckets; above
// that each power-of-two octave splits into 16 sub-buckets, out to ~2^43
// (~2.4 hours in ns); larger values clamp into the last bucket.
class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;  // 16
  static constexpr uint32_t kOctaves = 39;                 // exp 0..38
  static constexpr uint32_t kNumBuckets = kSubBuckets * (kOctaves + 1);  // 640

  static uint32_t BucketIndex(uint64_t value);
  // Smallest value mapping to bucket `index` (indices >= kNumBuckets clamp).
  static uint64_t BucketLowerBound(uint32_t index);
  // Number of distinct values the bucket covers.
  static uint64_t BucketWidth(uint32_t index);

  void Record(uint64_t value) {
#ifndef PF_OBS_DISABLED
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Best-effort extrema: a lost CAS race under-reports by one sample at
    // worst, which is fine for a diagnostic min/max.
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  // Record() plus an exemplar: remembers (value, trace_id) in the octave
  // cell the value lands in, so a scrape can point from a latency bucket to
  // the retained trace that produced it.  Best-effort under concurrency —
  // two racing writers may pair one's value with the other's trace id; an
  // exemplar is a debugging pointer, not an accounting record.
  void RecordWithExemplar(uint64_t value, uint64_t trace_id) {
#ifndef PF_OBS_DISABLED
    Record(value);
    ExemplarCell& cell = exemplars_[BucketIndex(value) >> kSubBits];
    cell.value.store(value, std::memory_order_relaxed);
    cell.trace_id.store(trace_id, std::memory_order_relaxed);
#else
    (void)value;
    (void)trace_id;
#endif
  }

  HistogramSnapshot Snapshot() const;

 private:
  // One exemplar cell per octave (the 0..15 unit buckets share cell 0).
  static constexpr uint32_t kExemplarCells = kOctaves + 1;

  struct ExemplarCell {
    std::atomic<uint64_t> value{0};
    std::atomic<uint64_t> trace_id{0};
  };

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  ExemplarCell exemplars_[kExemplarCells];
};

// Records NowNanos() elapsed between construction and destruction into a
// histogram; a null histogram (instrumentation detached) records nothing.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* h) : h_(h), start_(NowNanos()) {}
  ~ScopedLatency() {
    if (h_ != nullptr) h_->Record(NowNanos() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram* h_;
  uint64_t start_;
};

enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

// One scraped series: a dotted name, sorted labels, and either a scalar
// value (counter/gauge) or a histogram snapshot.
struct MetricSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;         // counter / gauge
  HistogramSnapshot hist;    // histogram
};

// Process-wide instrument directory.  Get* registers on first use and
// returns the same instrument for the same (kind, name, labels) thereafter
// (instruments are never destroyed, so returned pointers stay valid for the
// registry's lifetime — callers cache them at construction and update
// lock-free).  Collectors are callbacks evaluated only at scrape time, the
// zero-hot-path-cost way to expose counters a subsystem already maintains
// (FilterServiceStats, ShardStats).
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;
  using CollectFn = std::function<void(std::vector<MetricSample>*)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  LatencyHistogram* GetHistogram(const std::string& name, Labels labels = {});

  // Registers a scrape-time callback; returns an id for RemoveCollector.
  // The callback must not call back into the registry.  Owners MUST remove
  // their collector before the state it reads dies (destructors do).
  uint64_t AddCollector(CollectFn fn) PF_EXCLUDES(mutex_);
  void RemoveCollector(uint64_t id) PF_EXCLUDES(mutex_);

  // Evaluates every instrument and collector into one sorted sample list.
  // Duplicate (name, labels, kind) series — e.g. two service instances
  // sharing the registry — are aggregated (sums for scalars, bucket merge
  // for histograms).  Empty when the subsystem is compiled out.
  std::vector<MetricSample> Collect() const PF_EXCLUDES(mutex_);

  // The default process-wide registry.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& GetEntry(const std::string& name, Labels&& labels, MetricKind kind)
      PF_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  // key: kind + name + sorted labels.  Entries are created under the lock
  // but the instruments they own are updated lock-free (atomics); the lock
  // guards the maps, not the instrument payloads.
  std::map<std::string, Entry> entries_ PF_GUARDED_BY(mutex_);
  std::map<uint64_t, CollectFn> collectors_ PF_GUARDED_BY(mutex_);
  uint64_t next_collector_id_ PF_GUARDED_BY(mutex_) = 1;
};

// Finds a sample by name (and optionally one label pair) in a Collect()
// result; nullptr when absent.  Shared by tests, pf_stat, and the loadgen.
const MetricSample* FindSample(const std::vector<MetricSample>& samples,
                               const std::string& name,
                               const std::string& label_key = std::string(),
                               const std::string& label_value = std::string());

}  // namespace prefixfilter::obs

#endif  // PREFIXFILTER_SRC_OBS_METRICS_H_
