// Lock-free bounded retention for captured traces.
//
// TraceRing is a fixed-capacity ring of per-slot seqlocks whose payload is
// stored entirely in std::atomic<uint64_t> words: writers memcpy the Trace
// into a local word buffer and store the words relaxed between an odd/even
// seq transition; readers load the words relaxed and accept the copy only
// when the seq survives unchanged across an acquire fence.  Every byte of
// shared state is accessed atomically, so the ring is data-race-free by
// construction (TSan-clean without annotations), and a writer never blocks:
// colliding with a slot another writer holds counts a drop instead of
// spinning — the event loop and the worker pool must never wait on
// telemetry.
//
// TraceSink pairs two rings: head-sampled traces and slow-threshold
// captures are retained separately, so a flood of sampled traffic can never
// evict the rare slow request the tail-capture path exists to keep.
// Memory is bounded at 2 * capacity * sizeof(Trace) (~1KB per slot).
//
// RenderTracesJson turns a snapshot into the `GET /traces` JSON document
// (src/util/json), newest-write-wins per slot, slow captures first.
#ifndef PREFIXFILTER_SRC_OBS_TRACE_SINK_H_
#define PREFIXFILTER_SRC_OBS_TRACE_SINK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace prefixfilter::obs {

class TraceRing {
 public:
  // Capacity is rounded up to a power of two; 0 means the default (256).
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Publishes a copy of `trace`; never blocks.  A slot collision with a
  // concurrent writer drops the trace (counted).  No-op under PF_OBS=OFF.
  void Push(const Trace& trace);

  // Appends every consistently-readable retained trace to *out.  Slots a
  // writer is mid-update on are skipped, not waited for.
  void Snapshot(std::vector<Trace>* out) const;

  size_t capacity() const { return mask_ + 1; }
  uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kWords = sizeof(Trace) / sizeof(uint64_t);

  struct Slot {
    // Even = stable (0 = never written), odd = a writer owns the slot.
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> words[kWords] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> dropped_{0};
};

struct TraceSinkStats {
  uint64_t sampled = 0;  // traces retained via head sampling
  uint64_t slow = 0;     // traces retained via the slow threshold
  uint64_t dropped = 0;  // writer collisions (both rings)
};

class TraceSink {
 public:
  // One capacity for each of the two rings (0 = default 256 each).
  explicit TraceSink(size_t capacity_per_ring);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Routes on Trace::slow(): slow captures land in their own ring so
  // sampled traffic cannot evict them.  No-op under PF_OBS=OFF.
  void Push(const Trace& trace);

  // Slow captures first, then sampled traces (the order /traces renders).
  std::vector<Trace> Snapshot() const;

  TraceSinkStats stats() const;

 private:
  TraceRing sampled_;
  TraceRing slow_;
};

// JSON document for `GET /traces` and the pf_stat --traces view: counters
// plus one object per trace with its span timeline.
std::string RenderTracesJson(const std::vector<Trace>& traces,
                             const TraceSinkStats& stats);

}  // namespace prefixfilter::obs

#endif  // PREFIXFILTER_SRC_OBS_TRACE_SINK_H_
