#include "src/obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace prefixfilter::obs {
namespace {

// Caps mirroring the protocol's stance: bound every count against the bytes
// actually present before allocating.
constexpr uint32_t kMaxSamples = 1u << 16;
constexpr uint32_t kMaxLabels = 64;
constexpr size_t kMaxNameLen = 256;

// Minimum wire footprint of one sample: name length (4) + kind (1) +
// label count (4) + scalar value (8).
constexpr size_t kMinSampleBytes = 17;

void AppendEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

void AppendLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key, const std::string& extra_value,
    std::string* out) {
  if (labels.empty() && extra_key.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out->push_back(',');
    first = false;
    *out += PrometheusName(k);
    *out += "=\"";
    AppendEscaped(v, out);
    out->push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out->push_back(',');
    *out += extra_key;
    *out += "=\"";
    // Escaped like every other label value (0.0.4 spec: backslash, quote,
    // newline).  The internal "le" values are digits/+Inf, but callers may
    // pass arbitrary strings and an unescaped quote would corrupt the whole
    // exposition line.
    AppendEscaped(extra_value, out);
    out->push_back('"');
  }
  out->push_back('}');
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

// Fixed-width hex, matching the trace-id rendering of GET /traces so the
// ids grep across both outputs.
void AppendHex16(uint64_t v, std::string* out) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  *out += buf;
}

}  // namespace

std::string PrometheusName(const std::string& dotted) {
  std::string out;
  out.reserve(dotted.size());
  for (char c : dotted) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

void EncodeMetricSamples(const std::vector<MetricSample>& samples,
                         std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.U32(static_cast<uint32_t>(samples.size()));
  for (const MetricSample& s : samples) {
    w.Str(s.name);
    w.U8(static_cast<uint8_t>(s.kind));
    w.U32(static_cast<uint32_t>(s.labels.size()));
    for (const auto& [k, v] : s.labels) {
      w.Str(k);
      w.Str(v);
    }
    if (s.kind == MetricKind::kHistogram) {
      w.U64(s.hist.count);
      w.U64(s.hist.sum);
      w.U64(s.hist.min);
      w.U64(s.hist.max);
      w.U32(static_cast<uint32_t>(s.hist.buckets.size()));
      for (const auto& [index, count] : s.hist.buckets) {
        w.U32(index);
        w.U64(count);
      }
    } else {
      w.U64(static_cast<uint64_t>(s.value));
    }
  }
}

bool DecodeMetricSamples(ByteReader* r, std::vector<MetricSample>* out) {
  const uint32_t num_samples = r->U32();
  if (!r->ok() || num_samples > kMaxSamples ||
      static_cast<size_t>(num_samples) * kMinSampleBytes > r->remaining()) {
    return false;
  }
  std::vector<MetricSample> samples;
  samples.reserve(num_samples);
  for (uint32_t i = 0; i < num_samples; ++i) {
    MetricSample s;
    s.name = r->Str(kMaxNameLen);
    const uint8_t kind = r->U8();
    if (kind > static_cast<uint8_t>(MetricKind::kHistogram)) return false;
    s.kind = static_cast<MetricKind>(kind);
    const uint32_t num_labels = r->U32();
    if (!r->ok() || num_labels > kMaxLabels) return false;
    s.labels.reserve(num_labels);
    for (uint32_t l = 0; l < num_labels; ++l) {
      std::string k = r->Str(kMaxNameLen);
      std::string v = r->Str(kMaxNameLen);
      s.labels.emplace_back(std::move(k), std::move(v));
    }
    if (s.kind == MetricKind::kHistogram) {
      s.hist.count = r->U64();
      s.hist.sum = r->U64();
      s.hist.min = r->U64();
      s.hist.max = r->U64();
      const uint32_t num_buckets = r->U32();
      // 12 bytes per (index, count) pair must fit in what remains.
      if (!r->ok() || num_buckets > LatencyHistogram::kNumBuckets ||
          static_cast<size_t>(num_buckets) * 12 > r->remaining()) {
        return false;
      }
      s.hist.buckets.reserve(num_buckets);
      uint32_t prev_index = 0;
      for (uint32_t b = 0; b < num_buckets; ++b) {
        const uint32_t index = r->U32();
        const uint64_t count = r->U64();
        // Indices must be in-range and strictly ascending (the snapshot
        // invariant percentile walks rely on).
        if (index >= LatencyHistogram::kNumBuckets ||
            (b > 0 && index <= prev_index)) {
          return false;
        }
        prev_index = index;
        s.hist.buckets.emplace_back(index, count);
      }
    } else {
      s.value = static_cast<int64_t>(r->U64());
    }
    if (!r->ok()) return false;
    samples.push_back(std::move(s));
  }
  *out = std::move(samples);
  return true;
}

std::string RenderPrometheusText(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(4096);
  std::string last_typed;  // one # TYPE line per metric name
  for (const MetricSample& s : samples) {
    const std::string name = "pf_" + PrometheusName(s.name);
    if (name != last_typed) {
      out += "# TYPE ";
      out += name;
      switch (s.kind) {
        case MetricKind::kCounter:
          out += " counter\n";
          break;
        case MetricKind::kGauge:
          out += " gauge\n";
          break;
        case MetricKind::kHistogram:
          out += " histogram\n";
          break;
      }
      last_typed = name;
    }
    if (s.kind == MetricKind::kHistogram) {
      uint64_t cumulative = 0;
      for (const auto& [index, count] : s.hist.buckets) {
        cumulative += count;
        const uint64_t upper = LatencyHistogram::BucketLowerBound(index) +
                               LatencyHistogram::BucketWidth(index) - 1;
        out += name;
        out += "_bucket";
        std::string le;
        AppendU64(upper, &le);
        AppendLabels(s.labels, "le", le, &out);
        out.push_back(' ');
        AppendU64(cumulative, &out);
        out.push_back('\n');
      }
      out += name;
      out += "_bucket";
      AppendLabels(s.labels, "le", "+Inf", &out);
      out.push_back(' ');
      AppendU64(s.hist.count, &out);
      out.push_back('\n');
      out += name;
      out += "_sum";
      AppendLabels(s.labels, std::string(), std::string(), &out);
      out.push_back(' ');
      AppendU64(s.hist.sum, &out);
      out.push_back('\n');
      out += name;
      out += "_count";
      AppendLabels(s.labels, std::string(), std::string(), &out);
      out.push_back(' ');
      AppendU64(s.hist.count, &out);
      out.push_back('\n');
      // Trace exemplars as comments: the 0.0.4 text format has no exemplar
      // syntax (that is OpenMetrics), and comment lines pass through every
      // 0.0.4 parser untouched.  Each pairs a recorded value with the trace
      // id to look up under GET /traces.
      for (const auto& ex : s.hist.exemplars) {
        out += "# exemplar ";
        out += name;
        AppendLabels(s.labels, std::string(), std::string(), &out);
        out += " value=";
        AppendU64(ex.value, &out);
        out += " trace_id=";
        AppendHex16(ex.trace_id, &out);
        out.push_back('\n');
      }
    } else {
      out += name;
      AppendLabels(s.labels, std::string(), std::string(), &out);
      out.push_back(' ');
      AppendI64(s.value, &out);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace prefixfilter::obs
