#include "src/obs/trace_sink.h"

#include <cstdio>
#include <cstring>

#include "src/util/json.h"

namespace prefixfilter::obs {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr size_t kDefaultCapacity = 256;

// Trace ids render as fixed-width hex strings: JSON numbers are doubles and
// would silently round 64-bit ids.
std::string HexId(uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(new Slot[RoundUpPow2(capacity == 0 ? kDefaultCapacity
                                                : capacity)]),
      mask_(RoundUpPow2(capacity == 0 ? kDefaultCapacity : capacity) - 1) {}

void TraceRing::Push(const Trace& trace) {
#ifndef PF_OBS_DISABLED
  uint64_t words[kWords];
  std::memcpy(words, &trace, sizeof(Trace));
  const uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1u) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    // Another writer owns the slot; drop rather than wait.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
#else
  (void)trace;
#endif
}

void TraceRing::Snapshot(std::vector<Trace>* out) const {
#ifndef PF_OBS_DISABLED
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const uint32_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1u) != 0) continue;  // never written / in flight
    uint64_t words[kWords];
    for (size_t w = 0; w < kWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    // The fence orders the word loads before the seq re-check: an unchanged
    // seq proves no writer touched the slot while we copied.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
    Trace trace;
    std::memcpy(&trace, words, sizeof(Trace));
    out->push_back(trace);
  }
#else
  (void)out;
#endif
}

TraceSink::TraceSink(size_t capacity_per_ring)
    : sampled_(capacity_per_ring), slow_(capacity_per_ring) {}

void TraceSink::Push(const Trace& trace) {
#ifndef PF_OBS_DISABLED
  if (trace.slow()) {
    slow_.Push(trace);
  } else {
    sampled_.Push(trace);
  }
#else
  (void)trace;
#endif
}

std::vector<Trace> TraceSink::Snapshot() const {
  std::vector<Trace> out;
  slow_.Snapshot(&out);
  sampled_.Snapshot(&out);
  return out;
}

TraceSinkStats TraceSink::stats() const {
  TraceSinkStats stats;
  stats.sampled = sampled_.pushed();
  stats.slow = slow_.pushed();
  stats.dropped = sampled_.dropped() + slow_.dropped();
  return stats;
}

std::string RenderTracesJson(const std::vector<Trace>& traces,
                             const TraceSinkStats& stats) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("sampled_total", stats.sampled);
  doc.Set("slow_total", stats.slow);
  doc.Set("dropped_total", stats.dropped);
  doc.Set("trace_count", static_cast<uint64_t>(traces.size()));
  json::Value list = json::Value::MakeArray();
  for (const Trace& t : traces) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("trace_id", HexId(t.trace_id));
    entry.Set("request_id", t.request_id);
    entry.Set("opcode", static_cast<uint64_t>(t.opcode));
    entry.Set("loop", static_cast<uint64_t>(t.loop));
    entry.Set("conn_id", t.conn_id);
    entry.Set("sampled", t.sampled());
    entry.Set("slow", t.slow());
    entry.Set("start_ns", t.start_ns);
    entry.Set("duration_ns", t.end_ns >= t.start_ns ? t.end_ns - t.start_ns
                                                    : uint64_t{0});
    entry.Set("key_count", static_cast<uint64_t>(t.key_count));
    entry.Set("frames", static_cast<uint64_t>(t.frames));
    entry.Set("spans_dropped", static_cast<uint64_t>(t.spans_dropped));
    json::Value spans = json::Value::MakeArray();
    const uint32_t span_count =
        t.span_count <= kMaxTraceSpans ? t.span_count : kMaxTraceSpans;
    for (uint32_t i = 0; i < span_count; ++i) {
      const TraceSpan& s = t.spans[i];
      json::Value span = json::Value::MakeObject();
      span.Set("stage", TraceStageName(static_cast<TraceStage>(s.stage)));
      // Span times are offsets from the trace start: small, stable numbers
      // that survive the double-typed JSON number representation.
      span.Set("start_ns",
               s.start_ns >= t.start_ns ? s.start_ns - t.start_ns
                                        : uint64_t{0});
      span.Set("duration_ns", s.end_ns >= s.start_ns ? s.end_ns - s.start_ns
                                                     : uint64_t{0});
      if (s.detail != 0) span.Set("detail", s.detail);
      spans.AsArray().push_back(std::move(span));
    }
    entry.Set("spans", std::move(spans));
    list.AsArray().push_back(std::move(entry));
  }
  doc.Set("traces", std::move(list));
  return doc.Dump(2) + "\n";
}

}  // namespace prefixfilter::obs
