// Tests for the wire protocol (src/net/protocol.h): frame round-trips under
// arbitrary byte-stream fragmentation, payload parser bounds, and fuzz-ish
// malformed/truncated/corrupted-frame decoding (the decoder must reject,
// never crash or over-read).
#include "src/net/protocol.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter::net {
namespace {

// Feeds `bytes` to a decoder in `step`-sized slices and pops all frames.
std::vector<Frame> DecodeAll(const std::vector<uint8_t>& bytes, size_t step,
                             DecodeStatus* final_status) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  size_t fed = 0;
  *final_status = DecodeStatus::kNeedMore;
  while (fed < bytes.size() || *final_status == DecodeStatus::kFrame) {
    if (fed < bytes.size()) {
      const size_t n = std::min(step, bytes.size() - fed);
      decoder.Feed(bytes.data() + fed, n);
      fed += n;
    }
    Frame frame;
    while ((*final_status = decoder.Next(&frame)) == DecodeStatus::kFrame) {
      frames.push_back(frame);
    }
    if (*final_status != DecodeStatus::kNeedMore) break;  // sticky error
  }
  return frames;
}

TEST(Protocol, Crc32KnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Protocol, KeyBatchRoundTripsUnderAnyFragmentation) {
  const std::vector<uint64_t> keys = RandomKeys(1000, 7);
  std::vector<uint8_t> bytes;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, 42, keys.data(), keys.size(),
                        &bytes);
  EncodeKeyBatchRequest(Opcode::kInsertBatch, 43, keys.data(), 1, &bytes);
  EncodeEmptyRequest(Opcode::kStats, 44, &bytes);

  // Whole-buffer, byte-at-a-time, and prime-sized feeds must all agree.
  for (const size_t step : {bytes.size(), size_t{1}, size_t{7}, size_t{4096}}) {
    DecodeStatus status;
    const std::vector<Frame> frames = DecodeAll(bytes, step, &status);
    EXPECT_EQ(status, DecodeStatus::kNeedMore);
    ASSERT_EQ(frames.size(), 3u) << "step " << step;

    EXPECT_EQ(frames[0].opcode, static_cast<uint8_t>(Opcode::kQueryBatch));
    EXPECT_EQ(frames[0].request_id, 42u);
    EXPECT_FALSE(frames[0].is_response());
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(DecodeKeyBatchPayload(frames[0].payload.data(),
                                      frames[0].payload.size(), &decoded));
    EXPECT_EQ(decoded, keys);

    ASSERT_TRUE(DecodeKeyBatchPayload(frames[1].payload.data(),
                                      frames[1].payload.size(), &decoded));
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0], keys[0]);

    EXPECT_EQ(frames[2].opcode, static_cast<uint8_t>(Opcode::kStats));
    EXPECT_TRUE(frames[2].payload.empty());
  }
}

TEST(Protocol, ResponseEncodersRoundTrip) {
  std::vector<uint8_t> bytes;
  EncodeInsertResponse(7, 3, &bytes);
  const std::vector<uint8_t> results = {1, 0, 1, 1, 0};
  EncodeQueryResponse(8, results.data(), results.size(), &bytes);
  EncodeErrorResponse(Opcode::kSnapshot, 9, ErrorCode::kInternal,
                      "boom", &bytes);

  DecodeStatus status;
  const std::vector<Frame> frames = DecodeAll(bytes, 3, &status);
  ASSERT_EQ(frames.size(), 3u);

  EXPECT_TRUE(frames[0].is_response());
  uint64_t failures = 0;
  ASSERT_TRUE(DecodeInsertResponsePayload(frames[0].payload.data(),
                                          frames[0].payload.size(),
                                          &failures));
  EXPECT_EQ(failures, 3u);

  std::vector<uint8_t> decoded_results;
  ASSERT_TRUE(DecodeQueryResponsePayload(frames[1].payload.data(),
                                         frames[1].payload.size(),
                                         &decoded_results));
  EXPECT_EQ(decoded_results, results);

  EXPECT_TRUE(frames[2].is_error());
  ErrorCode code;
  std::string message;
  ASSERT_TRUE(DecodeErrorPayload(frames[2].payload.data(),
                                 frames[2].payload.size(), &code, &message));
  EXPECT_EQ(code, ErrorCode::kInternal);
  EXPECT_EQ(message, "boom");
}

TEST(Protocol, StatsPayloadRoundTripsAndRejectsEveryTruncation) {
  WireStats stats;
  stats.filter_name = "SHARD16[PF[TC]]";
  stats.capacity = 1 << 20;
  stats.insert_batches = 10;
  stats.query_batches = 20;
  stats.keys_inserted = 30;
  stats.keys_queried = 40;
  stats.insert_failures = 1;
  stats.front_cache_hits = 5;
  for (int s = 0; s < 16; ++s) {
    stats.shards.push_back(WireShardStats{
        uint64_t(s), uint64_t(s + 1), uint64_t(s + 2), uint64_t(s + 3)});
  }
  std::vector<uint8_t> bytes;
  EncodeStatsResponse(77, stats, &bytes);

  DecodeStatus status;
  const std::vector<Frame> frames = DecodeAll(bytes, bytes.size(), &status);
  ASSERT_EQ(frames.size(), 1u);
  WireStats decoded;
  ASSERT_TRUE(DecodeStatsPayload(frames[0].payload.data(),
                                 frames[0].payload.size(), &decoded));
  EXPECT_EQ(decoded.filter_name, stats.filter_name);
  EXPECT_EQ(decoded.capacity, stats.capacity);
  EXPECT_EQ(decoded.front_cache_hits, stats.front_cache_hits);
  ASSERT_EQ(decoded.shards.size(), stats.shards.size());
  EXPECT_EQ(decoded.shards[9].queries, stats.shards[9].queries);

  // Every strict prefix of the payload must be rejected, not crash or
  // partially succeed.
  const std::vector<uint8_t>& payload = frames[0].payload;
  for (size_t len = 0; len < payload.size(); ++len) {
    WireStats sink;
    EXPECT_FALSE(DecodeStatsPayload(payload.data(), len, &sink)) << len;
  }
  // Trailing garbage is rejected too (exact-length parse).
  std::vector<uint8_t> extended = payload;
  extended.push_back(0);
  WireStats sink;
  EXPECT_FALSE(DecodeStatsPayload(extended.data(), extended.size(), &sink));
}

TEST(Protocol, KeyBatchPayloadBoundsChecks) {
  std::vector<uint64_t> keys;
  // Count field larger than the actual payload.
  std::vector<uint8_t> payload(4 + 8 * 3);
  const uint32_t lie = 1000;
  std::memcpy(payload.data(), &lie, 4);
  EXPECT_FALSE(DecodeKeyBatchPayload(payload.data(), payload.size(), &keys));
  // Count over the frame cap, with a matching (absurd) length claim.
  const uint32_t huge = kMaxKeysPerFrame + 1;
  std::memcpy(payload.data(), &huge, 4);
  EXPECT_FALSE(DecodeKeyBatchPayload(payload.data(), payload.size(), &keys));
  // Short payloads.
  EXPECT_FALSE(DecodeKeyBatchPayload(payload.data(), 3, &keys));
  // Exact zero-key batch is fine.
  const uint32_t zero = 0;
  std::memcpy(payload.data(), &zero, 4);
  ASSERT_TRUE(DecodeKeyBatchPayload(payload.data(), 4, &keys));
  EXPECT_TRUE(keys.empty());
}

TEST(Protocol, DecoderRejectsBadMagicVersionLengthChecksum) {
  std::vector<uint8_t> good;
  const uint64_t key = 123;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, 1, &key, 1, &good);

  struct Case {
    size_t offset;
    uint8_t value;
    DecodeStatus expected;
  };
  const Case cases[] = {
      {0, 0xFF, DecodeStatus::kBadMagic},     // magic byte
      {4, 99, DecodeStatus::kBadVersion},     // version byte
      {19, 0xFF, DecodeStatus::kBadLength},   // payload_len high byte
      {21, 0xFF, DecodeStatus::kBadChecksum}, // checksum byte
      {30, 0xFF, DecodeStatus::kBadChecksum}, // payload byte
  };
  for (const Case& c : cases) {
    std::vector<uint8_t> bytes = good;
    bytes[c.offset] = c.value;
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), c.expected) << "offset " << c.offset;
    // Errors are sticky: the stream stays poisoned even after more bytes.
    decoder.Feed(good.data(), good.size());
    EXPECT_EQ(decoder.Next(&frame), c.expected) << "offset " << c.offset;
  }
}

TEST(Protocol, TruncatedFramesNeverPopAndNeverError) {
  std::vector<uint8_t> good;
  const std::vector<uint64_t> keys = RandomKeys(100, 5);
  EncodeKeyBatchRequest(Opcode::kInsertBatch, 9, keys.data(), keys.size(),
                        &good);
  // Every strict prefix is "need more", not an error and not a frame.
  for (size_t len = 0; len < good.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(good.data(), len);
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore) << len;
  }
}

// Fuzz-ish: random corruptions of a valid multi-frame stream must decode to
// either frames or a typed kBad* error — never crash, hang, or over-read.
TEST(Protocol, RandomCorruptionsAreRejectedOrDecoded) {
  std::vector<uint8_t> stream;
  const std::vector<uint64_t> keys = RandomKeys(64, 21);
  for (uint64_t id = 0; id < 8; ++id) {
    EncodeKeyBatchRequest(id % 2 ? Opcode::kInsertBatch : Opcode::kQueryBatch,
                          id, keys.data(), keys.size(), &stream);
  }
  Xoshiro256 rng(0xf22);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> corrupted = stream;
    const int flips = 1 + static_cast<int>(rng.Below(8));
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Below(corrupted.size())] ^=
          static_cast<uint8_t>(1 + rng.Below(255));
    }
    DecodeStatus status;
    const std::vector<Frame> frames =
        DecodeAll(corrupted, 1 + rng.Below(64), &status);
    EXPECT_LE(frames.size(), 8u);
    EXPECT_TRUE(status == DecodeStatus::kNeedMore ||
                status == DecodeStatus::kBadMagic ||
                status == DecodeStatus::kBadVersion ||
                status == DecodeStatus::kBadLength ||
                status == DecodeStatus::kBadChecksum);
    // A header whose magic+version+length survived but whose payload (or
    // checksum) was corrupted must not pop as a valid frame; spot-check by
    // re-decoding every popped frame's payload.
    for (const Frame& frame : frames) {
      std::vector<uint64_t> sink;
      if (IsKnownOpcode(frame.opcode)) {
        (void)DecodeKeyBatchPayload(frame.payload.data(),
                                    frame.payload.size(), &sink);
      }
    }
  }
}

TEST(Protocol, PureGarbageStreamsFailFast) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> garbage(64 + rng.Below(512));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    FrameDecoder decoder;
    decoder.Feed(garbage.data(), garbage.size());
    Frame frame;
    const DecodeStatus status = decoder.Next(&frame);
    // 2^-32 odds of random magic; anything but a popped frame is correct.
    EXPECT_NE(status, DecodeStatus::kFrame);
  }
}

TEST(Protocol, DecoderCompactionKeepsLongStreamsBounded) {
  // A long pipelined stream decoded incrementally must not accumulate the
  // whole history in the buffer (the lazy-compaction path).
  FrameDecoder decoder;
  std::vector<uint8_t> bytes;
  const std::vector<uint64_t> keys = RandomKeys(512, 3);
  size_t frames_popped = 0;
  for (int i = 0; i < 200; ++i) {
    bytes.clear();
    EncodeKeyBatchRequest(Opcode::kQueryBatch, i, keys.data(), keys.size(),
                          &bytes);
    decoder.Feed(bytes.data(), bytes.size());
    Frame frame;
    while (decoder.Next(&frame) == DecodeStatus::kFrame) ++frames_popped;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
  EXPECT_EQ(frames_popped, 200u);
}

TEST(Protocol, TracedKeyBatchRoundTripsAndPlainEncodingIsUnchanged) {
  const std::vector<uint64_t> keys = RandomKeys(64, 9);

  // A traced frame carries kFlagTraced plus the 9-byte context prefix; the
  // remainder decodes as the ordinary key-batch payload.
  TraceContext context;
  context.trace_id = 0xABCDEF0123456789ull;
  context.sampled = true;
  std::vector<uint8_t> bytes;
  EncodeTracedKeyBatchRequest(Opcode::kQueryBatch, 11, context, keys.data(),
                              keys.size(), &bytes);
  DecodeStatus status;
  const std::vector<Frame> frames = DecodeAll(bytes, 5, &status);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(frames[0].flags & kFlagTraced, 0);
  TraceContext decoded;
  ASSERT_TRUE(DecodeTraceContext(frames[0].payload.data(),
                                 frames[0].payload.size(), &decoded));
  EXPECT_EQ(decoded.trace_id, context.trace_id);
  EXPECT_TRUE(decoded.sampled);
  std::vector<uint64_t> decoded_keys;
  ASSERT_TRUE(DecodeKeyBatchPayload(
      frames[0].payload.data() + kTraceContextBytes,
      frames[0].payload.size() - kTraceContextBytes, &decoded_keys));
  EXPECT_EQ(decoded_keys, keys);

  // The traced payload must NOT parse as a plain key batch: a server that
  // misses the flag cannot silently misread the prefix as keys.
  std::vector<uint64_t> misread;
  EXPECT_FALSE(AppendKeyBatchPayload(frames[0].payload.data(),
                                     frames[0].payload.size(), &misread));
  EXPECT_TRUE(misread.empty());

  // Context shorter than the prefix is rejected.
  EXPECT_FALSE(DecodeTraceContext(frames[0].payload.data(),
                                  kTraceContextBytes - 1, &decoded));

  // Backward compatibility: the untraced encoder's bytes are unchanged by
  // this feature — byte-identical to what pre-tracing builds emitted.
  std::vector<uint8_t> plain;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, 11, keys.data(), keys.size(),
                        &plain);
  DecodeStatus plain_status;
  const std::vector<Frame> plain_frames =
      DecodeAll(plain, plain.size(), &plain_status);
  ASSERT_EQ(plain_frames.size(), 1u);
  EXPECT_EQ(plain_frames[0].flags & kFlagTraced, 0);
  EXPECT_EQ(plain_frames[0].payload.size(),
            frames[0].payload.size() - kTraceContextBytes);
}

TEST(Protocol, StatsV3CarriesCapabilitiesAndRejectsTruncations) {
  WireStats stats;
  stats.filter_name = "PF[TC]";
  stats.capacity = 1024;
  stats.front_cache_misses = 7;
  stats.capabilities = kCapTraceContext | kCapTraces;
  std::vector<uint8_t> bytes;
  EncodeStatsV3Response(21, stats, &bytes);

  DecodeStatus status;
  const std::vector<Frame> frames = DecodeAll(bytes, bytes.size(), &status);
  ASSERT_EQ(frames.size(), 1u);
  WireStats decoded;
  ASSERT_TRUE(DecodeStatsPayload(frames[0].payload.data(),
                                 frames[0].payload.size(), &decoded));
  EXPECT_EQ(decoded.capabilities, kCapTraceContext | kCapTraces);
  EXPECT_EQ(decoded.front_cache_misses, 7u);

  // v2 and v1 payloads decode with zero capabilities (the safe default).
  std::vector<uint8_t> v2;
  EncodeStatsV2Response(22, stats, &v2);
  const std::vector<Frame> v2_frames = DecodeAll(v2, v2.size(), &status);
  ASSERT_EQ(v2_frames.size(), 1u);
  WireStats v2_decoded;
  ASSERT_TRUE(DecodeStatsPayload(v2_frames[0].payload.data(),
                                 v2_frames[0].payload.size(), &v2_decoded));
  EXPECT_EQ(v2_decoded.capabilities, 0u);

  // Version negotiation: the request encodes the max version it decodes.
  std::vector<uint8_t> req;
  EncodeStatsRequest(23, kStatsPayloadV3, &req);
  const std::vector<Frame> req_frames = DecodeAll(req, req.size(), &status);
  ASSERT_EQ(req_frames.size(), 1u);
  EXPECT_EQ(StatsRequestVersion(req_frames[0].payload.data(),
                                req_frames[0].payload.size()),
            kStatsPayloadV3);
  EXPECT_EQ(StatsRequestVersion(nullptr, 0), kStatsPayloadV1);

  // Every strict prefix of the v3 payload is rejected.
  const std::vector<uint8_t>& payload = frames[0].payload;
  for (size_t len = 0; len < payload.size(); ++len) {
    WireStats sink;
    EXPECT_FALSE(DecodeStatsPayload(payload.data(), len, &sink)) << len;
  }
}

TEST(Protocol, TracesPayloadRoundTripsAndRejectsTruncations) {
  std::vector<obs::Trace> traces(3);
  for (size_t i = 0; i < traces.size(); ++i) {
    obs::Trace& t = traces[i];
    t.trace_id = 0x1000 + i;
    t.request_id = 50 + i;
    t.conn_id = 7;
    t.start_ns = 1'000'000;
    t.end_ns = 2'000'000 + i;
    t.loop = 2;
    t.key_count = 4096;
    t.frames = 4;
    t.opcode = static_cast<uint8_t>(Opcode::kQueryBatch);
    t.flags = obs::kTraceSampled | (i == 0 ? obs::kTraceSlow : 0);
    // Spans written directly (not via AddSpan, which no-ops under
    // PF_OBS=OFF — the codec itself must round-trip in every build).
    t.spans[0] = {static_cast<uint8_t>(obs::TraceStage::kReadDecode),
                  1'000'000, 1'100'000, 0};
    t.spans[1] = {static_cast<uint8_t>(obs::TraceStage::kShardProbe),
                  1'100'000, 1'200'000, (uint64_t{5} << 32) | 256u};
    t.span_count = 2;
  }

  std::vector<uint8_t> bytes;
  EncodeTracesResponse(31, traces, &bytes);
  DecodeStatus status;
  const std::vector<Frame> frames = DecodeAll(bytes, 7, &status);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].opcode, static_cast<uint8_t>(Opcode::kTraces));

  std::vector<obs::Trace> decoded;
  ASSERT_TRUE(DecodeTracesPayload(frames[0].payload.data(),
                                  frames[0].payload.size(), &decoded));
  ASSERT_EQ(decoded.size(), traces.size());
  EXPECT_EQ(decoded[0].trace_id, traces[0].trace_id);
  EXPECT_TRUE(decoded[0].slow());
  EXPECT_FALSE(decoded[1].slow());
  ASSERT_EQ(decoded[2].span_count, 2u);
  EXPECT_EQ(decoded[2].spans[1].stage,
            static_cast<uint8_t>(obs::TraceStage::kShardProbe));
  EXPECT_EQ(decoded[2].spans[1].detail, (uint64_t{5} << 32) | 256u);

  // Truncations and trailing garbage are rejected, never crash.
  const std::vector<uint8_t>& payload = frames[0].payload;
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<obs::Trace> sink;
    EXPECT_FALSE(DecodeTracesPayload(payload.data(), len, &sink)) << len;
  }
  std::vector<uint8_t> extended = payload;
  extended.push_back(0);
  std::vector<obs::Trace> sink;
  EXPECT_FALSE(DecodeTracesPayload(extended.data(), extended.size(), &sink));
}

}  // namespace
}  // namespace prefixfilter::net
