// Round-trip tests for filter persistence: a deserialized filter must answer
// every query exactly as the original, and corrupted/truncated inputs must
// be rejected rather than crash.
#include "src/util/serialize.h"

#include <gtest/gtest.h>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/bloom.h"
#include "src/filters/cuckoo.h"
#include "src/filters/twochoicer.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(ByteStream, PrimitivesRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.F64(3.25);
  ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStream, ShortReadFailsSoft) {
  std::vector<uint8_t> buf = {1, 2, 3};
  ByteReader r(buf.data(), buf.size());
  r.U64();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // subsequent reads return zeros
}

// Generic round-trip checker: equality of responses on inserted keys and on
// a probe stream (which pins down false positives too).
template <typename Filter>
void ExpectSameResponses(const Filter& a, const Filter& b,
                         const std::vector<uint64_t>& keys,
                         const std::vector<uint64_t>& probes) {
  for (uint64_t k : keys) {
    ASSERT_TRUE(a.Contains(k));
    ASSERT_TRUE(b.Contains(k));
  }
  for (uint64_t k : probes) {
    ASSERT_EQ(a.Contains(k), b.Contains(k)) << "key " << k;
  }
}

template <typename Filter>
void RoundTrip(Filter filter, uint64_t n, uint64_t seed) {
  const auto keys = RandomKeys(n, seed);
  for (uint64_t k : keys) ASSERT_TRUE(filter.Insert(k));
  std::vector<uint8_t> bytes;
  filter.SerializeTo(&bytes);
  auto loaded = Filter::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), filter.size());
  EXPECT_EQ(loaded->SpaceBytes(), filter.SpaceBytes());
  const auto probes = RandomKeys(50000, seed ^ 0xffu);
  ExpectSameResponses(filter, *loaded, keys, probes);
  // Truncated input must be rejected.
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(Filter::Deserialize(bytes.data(), cut).has_value());
  }
  // Corrupted magic must be rejected.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(Filter::Deserialize(bad.data(), bad.size()).has_value());
}

TEST(Serialize, Bloom) { RoundTrip(BloomFilter(30000, 12.0, 8, 5), 30000, 191); }

TEST(Serialize, BlockedBloomFlexible) {
  RoundTrip(BlockedBloomFilter::MakeFlexible(30000, 10.67, 5), 30000, 192);
}

TEST(Serialize, BlockedBloomNonFlexible) {
  RoundTrip(BlockedBloomFilter::MakeNonFlexible(30000, 5), 30000, 193);
}

TEST(Serialize, Cuckoo12) {
  RoundTrip(CuckooFilter12(30000, true, 5), 30000, 194);
}

TEST(Serialize, Cuckoo8NonFlex) {
  RoundTrip(CuckooFilter8(30000, false, 5), 30000, 195);
}

TEST(Serialize, TwoChoicer) { RoundTrip(TwoChoicer(30000, 5), 30000, 196); }

TEST(Serialize, CuckooRejectsWrongTagWidth) {
  CuckooFilter12 cf(1000, true, 5);
  std::vector<uint8_t> bytes;
  cf.SerializeTo(&bytes);
  EXPECT_FALSE(CuckooFilter8::Deserialize(bytes.data(), bytes.size()));
  EXPECT_FALSE(CuckooFilter16::Deserialize(bytes.data(), bytes.size()));
}

template <typename SpareTraits>
class PrefixFilterSerializeTest : public ::testing::Test {};
using SpareTypes =
    ::testing::Types<SpareBbfTraits, SpareCf12Traits, SpareTcTraits>;
TYPED_TEST_SUITE(PrefixFilterSerializeTest, SpareTypes);

TYPED_TEST(PrefixFilterSerializeTest, RoundTripFull) {
  const uint64_t n = 100000;
  PrefixFilterOptions options;
  options.seed = 7;
  PrefixFilter<TypeParam> pf(n, options);
  const auto keys = RandomKeys(n, 197);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));

  std::vector<uint8_t> bytes;
  pf.SerializeTo(&bytes);
  auto loaded = PrefixFilter<TypeParam>::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), pf.size());
  EXPECT_EQ(loaded->SpaceBytes(), pf.SpaceBytes());
  EXPECT_EQ(loaded->stats().spare_inserts, pf.stats().spare_inserts);

  const auto probes = RandomKeys(100000, 198);
  ExpectSameResponses(pf, *loaded, keys, probes);

  // A loaded filter keeps working incrementally.
  const auto more = RandomKeys(100, 199);
  for (uint64_t k : more) {
    ASSERT_TRUE(loaded->Insert(k));
    ASSERT_TRUE(loaded->Contains(k));
  }
}

TYPED_TEST(PrefixFilterSerializeTest, RejectsTruncation) {
  PrefixFilter<TypeParam> pf(10000);
  const auto keys = RandomKeys(10000, 200);
  for (uint64_t k : keys) pf.Insert(k);
  std::vector<uint8_t> bytes;
  pf.SerializeTo(&bytes);
  for (size_t cut = 0; cut < bytes.size(); cut += bytes.size() / 13 + 1) {
    EXPECT_FALSE(
        PrefixFilter<TypeParam>::Deserialize(bytes.data(), cut).has_value());
  }
}

}  // namespace
}  // namespace prefixfilter
