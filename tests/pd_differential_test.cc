// Differential tests: the optimized pocket dictionaries must agree with the
// portable ReferencePd on randomized operation sequences, including the
// full-capacity and eviction paths.  Parameterized over seeds so ctest runs
// many independent fuzz universes.
#include <cstring>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "src/pd/pd256.h"
#include "src/pd/pd512.h"
#include "src/pd/pd_reference.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

class Pd256Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Pd256Differential, RandomInsertFindAgainstReference) {
  Xoshiro256 rng(GetParam());
  PD256 pd;
  std::memset(&pd, 0, sizeof(pd));
  ReferencePd ref(PD256::kNumLists, PD256::kCapacity);

  for (int i = 0; i < 200; ++i) {
    const int q = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_EQ(pd.Insert(q, r), ref.Insert(q, r)) << "step " << i;
    // Probe a mix of present and random elements.
    for (int probe = 0; probe < 8; ++probe) {
      const int pq = static_cast<int>(rng.Below(PD256::kNumLists));
      const uint8_t pr = static_cast<uint8_t>(rng.Below(64));  // denser hits
      ASSERT_EQ(pd.Find(pq, pr), ref.Find(pq, pr))
          << "step " << i << " probe (" << pq << "," << int(pr) << ")";
    }
    ASSERT_EQ(pd.Size(), ref.size());
    ASSERT_EQ(pd.Full(), ref.Full());
  }
}

TEST_P(Pd256Differential, OccupancyMatchesReference) {
  Xoshiro256 rng(GetParam() ^ 0xabcdu);
  PD256 pd;
  std::memset(&pd, 0, sizeof(pd));
  ReferencePd ref(PD256::kNumLists, PD256::kCapacity);
  for (int i = 0; i < PD256::kCapacity; ++i) {
    const int q = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    pd.Insert(q, r);
    ref.Insert(q, r);
  }
  for (int q = 0; q < PD256::kNumLists; ++q) {
    EXPECT_EQ(pd.OccupancyOf(q), ref.OccupancyOf(q)) << "q=" << q;
  }
}

TEST_P(Pd256Differential, EvictionAgainstReference) {
  // Emulates the prefix filter's insertion protocol against the reference:
  // fill, then stream random fingerprints; smaller-than-max fingerprints
  // replace the max.  The PD must track the reference's surviving multiset.
  Xoshiro256 rng(GetParam() ^ 0x5eedu);
  PD256 pd;
  std::memset(&pd, 0, sizeof(pd));
  ReferencePd ref(PD256::kNumLists, PD256::kCapacity);
  for (int i = 0; i < PD256::kCapacity; ++i) {
    const int q = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    pd.Insert(q, r);
    ref.Insert(q, r);
  }
  pd.MarkOverflowed();

  for (int round = 0; round < 300; ++round) {
    const int q = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    const auto ref_max = ref.Max();
    const uint16_t fp_max =
        static_cast<uint16_t>((ref_max.first << 8) | ref_max.second);
    ASSERT_EQ(pd.MaxFingerprint(), fp_max) << "round " << round;
    const uint16_t fp = static_cast<uint16_t>((q << 8) | r);
    if (fp > fp_max) continue;  // forwarded to spare; bin unchanged
    ref.RemoveMax();
    ref.Insert(q, r);
    pd.ReplaceMax(q, r);
    // Spot-check membership parity.
    for (int probe = 0; probe < 6; ++probe) {
      const int pq = static_cast<int>(rng.Below(PD256::kNumLists));
      const uint8_t pr = static_cast<uint8_t>(rng.Next());
      ASSERT_EQ(pd.Find(pq, pr), ref.Find(pq, pr)) << "round " << round;
    }
  }
  // Full decode parity at the end.
  std::multiset<std::pair<int, int>> got, want;
  for (auto [q, r] : pd.Decode()) got.insert({q, r});
  for (auto [q, r] : ref.Sorted()) want.insert({q, r});
  EXPECT_EQ(got, want);
}

class Pd512Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Pd512Differential, RandomInsertFindAgainstReference) {
  Xoshiro256 rng(GetParam());
  PD512 pd;
  std::memset(&pd, 0, sizeof(pd));
  ReferencePd ref(PD512::kNumLists, PD512::kCapacity);

  for (int i = 0; i < 300; ++i) {
    const int q = static_cast<int>(rng.Below(PD512::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_EQ(pd.Insert(q, r), ref.Insert(q, r)) << "step " << i;
    for (int probe = 0; probe < 8; ++probe) {
      const int pq = static_cast<int>(rng.Below(PD512::kNumLists));
      const uint8_t pr = static_cast<uint8_t>(rng.Below(64));
      ASSERT_EQ(pd.Find(pq, pr), ref.Find(pq, pr))
          << "step " << i << " probe (" << pq << "," << int(pr) << ")";
    }
    ASSERT_EQ(pd.Size(), ref.size());
  }
  for (int q = 0; q < PD512::kNumLists; ++q) {
    EXPECT_EQ(pd.OccupancyOf(q), ref.OccupancyOf(q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pd256Differential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));
INSTANTIATE_TEST_SUITE_P(Seeds, Pd512Differential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace prefixfilter
