#include "src/util/bits.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

// Portable oracle for Select64.
int SelectNaive(uint64_t x, int j) {
  for (int i = 0; i < 64; ++i) {
    if ((x >> i) & 1) {
      if (j == 0) return i;
      --j;
    }
  }
  return 64;
}

TEST(Bits, MaskLow) {
  EXPECT_EQ(MaskLow64(0), 0u);
  EXPECT_EQ(MaskLow64(1), 1u);
  EXPECT_EQ(MaskLow64(50), (uint64_t{1} << 50) - 1);
  EXPECT_EQ(MaskLow64(64), ~uint64_t{0});
}

TEST(Bits, MaskRange) {
  EXPECT_EQ(MaskRange64(0, 0), 0u);
  EXPECT_EQ(MaskRange64(0, 3), 0b111u);
  EXPECT_EQ(MaskRange64(2, 5), 0b11100u);
  EXPECT_EQ(MaskRange64(60, 64), uint64_t{0xf} << 60);
}

TEST(Bits, Rank) {
  const uint64_t x = 0b101101;
  EXPECT_EQ(Rank64(x, 0), 0);
  EXPECT_EQ(Rank64(x, 1), 1);
  EXPECT_EQ(Rank64(x, 3), 2);
  EXPECT_EQ(Rank64(x, 6), 4);
  EXPECT_EQ(Rank64(x, 64), 4);
}

TEST(Bits, SelectAgainstNaive) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t x = rng.Next() & rng.Next();  // vary density
    const int ones = PopCount64(x);
    for (int j = 0; j < ones; ++j) {
      ASSERT_EQ(Select64(x, j), SelectNaive(x, j))
          << "x=" << x << " j=" << j;
    }
  }
}

TEST(Bits, SelectOutOfRange) {
  EXPECT_EQ(Select64(0, 0), 64);
  EXPECT_EQ(Select64(0b1, 1), 64);
}

TEST(Bits, SelectRankRoundTrip) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t x = rng.Next();
    const int ones = PopCount64(x);
    for (int j = 0; j < ones; ++j) {
      const int pos = Select64(x, j);
      EXPECT_EQ(Rank64(x, pos), j);
      EXPECT_TRUE((x >> pos) & 1);
    }
  }
}

TEST(Bits, InsertZeroBit) {
  // Insert into 0b1111 at position 2 -> 0b110_11 with a 0 in the middle.
  EXPECT_EQ(InsertZeroBit64(0b1111, 2), 0b11011u);
  EXPECT_EQ(InsertZeroBit64(0b1111, 0), 0b11110u);
  EXPECT_EQ(InsertZeroBit64(0, 17), 0u);
}

TEST(Bits, InsertOneBit) {
  EXPECT_EQ(InsertOneBit64(0b1111, 2), 0b11111u);
  EXPECT_EQ(InsertOneBit64(0, 3), 0b1000u);
  EXPECT_EQ(InsertOneBit64(0b1001, 1), 0b10011u);
}

TEST(Bits, RemoveBit) {
  EXPECT_EQ(RemoveBit64(0b11011, 2), 0b1111u);
  EXPECT_EQ(RemoveBit64(0b1, 0), 0u);
  EXPECT_EQ(RemoveBit64(0b10, 0), 0b1u);
}

TEST(Bits, InsertRemoveInverse) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t x = rng.Next() >> 1;  // keep bit 63 clear
    const int pos = static_cast<int>(rng.Below(63));
    EXPECT_EQ(RemoveBit64(InsertZeroBit64(x, pos), pos), x);
    EXPECT_EQ(RemoveBit64(InsertOneBit64(x, pos), pos), x);
  }
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1023), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(Bits, HighestSetBit) {
  EXPECT_EQ(HighestSetBit64(1), 0);
  EXPECT_EQ(HighestSetBit64(0b1000), 3);
  EXPECT_EQ(HighestSetBit64(~uint64_t{0}), 63);
}

// --- 128-bit helpers -------------------------------------------------------

TEST(Bits128, RankSelectConsistent) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    const Bits128 x{rng.Next(), rng.Next()};
    const int ones = PopCount128(x);
    for (int j = 0; j < ones; j += 7) {
      const int pos = Select128(x, j);
      ASSERT_LT(pos, 128);
      EXPECT_EQ(Rank128(x, pos), j);
      EXPECT_TRUE(GetBit128(x, pos));
    }
    EXPECT_EQ(Select128(x, ones), 128);
  }
}

TEST(Bits128, InsertZeroShiftsAcrossWordBoundary) {
  Bits128 x{~uint64_t{0}, 0};  // 64 ones then zeros
  const Bits128 y = InsertZeroBit128(x, 10);
  EXPECT_EQ(Rank128(y, 10), 10);
  EXPECT_FALSE(GetBit128(y, 10));
  EXPECT_TRUE(GetBit128(y, 64));  // former bit 63 crossed the boundary
  EXPECT_EQ(PopCount128(y), 64);
}

TEST(Bits128, InsertRemoveInverse) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    Bits128 x{rng.Next(), rng.Next() >> 1};  // keep bit 127 clear
    const int pos = static_cast<int>(rng.Below(127));
    const Bits128 ins = InsertZeroBit128(x, pos);
    EXPECT_FALSE(GetBit128(ins, pos));
    const Bits128 back = RemoveBit128(ins, pos);
    EXPECT_EQ(back.lo, x.lo);
    EXPECT_EQ(back.hi, x.hi);
  }
}

TEST(Bits128, GetBitWordBoundary) {
  const Bits128 x{uint64_t{1} << 63, 1};
  EXPECT_TRUE(GetBit128(x, 63));
  EXPECT_TRUE(GetBit128(x, 64));
  EXPECT_FALSE(GetBit128(x, 62));
  EXPECT_FALSE(GetBit128(x, 65));
}

}  // namespace
}  // namespace prefixfilter
