// Tests for the prefetching batch-query API, and for the devirtualized
// AnyFilter batch path: one virtual dispatch per batch must produce answers
// identical to per-key virtual Contains() on every route a batch can take —
// the adapter's concrete loop, ShardedFilter's single- and multi-shard
// routing, and the FilterService front-cache leg.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/filter_factory.h"
#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/service/filter_service.h"
#include "src/service/sharded_filter.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(BatchQuery, AgreesWithScalarQueries) {
  const uint64_t n = 200000;
  const auto keys = RandomKeys(n, 201);
  PrefixFilter<SpareTcTraits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));

  // Mixed stream: positives and negatives interleaved.
  std::vector<uint64_t> stream = RandomKeys(50000, 202);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];

  std::vector<uint8_t> batch(stream.size());
  pf.ContainsBatch(stream.data(), stream.size(), batch.data());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(static_cast<bool>(batch[i]), pf.Contains(stream[i]))
        << "index " << i;
  }
}

TEST(BatchQuery, HandlesOddSizes) {
  const uint64_t n = 10000;
  const auto keys = RandomKeys(n, 203);
  PrefixFilter<SpareCf12Traits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  for (size_t count : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                       size_t{17}, size_t{33}}) {
    std::vector<uint64_t> stream(keys.begin(),
                                 keys.begin() + static_cast<long>(count));
    std::vector<uint8_t> out(count + 1, 0xcc);
    pf.ContainsBatch(stream.data(), count, out.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], 1) << "count=" << count << " i=" << i;
    }
    EXPECT_EQ(out[count], 0xcc) << "wrote past the end";
  }
}

TEST(BatchQuery, NoFalseNegativesAtFullLoad) {
  const uint64_t n = 1 << 18;
  const auto keys = RandomKeys(n, 204);
  PrefixFilter<SpareBbfTraits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  std::vector<uint8_t> out(keys.size());
  pf.ContainsBatch(keys.data(), keys.size(), out.data());
  for (size_t i = 0; i < keys.size(); ++i) ASSERT_TRUE(out[i]);
}

// --- Devirtualized AnyFilter batch path ------------------------------------
//
// FilterAdapter::ContainsBatch dispatches once per batch and then runs a
// concrete loop (the filter's own ContainsBatch when it has one, inlined
// scalar Contains otherwise).  These tests pin the observable contract the
// optimization must preserve: batch answers identical to per-key virtual
// Contains() for every key, on every routing layer.

// Builds a filter via the factory, inserts `n` keys, and checks batch ==
// per-key parity on a mixed positive/negative stream for several batch
// sizes, including sizes that straddle the 16-key prefetch chunk.
void CheckAnyFilterBatchParity(const std::string& name, uint64_t n,
                               uint64_t seed) {
  auto filter = MakeFilter(name, n, seed);
  ASSERT_NE(filter, nullptr) << name;
  const auto keys = RandomKeys(n, seed + 1);
  for (uint64_t k : keys) filter->Insert(k);

  std::vector<uint64_t> stream = RandomKeys(n, seed + 2);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];

  std::vector<bool> scalar(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    scalar[i] = filter->Contains(stream[i]);
  }
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, stream.size()}) {
    std::vector<uint8_t> out(stream.size(), 0xaa);
    for (size_t base = 0; base < stream.size(); base += batch) {
      const size_t count = std::min(batch, stream.size() - base);
      filter->ContainsBatch(stream.data() + base, count, out.data() + base);
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(static_cast<bool>(out[i]), scalar[i])
          << name << " batch=" << batch << " i=" << i;
    }
  }
}

TEST(AnyFilterBatch, ConcreteBatchBackendsMatchScalar) {
  // Backends with their own ContainsBatch: the adapter forwards to it.
  for (const char* name : {"FMB32", "FMB64", "BBF-Flex", "PF[TC]"}) {
    CheckAnyFilterBatchParity(name, 20000, 301);
  }
}

TEST(AnyFilterBatch, ScalarFallbackBackendsMatchScalar) {
  // Backends with no ContainsBatch of their own: the adapter's concrete
  // scalar loop (not per-key virtual dispatch) must still agree.
  for (const char* name : {"BF-12", "CF-8", "TC"}) {
    CheckAnyFilterBatchParity(name, 20000, 307);
  }
}

TEST(AnyFilterBatch, InsertBatchCountsFailuresLikeScalarLoop) {
  // Overfill a rigid cuckoo filter: InsertBatch's failure count must equal
  // what a scalar Insert loop over the same keys would have reported.
  const uint64_t n = 4096;
  auto batched = MakeFilter("CF-8", n, 401);
  auto scalar = MakeFilter("CF-8", n, 401);
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(scalar, nullptr);
  const auto keys = RandomKeys(2 * n, 402);

  uint64_t scalar_failures = 0;
  for (uint64_t k : keys) scalar_failures += !scalar->Insert(k);
  const uint64_t batch_failures = batched->InsertBatch(keys.data(), keys.size());
  EXPECT_EQ(batch_failures, scalar_failures);
  EXPECT_GT(batch_failures, 0u) << "overfill did not exercise failures";
  for (uint64_t k : keys) {
    EXPECT_EQ(batched->Contains(k), scalar->Contains(k));
  }
}

// ShardedFilter group-probes per shard and then scatters answers back to
// submission order; a single-shard instance exercises the degenerate
// route-everything-to-one-group path.
void CheckShardedBatchParity(uint32_t shards) {
  const uint64_t n = 50000;
  ShardedFilterOptions options;
  options.num_shards = shards;
  options.backend = "FMB32";
  options.seed = 501;
  auto filter = ShardedFilter::Make(n, options);
  ASSERT_NE(filter, nullptr);

  const auto keys = RandomKeys(n, 502);
  EXPECT_EQ(filter->InsertBatch(keys.data(), keys.size()), 0u);

  std::vector<uint64_t> stream = RandomKeys(30000, 503);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];
  std::vector<uint8_t> out(stream.size(), 0xbb);
  filter->ContainsBatch(stream.data(), stream.size(), out.data());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(static_cast<bool>(out[i]), filter->Contains(stream[i]))
        << "shards=" << shards << " i=" << i;
  }
}

TEST(AnyFilterBatch, ShardedSingleShardMatchesScalar) {
  CheckShardedBatchParity(1);
}

TEST(AnyFilterBatch, ShardedMultiShardMatchesScalar) {
  CheckShardedBatchParity(8);
}

TEST(AnyFilterBatch, FrontCacheLegPreservesBatchAnswers) {
  // With the front cache enabled, a duplicate-heavy batch stream must return
  // exactly the same answers as the cache-less per-key path — the cache may
  // only short-circuit, never change, an answer.
  const uint64_t n = 50000;
  ShardedFilterOptions sharded;
  sharded.num_shards = 8;
  sharded.seed = 601;
  auto inner = ShardedFilter::Make(n, sharded);
  ASSERT_NE(inner, nullptr);
  std::shared_ptr<ShardedFilter> shared(inner.release());

  FilterServiceOptions options;
  options.num_threads = 0;  // synchronous: deterministic stats
  options.front_cache_slots = 1024;
  FilterService service(std::move(shared), options);

  const auto keys = RandomKeys(n, 602);
  EXPECT_EQ(service.InsertBatchSync(keys.data(), keys.size()), 0u);

  // Zipf-ish duplication: a small hot set repeated through the stream.
  std::vector<uint64_t> stream = RandomKeys(40000, 603);
  for (size_t i = 0; i < stream.size(); i += 2) {
    stream[i] = keys[i % 64];  // hot positives, heavily repeated
  }
  // Two passes: the first seeds the cache with positive answers (stores
  // happen after the batch's own hit/miss split, so duplicates within a
  // single batch never hit), the second must serve the hot set from it.
  std::vector<uint8_t> cached(stream.size(), 0xcc);
  for (int pass = 0; pass < 2; ++pass) {
    std::fill(cached.begin(), cached.end(), 0xcc);
    service.QueryBatchSync(stream.data(), stream.size(), cached.data());
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(static_cast<bool>(cached[i]),
                service.filter().Contains(stream[i]))
          << "pass=" << pass << " i=" << i;
    }
  }
  const FilterServiceStats stats = service.stats();
  EXPECT_GT(stats.front_cache_hits, 0u) << "stream never hit the cache";
}

}  // namespace
}  // namespace prefixfilter
