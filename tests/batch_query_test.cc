// Tests for the prefetching batch-query API.
#include <vector>

#include <gtest/gtest.h>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(BatchQuery, AgreesWithScalarQueries) {
  const uint64_t n = 200000;
  const auto keys = RandomKeys(n, 201);
  PrefixFilter<SpareTcTraits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));

  // Mixed stream: positives and negatives interleaved.
  std::vector<uint64_t> stream = RandomKeys(50000, 202);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];

  std::vector<uint8_t> batch(stream.size());
  pf.ContainsBatch(stream.data(), stream.size(), batch.data());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(static_cast<bool>(batch[i]), pf.Contains(stream[i]))
        << "index " << i;
  }
}

TEST(BatchQuery, HandlesOddSizes) {
  const uint64_t n = 10000;
  const auto keys = RandomKeys(n, 203);
  PrefixFilter<SpareCf12Traits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  for (size_t count : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                       size_t{17}, size_t{33}}) {
    std::vector<uint64_t> stream(keys.begin(),
                                 keys.begin() + static_cast<long>(count));
    std::vector<uint8_t> out(count + 1, 0xcc);
    pf.ContainsBatch(stream.data(), count, out.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], 1) << "count=" << count << " i=" << i;
    }
    EXPECT_EQ(out[count], 0xcc) << "wrote past the end";
  }
}

TEST(BatchQuery, NoFalseNegativesAtFullLoad) {
  const uint64_t n = 1 << 18;
  const auto keys = RandomKeys(n, 204);
  PrefixFilter<SpareBbfTraits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  std::vector<uint8_t> out(keys.size());
  pf.ContainsBatch(keys.data(), keys.size(), out.data());
  for (size_t i = 0; i < keys.size(); ++i) ASSERT_TRUE(out[i]);
}

}  // namespace
}  // namespace prefixfilter
