// Unit tests for PD512, the 64-byte PD(80, 8, 48) used by TwoChoicer.
#include "src/pd/pd512.h"

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

PD512 MakeEmptyPd() {
  PD512 pd;
  std::memset(&pd, 0, sizeof(pd));
  return pd;
}

TEST(PD512, ZeroMemoryIsEmpty) {
  PD512 pd = MakeEmptyPd();
  EXPECT_EQ(pd.Size(), 0);
  EXPECT_FALSE(pd.Full());
  for (int q = 0; q < PD512::kNumLists; q += 7) {
    EXPECT_FALSE(pd.Find(q, 0));
    EXPECT_EQ(pd.OccupancyOf(q), 0);
  }
}

TEST(PD512, InsertThenFind) {
  PD512 pd = MakeEmptyPd();
  EXPECT_TRUE(pd.Insert(79, 255));
  EXPECT_TRUE(pd.Insert(0, 1));
  EXPECT_TRUE(pd.Find(79, 255));
  EXPECT_TRUE(pd.Find(0, 1));
  EXPECT_FALSE(pd.Find(78, 255));
  EXPECT_FALSE(pd.Find(0, 2));
  EXPECT_EQ(pd.Size(), 2);
}

TEST(PD512, FillToCapacityThenReject) {
  PD512 pd = MakeEmptyPd();
  Xoshiro256 rng(41);
  for (int i = 0; i < PD512::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(static_cast<int>(rng.Below(80)),
                          static_cast<uint8_t>(rng.Next())));
  }
  EXPECT_TRUE(pd.Full());
  EXPECT_FALSE(pd.Insert(40, 7));
  EXPECT_EQ(pd.Size(), PD512::kCapacity);
}

TEST(PD512, HeaderSpansTwoWords) {
  // Fill lists near the 64-bit boundary of the header: with elements in
  // lists 0..20, the encoding for higher lists crosses bit 64.
  PD512 pd = MakeEmptyPd();
  for (int q = 0; q < 21; ++q) {
    ASSERT_TRUE(pd.Insert(q, static_cast<uint8_t>(q)));
    ASSERT_TRUE(pd.Insert(q, static_cast<uint8_t>(q + 100)));
  }
  EXPECT_EQ(pd.Size(), 42);
  for (int q = 0; q < 21; ++q) {
    EXPECT_TRUE(pd.Find(q, static_cast<uint8_t>(q)));
    EXPECT_TRUE(pd.Find(q, static_cast<uint8_t>(q + 100)));
    EXPECT_FALSE(pd.Find(q, 250));
  }
  // Lists beyond the boundary still answer correctly.
  for (int q = 21; q < 80; q += 5) {
    EXPECT_FALSE(pd.Find(q, static_cast<uint8_t>(q)));
  }
}

TEST(PD512, LastListBoundary) {
  PD512 pd = MakeEmptyPd();
  for (int i = 0; i < PD512::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(79, static_cast<uint8_t>(i)));
  }
  EXPECT_TRUE(pd.Full());
  EXPECT_EQ(pd.OccupancyOf(79), 48);
  for (int i = 0; i < PD512::kCapacity; ++i) {
    EXPECT_TRUE(pd.Find(79, static_cast<uint8_t>(i)));
  }
  EXPECT_FALSE(pd.Find(79, 200));
  EXPECT_FALSE(pd.Find(78, 0));
}

TEST(PD512, MultiMatchFallback) {
  PD512 pd = MakeEmptyPd();
  for (int q = 0; q < 48; ++q) ASSERT_TRUE(pd.Insert(q % 80, 111));
  for (int q = 0; q < 48; ++q) EXPECT_TRUE(pd.Find(q, 111));
  for (int q = 48; q < 80; ++q) EXPECT_FALSE(pd.Find(q, 111));
  EXPECT_FALSE(pd.Find(0, 112));
}

TEST(PD512, DecodeGroupsByQuotient) {
  PD512 pd = MakeEmptyPd();
  Xoshiro256 rng(42);
  std::multiset<std::pair<int, int>> model;
  for (int i = 0; i < PD512::kCapacity; ++i) {
    const int q = static_cast<int>(rng.Below(80));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(pd.Insert(q, r));
    model.insert({q, r});
  }
  const auto decoded = pd.Decode();
  ASSERT_EQ(decoded.size(), model.size());
  std::multiset<std::pair<int, int>> got;
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(decoded[i - 1].first, decoded[i].first);
    }
    got.insert({decoded[i].first, decoded[i].second});
  }
  EXPECT_EQ(got, model);
}

TEST(PD512, SizeOfStructIs64Bytes) {
  EXPECT_EQ(sizeof(PD512), 64u);
  EXPECT_EQ(alignof(PD512), 64u);
}

}  // namespace
}  // namespace prefixfilter
