// Deterministic fuzzing: randomized operation sequences and adversarial
// byte-level inputs, checked against exact ground truth.  These tests trade
// targeted assertions for breadth — they exist to catch the bug classes unit
// tests don't enumerate.
#include <cstring>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/filters/cuckoo.h"
#include "src/pd/pd256.h"
#include "src/pd/pd_reference.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

// Interleaved insert/query fuzzing of the prefix filter against an exact
// set: a false negative at any point is a hard failure; false positives are
// tallied against the configured rate.
TEST_P(FuzzSeeds, PrefixFilterVsExactSet) {
  Xoshiro256 rng(GetParam());
  const uint64_t n = 50000;
  PrefixFilterOptions options;
  options.seed = GetParam() ^ 0xf00du;
  PrefixFilter<SpareCf12Traits> pf(n, options);
  std::unordered_set<uint64_t> truth;
  std::vector<uint64_t> inserted;

  uint64_t false_positives = 0, negative_probes = 0;
  for (int step = 0; step < 200000; ++step) {
    const uint64_t action = rng.Below(100);
    if (action < 30 && truth.size() < n) {
      // Insert a fresh key (the incremental-filter contract: distinct keys).
      const uint64_t key = rng.Next();
      if (truth.insert(key).second) {
        ASSERT_TRUE(pf.Insert(key));
        inserted.push_back(key);
      }
    } else if (action < 65 && !inserted.empty()) {
      // Positive probe.
      const uint64_t key = inserted[rng.Below(inserted.size())];
      ASSERT_TRUE(pf.Contains(key)) << "false negative at step " << step;
    } else {
      // Almost-surely-negative probe.
      const uint64_t key = rng.Next();
      if (!truth.count(key)) {
        ++negative_probes;
        false_positives += pf.Contains(key);
      }
    }
  }
  ASSERT_GT(negative_probes, 0u);
  const double fpr =
      static_cast<double>(false_positives) / static_cast<double>(negative_probes);
  EXPECT_LT(fpr, 0.01) << "fpr " << fpr;
}

// The same protocol for the cuckoo filter, which has the extra kick-loop
// machinery that can silently drop keys if buggy.
TEST_P(FuzzSeeds, CuckooVsExactSet) {
  Xoshiro256 rng(GetParam() ^ 0xcafeu);
  const uint64_t n = 30000;
  CuckooFilter12 cf(n, /*flexible=*/true, GetParam());
  std::unordered_set<uint64_t> truth;
  std::vector<uint64_t> inserted;
  for (int step = 0; step < 150000; ++step) {
    if (rng.Below(100) < 25 && truth.size() < n) {
      const uint64_t key = rng.Next();
      if (truth.insert(key).second && cf.Insert(key)) inserted.push_back(key);
    } else if (!inserted.empty()) {
      const uint64_t key = inserted[rng.Below(inserted.size())];
      ASSERT_TRUE(cf.Contains(key)) << "false negative at step " << step;
    }
  }
}

// PD256 fuzz: random fill + eviction storms, cross-checked operation by
// operation against the reference (longer horizon than the differential
// unit test).
TEST_P(FuzzSeeds, Pd256LongHorizon) {
  Xoshiro256 rng(GetParam() ^ 0x9d256u);
  PD256 pd;
  std::memset(&pd, 0, sizeof(pd));
  ReferencePd ref(PD256::kNumLists, PD256::kCapacity);
  bool overflowed = false;
  for (int step = 0; step < 5000; ++step) {
    const int q = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    if (!ref.Full()) {
      ASSERT_EQ(pd.Insert(q, r), ref.Insert(q, r));
    } else {
      if (!overflowed) {
        pd.MarkOverflowed();
        overflowed = true;
      }
      const auto max = ref.Max();
      const uint16_t fp_max =
          static_cast<uint16_t>((max.first << 8) | max.second);
      ASSERT_EQ(pd.MaxFingerprint(), fp_max);
      const uint16_t fp = static_cast<uint16_t>((q << 8) | r);
      if (fp <= fp_max) {
        ref.RemoveMax();
        ref.Insert(q, r);
        pd.ReplaceMax(q, r);
      }
    }
    const int pq = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t pr = static_cast<uint8_t>(rng.Next());
    ASSERT_EQ(pd.Find(pq, pr), ref.Find(pq, pr)) << "step " << step;
  }
}

// Deserialization fuzz: random single-byte corruptions of a valid image must
// either fail cleanly or produce a filter that still answers queries without
// crashing (we cannot demand detection — the format has no checksum — only
// memory safety and clean failure on structural damage).
TEST_P(FuzzSeeds, DeserializeCorruptionIsSafe) {
  const uint64_t n = 5000;
  PrefixFilter<SpareTcTraits> pf(n);
  const auto keys = RandomKeys(n, GetParam());
  for (uint64_t k : keys) pf.Insert(k);
  std::vector<uint8_t> bytes;
  pf.SerializeTo(&bytes);

  Xoshiro256 rng(GetParam() ^ 0xbadu);
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupt = bytes;
    const size_t pos = rng.Below(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.Below(255));
    auto loaded =
        PrefixFilter<SpareTcTraits>::Deserialize(corrupt.data(), corrupt.size());
    if (loaded.has_value()) {
      // Structurally plausible: must still be queryable.
      for (int probe = 0; probe < 100; ++probe) {
        loaded->Contains(rng.Next());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace prefixfilter
