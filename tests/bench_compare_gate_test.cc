// Unit tests for the bench_compare regression gate itself
// (bench/compare_core.h): the gate must catch real regressions AND must
// never silently pass on degenerate inputs — a baseline row missing from
// the candidate sweep, an empty baseline, or a comparison that evaluated
// zero metric gates.
#include <string>

#include <gtest/gtest.h>

#include "bench/compare_core.h"
#include "src/util/json.h"

namespace prefixfilter::bench::compare {
namespace {

Value ParseOrDie(const std::string& text) {
  Value doc;
  std::string error;
  EXPECT_TRUE(Value::Parse(text, &doc, &error)) << error;
  return doc;
}

// A minimal two-row bench_all-shaped document.
std::string Doc(const std::string& rows) {
  return R"({"schema": "prefixfilter-bench-v1", "bench": "bench_all",
             "git_sha": "abc", "build_type": "Release", "pf_native": false,
             "n": 1000, "results": [)" + rows + "]}";
}

std::string Row(const std::string& filter, const std::string& workload,
                const std::string& metrics) {
  return R"({"filter": ")" + filter + R"(", "workload": ")" + workload +
         R"(", "metrics": {)" + metrics + "}}";
}

const char* kHealthyMetrics =
    R"("query_mops": 100.0, "fpr": 0.01, "bits_per_key": 10.0,
       "false_negatives": 0)";

TEST(BenchCompareGate, IdenticalRunsPass) {
  const Value base = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics) +
                                    "," + Row("BBF", "uniform", kHealthyMetrics)));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, base, Gate{}, &report), 0);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.baseline_rows, 2u);
  EXPECT_EQ(report.compared, 8u);  // 4 gated metrics x 2 rows
}

TEST(BenchCompareGate, ThroughputRegressionFails) {
  const Value base = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics)));
  const Value cur = ParseOrDie(Doc(Row(
      "PF[TC]", "uniform",
      R"("query_mops": 50.0, "fpr": 0.01, "bits_per_key": 10.0,
         "false_negatives": 0)")));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("throughput regressed"), std::string::npos);
}

TEST(BenchCompareGate, FalseNegativeAlwaysFails) {
  const Value base = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics)));
  const Value cur = ParseOrDie(Doc(Row(
      "PF[TC]", "uniform",
      R"("query_mops": 100.0, "fpr": 0.01, "bits_per_key": 10.0,
         "false_negatives": 1)")));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("false negatives"), std::string::npos);
}

// The coverage check: a filter present in the baseline but missing from the
// candidate sweep must FAIL the gate, not silently pass (a sweep that
// quietly drops a backend would otherwise sail through while gating
// nothing about it).
TEST(BenchCompareGate, MissingBaselineRowFailsCoverage) {
  const Value base = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics) +
                                    "," +
                                    Row("FMB32", "uniform", kHealthyMetrics)));
  const Value cur = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics)));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("FMB32"), std::string::npos);
  EXPECT_NE(report.failures[0].find("coverage regression"), std::string::npos);
}

// A missing workload cell is a coverage regression too.
TEST(BenchCompareGate, MissingWorkloadCellFailsCoverage) {
  const Value base = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics) +
                                    "," +
                                    Row("PF[TC]", "zipf", kHealthyMetrics)));
  const Value cur = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics)));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("zipf"), std::string::npos);
}

// Degenerate-input rules: these used to silently PASS.
TEST(BenchCompareGate, EmptyBaselineFails) {
  const Value base = ParseOrDie(Doc(""));
  const Value cur = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics)));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("empty baseline"), std::string::npos);
}

TEST(BenchCompareGate, ZeroEvaluatedGatesFails) {
  // Baseline and current share the row key but no gateable metric: the
  // baseline's metric is not in the current run and vice versa.
  const Value base = ParseOrDie(
      Doc(Row("PF[TC]", "uniform", R"("query_mops": 100.0)")));
  const Value cur = ParseOrDie(
      Doc(Row("PF[TC]", "uniform", R"("insert_mops": 100.0)")));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  EXPECT_EQ(report.compared, 0u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("zero metric gates"), std::string::npos);
}

TEST(BenchCompareGate, MalformedBaselineFails) {
  const Value base = ParseOrDie(R"({"schema": "prefixfilter-bench-v1"})");
  const Value cur = ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics)));
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, cur, Gate{}, &report), 1);
  EXPECT_FALSE(report.failures.empty());
}

// Normalization: a machine-wide 2x slowdown cancels under geomean
// normalization, while a single filter regressing relative to the pack
// still fails.
TEST(BenchCompareGate, GeomeanNormalizationCancelsMachineSpeed) {
  const Value base = ParseOrDie(
      Doc(Row("A", "uniform", R"("query_mops": 100.0)") + "," +
          Row("B", "uniform", R"("query_mops": 200.0)")));
  const Value uniform_slowdown = ParseOrDie(
      Doc(Row("A", "uniform", R"("query_mops": 50.0)") + "," +
          Row("B", "uniform", R"("query_mops": 100.0)")));
  Gate gate;
  gate.normalize_to = "geomean";
  CompareReport report;
  EXPECT_EQ(CompareDocs(base, uniform_slowdown, gate, &report), 0)
      << (report.failures.empty() ? "" : report.failures[0]);

  const Value relative_regression = ParseOrDie(
      Doc(Row("A", "uniform", R"("query_mops": 40.0)") + "," +
          Row("B", "uniform", R"("query_mops": 200.0)")));
  CompareReport report2;
  EXPECT_EQ(CompareDocs(base, relative_regression, gate, &report2), 1);
}

TEST(BenchCompareGate, ValidateRejectsEmptyAndAcceptsHealthy) {
  ValidationReport empty_report;
  EXPECT_FALSE(ValidateDoc(ParseOrDie(Doc("")), &empty_report));

  ValidationReport ok_report;
  EXPECT_TRUE(ValidateDoc(
      ParseOrDie(Doc(Row("PF[TC]", "uniform", kHealthyMetrics))), &ok_report))
      << (ok_report.errors.empty() ? "" : ok_report.errors[0]);
  EXPECT_EQ(ok_report.num_results, 1u);

  // bench_all rows must carry bits_per_key — except the "#concrete"
  // dispatch-tax rows, which are throughput-only by design.
  ValidationReport missing_report;
  EXPECT_FALSE(ValidateDoc(
      ParseOrDie(Doc(Row("PF[TC]", "uniform", R"("query_mops": 1.0)"))),
      &missing_report));
  ValidationReport concrete_report;
  EXPECT_TRUE(ValidateDoc(
      ParseOrDie(Doc(Row("PF[TC]#concrete", "uniform",
                         R"("query_mops": 1.0)"))),
      &concrete_report));
}

}  // namespace
}  // namespace prefixfilter::bench::compare
