#include "src/filters/xor.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(Xor, NoFalseNegatives) {
  const auto keys = RandomKeys(100000, 171);
  XorFilter8 xf(keys);
  for (uint64_t k : keys) ASSERT_TRUE(xf.Contains(k));
}

TEST(Xor, FprNearTwoToMinus8) {
  const auto keys = RandomKeys(200000, 172);
  XorFilter8 xf(keys);
  const auto probes = RandomKeys(400000, 173);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += xf.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_NEAR(rate, 1.0 / 256, 0.0012);
}

TEST(Xor, SpaceNear984BitsPerKey) {
  const uint64_t n = 1 << 20;
  const auto keys = RandomKeys(n, 174);
  XorFilter8 xf(keys);
  const double bpk = 8.0 * xf.SpaceBytes() / static_cast<double>(n);
  // 1.23 * 8 = 9.84 bits/key plus slack.
  EXPECT_GT(bpk, 9.5);
  EXPECT_LT(bpk, 10.3);
}

TEST(Xor, SmallSets) {
  for (size_t n : {1u, 2u, 10u, 100u}) {
    const auto keys = RandomKeys(n, 175 + n);
    XorFilter8 xf(keys);
    for (uint64_t k : keys) ASSERT_TRUE(xf.Contains(k)) << "n=" << n;
  }
}

TEST(Xor, EmptySet) {
  XorFilter8 xf(std::vector<uint64_t>{});
  const auto probes = RandomKeys(10000, 176);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += xf.Contains(k);
  // Zero-filled table: fp(key)==0 happens for ~1/256 of probes.
  EXPECT_LT(static_cast<double>(fp) / probes.size(), 0.01);
}

TEST(Xor, DeterministicForSeed) {
  const auto keys = RandomKeys(1000, 177);
  XorFilter8 a(keys, 9), b(keys, 9);
  const auto probes = RandomKeys(10000, 178);
  for (uint64_t k : probes) EXPECT_EQ(a.Contains(k), b.Contains(k));
}

TEST(Xor, DuplicateKeysRejected) {
  std::vector<uint64_t> keys = RandomKeys(1000, 179);
  keys.push_back(keys.front());  // a duplicate peeling cannot resolve
  EXPECT_THROW(XorFilter8 xf(keys), std::runtime_error);
}

}  // namespace
}  // namespace prefixfilter
