// The incremental-filter contract (paper §2), enforced uniformly across
// every filter in the library via the factory: (1) no false negatives at any
// load; (2) empty filters reject random probes; (3) space accounting is
// sane; (4) a filter driven past capacity fails cleanly without corrupting
// earlier keys.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/core/filter_factory.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

class FilterContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FilterContractTest, NoFalseNegativesAcrossLoads) {
  const uint64_t n = 100000;
  auto filter = MakeFilter(GetParam(), n, /*seed=*/7);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 131);
  // Check at 25%, 50%, 75%, 100% load: every inserted key must be found.
  for (int quarter = 1; quarter <= 4; ++quarter) {
    const uint64_t begin = n * (quarter - 1) / 4;
    const uint64_t end = n * quarter / 4;
    for (uint64_t i = begin; i < end; ++i) {
      ASSERT_TRUE(filter->Insert(keys[i])) << GetParam() << " i=" << i;
    }
    for (uint64_t i = 0; i < end; i += 17) {
      ASSERT_TRUE(filter->Contains(keys[i]))
          << GetParam() << " lost key " << i << " at load " << quarter * 25 << "%";
    }
  }
}

TEST_P(FilterContractTest, EmptyFilterRejectsRandomProbes) {
  auto filter = MakeFilter(GetParam(), 100000, 8);
  ASSERT_NE(filter, nullptr);
  const auto probes = RandomKeys(50000, 132);
  uint64_t hits = 0;
  for (uint64_t k : probes) hits += filter->Contains(k);
  // An empty filter has nothing to match; allow a whisper of false
  // positives for bit-vector designs sharing blocks (there are none, but
  // the contract only promises the configured epsilon).
  EXPECT_LE(hits, probes.size() / 1000) << GetParam();
}

TEST_P(FilterContractTest, FprWithinConfiguredRegime) {
  const uint64_t n = 100000;
  auto filter = MakeFilter(GetParam(), n, 9);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 133);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));
  const auto probes = RandomKeys(200000, 134);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += filter->Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  // Loosest configuration in the suite is CF-8/BBF at ~2.9%; nothing should
  // exceed 5%.
  EXPECT_LT(rate, 0.05) << GetParam();
}

TEST_P(FilterContractTest, SpaceAccountingSane) {
  const uint64_t n = 1 << 18;
  auto filter = MakeFilter(GetParam(), n, 10);
  ASSERT_NE(filter, nullptr);
  EXPECT_GT(filter->SpaceBytes(), n / 8) << "implausibly small";
  EXPECT_LT(filter->SpaceBytes(), 16 * n) << "implausibly large";
  EXPECT_EQ(filter->Capacity(), n);
  EXPECT_FALSE(filter->Name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterContractTest,
    ::testing::ValuesIn(KnownFilterNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace prefixfilter
