// Integration tests: the prefix filter inside its motivating application
// (paper §1) — an LSM table whose immutable runs are each guarded by a
// build-once/query-forever filter.
#include "src/lsm/table.h"

#include <gtest/gtest.h>

#include "src/lsm/run.h"
#include "src/util/random.h"

namespace prefixfilter::lsm {
namespace {

TEST(LsmRun, GetFindsAllEntries) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < 1000; ++i) entries.push_back({i * 7, i});
  lsm::Run run(std::move(entries), "PF[TC]", 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    const auto v = run.Get(i * 7);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(LsmRun, FilterSavesFutileAccesses) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  Xoshiro256 rng(151);
  for (int i = 0; i < 20000; ++i) entries.push_back({rng.Next(), 1});
  lsm::Run run(std::move(entries), "PF[TC]", 2);
  // 100k misses: without a filter every one would be a futile data access;
  // with eps ~0.4% almost all are saved.
  for (int i = 0; i < 100000; ++i) run.Get(rng.Next());
  EXPECT_LT(run.data_accesses(), 2000u);
  EXPECT_EQ(run.data_accesses(), run.futile_accesses());
}

TEST(LsmRun, NoFilterMeansEveryGetTouchesData) {
  std::vector<std::pair<uint64_t, uint64_t>> entries = {{1, 10}, {2, 20}};
  lsm::Run run(std::move(entries), "", 3);
  run.Get(1);
  run.Get(999);
  EXPECT_EQ(run.data_accesses(), 2u);
  EXPECT_EQ(run.futile_accesses(), 1u);
}

TEST(LsmRun, DuplicateKeysKeepLastValue) {
  std::vector<std::pair<uint64_t, uint64_t>> entries = {{5, 1}, {5, 2}, {5, 3}};
  lsm::Run run(std::move(entries), "PF[TC]", 4);
  EXPECT_EQ(run.NumEntries(), 1u);
  EXPECT_EQ(run.Get(5), 3u);
}

TEST(Table, PutGetRoundTrip) {
  TableOptions options;
  options.memtable_entries = 1000;
  Table table(options);
  Xoshiro256 rng(152);
  std::vector<std::pair<uint64_t, uint64_t>> kvs;
  for (int i = 0; i < 10000; ++i) kvs.push_back({rng.Next(), rng.Next()});
  for (auto [k, v] : kvs) table.Put(k, v);
  EXPECT_GT(table.NumRuns(), 5u);
  for (auto [k, v] : kvs) {
    const auto got = table.Get(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(Table, NewerRunsShadowOlder) {
  TableOptions options;
  options.memtable_entries = 4;
  Table table(options);
  table.Put(1, 100);
  table.Flush();
  table.Put(1, 200);
  table.Flush();
  EXPECT_EQ(table.Get(1), 200u);
}

TEST(Table, FiltersGateDataAccesses) {
  TableOptions options;
  options.memtable_entries = 5000;
  options.filter_name = "PF[CF12-Flex]";
  Table table(options);
  Xoshiro256 rng(153);
  for (int i = 0; i < 50000; ++i) table.Put(rng.Next(), 1);
  table.Flush();
  const uint64_t misses = 100000;
  for (uint64_t i = 0; i < misses; ++i) table.Get(rng.Next());
  // 10 runs x 100k misses = 1M potential futile accesses; the filters
  // should eliminate >99% of them.
  EXPECT_LT(table.FutileAccesses(), misses * table.NumRuns() / 100);
  EXPECT_GT(table.FilterBytes(), 0u);
}

TEST(Table, CompactMergesToOneRunAndPreservesData) {
  TableOptions options;
  options.memtable_entries = 500;
  Table table(options);
  Xoshiro256 rng(154);
  std::vector<std::pair<uint64_t, uint64_t>> kvs;
  for (int i = 0; i < 5000; ++i) kvs.push_back({rng.Next(), rng.Next()});
  for (auto [k, v] : kvs) table.Put(k, v);
  table.Flush();
  ASSERT_GT(table.NumRuns(), 1u);
  table.Compact();
  EXPECT_EQ(table.NumRuns(), 1u);
  for (auto [k, v] : kvs) {
    const auto got = table.Get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

TEST(Table, CompactKeepsNewestVersion) {
  TableOptions options;
  options.memtable_entries = 2;
  Table table(options);
  table.Put(42, 1);
  table.Put(43, 1);  // seals run 1
  table.Put(42, 2);
  table.Put(44, 1);  // seals run 2
  table.Compact();
  EXPECT_EQ(table.NumRuns(), 1u);
  EXPECT_EQ(table.Get(42), 2u);
}

TEST(Table, CompactReducesPerLookupProbes) {
  TableOptions options;
  options.memtable_entries = 1000;
  options.filter_name = "";  // no filters: probes go straight to data
  Table table(options);
  Xoshiro256 rng(155);
  for (int i = 0; i < 10000; ++i) table.Put(rng.Next(), 1);
  table.Flush();
  const size_t runs_before = table.NumRuns();
  for (int i = 0; i < 1000; ++i) table.Get(rng.Next());
  const uint64_t probes_fragmented = table.DataAccesses();
  EXPECT_EQ(probes_fragmented, 1000 * runs_before);
  table.Compact();
  for (int i = 0; i < 1000; ++i) table.Get(rng.Next());
  EXPECT_EQ(table.DataAccesses(), 1000u);  // counters reset with new run
}

TEST(Table, GetFromMemtableBeforeFlush) {
  Table table;
  table.Put(77, 88);
  EXPECT_EQ(table.Get(77), 88u);
  EXPECT_EQ(table.NumRuns(), 0u);
  EXPECT_FALSE(table.Get(78).has_value());
}

}  // namespace
}  // namespace prefixfilter::lsm
