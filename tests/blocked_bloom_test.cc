#include "src/filters/blocked_bloom.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(BlockedBloom, NoFalseNegativesFlexible) {
  const auto keys = RandomKeys(50000, 61);
  auto bbf = BlockedBloomFilter::MakeFlexible(keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(bbf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(bbf.Contains(k));
}

TEST(BlockedBloom, NoFalseNegativesNonFlexible) {
  const auto keys = RandomKeys(50000, 62);
  auto bbf = BlockedBloomFilter::MakeNonFlexible(keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(bbf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(bbf.Contains(k));
}

TEST(BlockedBloom, FlexFprInPaperBallpark) {
  // Table 3 reports 0.94% for BBF-Flex at 10.67 bits/key; blocked Bloom
  // variance is higher than plain Bloom, so accept a generous band.
  const auto keys = RandomKeys(200000, 63);
  auto bbf = BlockedBloomFilter::MakeFlexible(keys.size());
  for (uint64_t k : keys) bbf.Insert(k);
  const auto probes = RandomKeys(200000, 64);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += bbf.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_GT(rate, 0.003);
  EXPECT_LT(rate, 0.02);
}

TEST(BlockedBloom, NonFlexSpaceIsPowerOfTwoBlocks) {
  auto bbf = BlockedBloomFilter::MakeNonFlexible(100000);
  // 100000/32 = 3125 blocks -> next pow2 = 4096 blocks of 32 bytes.
  EXPECT_EQ(bbf.SpaceBytes(), 4096u * 32u);
}

TEST(BlockedBloom, FlexSpaceTracksBitsPerKey) {
  const uint64_t n = 1 << 20;
  auto bbf = BlockedBloomFilter::MakeFlexible(n, 10.67);
  const double bpk = 8.0 * bbf.SpaceBytes() / static_cast<double>(n);
  EXPECT_NEAR(bpk, 10.67, 0.05);
}

TEST(BlockedBloom, Name) {
  EXPECT_EQ(BlockedBloomFilter::MakeFlexible(10).Name(), "BBF-Flex");
  EXPECT_EQ(BlockedBloomFilter::MakeNonFlexible(10).Name(), "BBF");
}

TEST(BlockedBloom, NeverFails) {
  // A blocked Bloom filter saturates gracefully: inserts beyond capacity
  // still succeed (at the cost of false positives), never fail.
  auto bbf = BlockedBloomFilter::MakeFlexible(100);
  const auto keys = RandomKeys(10000, 65);
  for (uint64_t k : keys) EXPECT_TRUE(bbf.Insert(k));
  for (uint64_t k : keys) EXPECT_TRUE(bbf.Contains(k));
}

}  // namespace
}  // namespace prefixfilter
