// Tests for the per-bin-locked concurrent prefix filter (paper §4.4).
#include "src/core/concurrent_prefix_filter.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/spare.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(ConcurrentPrefixFilter, SingleThreadedMatchesContract) {
  const uint64_t n = 100000;
  const auto keys = RandomKeys(n, 161);
  ConcurrentPrefixFilter<SpareCf12Traits> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
}

TEST(ConcurrentPrefixFilter, ParallelInsertNoLostKeys) {
  const uint64_t n = 200000;
  const int kThreads = 4;
  const auto keys = RandomKeys(n, 162);
  ConcurrentPrefixFilter<SpareCf12Traits> pf(n);
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (uint64_t i = t; i < n; i += kThreads) {
        if (!pf.Insert(keys[i])) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
}

TEST(ConcurrentPrefixFilter, ConcurrentReadersDuringWrites) {
  const uint64_t n = 100000;
  const auto keys = RandomKeys(n, 163);
  ConcurrentPrefixFilter<SpareTcTraits> pf(n);
  // Pre-insert half; readers continuously verify that half while writers
  // add the rest.
  const uint64_t half = n / 2;
  for (uint64_t i = 0; i < half; ++i) ASSERT_TRUE(pf.Insert(keys[i]));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&]() {
    Xoshiro256 rng(164);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t k = keys[rng.Below(half)];
      if (!pf.Contains(k)) read_errors.fetch_add(1);
    }
  });
  std::thread writer([&]() {
    for (uint64_t i = half; i < n; ++i) pf.Insert(keys[i]);
  });
  writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
}

TEST(ConcurrentPrefixFilter, SpareShardCountIsConfigurable) {
  const uint64_t n = 100000;
  const auto keys = RandomKeys(n, 167);
  // Defaults preserved; explicit counts respected; non-powers-of-two round
  // up to the next power of two (the shard selector masks).
  ConcurrentPrefixFilter<SpareCf12Traits> def(n);
  EXPECT_EQ(def.spare_shards(), 16u);
  ConcurrentPrefixFilter<SpareCf12Traits> rounded(n, 0.95, 168, 5);
  EXPECT_EQ(rounded.spare_shards(), 8u);
  for (uint32_t shards : {1u, 4u, 64u}) {
    ConcurrentPrefixFilter<SpareCf12Traits> pf(n, 0.95, 169 + shards, shards);
    ASSERT_EQ(pf.spare_shards(), shards);
    std::vector<std::thread> threads;
    std::atomic<uint64_t> failures{0};
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t]() {
        for (uint64_t i = t; i < n; i += 2) {
          if (!pf.Insert(keys[i])) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0u) << "shards=" << shards;
    for (uint64_t k : keys) {
      ASSERT_TRUE(pf.Contains(k)) << "shards=" << shards;
    }
  }
}

TEST(ConcurrentPrefixFilter, FprComparableToSequential) {
  const uint64_t n = 1 << 17;
  const auto keys = RandomKeys(n, 165);
  ConcurrentPrefixFilter<SpareCf12Traits> pf(n);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t]() {
      for (uint64_t i = t; i < n; i += 2) pf.Insert(keys[i]);
    });
  }
  for (auto& th : threads) th.join();
  const auto probes = RandomKeys(1 << 19, 166);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += pf.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_LT(rate, 0.006);
}

// Regression for a lock-discipline gap the thread-safety annotations
// surfaced: SpaceBytes() summed the spare shards (guarded members) without
// their locks.  The read is geometry-only today, so this pins the
// reader-visible contract (bins geometry is a fixed floor, readings never
// decrease during an insert-only workload) and gives the TSan CI leg a
// tripwire should the spare ever grow in place.
TEST(ConcurrentPrefixFilter, SpaceBytesConcurrentWithInserts) {
  const uint64_t n = 200000;
  const auto keys = RandomKeys(n, 167);
  ConcurrentPrefixFilter<SpareCf12Traits> pf(n);

  const size_t empty_space = pf.SpaceBytes();
  ASSERT_GT(empty_space, 0u);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::thread observer([&]() {
    size_t last = empty_space;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t now = pf.SpaceBytes();
      if (now < last || now < empty_space) violations.fetch_add(1);
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t]() {
      for (uint64_t i = t; i < n; i += 2) pf.Insert(keys[i]);
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  observer.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(pf.SpaceBytes(), empty_space);
}

}  // namespace
}  // namespace prefixfilter
