// Tests for src/workload/: determinism under a fixed seed, zipfian skew
// sanity, guaranteed-negative disjointness, ground-truth consistency, and
// the interleaved op stream's invariants.
#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/random.h"
#include "src/workload/zipf.h"

namespace prefixfilter::workload {
namespace {

constexpr uint64_t kKeys = 8192;
constexpr uint64_t kQueries = 1 << 16;
constexpr uint64_t kSeed = 0xfeedbeefULL;

Spec BaseSpec(const std::string& name) {
  Spec spec;
  if (!FindStandardSpec(name, kKeys, kQueries, kSeed, &spec)) {
    ADD_FAILURE() << "unknown standard spec " << name;
  }
  return spec;
}

TEST(WorkloadTest, StandardSuiteHasFiveNamedWorkloads) {
  const auto suite = StandardSuite(kKeys, kQueries, kSeed);
  ASSERT_EQ(suite.size(), 5u);
  std::unordered_set<std::string> names;
  for (const auto& spec : suite) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
    EXPECT_EQ(spec.num_keys, kKeys);
    EXPECT_EQ(spec.num_queries, kQueries);
    EXPECT_EQ(spec.seed, kSeed);
  }
  Spec unused;
  EXPECT_FALSE(FindStandardSpec("no-such-workload", 1, 1, 1, &unused));
}

TEST(WorkloadTest, GenerationIsDeterministicUnderFixedSeed) {
  for (const auto& spec : StandardSuite(kKeys, kQueries, kSeed)) {
    const Stream a = Generate(spec);
    const Stream b = Generate(spec);
    EXPECT_EQ(a.insert_keys, b.insert_keys) << spec.name;
    EXPECT_EQ(a.queries, b.queries) << spec.name;
    EXPECT_EQ(a.query_expected, b.query_expected) << spec.name;
  }
}

TEST(WorkloadTest, DifferentSeedsProduceDifferentStreams) {
  Spec spec = BaseSpec("uniform-negative");
  const Stream a = Generate(spec);
  spec.seed ^= 1;
  const Stream b = Generate(spec);
  EXPECT_NE(a.insert_keys, b.insert_keys);
  EXPECT_NE(a.queries, b.queries);
}

TEST(WorkloadTest, ChangingQueryCountKeepsInsertKeysStable) {
  Spec spec = BaseSpec("mixed-50-50");
  const Stream a = Generate(spec);
  spec.num_queries /= 2;
  const Stream b = Generate(spec);
  EXPECT_EQ(a.insert_keys, b.insert_keys);
}

TEST(WorkloadTest, DisjointNegativesNeverHitInsertedSet) {
  const Stream s = Generate(BaseSpec("disjoint-negative"));
  ASSERT_EQ(s.queries.size(), kQueries);
  EXPECT_EQ(s.NumNegativeQueries(), kQueries);
  const std::unordered_set<uint64_t> inserted(s.insert_keys.begin(),
                                              s.insert_keys.end());
  constexpr uint64_t kMsb = uint64_t{1} << 63;
  for (uint64_t k : s.insert_keys) {
    EXPECT_EQ(k & kMsb, 0u) << "insert key escaped the lower half-universe";
  }
  for (uint64_t q : s.queries) {
    EXPECT_NE(q & kMsb, 0u) << "negative query escaped the upper half";
    EXPECT_EQ(inserted.count(q), 0u);
  }
}

TEST(WorkloadTest, GroundTruthMatchesInsertedSet) {
  const Stream s = Generate(BaseSpec("mixed-50-50"));
  const std::unordered_set<uint64_t> inserted(s.insert_keys.begin(),
                                              s.insert_keys.end());
  uint64_t positives = 0;
  for (size_t i = 0; i < s.queries.size(); ++i) {
    if (s.query_expected[i]) {
      EXPECT_EQ(inserted.count(s.queries[i]), 1u);
      ++positives;
    } else {
      // Uniform negatives collide with 8192 inserted keys with probability
      // ~ 2^-50 per query; the fixed seed makes this check deterministic.
      EXPECT_EQ(inserted.count(s.queries[i]), 0u);
    }
  }
  // ~50/50 mix (binomial; 6 sigma ~ 0.6% at 64k queries).
  EXPECT_NEAR(static_cast<double>(positives) / s.queries.size(), 0.5, 0.02);
}

TEST(WorkloadTest, ZipfianSkewConcentratesOnPopularRanks) {
  const Stream s = Generate(BaseSpec("zipf-positive"));
  EXPECT_EQ(s.NumNegativeQueries(), 0u);

  // Frequency of the most popular key: zipf(0.99) gives rank 0 probability
  // ~ 1/H(n) ~ 10%, vs 1/8192 ~ 0.012% under uniform sampling.
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t q : s.queries) ++counts[q];
  uint64_t max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  const double top_frac =
      static_cast<double>(max_count) / static_cast<double>(s.queries.size());
  EXPECT_GT(top_frac, 0.05) << "zipf head not heavy enough";

  // Top-1% of distinct keys should cover well over half the stream
  // (uniform would cover ~1%).
  std::vector<uint64_t> freqs;
  for (const auto& [key, count] : counts) freqs.push_back(count);
  std::sort(freqs.rbegin(), freqs.rend());
  uint64_t head = 0;
  const size_t one_pct = std::max<size_t>(1, kKeys / 100);
  for (size_t i = 0; i < std::min(one_pct, freqs.size()); ++i) head += freqs[i];
  EXPECT_GT(static_cast<double>(head) / s.queries.size(), 0.5);
}

TEST(WorkloadTest, ZipfianGeneratorStaysInRangeAndIsDeterministic) {
  ZipfianGenerator zipf(1000, 0.99);
  Xoshiro256 rng_a(7), rng_b(7);
  ZipfianGenerator zipf_b(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t a = zipf.Next(rng_a);
    ASSERT_LT(a, 1000u);
    ASSERT_EQ(a, zipf_b.Next(rng_b));
  }
}

TEST(WorkloadTest, AdversarialHotSetDominatesStream) {
  const Stream s = Generate(BaseSpec("adversarial-dup"));
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t q : s.queries) ++counts[q];
  // 90% of ~64k queries land on 64 hot keys: the 64 most frequent keys
  // must cover ~90% of the stream.
  std::vector<uint64_t> freqs;
  for (const auto& [key, count] : counts) freqs.push_back(count);
  std::sort(freqs.rbegin(), freqs.rend());
  uint64_t head = 0;
  for (size_t i = 0; i < 64 && i < freqs.size(); ++i) head += freqs[i];
  EXPECT_NEAR(static_cast<double>(head) / s.queries.size(), 0.9, 0.02);
  // The hot set mixes present and absent keys.
  EXPECT_GT(s.NumNegativeQueries(), kQueries / 4);
  EXPECT_LT(s.NumNegativeQueries(), 3 * kQueries / 4);
}

TEST(WorkloadTest, InterleavedOpsRespectCapacityAndGroundTruth) {
  Spec spec;
  spec.name = "mixed-rw";
  spec.num_keys = kKeys;
  spec.num_queries = kQueries;
  spec.insert_ratio = 0.25;
  spec.positive_fraction = 0.5;
  spec.seed = kSeed;
  const Stream s = Generate(spec);
  ASSERT_EQ(s.ops.size(), kKeys + kQueries);

  std::unordered_set<uint64_t> inserted;
  uint64_t inserts = 0;
  for (const Op& op : s.ops) {
    if (op.is_insert) {
      // Inserts replay insert_keys in order (so capacity is never exceeded).
      ASSERT_LT(inserts, s.insert_keys.size());
      EXPECT_EQ(op.key, s.insert_keys[inserts]);
      inserted.insert(op.key);
      ++inserts;
    } else if (op.expected_positive) {
      EXPECT_EQ(inserted.count(op.key), 1u)
          << "positive query before its key was inserted";
    } else {
      EXPECT_EQ(inserted.count(op.key), 0u);
    }
  }
  EXPECT_EQ(inserts, kKeys);

  // Deterministic too.
  const Stream again = Generate(spec);
  ASSERT_EQ(again.ops.size(), s.ops.size());
  for (size_t i = 0; i < s.ops.size(); ++i) {
    ASSERT_EQ(s.ops[i].key, again.ops[i].key);
    ASSERT_EQ(s.ops[i].is_insert, again.ops[i].is_insert);
  }
}

TEST(WorkloadTest, RoundWorkloadShapesAndDeterminism) {
  const RoundWorkload a = RoundWorkload::Generate(10000, 10, kSeed);
  const RoundWorkload b = RoundWorkload::Generate(10000, 10, kSeed);
  EXPECT_EQ(a.insert_keys, b.insert_keys);
  ASSERT_EQ(a.uniform_queries.size(), 10u);
  ASSERT_EQ(a.positive_queries.size(), 10u);
  std::unordered_set<uint64_t> inserted(a.insert_keys.begin(),
                                        a.insert_keys.end());
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(a.uniform_queries[round].size(), 1000u);
    EXPECT_EQ(a.uniform_queries[round], b.uniform_queries[round]);
    // Positive queries sample keys inserted by the end of this round.
    const uint64_t limit = 1000 * (round + 1);
    for (uint64_t q : a.positive_queries[round]) {
      bool found = false;
      for (uint64_t i = 0; i < limit && !found; ++i) {
        found = a.insert_keys[i] == q;
      }
      EXPECT_TRUE(found);
    }
    if (round > 2) break;  // the inner scan is quadratic; three rounds suffice
  }
}

}  // namespace
}  // namespace prefixfilter::workload
