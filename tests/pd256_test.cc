// Unit tests for PD256, the prefix filter's 32-byte pocket dictionary
// (paper §5), including the max-element extension of §5.2.3 and the query
// cutoff paths of §5.2.2.
#include "src/pd/pd256.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

PD256 MakeEmptyPd() {
  PD256 pd;
  std::memset(&pd, 0, sizeof(pd));
  return pd;
}

TEST(PD256, ZeroMemoryIsEmpty) {
  PD256 pd = MakeEmptyPd();
  EXPECT_EQ(pd.Size(), 0);
  EXPECT_FALSE(pd.Full());
  EXPECT_FALSE(pd.Overflowed());
  for (int q = 0; q < PD256::kNumLists; ++q) {
    EXPECT_EQ(pd.OccupancyOf(q), 0);
    EXPECT_FALSE(pd.Find(q, 0));
    EXPECT_FALSE(pd.Find(q, 255));
  }
}

TEST(PD256, InsertThenFind) {
  PD256 pd = MakeEmptyPd();
  EXPECT_TRUE(pd.Insert(3, 77));
  EXPECT_TRUE(pd.Find(3, 77));
  EXPECT_FALSE(pd.Find(3, 78));
  EXPECT_FALSE(pd.Find(4, 77));  // same remainder, different list
  EXPECT_FALSE(pd.Find(2, 77));
  EXPECT_EQ(pd.Size(), 1);
  EXPECT_EQ(pd.OccupancyOf(3), 1);
}

TEST(PD256, PaperExampleEncoding) {
  // The paper's PD(8,4,7) example, scaled to our domain: insert
  // {(1,13),(2,15),(3,3),(5,0),(5,5),(5,15),(7,6)} and verify decode order.
  PD256 pd = MakeEmptyPd();
  const std::vector<std::pair<int, uint8_t>> elems = {
      {1, 13}, {2, 15}, {3, 3}, {5, 0}, {5, 5}, {5, 15}, {7, 6}};
  for (auto [q, r] : elems) ASSERT_TRUE(pd.Insert(q, r));
  EXPECT_EQ(pd.Size(), 7);
  EXPECT_EQ(pd.OccupancyOf(0), 0);
  EXPECT_EQ(pd.OccupancyOf(1), 1);
  EXPECT_EQ(pd.OccupancyOf(5), 3);
  EXPECT_EQ(pd.OccupancyOf(7), 1);
  for (auto [q, r] : elems) EXPECT_TRUE(pd.Find(q, r)) << q << "," << int(r);
  // Decode must group by quotient in non-decreasing order.
  const auto decoded = pd.Decode();
  ASSERT_EQ(decoded.size(), 7u);
  for (size_t i = 1; i < decoded.size(); ++i) {
    EXPECT_LE(decoded[i - 1].first, decoded[i].first);
  }
}

TEST(PD256, DuplicateElementsSupported) {
  // The PD stores a multiset (distinct keys can share a fingerprint).
  PD256 pd = MakeEmptyPd();
  EXPECT_TRUE(pd.Insert(5, 9));
  EXPECT_TRUE(pd.Insert(5, 9));
  EXPECT_EQ(pd.Size(), 2);
  EXPECT_EQ(pd.OccupancyOf(5), 2);
  EXPECT_TRUE(pd.Find(5, 9));
}

TEST(PD256, FillToCapacityThenReject) {
  PD256 pd = MakeEmptyPd();
  Xoshiro256 rng(31);
  for (int i = 0; i < PD256::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(static_cast<int>(rng.Below(25)),
                          static_cast<uint8_t>(rng.Next())));
  }
  EXPECT_TRUE(pd.Full());
  EXPECT_FALSE(pd.Insert(0, 0));
  EXPECT_EQ(pd.Size(), PD256::kCapacity);
}

TEST(PD256, BoundaryQuotients) {
  PD256 pd = MakeEmptyPd();
  EXPECT_TRUE(pd.Insert(0, 0));
  EXPECT_TRUE(pd.Insert(0, 255));
  EXPECT_TRUE(pd.Insert(24, 0));
  EXPECT_TRUE(pd.Insert(24, 255));
  EXPECT_TRUE(pd.Find(0, 0));
  EXPECT_TRUE(pd.Find(0, 255));
  EXPECT_TRUE(pd.Find(24, 0));
  EXPECT_TRUE(pd.Find(24, 255));
  EXPECT_FALSE(pd.Find(12, 0));
  EXPECT_FALSE(pd.Find(12, 255));
}

TEST(PD256, AllElementsSameList) {
  PD256 pd = MakeEmptyPd();
  for (int i = 0; i < PD256::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(7, static_cast<uint8_t>(i * 10)));
  }
  EXPECT_TRUE(pd.Full());
  EXPECT_EQ(pd.OccupancyOf(7), PD256::kCapacity);
  for (int i = 0; i < PD256::kCapacity; ++i) {
    EXPECT_TRUE(pd.Find(7, static_cast<uint8_t>(i * 10)));
  }
  EXPECT_FALSE(pd.Find(7, 5));
  EXPECT_FALSE(pd.Find(6, 0));
  EXPECT_FALSE(pd.Find(8, 0));
}

TEST(PD256, SameRemainderEveryList) {
  // Stresses the multi-match Select fallback: remainder 42 in all 25 lists.
  PD256 pd = MakeEmptyPd();
  for (int q = 0; q < PD256::kNumLists; ++q) ASSERT_TRUE(pd.Insert(q, 42));
  for (int q = 0; q < PD256::kNumLists; ++q) {
    EXPECT_TRUE(pd.Find(q, 42)) << "q=" << q;
    EXPECT_FALSE(pd.Find(q, 43)) << "q=" << q;
  }
}

TEST(PD256, QueryPathsReported) {
  PD256 pd = MakeEmptyPd();
  ASSERT_TRUE(pd.Insert(1, 10));
  ASSERT_TRUE(pd.Insert(2, 10));
  ASSERT_TRUE(pd.Insert(3, 30));

  PdQueryPath path;
  // No body byte equals 99: cutoff answers immediately.
  EXPECT_FALSE(pd.FindWithPath(5, 99, &path));
  EXPECT_EQ(path, PdQueryPath::kEmptyMask);
  // 30 appears once: single-candidate popcount path.
  EXPECT_TRUE(pd.FindWithPath(3, 30, &path));
  EXPECT_EQ(path, PdQueryPath::kSingleCandidate);
  EXPECT_FALSE(pd.FindWithPath(4, 30, &path));
  EXPECT_EQ(path, PdQueryPath::kSingleCandidate);
  // 10 appears twice: Select fallback.
  EXPECT_TRUE(pd.FindWithPath(1, 10, &path));
  EXPECT_EQ(path, PdQueryPath::kSelectFallback);
  EXPECT_FALSE(pd.FindWithPath(7, 10, &path));
  EXPECT_EQ(path, PdQueryPath::kSelectFallback);
}

// Claims 3 & 4 (§5.2.2), empirically: for a PD filled with uniform random
// elements, >90% of random negative queries see v_r == 0, and >95% of the
// rest are single-candidate.
TEST(PD256, CutoffEffectivenessMatchesClaims) {
  Xoshiro256 rng(32);
  uint64_t empty = 0, single = 0, fallback = 0;
  for (int trial = 0; trial < 400; ++trial) {
    PD256 pd = MakeEmptyPd();
    for (int i = 0; i < PD256::kCapacity; ++i) {
      pd.Insert(static_cast<int>(rng.Below(25)),
                static_cast<uint8_t>(rng.Next()));
    }
    for (int probe = 0; probe < 100; ++probe) {
      PdQueryPath path;
      pd.FindWithPath(static_cast<int>(rng.Below(25)),
                      static_cast<uint8_t>(rng.Next()), &path);
      switch (path) {
        case PdQueryPath::kEmptyMask: ++empty; break;
        case PdQueryPath::kSingleCandidate: ++single; break;
        case PdQueryPath::kSelectFallback: ++fallback; break;
      }
    }
  }
  const double total = static_cast<double>(empty + single + fallback);
  EXPECT_GT(empty / total, 0.88);                      // Claim 3: ~0.902
  EXPECT_GT(single / (single + fallback + 1e-9), 0.93);  // Claim 4: ~0.953
}

// --- max-element support (§5.2.3) ------------------------------------------

TEST(PD256, MarkOverflowedExposesMax) {
  PD256 pd = MakeEmptyPd();
  Xoshiro256 rng(33);
  std::multiset<uint16_t> model;
  for (int i = 0; i < PD256::kCapacity; ++i) {
    const int q = static_cast<int>(rng.Below(25));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(pd.Insert(q, r));
    model.insert(static_cast<uint16_t>((q << 8) | r));
  }
  pd.MarkOverflowed();
  EXPECT_TRUE(pd.Overflowed());
  EXPECT_EQ(pd.MaxFingerprint(), *model.rbegin());
}

TEST(PD256, ReplaceMaxKeepsPrefix) {
  PD256 pd = MakeEmptyPd();
  std::multiset<uint16_t> model;
  Xoshiro256 rng(34);
  for (int i = 0; i < PD256::kCapacity; ++i) {
    const int q = static_cast<int>(rng.Below(25));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(pd.Insert(q, r));
    model.insert(static_cast<uint16_t>((q << 8) | r));
  }
  pd.MarkOverflowed();

  // Repeatedly insert fingerprints smaller than the current max and check
  // the PD always holds exactly the 25 smallest fingerprints seen.
  for (int round = 0; round < 200; ++round) {
    const uint16_t fp_max = pd.MaxFingerprint();
    EXPECT_EQ(fp_max, *model.rbegin());
    const int q = static_cast<int>(rng.Below(25));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    const uint16_t fp = static_cast<uint16_t>((q << 8) | r);
    if (fp > fp_max) continue;  // the prefix filter would forward it
    pd.ReplaceMax(q, r);
    model.erase(std::prev(model.end()));
    model.insert(fp);
    ASSERT_TRUE(pd.Full());
    // Verify contents == model via Decode.
    std::multiset<uint16_t> decoded;
    for (auto [dq, dr] : pd.Decode()) {
      decoded.insert(static_cast<uint16_t>((dq << 8) | dr));
    }
    ASSERT_EQ(decoded, model) << "round " << round;
  }
}

TEST(PD256, ReplaceMaxWithEqualFingerprint) {
  PD256 pd = MakeEmptyPd();
  for (int i = 0; i < PD256::kCapacity; ++i) ASSERT_TRUE(pd.Insert(10, 50));
  pd.MarkOverflowed();
  EXPECT_EQ(pd.MaxFingerprint(), (10 << 8) | 50);
  pd.ReplaceMax(10, 50);  // equal fingerprint: a legal no-op-like replace
  EXPECT_TRUE(pd.Full());
  EXPECT_EQ(pd.MaxFingerprint(), (10 << 8) | 50);
  EXPECT_TRUE(pd.Find(10, 50));
}

TEST(PD256, MaxInvariantSurvivesManyReplacements) {
  // Descending replacement chain touching list boundaries.
  PD256 pd = MakeEmptyPd();
  for (int i = 0; i < PD256::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(24, static_cast<uint8_t>(200 + i % 55)));
  }
  pd.MarkOverflowed();
  // Push progressively smaller fingerprints through every list.
  for (int q = 23; q >= 0; --q) {
    for (int j = 0; j < 3; ++j) {
      const uint8_t r = static_cast<uint8_t>(q * 10 + j);
      const uint16_t fp = static_cast<uint16_t>((q << 8) | r);
      ASSERT_LT(fp, pd.MaxFingerprint());
      pd.ReplaceMax(q, r);
      EXPECT_TRUE(pd.Find(q, r));
      EXPECT_TRUE(pd.Full());
    }
  }
  // After 72 replacements the 25 smallest inserted fingerprints remain: the
  // last lists' values (q=0..7 x 3 values, plus q=8's smallest).
  for (int q = 0; q <= 7; ++q) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_TRUE(pd.Find(q, static_cast<uint8_t>(q * 10 + j)));
    }
  }
}

TEST(PD256, SizeOfStructIs32Bytes) {
  EXPECT_EQ(sizeof(PD256), 32u);
  EXPECT_EQ(alignof(PD256), 32u);
}

}  // namespace
}  // namespace prefixfilter
