// Tests for src/util/json.h: round-tripping, escaping, number handling, and
// parse-failure behavior — the benchmark result pipeline (bench/harness.h ->
// bench_compare) depends on documents surviving Dump -> Parse unchanged.
#include "src/util/json.h"

#include <gtest/gtest.h>

namespace prefixfilter::json {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  Value doc = Value::MakeObject();
  doc.Set("null_member", Value());
  doc.Set("yes", Value(true));
  doc.Set("no", Value(false));
  doc.Set("int", Value(int64_t{-12345}));
  doc.Set("big", Value(uint64_t{1} << 52));
  doc.Set("pi", Value(3.14159265358979));
  doc.Set("str", Value("hello"));

  Value parsed;
  ASSERT_TRUE(Value::Parse(doc.Dump(), &parsed));
  EXPECT_TRUE(parsed.Get("null_member")->is_null());
  EXPECT_TRUE(parsed.Get("yes")->AsBool());
  EXPECT_FALSE(parsed.Get("no")->AsBool());
  EXPECT_EQ(parsed.Get("int")->AsInt(), -12345);
  EXPECT_EQ(parsed.Get("big")->AsInt(), int64_t{1} << 52);
  EXPECT_DOUBLE_EQ(parsed.GetDouble("pi"), 3.14159265358979);
  EXPECT_EQ(parsed.GetString("str"), "hello");
}

TEST(JsonTest, IntegersSerializeWithoutExponent) {
  Value v(uint64_t{4194304});
  EXPECT_EQ(v.Dump(), "4194304");
  Value neg(int64_t{-7});
  EXPECT_EQ(neg.Dump(), "-7");
}

TEST(JsonTest, StringEscaping) {
  Value doc = Value::MakeObject();
  doc.Set("s", Value("quote\" backslash\\ newline\n tab\t ctrl\x01"));
  Value parsed;
  ASSERT_TRUE(Value::Parse(doc.Dump(), &parsed));
  EXPECT_EQ(parsed.GetString("s"), "quote\" backslash\\ newline\n tab\t ctrl\x01");
}

TEST(JsonTest, NestedContainersRoundTrip) {
  Value row = Value::MakeObject();
  row.Set("filter", Value("PF[TC]"));
  Value metrics = Value::MakeObject();
  metrics.Set("query_mops", Value(123.456));
  metrics.Set("fpr", Value(0.0038));
  row.Set("metrics", std::move(metrics));
  Value results = Value::MakeArray();
  results.Append(std::move(row));
  Value doc = Value::MakeObject();
  doc.Set("schema", Value("prefixfilter-bench-v1"));
  doc.Set("results", std::move(results));

  for (int indent : {0, 2}) {
    Value parsed;
    ASSERT_TRUE(Value::Parse(doc.Dump(indent), &parsed)) << indent;
    const Value* parsed_results = parsed.Get("results");
    ASSERT_NE(parsed_results, nullptr);
    ASSERT_EQ(parsed_results->AsArray().size(), 1u);
    const Value& parsed_row = parsed_results->AsArray()[0];
    EXPECT_EQ(parsed_row.GetString("filter"), "PF[TC]");
    EXPECT_DOUBLE_EQ(parsed_row.Get("metrics")->GetDouble("fpr"), 0.0038);
  }
}

TEST(JsonTest, ObjectSetOverwritesAndPreservesOrder) {
  Value doc = Value::MakeObject();
  doc.Set("a", Value(1));
  doc.Set("b", Value(2));
  doc.Set("a", Value(3));
  ASSERT_EQ(doc.AsObject().size(), 2u);
  EXPECT_EQ(doc.AsObject()[0].first, "a");
  EXPECT_EQ(doc.GetDouble("a"), 3);
  EXPECT_EQ(doc.Get("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.GetDouble("missing", -1.0), -1.0);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  Value out;
  std::string error;
  EXPECT_FALSE(Value::Parse("", &out, &error));
  EXPECT_FALSE(Value::Parse("{", &out, &error));
  EXPECT_FALSE(Value::Parse("{\"a\":}", &out, &error));
  EXPECT_FALSE(Value::Parse("[1,2,]", &out, &error));
  EXPECT_FALSE(Value::Parse("\"unterminated", &out, &error));
  EXPECT_FALSE(Value::Parse("{\"a\":1} trailing", &out, &error));
  EXPECT_FALSE(Value::Parse("nulll", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, ParseAcceptsWhitespaceAndUnicodeEscapes) {
  Value out;
  ASSERT_TRUE(Value::Parse("  { \"a\" : [ 1 , \"\\u0041\" ] }\n", &out));
  EXPECT_EQ(out.Get("a")->AsArray()[1].AsString(), "A");
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  Value doc = Value::MakeObject();
  doc.Set("inf", Value(1.0 / 0.0));
  Value parsed;
  ASSERT_TRUE(Value::Parse(doc.Dump(), &parsed));
  EXPECT_TRUE(parsed.Get("inf")->is_null());
}

}  // namespace
}  // namespace prefixfilter::json
