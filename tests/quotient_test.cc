#include "src/filters/quotient.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(Quotient, EmptyContainsNothing) {
  QuotientFilter qf(1000);
  const auto probes = RandomKeys(10000, 91);
  for (uint64_t k : probes) EXPECT_FALSE(qf.Contains(k));
}

TEST(Quotient, NoFalseNegativesSmall) {
  const auto keys = RandomKeys(1000, 92);
  QuotientFilter qf(keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(qf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(qf.Contains(k));
}

TEST(Quotient, NoFalseNegativesLarge) {
  const auto keys = RandomKeys(200000, 93);
  QuotientFilter qf(keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(qf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(qf.Contains(k));
}

TEST(Quotient, NoFalseNegativesAtHighLoad) {
  // Long shifted clusters form near the max load factor; membership must
  // survive them.
  const uint64_t n = 60000;
  const auto keys = RandomKeys(n, 94);
  QuotientFilter qf(n);
  for (uint64_t k : keys) ASSERT_TRUE(qf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(qf.Contains(k));
}

TEST(Quotient, FprNearRemainderWidth) {
  const auto keys = RandomKeys(100000, 95);
  QuotientFilter qf(keys.size());
  for (uint64_t k : keys) qf.Insert(k);
  const auto probes = RandomKeys(400000, 96);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += qf.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  // ~ load * 2^-13 ~ 0.01%; accept up to 0.05%.
  EXPECT_LT(rate, 0.0005);
}

TEST(Quotient, InsertIdempotentForSameKey) {
  QuotientFilter qf(1000);
  EXPECT_TRUE(qf.Insert(7));
  EXPECT_TRUE(qf.Insert(7));  // duplicate remainders stored once
  EXPECT_TRUE(qf.Contains(7));
}

TEST(Quotient, RejectsBeyondMaxLoad) {
  QuotientFilter qf(100);
  const auto keys = RandomKeys(10000, 97);
  size_t inserted = 0;
  while (inserted < keys.size() && qf.Insert(keys[inserted])) ++inserted;
  EXPECT_LT(inserted, keys.size());
  // Everything inserted before the failure must still be found.
  for (size_t i = 0; i < inserted; ++i) ASSERT_TRUE(qf.Contains(keys[i]));
}

}  // namespace
}  // namespace prefixfilter
