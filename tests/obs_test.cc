// Unit tests for the observability subsystem (src/obs): log-linear histogram
// bucket math, percentile extraction, snapshot merging, thread-striped
// counter exactness under concurrency, registry idempotence and collector
// lifecycle, the binary sample wire codec, and the Prometheus text renderer.
#include "src/obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/exposition.h"
#include "src/obs/trace.h"
#include "src/obs/trace_sink.h"
#include "src/util/serialize.h"

namespace prefixfilter::obs {
namespace {

// --- bucket math (pure statics: hold in every build configuration) ---------

TEST(LatencyHistogram, BucketIndexIsExactBelowSixteen) {
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(LatencyHistogram::BucketWidth(static_cast<uint32_t>(v)), 1u);
  }
}

TEST(LatencyHistogram, BucketIndexIsMonotone) {
  // Sweep octave boundaries and their neighborhoods: indices never decrease
  // and never skip more than one bucket.
  uint32_t prev = 0;
  for (uint64_t v = 0; v < (1u << 20); ++v) {
    const uint32_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_GE(index, prev) << "v=" << v;
    ASSERT_LE(index, prev + 1) << "v=" << v;
    prev = index;
  }
  for (int exp = 20; exp < 63; ++exp) {
    for (int64_t delta = -2; delta <= 2; ++delta) {
      const uint64_t v = (uint64_t{1} << exp) + static_cast<uint64_t>(delta);
      const uint64_t w = v + 1;
      ASSERT_LE(LatencyHistogram::BucketIndex(v),
                LatencyHistogram::BucketIndex(w));
    }
  }
}

TEST(LatencyHistogram, LowerBoundInvertsBucketIndex) {
  for (uint32_t index = 0; index < LatencyHistogram::kNumBuckets; ++index) {
    const uint64_t low = LatencyHistogram::BucketLowerBound(index);
    EXPECT_EQ(LatencyHistogram::BucketIndex(low), index);
    // The last value of the bucket still maps to it (the final bucket also
    // absorbs everything beyond the covered range).
    const uint64_t high = low + LatencyHistogram::BucketWidth(index) - 1;
    if (index + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_EQ(LatencyHistogram::BucketIndex(high), index);
      EXPECT_EQ(LatencyHistogram::BucketIndex(high + 1), index + 1);
    }
  }
}

TEST(LatencyHistogram, HugeValuesClampIntoLastBucket) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogram, RelativeBucketErrorIsBounded) {
  // Log-linear design point: above 16, bucket width / lower bound <= 1/16.
  for (uint32_t index = 16; index < LatencyHistogram::kNumBuckets; ++index) {
    const double low =
        static_cast<double>(LatencyHistogram::BucketLowerBound(index));
    const double width =
        static_cast<double>(LatencyHistogram::BucketWidth(index));
    EXPECT_LE(width / low, 1.0 / 16 + 1e-9) << "index=" << index;
  }
}

// --- recording and percentiles ---------------------------------------------

TEST(LatencyHistogram, PercentilesOnKnownDistribution) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  LatencyHistogram h;
  // 1..1000 exactly once: p50 ~ 500, p90 ~ 900, p99 ~ 990 (within one
  // sub-bucket, ~6%).
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 1000u * 1001 / 2);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_NEAR(snap.Percentile(0.50), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(snap.Percentile(0.90), 900.0, 900.0 / 16 + 1);
  EXPECT_NEAR(snap.Percentile(0.99), 990.0, 990.0 / 16 + 1);
  EXPECT_NEAR(snap.Mean(), 500.5, 1e-9);
  // Quantile edges.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Percentile(0.5), 0.0);
  EXPECT_GE(snap.Percentile(1.0), 1000.0 * 15 / 16);
  EXPECT_LE(snap.Percentile(0.0), snap.Percentile(1.0));
}

TEST(LatencyHistogram, ExactPercentilesBelowSixteen) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) {
    for (int rep = 0; rep < 10; ++rep) h.Record(v);
  }
  const HistogramSnapshot snap = h.Snapshot();
  // Unit buckets below 16: percentiles are exact there.
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0 / 16), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 15.0);
}

TEST(HistogramSnapshot, MergeMatchesCombinedRecording) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  LatencyHistogram a, b, combined;
  for (uint64_t v = 1; v <= 500; ++v) {
    a.Record(v * 3);
    combined.Record(v * 3);
  }
  for (uint64_t v = 1; v <= 300; ++v) {
    b.Record(v * 7);
    combined.Record(v * 7);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expect = combined.Snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.min, expect.min);
  EXPECT_EQ(merged.max, expect.max);
  ASSERT_EQ(merged.buckets, expect.buckets);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(q), expect.Percentile(q));
  }
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i % 977));
      }
    });
  }
  for (auto& t : pool) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (const auto& [index, count] : snap.buckets) {
    bucket_total += count;
    (void)index;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// --- counters ----------------------------------------------------------------

TEST(Counter, ConcurrentAddsSumExactly) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  Counter c;
  constexpr int kThreads = 16;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c]() {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Gauge, AddAndSet) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  Gauge g;
  g.Add(5);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 3);
  g.Set(-7);
  EXPECT_EQ(g.Value(), -7);
}

// --- registry ----------------------------------------------------------------

TEST(MetricsRegistry, GetIsIdempotentAndLabelOrderInsensitive) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count", {{"op", "q"}, {"shard", "1"}});
  Counter* b = registry.GetCounter("x.count", {{"shard", "1"}, {"op", "q"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("x.count", {{"op", "q"}}));
  EXPECT_NE(a, registry.GetCounter("x.count"));
  // Same name, different kind: distinct instruments, both collectable.
  LatencyHistogram* h = registry.GetHistogram("x.count");
  EXPECT_NE(static_cast<void*>(h), static_cast<void*>(a));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
}

TEST(MetricsRegistry, CollectReportsInstrumentsAndCollectors) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(41);
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("b.depth")->Set(7);
  registry.GetHistogram("c.ns", {{"op", "q"}})->Record(100);
  const uint64_t id =
      registry.AddCollector([](std::vector<MetricSample>* samples) {
        MetricSample s;
        s.name = "d.external";
        s.kind = MetricKind::kCounter;
        s.value = 12;
        samples->push_back(std::move(s));
      });

  std::vector<MetricSample> samples = registry.Collect();
  const MetricSample* a = FindSample(samples, "a.count");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 42);
  const MetricSample* b = FindSample(samples, "b.depth");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, MetricKind::kGauge);
  EXPECT_EQ(b->value, 7);
  const MetricSample* c = FindSample(samples, "c.ns", "op", "q");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->hist.count, 1u);
  ASSERT_NE(FindSample(samples, "d.external"), nullptr);

  // Sorted output (the Prometheus renderer and diff tools rely on it).
  EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end(),
                             [](const MetricSample& x, const MetricSample& y) {
                               return x.name < y.name ||
                                      (x.name == y.name && x.labels < y.labels);
                             }));

  registry.RemoveCollector(id);
  samples = registry.Collect();
  EXPECT_EQ(FindSample(samples, "d.external"), nullptr);
  // Removing twice (or an unknown id) is a harmless no-op.
  registry.RemoveCollector(id);
  registry.RemoveCollector(0);
}

TEST(MetricsRegistry, CollectAggregatesDuplicateSeries) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  // Two collectors emitting the same (name, labels, kind) — the shape two
  // service instances sharing one registry produce.  Scalars sum, histograms
  // merge, so the exposition stays one valid series.
  MetricsRegistry registry;
  for (int i = 0; i < 2; ++i) {
    registry.AddCollector([](std::vector<MetricSample>* samples) {
      MetricSample s;
      s.name = "dup.count";
      s.kind = MetricKind::kCounter;
      s.value = 10;
      samples->push_back(std::move(s));
    });
  }
  const std::vector<MetricSample> samples = registry.Collect();
  int seen = 0;
  for (const MetricSample& s : samples) seen += s.name == "dup.count";
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(FindSample(samples, "dup.count")->value, 20);
}

// --- wire codec --------------------------------------------------------------

TEST(Exposition, EncodeDecodeRoundtrip) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  MetricsRegistry registry;
  registry.GetCounter("net.bytes", {{"dir", "in"}})->Add(123456);
  registry.GetGauge("queue.depth")->Set(-3);
  LatencyHistogram* h = registry.GetHistogram("req.ns");
  for (uint64_t v = 1; v <= 5000; ++v) h->Record(v * 13);
  const std::vector<MetricSample> samples = registry.Collect();

  std::vector<uint8_t> bytes;
  EncodeMetricSamples(samples, &bytes);
  ByteReader reader(bytes.data(), bytes.size());
  std::vector<MetricSample> decoded;
  ASSERT_TRUE(DecodeMetricSamples(&reader, &decoded));
  EXPECT_EQ(reader.remaining(), 0u);
  ASSERT_EQ(decoded.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(decoded[i].name, samples[i].name);
    EXPECT_EQ(decoded[i].labels, samples[i].labels);
    EXPECT_EQ(decoded[i].kind, samples[i].kind);
    EXPECT_EQ(decoded[i].value, samples[i].value);
    EXPECT_EQ(decoded[i].hist.count, samples[i].hist.count);
    EXPECT_EQ(decoded[i].hist.sum, samples[i].hist.sum);
    EXPECT_EQ(decoded[i].hist.buckets, samples[i].hist.buckets);
  }
  const MetricSample* hist = FindSample(decoded, "req.ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_NEAR(hist->hist.Percentile(0.5), 2500.0 * 13, 2500.0 * 13 / 16 + 1);
}

TEST(Exposition, DecodeRejectsMalformedInput) {
  // Truncations and corruptions of a valid encoding must fail cleanly, never
  // crash or over-allocate (the decoder feeds from untrusted sockets).
  MetricSample s;
  s.name = "a.b";
  s.kind = MetricKind::kCounter;
  s.value = 5;
  std::vector<uint8_t> bytes;
  EncodeMetricSamples({s}, &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader reader(bytes.data(), cut);
    std::vector<MetricSample> out;
    EXPECT_FALSE(DecodeMetricSamples(&reader, &out)) << "cut=" << cut;
  }
  // A hostile sample count cannot force a giant allocation.
  std::vector<uint8_t> hostile = {0xFF, 0xFF, 0xFF, 0x7F};
  ByteReader reader(hostile.data(), hostile.size());
  std::vector<MetricSample> out;
  EXPECT_FALSE(DecodeMetricSamples(&reader, &out));
}

// --- Prometheus rendering ----------------------------------------------------

TEST(Exposition, PrometheusNameMangling) {
  EXPECT_EQ(PrometheusName("net.server.bytes.in"), "net_server_bytes_in");
  EXPECT_EQ(PrometheusName("weird-name+x"), "weird_name_x");
}

TEST(Exposition, PrometheusTextRendersAllKinds) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  MetricsRegistry registry;
  registry.GetCounter("svc.reqs", {{"op", "q"}})->Add(9);
  registry.GetGauge("svc.depth")->Set(4);
  LatencyHistogram* h = registry.GetHistogram("svc.ns");
  h->Record(10);
  h->Record(100);
  const std::string text = RenderPrometheusText(registry.Collect());

  EXPECT_NE(text.find("# TYPE pf_svc_reqs counter"), std::string::npos);
  EXPECT_NE(text.find("pf_svc_reqs{op=\"q\"} 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pf_svc_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("pf_svc_depth 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pf_svc_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("pf_svc_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("pf_svc_ns_sum 110"), std::string::npos);
  EXPECT_NE(text.find("pf_svc_ns_count 2"), std::string::npos);
  // Cumulative buckets: the le="10" bucket holds 1, +Inf holds 2.
  EXPECT_NE(text.find("pf_svc_ns_bucket{le=\"10\"} 1"), std::string::npos);
  // Every line ends in \n (exposition format requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ScopedLatency, RecordsOnDestructionAndToleratesNull) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  LatencyHistogram h;
  {
    ScopedLatency timer(&h);
  }
  EXPECT_EQ(h.Snapshot().count, 1u);
  {
    ScopedLatency timer(nullptr);  // must not crash
  }
}

// --- request tracing --------------------------------------------------------

TEST(ActiveTrace, SpanOverflowCountsDropsInsteadOfWriting) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  ActiveTrace active;
  for (uint32_t i = 0; i < kMaxTraceSpans + 5; ++i) {
    active.AddSpan(TraceStage::kShardProbe, i, i + 1, i);
  }
  EXPECT_EQ(active.t.span_count, kMaxTraceSpans);
  EXPECT_EQ(active.t.spans_dropped, 5u);
  EXPECT_EQ(active.t.spans[kMaxTraceSpans - 1].detail, kMaxTraceSpans - 1);
}

TEST(CurrentTrace, ThreadLocalInstallAndScopedReset) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  ActiveTrace active;
  {
    ScopedCurrentTrace scope(&active);
    if (kEnabled) {
      EXPECT_EQ(CurrentTrace(), &active);
    } else {
      EXPECT_EQ(CurrentTrace(), nullptr);
    }
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(TraceRing, WrapAroundKeepsTheNewestWritePerSlot) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    Trace t;
    t.trace_id = i;
    ring.Push(t);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<Trace> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 4u);
  // Slot k last received trace 6+((k+2)%4) — only the newest four survive.
  std::vector<uint64_t> ids;
  for (const Trace& t : out) ids.push_back(t.trace_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{6, 7, 8, 9}));
}

TEST(TraceRing, ConcurrentPushAndSnapshotNeverYieldTornTraces) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  TraceRing ring(8);
  // Writers stamp every word of the trace with the same value; a torn read
  // surviving into a snapshot would mix two stamps.
  constexpr uint64_t kPushesPerWriter = 20'000;
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&ring, w]() {
      for (uint64_t i = 1; i <= kPushesPerWriter; ++i) {
        Trace t;
        const uint64_t stamp = (static_cast<uint64_t>(w) << 32) | i;
        t.trace_id = stamp;
        t.start_ns = stamp;
        t.end_ns = stamp;
        t.conn_id = stamp;
        ring.Push(t);
      }
    });
  }
  // While writers hammer the ring, every trace a snapshot does return must
  // be consistent (slots mid-write are skipped, so snapshots may be small
  // under this much contention — torn stamps are the only bug).
  for (int round = 0; round < 200; ++round) {
    std::vector<Trace> out;
    ring.Snapshot(&out);
    for (const Trace& t : out) {
      EXPECT_EQ(t.start_ns, t.trace_id);
      EXPECT_EQ(t.end_ns, t.trace_id);
      EXPECT_EQ(t.conn_id, t.trace_id);
    }
  }
  for (auto& th : writers) th.join();
  // Quiescent ring: the snapshot now sees every slot, all consistent.
  std::vector<Trace> out;
  ring.Snapshot(&out);
  EXPECT_EQ(out.size(), ring.capacity());
  for (const Trace& t : out) {
    EXPECT_EQ(t.start_ns, t.trace_id);
    EXPECT_EQ(t.end_ns, t.trace_id);
    EXPECT_EQ(t.conn_id, t.trace_id);
  }
  EXPECT_EQ(ring.pushed() + ring.dropped(), 4 * kPushesPerWriter);
}

TEST(TraceSink, RoutesSlowCapturesAwayFromSampledFlood) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  TraceSink sink(4);
  Trace slow;
  slow.trace_id = 1;
  slow.flags = kTraceSampled | kTraceSlow;
  sink.Push(slow);
  // A flood of sampled traces wraps the sampled ring many times over ...
  for (uint64_t i = 0; i < 64; ++i) {
    Trace t;
    t.trace_id = 100 + i;
    t.flags = kTraceSampled;
    sink.Push(t);
  }
  const TraceSinkStats stats = sink.stats();
  EXPECT_EQ(stats.slow, 1u);
  EXPECT_EQ(stats.sampled, 64u);
  // ... yet the slow capture survives, and leads the snapshot.
  const std::vector<Trace> out = sink.Snapshot();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().trace_id, 1u);
  EXPECT_TRUE(out.front().slow());
}

TEST(TraceSink, RenderTracesJsonEmitsTimelinesAndCounters) {
  Trace t;
  t.trace_id = 0xABCD;
  t.flags = kTraceSlow;
  t.start_ns = 1000;
  t.end_ns = 5000;
  t.span_count = 1;
  t.spans[0] = {static_cast<uint8_t>(TraceStage::kQueueWait), 2000, 3000, 0};
  TraceSinkStats stats;
  stats.slow = 1;
  const std::string json = RenderTracesJson({t}, stats);
  EXPECT_NE(json.find("\"000000000000abcd\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_total\": 1"), std::string::npos);
  // Span times render as offsets from the trace start.
  EXPECT_NE(json.find("\"duration_ns\": 4000"), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\": 1000"), std::string::npos);
}

TEST(TraceStageNames, EveryStageHasAStableName) {
  for (uint32_t s = 0; s < kNumTraceStages; ++s) {
    const char* name = TraceStageName(static_cast<TraceStage>(s));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
  }
}

TEST(LatencyHistogram, RecordWithExemplarSurfacesTraceIds) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  LatencyHistogram h;
  h.RecordWithExemplar(100, 0xDEAD);
  h.RecordWithExemplar(1'000'000, 0xBEEF);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  ASSERT_EQ(snap.exemplars.size(), 2u);
  std::vector<uint64_t> ids;
  for (const auto& ex : snap.exemplars) ids.push_back(ex.trace_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{0xBEEF, 0xDEAD}));

  // Exemplars surface as comment lines in the text exposition (0.0.4 has no
  // exemplar syntax, and comments pass through every parser).
  MetricSample s;
  s.name = "svc.ns";
  s.kind = MetricKind::kHistogram;
  s.hist = snap;
  const std::string text = RenderPrometheusText({s});
  EXPECT_NE(text.find("# exemplar pf_svc_ns"), std::string::npos);
  EXPECT_NE(text.find("trace_id=000000000000dead"), std::string::npos);
}

TEST(Exposition, HostileLabelValuesAreEscapedOnEveryLine) {
  // Quote, backslash, newline in a label value must never corrupt the
  // exposition: each renders escaped on counter lines AND on histogram
  // bucket lines (where the value shares the braces with le="...").
  MetricSample counter;
  counter.name = "evil.counter";
  counter.kind = MetricKind::kCounter;
  counter.labels = {{"op", "a\"b\\c\nd"}};
  counter.value = 1;

  MetricSample hist;
  hist.name = "evil.hist";
  hist.kind = MetricKind::kHistogram;
  hist.labels = {{"op", "x\"y"}};
  hist.hist.count = 1;
  hist.hist.sum = 5;
  hist.hist.min = 5;
  hist.hist.max = 5;
  hist.hist.buckets = {{5, 1}};

  const std::string text = RenderPrometheusText({counter, hist});
  EXPECT_NE(text.find("op=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_NE(text.find("op=\"x\\\"y\",le=\"5\""), std::string::npos)
      << text;
  // No raw (unescaped) newline may appear inside any braces.
  for (size_t open = text.find('{'); open != std::string::npos;
       open = text.find('{', open + 1)) {
    const size_t close = text.find('}', open);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(text.find('\n', open) > close, true) << text;
  }
}

}  // namespace
}  // namespace prefixfilter::obs
