// Tests for the hash-partitioned sharded filter (src/service/): contract,
// name grammar, batch routing, FPR parity with the unsharded equivalent, and
// snapshot round-trips.
#include "src/service/sharded_filter.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/batch_router.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(ShardedFilterName, GrammarAcceptsAndRejects) {
  ShardedFilterOptions options;
  ASSERT_TRUE(ShardedFilter::ParseName("SHARD16[PF[TC]]", &options));
  EXPECT_EQ(options.num_shards, 16u);
  EXPECT_EQ(options.backend, "PF[TC]");
  ASSERT_TRUE(ShardedFilter::ParseName("SHARD4[CF-12-Flex]", &options));
  EXPECT_EQ(options.num_shards, 4u);
  EXPECT_EQ(options.backend, "CF-12-Flex");

  for (const char* bad :
       {"SHARD[PF[TC]]", "SHARD0[TC]", "SHARD16", "SHARD16[]",
        "SHARD16[TC", "SHARD8[SHARD4[TC]]", "SHARDx[TC]", "PF[TC]",
        // Non-power-of-two counts are rejected, not rounded: the name is a
        // registry key and must round-trip through Name() unchanged.
        "SHARD3[TC]", "SHARD10[PF[TC]]"}) {
    EXPECT_FALSE(ShardedFilter::ParseName(bad, &options)) << bad;
  }
}

TEST(ShardedFilter, FactoryConstructsAndRoundTripsName) {
  auto f = MakeFilter("SHARD16[PF[TC]]", 100000, 3);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->Name(), "SHARD16[PF[TC]]");
  EXPECT_EQ(f->Capacity(), 100000u);
  // Unknown inner names, nested sharding, and non-power-of-two counts fail
  // cleanly (the latter would break the name round-trip if rounded).
  EXPECT_EQ(MakeFilter("SHARD16[NOPE]", 1000), nullptr);
  EXPECT_EQ(MakeFilter("SHARD8[SHARD4[TC]]", 1000), nullptr);
  EXPECT_EQ(MakeFilter("SHARD10[TC]", 10000, 3), nullptr);
}

TEST(ShardedFilter, NoFalseNegativesAndShardsBalance) {
  const uint64_t n = 200000;
  ShardedFilterOptions options;
  options.num_shards = 16;
  options.seed = 171;
  auto filter = ShardedFilter::Make(n, options);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 172);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(filter->Contains(k));

  // Balls-into-bins balance: every shard within the provisioned headroom,
  // and no shard starved (the selector actually spreads keys).
  const ShardStats total = filter->TotalStats();
  EXPECT_EQ(total.inserts, n);
  EXPECT_EQ(total.insert_failures, 0u);
  const double mean = static_cast<double>(n) / filter->num_shards();
  for (uint32_t s = 0; s < filter->num_shards(); ++s) {
    const ShardStats stats = filter->shard_stats(s);
    EXPECT_LE(stats.inserts, filter->per_shard_capacity()) << "shard " << s;
    EXPECT_GT(stats.inserts, static_cast<uint64_t>(0.8 * mean)) << "shard " << s;
  }
}

TEST(ShardedFilter, BatchAgreesWithScalarAcrossShards) {
  const uint64_t n = 100000;
  auto filter = MakeFilter("SHARD8[PF[CF12-Flex]]", n, 173);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 174);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));

  std::vector<uint64_t> stream = RandomKeys(60000, 175);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];
  std::vector<uint8_t> batch(stream.size());
  filter->ContainsBatch(stream.data(), stream.size(), batch.data());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(batch[i] != 0, filter->Contains(stream[i])) << "index " << i;
  }

  // Odd sizes and the empty batch do not write out of bounds.
  for (size_t count : {size_t{0}, size_t{1}, size_t{17}, size_t{33}}) {
    std::vector<uint8_t> out(count + 1, 0xcc);
    filter->ContainsBatch(keys.data(), count, out.data());
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(out[i], 1) << i;
    EXPECT_EQ(out[count], 0xcc);
  }
}

// Acceptance criterion: the global false positive rate of the sharded filter
// stays within 10% of the equivalent single prefix filter at equal load.
TEST(ShardedFilter, FprWithinTenPercentOfUnshardedEquivalent) {
  const uint64_t n = 200000;
  const auto keys = RandomKeys(n, 176);
  const auto probes = RandomKeys(2000000, 177);

  auto single = MakeFilter("PF[TC]", n, 178);
  auto sharded = MakeFilter("SHARD16[PF[TC]]", n, 178);
  ASSERT_NE(single, nullptr);
  ASSERT_NE(sharded, nullptr);
  for (uint64_t k : keys) {
    ASSERT_TRUE(single->Insert(k));
    ASSERT_TRUE(sharded->Insert(k));
  }

  uint64_t fp_single = 0, fp_sharded = 0;
  for (uint64_t k : probes) fp_single += single->Contains(k);
  std::vector<uint8_t> out(probes.size());
  sharded->ContainsBatch(probes.data(), probes.size(), out.data());
  for (uint8_t b : out) fp_sharded += b;

  const double rate_single =
      static_cast<double>(fp_single) / static_cast<double>(probes.size());
  const double rate_sharded =
      static_cast<double>(fp_sharded) / static_cast<double>(probes.size());
  EXPECT_GT(rate_single, 0.0);
  EXPECT_LT(std::abs(rate_sharded - rate_single), 0.10 * rate_single)
      << "single " << rate_single << " sharded " << rate_sharded;
}

TEST(ShardedFilter, ConcurrentMixedTrafficIsSafe) {
  const uint64_t n = 120000;
  ShardedFilterOptions options;
  options.num_shards = 8;
  options.seed = 179;
  auto filter = ShardedFilter::Make(n, options);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 180);
  const uint64_t half = n / 2;
  for (uint64_t i = 0; i < half; ++i) ASSERT_TRUE(filter->Insert(keys[i]));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&]() {
    BatchRouter router;
    std::vector<uint64_t> batch(256);
    std::vector<uint8_t> out(batch.size());
    Xoshiro256 rng(181);
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& k : batch) k = keys[rng.Below(half)];
      router.Route(*filter, batch.data(), batch.size(), out.data());
      for (uint8_t b : out) {
        if (!b) read_errors.fetch_add(1);
      }
    }
  });
  std::thread writer([&]() {
    filter->InsertBatch(keys.data() + half, n - half);
  });
  writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Contains(k));
}

TEST(ShardedFilter, SnapshotRoundTripsThroughTypeErasedLayer) {
  const uint64_t n = 50000;
  auto filter = MakeFilter("SHARD4[PF[BBF-Flex]]", n, 182);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 183);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(filter->SerializeTo(&bytes));
  auto restored = DeserializeFilter(bytes.data(), bytes.size());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Name(), "SHARD4[PF[BBF-Flex]]");
  EXPECT_EQ(restored->Capacity(), n);

  const auto probes = RandomKeys(100000, 184);
  for (uint64_t k : keys) ASSERT_TRUE(restored->Contains(k));
  for (uint64_t k : probes) {
    ASSERT_EQ(restored->Contains(k), filter->Contains(k));
  }

  // Stats survive the round trip.
  auto* original = dynamic_cast<ShardedFilter*>(filter.get());
  auto* loaded = dynamic_cast<ShardedFilter*>(restored.get());
  ASSERT_NE(original, nullptr);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->TotalStats().inserts, n);
  for (uint32_t s = 0; s < original->num_shards(); ++s) {
    EXPECT_EQ(loaded->shard_stats(s).inserts, original->shard_stats(s).inserts);
  }

  // Corruptions in the sharded header fail cleanly.
  auto corrupt = bytes;
  corrupt[0] ^= 0xff;  // envelope magic
  EXPECT_EQ(DeserializeFilter(corrupt.data(), corrupt.size()), nullptr);
  EXPECT_EQ(DeserializeFilter(bytes.data(), bytes.size() / 2), nullptr);
}

// The scalar and single-shard fast paths (ROADMAP: close the ~35-40%
// single-thread batch overhead) must stay observably identical to the
// routed path: same answers, same per-shard stats accounting.
TEST(ShardedFilter, FastPathsAgreeWithRoutedPathAndKeepStats) {
  const uint64_t n = 50000;

  // 1-key batches hit the inline route-on-query path.
  auto sharded = MakeFilter("SHARD16[PF[TC]]", n, 331);
  ASSERT_NE(sharded, nullptr);
  const auto keys = RandomKeys(n, 332);
  for (uint64_t k : keys) ASSERT_TRUE(sharded->Insert(k));
  auto* impl = static_cast<ShardedFilter*>(sharded.get());
  const uint64_t queries_before = impl->TotalStats().queries;
  const auto probes = RandomKeys(5000, 333);
  for (size_t i = 0; i < probes.size(); ++i) {
    const uint64_t key = i % 2 == 0 ? keys[i % n] : probes[i];
    uint8_t batch_answer = 0xcc;
    impl->ContainsBatch(&key, 1, &batch_answer);
    ASSERT_EQ(batch_answer != 0, impl->Contains(key)) << i;
    ASSERT_NE(batch_answer, 0xcc);
  }
  // Both the fast-path batch and the scalar double-check counted.
  EXPECT_EQ(impl->TotalStats().queries - queries_before, 2 * probes.size());

  // Single-shard filters drain batches straight through shard 0.
  auto single = ShardedFilter::Make(
      n, ShardedFilterOptions{/*num_shards=*/1, "PF[TC]", 334});
  ASSERT_NE(single, nullptr);
  EXPECT_EQ(single->num_shards(), 1u);
  EXPECT_EQ(single->InsertBatch(keys.data(), keys.size()), 0u);
  std::vector<uint64_t> stream = RandomKeys(20000, 335);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];
  std::vector<uint8_t> batch(stream.size());
  single->ContainsBatch(stream.data(), stream.size(), batch.data());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(batch[i] != 0, single->Contains(stream[i])) << i;
  }
  const ShardStats stats = single->shard_stats(0);
  EXPECT_EQ(stats.inserts, n);
  // The full batch plus the per-key scalar verification above.
  EXPECT_EQ(stats.queries, 2 * stream.size());

  // 1-key inserts ride the scalar insert path with identical accounting.
  auto sharded2 = ShardedFilter::Make(
      1000, ShardedFilterOptions{/*num_shards=*/8, "PF[TC]", 336});
  const uint64_t one = 12345;
  EXPECT_EQ(sharded2->InsertBatch(&one, 1), 0u);
  EXPECT_TRUE(sharded2->Contains(one));
  EXPECT_EQ(sharded2->TotalStats().inserts, 1u);
}

// Regression for a lock-discipline gap the thread-safety annotations
// surfaced: SpaceBytes() walked shard->filter (a guarded member) without
// the shard locks.  Today that read is geometry-only, so this test pins
// the contract the fix restores — SpaceBytes taken concurrently with
// inserts always returns the same sane value — and, under the TSan CI
// leg, will flag any future SpaceBytes implementation that derives from
// occupancy state if the locks are ever dropped again.
TEST(ShardedFilter, SpaceBytesConcurrentWithInserts) {
  const uint64_t n = 120000;
  ShardedFilterOptions options;
  options.num_shards = 8;
  options.backend = "PF[CF12-Flex]";
  options.seed = 191;
  auto filter = ShardedFilter::Make(n, options);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 192);

  const size_t empty_space = filter->SpaceBytes();
  ASSERT_GT(empty_space, 0u);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::thread observer([&]() {
    size_t last = empty_space;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t now = filter->SpaceBytes();
      if (now < last || now == 0) violations.fetch_add(1);
      last = now;
    }
  });
  filter->InsertBatch(keys.data(), keys.size());
  stop.store(true);
  observer.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(filter->SpaceBytes(), empty_space);
}

}  // namespace
}  // namespace prefixfilter
