#include "src/util/aligned.h"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

namespace prefixfilter {
namespace {

TEST(AlignedBuffer, CacheLineAligned) {
  AlignedBuffer<uint8_t> buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<uint64_t> buf(1000);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, SizeBytesRoundsToCacheLine) {
  AlignedBuffer<uint8_t> buf(1);
  EXPECT_EQ(buf.SizeBytes(), kCacheLineBytes);
  AlignedBuffer<uint8_t> buf2(65);
  EXPECT_EQ(buf2.SizeBytes(), 2 * kCacheLineBytes);
}

TEST(AlignedBuffer, ReadWrite) {
  AlignedBuffer<uint32_t> buf(16);
  for (uint32_t i = 0; i < 16; ++i) buf[i] = i * i;
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(buf[i], i * i);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<uint32_t> a(8);
  a[3] = 42;
  const uint32_t* ptr = a.data();
  AlignedBuffer<uint32_t> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 42u);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, MoveAssign) {
  AlignedBuffer<uint32_t> a(8);
  a[0] = 7;
  AlignedBuffer<uint32_t> b(4);
  b = std::move(a);
  EXPECT_EQ(b[0], 7u);
  EXPECT_EQ(b.size(), 8u);
}

}  // namespace
}  // namespace prefixfilter
