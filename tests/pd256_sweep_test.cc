// Parameterized sweeps over PD256 occupancy and structure: every (occupancy,
// seed) combination must satisfy the full dictionary contract, and edge
// geometries (all-one-list, max remainders, dense duplicates) must decode
// exactly.
#include <cstring>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/pd/pd256.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

PD256 MakeEmptyPd() {
  PD256 pd;
  std::memset(&pd, 0, sizeof(pd));
  return pd;
}

using SweepParam = std::tuple<int, uint64_t>;  // (occupancy, seed)

class Pd256OccupancySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Pd256OccupancySweep, ContractHoldsAtEveryOccupancy) {
  const auto [occupancy, seed] = GetParam();
  Xoshiro256 rng(seed);
  PD256 pd = MakeEmptyPd();
  std::multiset<std::pair<int, int>> model;

  for (int i = 0; i < occupancy; ++i) {
    const int q = static_cast<int>(rng.Below(PD256::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(pd.Insert(q, r));
    model.insert({q, r});
  }
  ASSERT_EQ(pd.Size(), occupancy);
  ASSERT_EQ(pd.Full(), occupancy == PD256::kCapacity);

  // Every stored element is found.
  for (auto [q, r] : model) {
    ASSERT_TRUE(pd.Find(q, static_cast<uint8_t>(r)));
  }
  // Exhaustive negative scan over a remainder slice: nothing extra.
  for (int q = 0; q < PD256::kNumLists; ++q) {
    for (int r = 0; r < 256; r += 7) {
      ASSERT_EQ(pd.Find(q, static_cast<uint8_t>(r)),
                model.count({q, r}) > 0)
          << "q=" << q << " r=" << r;
    }
  }
  // Occupancies sum to size and match the model.
  int total = 0;
  for (int q = 0; q < PD256::kNumLists; ++q) {
    const int occ = pd.OccupancyOf(q);
    int expected = 0;
    for (int r = 0; r < 256; ++r) {
      expected += static_cast<int>(model.count({q, r}));
    }
    ASSERT_EQ(occ, expected) << "q=" << q;
    total += occ;
  }
  ASSERT_EQ(total, occupancy);
  // Decode returns exactly the model.
  std::multiset<std::pair<int, int>> decoded;
  for (auto [q, r] : pd.Decode()) decoded.insert({q, r});
  ASSERT_EQ(decoded, model);
}

INSTANTIATE_TEST_SUITE_P(
    OccupancyBySeed, Pd256OccupancySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 5, 12, 20, 24, 25),
                       ::testing::Values(11, 22, 33)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "t" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

class Pd256SingleListSweep : public ::testing::TestWithParam<int> {};

TEST_P(Pd256SingleListSweep, EveryListCanHoldFullCapacity) {
  const int q = GetParam();
  PD256 pd = MakeEmptyPd();
  for (int i = 0; i < PD256::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(q, static_cast<uint8_t>(255 - i)));
  }
  EXPECT_TRUE(pd.Full());
  EXPECT_EQ(pd.OccupancyOf(q), PD256::kCapacity);
  for (int i = 0; i < PD256::kCapacity; ++i) {
    EXPECT_TRUE(pd.Find(q, static_cast<uint8_t>(255 - i)));
  }
  // Neighboring lists stay empty.
  if (q > 0) {
    EXPECT_EQ(pd.OccupancyOf(q - 1), 0);
  }
  if (q < PD256::kNumLists - 1) {
    EXPECT_EQ(pd.OccupancyOf(q + 1), 0);
  }
  // Max-element machinery works when everything is in one list.
  pd.MarkOverflowed();
  EXPECT_EQ(pd.MaxFingerprint(), (q << 8) | 255);
  pd.ReplaceMax(q, 0);
  EXPECT_TRUE(pd.Find(q, 0));
  EXPECT_FALSE(pd.Find(q, 255));
  EXPECT_EQ(pd.MaxFingerprint(), (q << 8) | 254);
}

INSTANTIATE_TEST_SUITE_P(AllLists, Pd256SingleListSweep,
                         ::testing::Range(0, PD256::kNumLists));

TEST(Pd256Sweep, EvictionChainDrainsEveryList) {
  // Fill with the LARGEST fingerprints, then push the 25 smallest through:
  // every resident must be evicted exactly once, ending with fingerprints
  // (0,0)..(0,24).
  PD256 pd = MakeEmptyPd();
  for (int i = 0; i < PD256::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(24, static_cast<uint8_t>(231 + i)));
  }
  pd.MarkOverflowed();
  for (int i = 0; i < PD256::kCapacity; ++i) {
    pd.ReplaceMax(0, static_cast<uint8_t>(i));
  }
  for (int i = 0; i < PD256::kCapacity; ++i) {
    EXPECT_TRUE(pd.Find(0, static_cast<uint8_t>(i))) << i;
  }
  EXPECT_EQ(pd.OccupancyOf(0), PD256::kCapacity);
  EXPECT_EQ(pd.OccupancyOf(24), 0);
  EXPECT_EQ(pd.MaxFingerprint(), 24);
}

TEST(Pd256Sweep, OverflowBitSurvivesReplacements) {
  PD256 pd = MakeEmptyPd();
  for (int i = 0; i < PD256::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(12, static_cast<uint8_t>(100 + i)));
  }
  pd.MarkOverflowed();
  for (int i = 0; i < 50; ++i) {
    // i % 20 keeps every replacement <= the current maximum.
    pd.ReplaceMax(3, static_cast<uint8_t>(i % 20));
    ASSERT_TRUE(pd.Overflowed());
    ASSERT_TRUE(pd.Full());
  }
}

}  // namespace
}  // namespace prefixfilter
