#include "src/core/filter_factory.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(FilterFactory, KnownNamesAllConstruct) {
  for (const auto& name : KnownFilterNames()) {
    auto f = MakeFilter(name, 10000, 1);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->Capacity(), 10000u) << name;
  }
}

TEST(FilterFactory, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeFilter("XorFilter", 1000), nullptr);
  EXPECT_EQ(MakeFilter("", 1000), nullptr);
}

TEST(FilterFactory, NamesRoundTrip) {
  // The constructed filter reports the name it was requested by (modulo the
  // Bloom filters, which append their hash count).
  for (const auto& name : KnownFilterNames()) {
    auto f = MakeFilter(name, 10000, 1);
    ASSERT_NE(f, nullptr);
    if (name.rfind("BF-", 0) == 0) {
      EXPECT_EQ(f->Name().rfind(name + "[", 0), 0u) << f->Name();
    } else {
      EXPECT_EQ(f->Name(), name);
    }
  }
}

TEST(FilterFactory, IndependentSeedsGiveIndependentFilters) {
  auto a = MakeFilter("PF[TC]", 10000, 1);
  auto b = MakeFilter("PF[TC]", 10000, 2);
  const auto keys = RandomKeys(10000, 141);
  for (uint64_t k : keys) {
    a->Insert(k);
    b->Insert(k);
  }
  // Different hash seeds: false positive sets should differ.
  const auto probes = RandomKeys(100000, 142);
  uint64_t both = 0, either = 0;
  for (uint64_t k : probes) {
    const bool in_a = a->Contains(k);
    const bool in_b = b->Contains(k);
    both += in_a && in_b;
    either += in_a || in_b;
  }
  EXPECT_GT(either, 0u);
  EXPECT_LT(both, either);  // not the same FP set
}

}  // namespace
}  // namespace prefixfilter
