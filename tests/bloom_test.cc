#include "src/filters/bloom.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(Bloom, NoFalseNegatives) {
  const auto keys = RandomKeys(20000, 51);
  BloomFilter bf(keys.size(), 12.0, 8);
  for (uint64_t k : keys) ASSERT_TRUE(bf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(bf.Contains(k));
}

TEST(Bloom, OptimalHashCountChosen) {
  // k* = bits_per_key * ln2: 8 -> 6, 12 -> 8, 16 -> 11.
  EXPECT_EQ(BloomFilter(1000, 8.0).num_hashes(), 6);
  EXPECT_EQ(BloomFilter(1000, 12.0).num_hashes(), 8);
  EXPECT_EQ(BloomFilter(1000, 16.0).num_hashes(), 11);
}

TEST(Bloom, FprNearTheory) {
  // BF-12[k=8] theory: (1 - e^{-8/12})^8 ~ 0.0031 plus double-hash slack.
  const auto keys = RandomKeys(100000, 52);
  BloomFilter bf(keys.size(), 12.0, 8);
  for (uint64_t k : keys) bf.Insert(k);
  const auto probes = RandomKeys(200000, 53);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += bf.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_GT(rate, 0.001);
  EXPECT_LT(rate, 0.007);
}

TEST(Bloom, SpaceMatchesBudget) {
  BloomFilter bf(1 << 20, 12.0, 8);
  const double bits_per_key =
      8.0 * bf.SpaceBytes() / static_cast<double>(bf.capacity());
  EXPECT_NEAR(bits_per_key, 12.0, 0.01);
}

TEST(Bloom, EmptyFilterContainsNothing) {
  BloomFilter bf(1000, 8.0);
  const auto probes = RandomKeys(10000, 54);
  for (uint64_t k : probes) EXPECT_FALSE(bf.Contains(k));
}

TEST(Bloom, Name) {
  EXPECT_EQ(BloomFilter(1000, 8.0, 6).Name(), "BF-8[k=6]");
  EXPECT_EQ(BloomFilter(1000, 12.0, 8).Name(), "BF-12[k=8]");
}

}  // namespace
}  // namespace prefixfilter
