// Verifies the Table 1 space model (§3) against the values the paper quotes.
#include "src/analysis/space_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace prefixfilter::analysis {
namespace {

TEST(SpaceModel, OptimalBitsPerKey) {
  EXPECT_NEAR(OptimalBitsPerKey(1.0 / 256), 8.0, 1e-12);
  EXPECT_NEAR(OptimalBitsPerKey(0.025), 5.32, 0.01);
}

TEST(SpaceModel, BloomFactor144) {
  // "a Bloom filter uses 1.44x bits per key than the minimum".
  const double eps = 0.01;
  EXPECT_NEAR(BloomBitsPerKey(eps) / OptimalBitsPerKey(eps), 1.44, 1e-9);
}

TEST(SpaceModel, CuckooMatchesTable3Empirical) {
  // CF-12 stores 12-bit fingerprints at alpha=0.94: 12/0.94 = 12.77 bits/key
  // (Table 3's measured value).  The Table 1 formula with eps = 2^-12+3 bits
  // of overhead is consistent: (log2(1/eps)+3)/alpha at eps giving 12-bit
  // tags -> eps = 2^-(12-3) ... we check the formula's arithmetic instead.
  EXPECT_NEAR(CuckooBitsPerKey(std::pow(2.0, -9), 0.94), 12.0 / 0.94, 1e-9);
}

TEST(SpaceModel, VqfFormula) {
  EXPECT_NEAR(VqfBitsPerKey(1.0 / 256, 0.945), (8 + 2.9) / 0.945, 1e-9);
}

TEST(SpaceModel, PrefixFilterFormula) {
  // gamma = 1/sqrt(50*pi) ~ 0.0798; at eps=1/256, alpha=1:
  // (1+g)*(8+2) + g = 10.88 bits/key.
  const double g = 1.0 / std::sqrt(2.0 * M_PI * 25);
  EXPECT_NEAR(PrefixFilterBitsPerKey(1.0 / 256, 1.0, 25), (1 + g) * 10 + g,
              1e-9);
}

TEST(SpaceModel, PrefixFilterBeatsBloomAtLowEps) {
  // The PF's additive (+2-ish bits) overhead beats Bloom's multiplicative
  // 1.44x once log2(1/eps) is large enough (the paper's motivating point).
  for (double eps : {1.0 / 256, 1.0 / 1024, 1.0 / 65536}) {
    EXPECT_LT(PrefixFilterBitsPerKey(eps, 0.95, 25), BloomBitsPerKey(eps))
        << "eps=" << eps;
  }
}

TEST(SpaceModel, Table1RowsComplete) {
  const auto rows = Table1(1.0 / 256, 25);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].filter, "BF");
  EXPECT_EQ(rows[4].filter, "PF");
  // CM/NQ column: BF/CF/VQF = 2, BBF = 1, PF <= 1 + 2*gamma ~ 1.16.
  EXPECT_EQ(rows[0].cache_misses_per_negative_query, 2.0);
  EXPECT_EQ(rows[1].cache_misses_per_negative_query, 1.0);
  EXPECT_EQ(rows[2].cache_misses_per_negative_query, 2.0);
  EXPECT_EQ(rows[3].cache_misses_per_negative_query, 2.0);
  EXPECT_NEAR(rows[4].cache_misses_per_negative_query, 1.16, 0.01);
  // Max load factor column: CF 94%, VQF 94.5%, PF 100%.
  EXPECT_NEAR(rows[2].max_load_factor, 0.94, 1e-12);
  EXPECT_NEAR(rows[3].max_load_factor, 0.945, 1e-12);
  EXPECT_NEAR(rows[4].max_load_factor, 1.0, 1e-12);
}

}  // namespace
}  // namespace prefixfilter::analysis
