// Loopback integration tests for the networked membership service:
// server <-> client over real sockets — inserts, batch queries, FPR sanity,
// STATS shard counters (the proof that socket traffic rides BatchRouter),
// pipelined-frame merging, the poll(2) fallback, protocol-error handling,
// reconnect, and snapshot-over-the-wire.
#include "src/net/membership_server.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/membership_client.h"
#include "src/util/random.h"

namespace prefixfilter::net {
namespace {

std::shared_ptr<FilterService> MakeService(
    uint64_t capacity, uint32_t shards = 8, size_t front_cache_slots = 0,
    obs::MetricsRegistry* registry = nullptr) {
  ShardedFilterOptions options;
  options.num_shards = shards;
  options.seed = 0x5e12;
  auto filter = ShardedFilter::Make(capacity, options);
  EXPECT_NE(filter, nullptr);
  FilterServiceOptions service_options;
  service_options.num_threads = 0;  // the event loop serves synchronously
  service_options.front_cache_slots = front_cache_slots;
  service_options.registry = registry;
  return std::make_shared<FilterService>(
      std::shared_ptr<ShardedFilter>(filter.release()), service_options);
}

struct Loopback {
  std::shared_ptr<FilterService> service;
  std::unique_ptr<MembershipServer> server;
  ClientOptions client_options;

  explicit Loopback(uint64_t capacity, bool use_epoll = true,
                    uint32_t shards = 8, size_t front_cache_slots = 0) {
    service = MakeService(capacity, shards, front_cache_slots);
    ServerOptions options;
    options.use_epoll = use_epoll;
    server = std::make_unique<MembershipServer>(service, options);
    EXPECT_TRUE(server->Start()) << server->error();
    client_options.port = server->port();
  }
};

// The acceptance-criteria scenario: insert, batch query, FPR sanity, STATS.
void RunEndToEnd(bool use_epoll) {
  const uint64_t n = 50000;
  Loopback loop(n, use_epoll);
  EXPECT_STREQ(loop.server->poller_name(), use_epoll ? "epoll" : "poll");

  MembershipClient client(loop.client_options);
  ASSERT_TRUE(client.Connect()) << client.error();

  const auto keys = RandomKeys(n, 301);
  uint64_t failures = 0;
  for (size_t base = 0; base < keys.size(); base += 10000) {
    uint64_t batch_failures = 0;
    ASSERT_TRUE(client.InsertBatch(keys.data() + base, 10000,
                                   &batch_failures))
        << client.error();
    failures += batch_failures;
  }
  EXPECT_EQ(failures, 0u);

  // Mixed probe: even positions inserted, odd almost-surely negative.
  std::vector<uint64_t> probe = RandomKeys(20000, 302);
  for (size_t i = 0; i < probe.size(); i += 2) probe[i] = keys[(i * 13) % n];
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryBatch(probe.data(), probe.size(), &answers))
      << client.error();
  ASSERT_EQ(answers.size(), probe.size());
  uint64_t negatives_hit = 0;
  for (size_t i = 0; i < answers.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(answers[i], 1) << "false negative over the wire at " << i;
    } else {
      negatives_hit += answers[i];
    }
  }
  // FPR sanity: the negative half trips at roughly the backend's rate.
  EXPECT_LT(negatives_hit, probe.size() / 2 / 50);

  // STATS: per-shard query counters account for every key this test sent —
  // the batches went through the shard/BatchRouter path, not a scalar
  // bypass; and the insert counters account for the loaded keys.
  WireStats stats;
  ASSERT_TRUE(client.Stats(&stats)) << client.error();
  EXPECT_EQ(stats.filter_name, "SHARD8[PF[TC]]");
  EXPECT_EQ(stats.keys_inserted, n);
  EXPECT_EQ(stats.keys_queried, probe.size());
  ASSERT_EQ(stats.shards.size(), 8u);
  uint64_t shard_queries = 0, shard_inserts = 0, nonempty_shards = 0;
  for (const auto& shard : stats.shards) {
    shard_queries += shard.queries;
    shard_inserts += shard.inserts;
    nonempty_shards += shard.queries > 0;
  }
  EXPECT_EQ(shard_queries, probe.size());
  EXPECT_EQ(shard_inserts, n);
  // A 20k-key uniform batch leaves no shard idle.
  EXPECT_EQ(nonempty_shards, 8u);

  const ServerStats server_stats = loop.server->stats();
  EXPECT_EQ(server_stats.protocol_errors, 0u);
  EXPECT_EQ(server_stats.queries_served, probe.size());
  EXPECT_EQ(server_stats.inserts_served, n);
}

TEST(MembershipServer, EndToEndOverEpoll) { RunEndToEnd(true); }

TEST(MembershipServer, EndToEndOverPollFallback) { RunEndToEnd(false); }

// Blocking raw connection for tests that hand-craft byte streams.
struct RawConn {
  int fd = -1;
  FrameDecoder decoder;

  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void Send(const std::vector<uint8_t>& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  // Blocks until one frame arrives; fails the test on EOF/protocol error.
  void ReadFrame(Frame* frame) {
    uint8_t buf[65536];
    for (;;) {
      const DecodeStatus status = decoder.Next(frame);
      if (status == DecodeStatus::kFrame) return;
      ASSERT_EQ(status, DecodeStatus::kNeedMore);
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      decoder.Feed(buf, static_cast<size_t>(n));
    }
  }
};

TEST(MembershipServer, PipelinedFramesMergeIntoRouterBatches) {
  const uint64_t n = 20000;
  Loopback loop(n);
  MembershipClient control(loop.client_options);
  const auto keys = RandomKeys(n, 71);
  uint64_t failures = 0;
  ASSERT_TRUE(control.InsertBatch(keys.data(), keys.size(), &failures));
  const FilterServiceStats before = loop.service->stats();

  // 16 small QUERY frames shipped in ONE send: the event loop buffers the
  // whole run before decoding and merges it into (almost always one)
  // QueryBatchSync call, so the keys cross BatchRouter together.
  constexpr size_t kFrames = 16, kKeysPerFrame = 256;
  std::vector<uint8_t> burst;
  for (size_t f = 0; f < kFrames; ++f) {
    EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/f,
                          keys.data() + f * kKeysPerFrame, kKeysPerFrame,
                          &burst);
  }
  RawConn conn(loop.server->port());
  conn.Send(burst);
  for (size_t f = 0; f < kFrames; ++f) {
    Frame response;
    conn.ReadFrame(&response);
    EXPECT_EQ(response.request_id, f);  // responses in request order
    std::vector<uint8_t> answers;
    ASSERT_TRUE(DecodeQueryResponsePayload(response.payload.data(),
                                           response.payload.size(),
                                           &answers));
    ASSERT_EQ(answers.size(), kKeysPerFrame);
    for (size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i], 1) << "false negative at frame " << f;
    }
  }

  const ServerStats stats = loop.server->stats();
  EXPECT_GT(stats.query_frames_merged, 0u);
  const FilterServiceStats after = loop.service->stats();
  EXPECT_EQ(after.keys_queried - before.keys_queried, kFrames * kKeysPerFrame);
  // Merging collapsed the 16 frames into far fewer service batches.
  EXPECT_LT(after.query_batches - before.query_batches, kFrames / 2);
}

TEST(MembershipServer, GarbageBytesDropConnectionButServerSurvives) {
  Loopback loop(10000);

  // Raw socket speaking nonsense.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loop.server->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Longer than a frame header, so the decoder sees enough to reject it.
  const char garbage[] = "GET / HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
  // The server drops the connection; the peer observes EOF.
  char buf[16];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  ::close(fd);

  for (int i = 0;
       i < 100 && loop.server->stats().connections_dropped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServerStats stats = loop.server->stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.connections_dropped, 1u);

  // A well-behaved client still gets service afterwards.
  MembershipClient client(loop.client_options);
  const uint64_t key = 42;
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(&key, 1, &failures)) << client.error();
  bool present = false;
  ASSERT_TRUE(client.Contains(key, &present)) << client.error();
  EXPECT_TRUE(present);
}

TEST(MembershipServer, MalformedPayloadGetsTypedErrorFrameAndConnectionLives) {
  Loopback loop(10000);

  // A frame whose checksum is valid but whose payload lies about its key
  // count: well-framed, semantically invalid -> kBadRequest error response,
  // connection stays up.
  std::vector<uint8_t> payload(4 + 8, 0);
  payload[0] = 200;  // claims 200 keys, carries 1
  std::vector<uint8_t> bad;
  AppendFrame(Opcode::kQueryBatch, 0, /*request_id=*/5, payload.data(),
              payload.size(), &bad);

  RawConn conn(loop.server->port());
  conn.Send(bad);
  Frame response;
  conn.ReadFrame(&response);
  EXPECT_TRUE(response.is_error());
  EXPECT_EQ(response.request_id, 5u);
  ErrorCode code;
  std::string message;
  ASSERT_TRUE(DecodeErrorPayload(response.payload.data(),
                                 response.payload.size(), &code, &message));
  EXPECT_EQ(code, ErrorCode::kBadRequest);

  // An unknown opcode draws kUnsupported, again without losing the
  // connection.
  std::vector<uint8_t> unknown;
  AppendFrame(static_cast<Opcode>(0x7F), 0, /*request_id=*/6, nullptr, 0,
              &unknown);
  conn.Send(unknown);
  conn.ReadFrame(&response);
  EXPECT_TRUE(response.is_error());
  EXPECT_EQ(response.request_id, 6u);
  ASSERT_TRUE(DecodeErrorPayload(response.payload.data(),
                                 response.payload.size(), &code, &message));
  EXPECT_EQ(code, ErrorCode::kUnsupported);

  // Same connection keeps working after both error responses.
  const uint64_t key = 7;
  std::vector<uint8_t> good;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, 8, &key, 1, &good);
  conn.Send(good);
  conn.ReadFrame(&response);
  EXPECT_FALSE(response.is_error());
  EXPECT_EQ(response.request_id, 8u);
}

TEST(MembershipClient, ReconnectsAfterDisconnect) {
  Loopback loop(10000);
  MembershipClient client(loop.client_options);
  const uint64_t key = 99;
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(&key, 1, &failures));

  // Sever the connection under the client; the next RPC must redial.
  client.Disconnect();
  EXPECT_FALSE(client.connected());
  bool present = false;
  ASSERT_TRUE(client.Contains(key, &present)) << client.error();
  EXPECT_TRUE(present);
  EXPECT_TRUE(client.connected());
}

TEST(MembershipServer, SnapshotOverTheWireRestoresIdenticalService) {
  const uint64_t n = 30000;
  Loopback loop(n);
  MembershipClient client(loop.client_options);
  const auto keys = RandomKeys(n, 501);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));

  std::vector<uint8_t> snapshot;
  ASSERT_TRUE(client.Snapshot(&snapshot)) << client.error();
  auto restored = FilterService::Restore(snapshot.data(), snapshot.size());
  ASSERT_NE(restored, nullptr);

  const auto probe = RandomKeys(10000, 502);
  std::vector<uint8_t> over_wire;
  ASSERT_TRUE(client.QueryBatch(probe.data(), probe.size(), &over_wire));
  std::vector<uint8_t> local(probe.size());
  restored->ContainsBatch(probe.data(), probe.size(), local.data());
  EXPECT_EQ(over_wire, local);
}

TEST(MembershipServer, FrontCacheServesRepeatsOverTheWire) {
  const uint64_t n = 20000;
  Loopback loop(n, /*use_epoll=*/true, /*shards=*/8,
                /*front_cache_slots=*/1024);
  MembershipClient client(loop.client_options);
  const auto keys = RandomKeys(n, 601);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));

  // Hammer a 16-key hot set, one batch per repeat: the first batch populates
  // the cache (within a batch the cache is probed before any store), every
  // later batch is served from it — visible in STATS, identical answers.
  std::vector<uint64_t> hot(keys.begin(), keys.begin() + 16);
  constexpr int kReps = 100;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<uint8_t> answers;
    ASSERT_TRUE(client.QueryBatch(hot.data(), hot.size(), &answers));
    for (uint8_t a : answers) EXPECT_EQ(a, 1);
  }

  WireStats stats;
  ASSERT_TRUE(client.Stats(&stats));
  // Only the first touch of each hot key (and direct-mapped slot collisions)
  // can miss; virtually all of the 1600 queries hit the cache.
  EXPECT_GT(stats.front_cache_hits, uint64_t{kReps} * hot.size() / 2);
}

// --- telemetry ---------------------------------------------------------------

// Blocking HTTP exchange against the server's metrics listener: sends the
// raw request text and reads until the server closes (Connection: close).
std::string HttpExchange(uint16_t port, const std::string& request) {
  RawConn conn(port);
  conn.Send(std::vector<uint8_t>(request.begin(), request.end()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(conn.fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

// Value of the exposition line that starts with `series` exactly (name plus
// rendered labels); -1 when the series is absent.
double SeriesValue(const std::string& body, const std::string& series) {
  const std::string want = series + " ";
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (body.compare(pos, want.size(), want) == 0) {
      return std::atof(body.c_str() + pos + want.size());
    }
    pos = eol + 1;
  }
  return -1.0;
}

TEST(MembershipServer, HttpMetricsExposeCoreSeriesAfterTraffic) {
  obs::MetricsRegistry registry;  // local registry: isolated from other tests
  auto service = MakeService(20000, /*shards=*/8, /*front_cache_slots=*/1024,
                             &registry);
  ServerOptions options;
  options.enable_http = true;
  options.registry = &registry;
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();
  ASSERT_NE(server.http_port(), 0);

  // Drive real traffic first so the core series have samples: a bulk insert,
  // then repeated hot-set queries (front-cache hits AND misses).
  MembershipClient client(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(20000, 701);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));
  std::vector<uint64_t> hot(keys.begin(), keys.begin() + 64);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<uint8_t> answers;
    ASSERT_TRUE(client.QueryBatch(hot.data(), hot.size(), &answers));
  }

  const std::string response = HttpExchange(
      server.http_port(), "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  if (!obs::kEnabled) return;  // PF_OBS=OFF: endpoint answers, registry empty

  // Per-opcode request latency histograms recorded on the event loop.
  EXPECT_GT(
      SeriesValue(body, "pf_net_server_request_ns_count{op=\"insert\"}"), 0);
  EXPECT_GT(
      SeriesValue(body, "pf_net_server_request_ns_count{op=\"query\"}"), 0);
  // Service-stage series (threaded through the same registry).
  EXPECT_GT(SeriesValue(body, "pf_service_exec_ns_count{op=\"query\"}"), 0);
  EXPECT_GT(SeriesValue(body, "pf_service_front_cache_hits"), 0);
  EXPECT_GT(SeriesValue(body, "pf_service_front_cache_misses"), 0);
  // Collector-backed event-loop counters and the connection gauge.
  EXPECT_GT(SeriesValue(body, "pf_net_server_bytes_in"), 0);
  EXPECT_GT(SeriesValue(body, "pf_net_server_keys_inserted"), 0);
  EXPECT_GE(SeriesValue(body, "pf_net_server_connections_active"), 1);
  // Histogram exposition is well-formed: the +Inf bucket equals _count.
  EXPECT_EQ(SeriesValue(
                body,
                "pf_net_server_request_ns_bucket{op=\"query\",le=\"+Inf\"}"),
            SeriesValue(body, "pf_net_server_request_ns_count{op=\"query\"}"));
}

TEST(MembershipServer, StatsV2CarriesMetricsAndLegacyStatsStillWorks) {
  obs::MetricsRegistry registry;
  auto service = MakeService(10000, /*shards=*/8, /*front_cache_slots=*/256,
                             &registry);
  ServerOptions options;
  options.registry = &registry;
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();

  MembershipClient client(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(10000, 702);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryBatch(keys.data(), 512, &answers));
  ASSERT_TRUE(client.QueryBatch(keys.data(), 512, &answers));  // cache hits

  WireStats v2;
  ASSERT_TRUE(client.StatsV2(&v2)) << client.error();
  EXPECT_EQ(v2.keys_inserted, keys.size());
  // Front-cache counters surface in the wire payload; the second identical
  // batch guarantees hits, the first guarantees misses.
  EXPECT_GT(v2.front_cache_hits, 0u);
  EXPECT_GT(v2.front_cache_misses, 0u);
  if (obs::kEnabled) {
    ASSERT_FALSE(v2.metrics.empty());
    const obs::MetricSample* qhist =
        obs::FindSample(v2.metrics, "net.server.request.ns", "op", "query");
    ASSERT_NE(qhist, nullptr);
    EXPECT_GT(qhist->hist.count, 0u);
    EXPECT_GT(qhist->hist.Percentile(0.99), 0.0);
    const obs::MetricSample* inserted =
        obs::FindSample(v2.metrics, "net.server.keys.inserted");
    ASSERT_NE(inserted, nullptr);
    EXPECT_EQ(static_cast<uint64_t>(inserted->value), keys.size());
  }

  // The legacy empty-payload STATS request still round-trips against a v2
  // server (old clients keep working); its reply carries no metrics blob.
  WireStats v1;
  ASSERT_TRUE(client.Stats(&v1)) << client.error();
  EXPECT_EQ(v1.keys_inserted, keys.size());
  EXPECT_TRUE(v1.metrics.empty());
}

TEST(MembershipServer, HttpUnknownPathAndMethodDrawErrorStatuses) {
  auto service = MakeService(1000);
  ServerOptions options;
  options.enable_http = true;
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();

  const std::string miss =
      HttpExchange(server.http_port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(miss.find("404"), std::string::npos) << miss;
  const std::string post =
      HttpExchange(server.http_port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;
}

TEST(MembershipServer, StartReportsBindFailure) {
  auto service = MakeService(1000);
  // Grab a port, then ask a second server for the same one.
  MembershipServer first(service);
  ASSERT_TRUE(first.Start());
  ServerOptions clash;
  clash.port = first.port();
  MembershipServer second(service, clash);
  EXPECT_FALSE(second.Start());
  EXPECT_FALSE(second.error().empty());
}

TEST(MembershipServer, StopIsIdempotentAndRestartableObjectsAreSeparate) {
  auto service = MakeService(1000);
  auto server = std::make_unique<MembershipServer>(service);
  ASSERT_TRUE(server->Start());
  const uint16_t port = server->port();
  server->Stop();
  server->Stop();  // idempotent
  EXPECT_FALSE(server->running());

  // A fresh server object can take over the port immediately (SO_REUSEADDR).
  ServerOptions options;
  options.port = port;
  MembershipServer next(service, options);
  ASSERT_TRUE(next.Start()) << next.error();
  MembershipClient client(ClientOptions{.port = port});
  bool present = false;
  const uint64_t key = 1;
  EXPECT_TRUE(client.Contains(key, &present)) << client.error();
}

// --- multi-loop scale-out and query offload ---------------------------------

// Like MakeService but with a worker pool, so the server's offload path (and
// the out-of-order completion machinery behind it) actually engages.
std::shared_ptr<FilterService> MakeThreadedService(
    uint64_t capacity, uint32_t num_threads,
    obs::MetricsRegistry* registry = nullptr) {
  ShardedFilterOptions options;
  options.num_shards = 8;
  options.seed = 0x5e12;
  auto filter = ShardedFilter::Make(capacity, options);
  EXPECT_NE(filter, nullptr);
  FilterServiceOptions service_options;
  service_options.num_threads = num_threads;
  service_options.registry = registry;
  return std::make_shared<FilterService>(
      std::shared_ptr<ShardedFilter>(filter.release()), service_options);
}

TEST(MembershipServer, MultiLoopReuseportSpreadsConnectionsAcrossLoops) {
  obs::MetricsRegistry registry;
  auto service = MakeService(20000, /*shards=*/8, /*front_cache_slots=*/0,
                             &registry);
  ServerOptions options;
  options.num_loops = 4;
  options.registry = &registry;
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();
  EXPECT_EQ(server.num_loops(), 4u);
  // Every Linux this repo targets has SO_REUSEPORT (>= 3.9).
  EXPECT_TRUE(server.reuseport_active());

  // Many short-lived clients: the kernel hashes each new 4-tuple to a
  // listener, so with 24 connections over 4 loops the chance every one lands
  // on a single loop is ~4 * (1/4)^24 — never.  Every client runs the full
  // insert+query round trip, proving each loop serves correctly.
  const auto keys = RandomKeys(4096, 921);
  constexpr int kClients = 24;
  for (int c = 0; c < kClients; ++c) {
    MembershipClient client(ClientOptions{.port = server.port()});
    uint64_t failures = 0;
    ASSERT_TRUE(client.InsertBatch(keys.data() + c * 128, 128, &failures))
        << client.error();
    std::vector<uint8_t> answers;
    ASSERT_TRUE(client.QueryBatch(keys.data() + c * 128, 128, &answers))
        << client.error();
    for (uint8_t a : answers) EXPECT_EQ(a, 1);
  }
  EXPECT_EQ(server.stats().connections_accepted, kClients);

  if (obs::kEnabled) {
    const auto samples = registry.Collect();
    uint64_t total = 0;
    int busy_loops = 0;
    for (int i = 0; i < 4; ++i) {
      const obs::MetricSample* s = obs::FindSample(
          samples, "net.server.loop.connections", "loop", std::to_string(i));
      ASSERT_NE(s, nullptr) << "missing loop=" << i << " series";
      total += static_cast<uint64_t>(s->value);
      busy_loops += s->value > 0;
    }
    EXPECT_EQ(total, kClients);  // per-loop counters account for every accept
    EXPECT_GE(busy_loops, 2) << "kernel sent all connections to one loop";
  }
}

TEST(MembershipServer, SharedAcceptFallbackServesWithoutReuseport) {
  auto service = MakeService(20000);
  ServerOptions options;
  options.num_loops = 3;
  options.use_reuseport = false;  // force the shared-listener fallback
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();
  EXPECT_EQ(server.num_loops(), 3u);
  EXPECT_FALSE(server.reuseport_active());

  const auto keys = RandomKeys(6000, 911);
  for (int c = 0; c < 6; ++c) {
    MembershipClient client(ClientOptions{.port = server.port()});
    uint64_t failures = 0;
    ASSERT_TRUE(client.InsertBatch(keys.data() + c * 1000, 1000, &failures))
        << client.error();
    EXPECT_EQ(failures, 0u);
  }
  MembershipClient client(ClientOptions{.port = server.port()});
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryBatch(keys.data(), keys.size(), &answers))
      << client.error();
  ASSERT_EQ(answers.size(), keys.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], 1) << "false negative at " << i;
  }
  EXPECT_EQ(server.stats().connections_accepted, 7u);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// A distinctive key the fault hook keys on; never inserted, only queried.
constexpr uint64_t kMarkerKey = 0xDEADBEEF12345678ull;

bool BatchHasMarker(const uint64_t* keys, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (keys[i] == kMarkerKey) return true;
  }
  return false;
}

TEST(MembershipServer, OffloadedBatchesCompleteOutOfOrderWithIdsIntact) {
  auto service = MakeThreadedService(20000, /*num_threads=*/2);
  MembershipServer server(service, ServerOptions{});
  ASSERT_TRUE(server.Start()) << server.error();

  MembershipClient loader(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(4096, 931);
  uint64_t failures = 0;
  ASSERT_TRUE(loader.InsertBatch(keys.data(), keys.size(), &failures));

  // Delay exactly the batch carrying the marker key: frame A (marker) stalls
  // on one worker while frame B, sent later on the same connection, completes
  // on the other — a deterministic out-of-order completion.
  service->SetQueryFaultHookForTesting([](const uint64_t* batch, size_t n) {
    if (BatchHasMarker(batch, n)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  });

  RawConn conn(server.port());
  std::vector<uint64_t> slow = {kMarkerKey, keys[1], keys[2]};
  std::vector<uint8_t> frame_a;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/1, slow.data(),
                        slow.size(), &frame_a);
  conn.Send(frame_a);
  // Separate decode passes, so the frames become two offloaded batches
  // instead of one merged batch.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<uint8_t> frame_b;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/2, keys.data() + 3,
                        2, &frame_b);
  conn.Send(frame_b);

  Frame first, second;
  conn.ReadFrame(&first);
  conn.ReadFrame(&second);
  EXPECT_EQ(first.request_id, 2u) << "fast batch should finish first";
  EXPECT_EQ(second.request_id, 1u);
  std::vector<uint8_t> fast_answers, slow_answers;
  ASSERT_TRUE(DecodeQueryResponsePayload(first.payload.data(),
                                         first.payload.size(), &fast_answers));
  ASSERT_TRUE(DecodeQueryResponsePayload(second.payload.data(),
                                         second.payload.size(),
                                         &slow_answers));
  ASSERT_EQ(fast_answers.size(), 2u);
  EXPECT_EQ(fast_answers[0], 1);  // keys[3], inserted
  EXPECT_EQ(fast_answers[1], 1);  // keys[4], inserted
  ASSERT_EQ(slow_answers.size(), 3u);
  EXPECT_EQ(slow_answers[1], 1);  // keys[1], inserted
  EXPECT_EQ(slow_answers[2], 1);  // keys[2], inserted

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.batches_offloaded, 2u);
  EXPECT_GE(stats.responses_reordered, 1u);
  service->SetQueryFaultHookForTesting(nullptr);
}

TEST(MembershipServer, InflightCapParksReadsAndEveryResponseStillArrives) {
  auto service = MakeThreadedService(20000, /*num_threads=*/1);
  ServerOptions options;
  options.max_inflight_batches = 1;  // park after a single offloaded batch
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();

  MembershipClient loader(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(4096, 941);
  uint64_t failures = 0;
  ASSERT_TRUE(loader.InsertBatch(keys.data(), keys.size(), &failures));

  // The marker batch holds the single worker for 200ms, so frames sent in
  // the meantime find the connection at its in-flight cap.
  service->SetQueryFaultHookForTesting([](const uint64_t* batch, size_t n) {
    if (BatchHasMarker(batch, n)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  RawConn conn(server.port());
  std::vector<uint64_t> slow = {kMarkerKey};
  std::vector<uint8_t> frame;
  EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/1, slow.data(),
                        slow.size(), &frame);
  conn.Send(frame);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Frame 2 reaches the decode loop while inflight == cap: the loop must
  // count a stall and park read interest instead of offloading it.
  frame.clear();
  EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/2, keys.data(), 64,
                        &frame);
  conn.Send(frame);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Frame 3 lands while the connection is parked and waits in socket buffers.
  frame.clear();
  EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/3, keys.data(), 64,
                        &frame);
  conn.Send(frame);

  // Nothing is lost: all three answers arrive once the worker drains, and
  // ids 2/3 stay in order (single worker, FIFO queue, park preserved bytes).
  Frame r1, r2, r3;
  conn.ReadFrame(&r1);
  conn.ReadFrame(&r2);
  conn.ReadFrame(&r3);
  EXPECT_EQ(r1.request_id, 1u);
  EXPECT_EQ(r2.request_id, 2u);
  EXPECT_EQ(r3.request_id, 3u);
  std::vector<uint8_t> answers;
  ASSERT_TRUE(DecodeQueryResponsePayload(r3.payload.data(), r3.payload.size(),
                                         &answers));
  ASSERT_EQ(answers.size(), 64u);
  for (uint8_t a : answers) EXPECT_EQ(a, 1);

  EXPECT_GE(server.stats().backpressure_stalls, 1u);
  service->SetQueryFaultHookForTesting(nullptr);
}

TEST(MembershipClient, ReassemblesDeliberatelyReorderedPipelinedReplies) {
  // A hand-rolled server that reads exactly two QUERY frames and answers
  // them in REVERSE order — the worst case the protocol's ordering contract
  // permits, produced deterministically (no worker-pool timing involved).
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  std::thread fake_server([listen_fd]() {
    const int cfd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(cfd, 0);
    FrameDecoder decoder;
    std::vector<Frame> frames;
    uint8_t buf[65536];
    while (frames.size() < 2) {
      Frame f;
      const DecodeStatus status = decoder.Next(&f);
      if (status == DecodeStatus::kFrame) {
        frames.push_back(std::move(f));
        continue;
      }
      ASSERT_EQ(status, DecodeStatus::kNeedMore);
      const ssize_t n = ::recv(cfd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      decoder.Feed(buf, static_cast<size_t>(n));
    }
    std::vector<uint8_t> out;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      std::vector<uint64_t> batch;
      ASSERT_TRUE(DecodeKeyBatchPayload(it->payload.data(),
                                        it->payload.size(), &batch));
      std::vector<uint8_t> results(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        results[i] = static_cast<uint8_t>(batch[i] % 2);  // recognizable
      }
      EncodeQueryResponse(it->request_id, results.data(), results.size(),
                          &out);
    }
    ASSERT_EQ(::send(cfd, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    ::close(cfd);
  });

  ClientOptions client_options;
  client_options.port = port;
  client_options.max_batch_keys = 64;
  client_options.pipeline_depth = 2;  // both frames in flight at once
  client_options.auto_reconnect = false;
  MembershipClient client(client_options);
  std::vector<uint64_t> keys(128);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryPipelined(keys.data(), keys.size(), &answers))
      << client.error();
  fake_server.join();
  ::close(listen_fd);

  // Answers land at the offsets of their REQUESTS, not of their arrival.
  ASSERT_EQ(answers.size(), keys.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], static_cast<uint8_t>(i % 2)) << "misplaced at " << i;
  }
  EXPECT_EQ(client.responses_reordered(), 1u);
}

// Open fd count for this process (includes ".", ".." and the scan's own fd —
// constant offsets, so equality across calls means no leak).
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(MembershipServer, StopDrainsInflightOffloadedWorkAndLeaksNoFds) {
  const int fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0);
  {
    auto service = MakeThreadedService(20000, /*num_threads=*/2);
    ServerOptions options;
    options.num_loops = 2;  // listeners, wake pipes, and pollers per loop
    MembershipServer server(service, options);
    ASSERT_TRUE(server.Start()) << server.error();

    MembershipClient loader(ClientOptions{.port = server.port()});
    const auto keys = RandomKeys(1000, 951);
    uint64_t failures = 0;
    ASSERT_TRUE(loader.InsertBatch(keys.data(), keys.size(), &failures));

    // Make every query batch slow enough that Stop() races it in flight.
    service->SetQueryFaultHookForTesting([](const uint64_t*, size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    RawConn conn(server.port());
    std::vector<uint8_t> frame;
    EncodeKeyBatchRequest(Opcode::kQueryBatch, /*request_id=*/9, keys.data(),
                          256, &frame);
    conn.Send(frame);
    // Let the batch reach a worker (now sleeping in the hook), then shut
    // down with the completion still outstanding.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.Stop();
    EXPECT_FALSE(server.running());
    service->SetQueryFaultHookForTesting(nullptr);
    // Stop() drained the pool: the batch ran to completion.
    EXPECT_GE(service->stats().query_batches, 1u);
  }
  // Server loops, listeners, wake pipes, pollers, and both clients are gone.
  EXPECT_EQ(CountOpenFds(), fds_before);
}

// --- request tracing ---------------------------------------------------------

// True when `t` carries a span for `stage`.
bool HasStage(const obs::Trace& t, obs::TraceStage stage) {
  for (uint32_t i = 0; i < t.span_count && i < obs::kMaxTraceSpans; ++i) {
    if (t.spans[i].stage == static_cast<uint8_t>(stage)) return true;
  }
  return false;
}

TEST(MembershipServer, TracedRequestsCaptureFullPipelineTimelines) {
  obs::MetricsRegistry registry;
  auto service = MakeThreadedService(20000, /*num_threads=*/2, &registry);
  ServerOptions options;
  options.trace_sample_rate = 1.0;  // head-sample every merged batch
  options.registry = &registry;
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();

  MembershipClient client(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(4096, 961);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryBatch(keys.data(), 256, &answers));
  ASSERT_EQ(answers.size(), 256u);

  // TRACES rides the same connection, so it is served strictly after the
  // query's trace was finished and pushed.
  std::vector<obs::Trace> traces;
  ASSERT_TRUE(client.Traces(&traces)) << client.error();
  if (!obs::kEnabled) {
    EXPECT_TRUE(traces.empty());  // PF_OBS=OFF: nothing is ever recorded
    return;
  }
  ASSERT_FALSE(traces.empty());

  // An offloaded query's timeline covers the whole pipeline: decode, queue
  // wait, worker exec with per-shard probes inside, completion transit back
  // to the loop, and the response write.
  bool full_timeline = false;
  for (const obs::Trace& t : traces) {
    for (uint32_t i = 0; i < t.span_count && i < obs::kMaxTraceSpans; ++i) {
      ASSERT_LT(t.spans[i].stage, obs::kNumTraceStages);
      EXPECT_GE(t.spans[i].end_ns, t.spans[i].start_ns);
    }
    if (t.opcode != static_cast<uint8_t>(Opcode::kQueryBatch)) continue;
    if (HasStage(t, obs::TraceStage::kReadDecode) &&
        HasStage(t, obs::TraceStage::kQueueWait) &&
        HasStage(t, obs::TraceStage::kExec) &&
        HasStage(t, obs::TraceStage::kShardProbe) &&
        HasStage(t, obs::TraceStage::kCompletion) &&
        HasStage(t, obs::TraceStage::kWrite)) {
      EXPECT_TRUE(t.sampled());
      EXPECT_GT(t.key_count, 0u);
      EXPECT_GE(t.end_ns, t.start_ns);
      full_timeline = true;
    }
  }
  EXPECT_TRUE(full_timeline) << "no query trace covered decode + queue_wait + "
                                "exec + shard_probe + completion + write";
}

TEST(MembershipServer, SlowRequestsAreTailCapturedWithoutHeadSampling) {
  auto service = MakeThreadedService(20000, /*num_threads=*/2);
  ServerOptions options;
  options.trace_sample_rate = 0.0;  // head sampling fully off
  options.trace_slow_ns = 5'000'000;  // 5ms: only the stalled batch trips it
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();

  MembershipClient client(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(4096, 971);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));

  // One fast query (finishes in microseconds, must NOT be retained), then a
  // marker query the fault hook stalls past the slow threshold.
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryBatch(keys.data(), 64, &answers));
  service->SetQueryFaultHookForTesting([](const uint64_t* batch, size_t n) {
    if (BatchHasMarker(batch, n)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });
  std::vector<uint64_t> marked = {kMarkerKey, keys[0], keys[1]};
  ASSERT_TRUE(client.QueryBatch(marked.data(), marked.size(), &answers));
  service->SetQueryFaultHookForTesting(nullptr);

  std::vector<obs::Trace> traces;
  ASSERT_TRUE(client.Traces(&traces)) << client.error();
  if (!obs::kEnabled) {
    EXPECT_TRUE(traces.empty());
    return;
  }
  // Tail capture retained exactly the stalled request: every trace present
  // is slow (never head-sampled), and at least one exceeded the threshold.
  ASSERT_FALSE(traces.empty()) << "slow request was not tail-captured";
  bool stalled_seen = false;
  for (const obs::Trace& t : traces) {
    EXPECT_TRUE(t.slow());
    EXPECT_FALSE(t.sampled());
    if (t.end_ns - t.start_ns >= options.trace_slow_ns &&
        t.key_count == marked.size()) {
      stalled_seen = true;
    }
  }
  EXPECT_TRUE(stalled_seen) << "retained traces do not include the stall";
}

TEST(MembershipClient, NegotiatesTraceCapabilityAndPropagatesContext) {
  auto service = MakeService(20000);
  ServerOptions options;
  options.trace_sample_rate = 0.0;  // server does no head sampling of its own
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();

  ClientOptions client_options;
  client_options.port = server.port();
  client_options.trace_sample_rate = 1.0;  // client marks every query frame
  MembershipClient client(client_options);

  // STATS v3 advertises the tracing capabilities (none under PF_OBS=OFF —
  // exactly what tells the client to degrade to plain frames).
  WireStats stats;
  ASSERT_TRUE(client.StatsV3(&stats)) << client.error();
  const uint32_t expected =
      obs::kEnabled ? (kCapTraceContext | kCapTraces) : 0u;
  EXPECT_EQ(stats.capabilities, expected);

  const auto keys = RandomKeys(1024, 981);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));
  std::vector<uint8_t> answers;
  ASSERT_TRUE(client.QueryBatch(keys.data(), 128, &answers));
  ASSERT_EQ(answers.size(), 128u);
  for (uint8_t a : answers) EXPECT_EQ(a, 1);

  std::vector<obs::Trace> traces;
  ASSERT_TRUE(client.Traces(&traces)) << client.error();
  if (!obs::kEnabled) {
    EXPECT_EQ(client.frames_traced(), 0u);  // degraded: no traced frames sent
    EXPECT_TRUE(traces.empty());
    return;
  }
  // The client stamped the frame, and the server — its own sampling off —
  // honored the propagated context and retained the trace as sampled.
  EXPECT_GT(client.frames_traced(), 0u);
  bool sampled_query = false;
  for (const obs::Trace& t : traces) {
    if (t.opcode == static_cast<uint8_t>(Opcode::kQueryBatch) && t.sampled()) {
      sampled_query = true;
    }
  }
  EXPECT_TRUE(sampled_query) << "client-propagated context was not honored";
}

TEST(MembershipServer, HttpTracesEndpointRendersSpanTimelines) {
  obs::MetricsRegistry registry;  // local registry: isolated from other tests
  auto service = MakeThreadedService(20000, /*num_threads=*/2, &registry);
  ServerOptions options;
  options.enable_http = true;
  options.registry = &registry;
  options.trace_sample_rate = 1.0;
  MembershipServer server(service, options);
  ASSERT_TRUE(server.Start()) << server.error();
  ASSERT_NE(server.http_port(), 0);

  MembershipClient client(ClientOptions{.port = server.port()});
  const auto keys = RandomKeys(8192, 991);
  uint64_t failures = 0;
  ASSERT_TRUE(client.InsertBatch(keys.data(), keys.size(), &failures));
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<uint8_t> answers;
    ASSERT_TRUE(client.QueryBatch(keys.data() + rep * 512, 512, &answers));
  }

  const std::string response = HttpExchange(
      server.http_port(), "GET /traces HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  // The document shape is served even when nothing is retained.
  EXPECT_NE(body.find("\"trace_count\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"sampled_total\""), std::string::npos);
  EXPECT_NE(body.find("\"slow_total\""), std::string::npos);
  if (!obs::kEnabled) return;  // PF_OBS=OFF: endpoint answers, rings empty

  EXPECT_NE(body.find("\"trace_id\""), std::string::npos) << body;
  for (const char* stage :
       {"\"decode\"", "\"queue_wait\"", "\"exec\"", "\"shard_probe\"",
        "\"completion\"", "\"write\""}) {
    EXPECT_NE(body.find(stage), std::string::npos) << "missing span " << stage;
  }
}

}  // namespace
}  // namespace prefixfilter::net
