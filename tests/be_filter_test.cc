// Tests for the BE-filter ablation baseline (paper §4.4): identical
// correctness contract to the prefix filter, but every query touches the
// spare — quantifying what the Prefix Invariant buys.
#include "src/core/be_filter.h"

#include <gtest/gtest.h>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(BeFilter, NoFalseNegatives) {
  const uint64_t n = 200000;
  const auto keys = RandomKeys(n, 181);
  BeFilter<SpareCf12Traits> be(n);
  for (uint64_t k : keys) ASSERT_TRUE(be.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(be.Contains(k));
}

TEST(BeFilter, EveryMissedBinQueryHitsTheSpare) {
  // The defining difference from the prefix filter: queries that miss in the
  // bin always continue to the spare.
  const uint64_t n = 100000;
  const auto keys = RandomKeys(n, 182);
  BeFilter<SpareCf12Traits> be(n);
  for (uint64_t k : keys) ASSERT_TRUE(be.Insert(k));
  const auto probes = RandomKeys(100000, 183);
  for (uint64_t k : probes) be.Contains(k);
  // Negative probes essentially never match a bin, so spare_queries should
  // be ~= queries (vs ~6% for the prefix filter).
  EXPECT_GT(be.stats().SpareQueryFraction(), 0.95);
}

TEST(BeFilter, SameSpareTrafficOnInsertAsPrefixFilter) {
  // The eviction policy changes *which* fingerprints go to the spare, not
  // how many: both designs forward exactly one fingerprint per insert into a
  // full bin.
  const uint64_t n = 1 << 19;
  const auto keys = RandomKeys(n, 184);
  BeFilter<SpareTcTraits> be(n, 0.95, 77);
  PrefixFilterOptions options;
  options.seed = 77;
  PrefixFilter<SpareTcTraits> pf(n, options);
  for (uint64_t k : keys) {
    ASSERT_TRUE(be.Insert(k));
    ASSERT_TRUE(pf.Insert(k));
  }
  EXPECT_EQ(be.stats().spare_inserts, pf.stats().spare_inserts);
}

TEST(BeFilter, FprComparableToPrefixFilter) {
  const uint64_t n = 1 << 18;
  const auto keys = RandomKeys(n, 185);
  BeFilter<SpareCf12Traits> be(n);
  for (uint64_t k : keys) ASSERT_TRUE(be.Insert(k));
  const auto probes = RandomKeys(1 << 20, 186);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += be.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_GT(rate, 0.002);
  EXPECT_LT(rate, 0.008);
}

TEST(BeFilter, SameSpaceAsPrefixFilter) {
  const uint64_t n = 1 << 18;
  BeFilter<SpareTcTraits> be(n);
  PrefixFilter<SpareTcTraits> pf(n);
  EXPECT_EQ(be.SpaceBytes(), pf.SpaceBytes());
}

}  // namespace
}  // namespace prefixfilter
