// Serialize round-trips through the type-erased layer: for every factory
// configuration, MakeFilter(name) → Insert → SerializeTo → DeserializeFilter
// must reproduce a filter with identical answers, and damaged envelopes must
// be rejected rather than crash or mis-dispatch.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/filter_factory.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace prefixfilter {
namespace {

class FactorySerializeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FactorySerializeTest, RoundTripPreservesAllAnswers) {
  const uint64_t n = 20000;
  auto filter = MakeFilter(GetParam(), n, /*seed=*/21);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(n, 211);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k)) << GetParam();

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(filter->SerializeTo(&bytes)) << GetParam();
  auto restored = DeserializeFilter(bytes.data(), bytes.size());
  ASSERT_NE(restored, nullptr) << GetParam();
  EXPECT_EQ(restored->Name(), filter->Name());
  EXPECT_EQ(restored->Capacity(), filter->Capacity());
  EXPECT_EQ(restored->SpaceBytes(), filter->SpaceBytes());

  // A fresh snapshot of the restored filter is byte-identical (the wire
  // format is canonical: no hidden state lost in the round trip).  Taken
  // before any queries — some formats persist query counters.
  std::vector<uint8_t> bytes2;
  ASSERT_TRUE(restored->SerializeTo(&bytes2)) << GetParam();
  EXPECT_EQ(bytes, bytes2) << GetParam();

  // Same answers on every inserted key AND on a probe stream — the latter
  // pins down the false-positive set, i.e. bit-exact table state.
  for (uint64_t k : keys) {
    ASSERT_TRUE(restored->Contains(k)) << GetParam();
  }
  const auto probes = RandomKeys(100000, 212);
  for (uint64_t k : probes) {
    ASSERT_EQ(restored->Contains(k), filter->Contains(k)) << GetParam();
  }
}

TEST_P(FactorySerializeTest, CorruptedHeadersAreRejected) {
  auto filter = MakeFilter(GetParam(), 5000, 22);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(5000, 213);
  for (uint64_t k : keys) filter->Insert(k);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(filter->SerializeTo(&bytes));

  // Envelope magic.
  {
    auto corrupt = bytes;
    corrupt[0] ^= 0x5a;
    EXPECT_EQ(DeserializeFilter(corrupt.data(), corrupt.size()), nullptr);
  }
  // Envelope version.
  {
    auto corrupt = bytes;
    corrupt[4] = 0x7f;
    EXPECT_EQ(DeserializeFilter(corrupt.data(), corrupt.size()), nullptr);
  }
  // Name length pointing past the buffer.
  {
    auto corrupt = bytes;
    corrupt[5] = 0xff;
    corrupt[6] = 0xff;
    corrupt[7] = 0xff;
    corrupt[8] = 0x7f;
    EXPECT_EQ(DeserializeFilter(corrupt.data(), corrupt.size()), nullptr);
  }
  // Name text mangled into an unknown configuration.
  {
    auto corrupt = bytes;
    corrupt[9] = '?';
    EXPECT_EQ(DeserializeFilter(corrupt.data(), corrupt.size()), nullptr);
  }
  // Truncations at every boundary class.
  for (size_t len : {size_t{0}, size_t{3}, size_t{8}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_EQ(DeserializeFilter(bytes.data(), len), nullptr)
        << GetParam() << " len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FactorySerializeTest,
    ::testing::ValuesIn(KnownFilterNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The fast_multiblock configs must stay registered: the parameterized
// suites above (and the bench sweep, and the coverage gate's baselines) all
// enumerate KnownFilterNames(), so silently dropping a name would shrink
// coverage everywhere at once.
TEST(FactorySerialize, FastMultiBlockConfigsAreRegistered) {
  const auto names = KnownFilterNames();
  for (const char* required : {"FMB32", "FMB64"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required << " missing from KnownFilterNames()";
  }
}

// A tampered block count must fail the pre-allocation geometry check
// (advertised num_blocks vs actual payload bytes), not malloc a bogus table.
TEST(FactorySerialize, FastMultiBlockGeometryMismatchRejected) {
  for (const std::string name : {"FMB32", "FMB64"}) {
    auto filter = MakeFilter(name, 5000, 23);
    ASSERT_NE(filter, nullptr);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(filter->SerializeTo(&bytes));
    // Envelope: u32 magic + u8 ver + u32 name length + name text; the
    // payload's num_blocks u64 sits after its own u32 magic, u8 version,
    // and u64 capacity.
    const size_t payload = 4 + 1 + 4 + name.size();
    const size_t num_blocks_off = payload + 4 + 1 + 8;
    ASSERT_LT(num_blocks_off, bytes.size());
    for (uint8_t delta : {uint8_t{1}, uint8_t{0x80}}) {
      auto corrupt = bytes;
      corrupt[num_blocks_off] ^= delta;
      EXPECT_EQ(DeserializeFilter(corrupt.data(), corrupt.size()), nullptr)
          << name << " delta=" << int{delta};
    }
  }
}

TEST(FactorySerialize, AliasCanonicalizes) {
  auto aliased = MakeFilter("PF[CF-12-Flex]", 10000, 23);
  ASSERT_NE(aliased, nullptr);
  EXPECT_EQ(aliased->Name(), "PF[CF12-Flex]");
  // Snapshots written under the alias restore through the canonical name.
  const auto keys = RandomKeys(10000, 214);
  for (uint64_t k : keys) aliased->Insert(k);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(aliased->SerializeTo(&bytes));
  auto restored = DeserializeFilter(bytes.data(), bytes.size());
  ASSERT_NE(restored, nullptr);
  for (uint64_t k : keys) ASSERT_TRUE(restored->Contains(k));
}

TEST(FactorySerialize, RetaggedEnvelopeNameIsRejected) {
  // A valid payload filed under a different-but-known name must not restore
  // with geometry the tag does not promise (e.g. a flex cuckoo payload
  // retagged as the non-flex config).
  for (const auto& [built, retag] :
       std::vector<std::pair<std::string, std::string>>{
           {"CF-8-Flex", "CF-8"}, {"BF-16", "BF-8"}, {"BBF-Flex", "BBF"}}) {
    auto filter = MakeFilter(built, 10000, 26);
    ASSERT_NE(filter, nullptr) << built;
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(filter->SerializeTo(&bytes));
    // Strip the original envelope (magic + version + length-prefixed name)
    // and re-tag the payload with the sibling configuration's name.
    const size_t envelope = 4 + 1 + 4 + built.size();
    std::vector<uint8_t> retagged;
    WriteFilterEnvelope(retag, &retagged);
    retagged.insert(retagged.end(), bytes.begin() + envelope, bytes.end());
    EXPECT_EQ(DeserializeFilter(retagged.data(), retagged.size()), nullptr)
        << built << " retagged as " << retag;
  }
}

TEST(FactorySerialize, CorruptedQuotientSlotTableTerminates) {
  // Regression: a QF snapshot whose slot metadata violates the cluster
  // invariants (e.g. every slot shifted/continuation) used to hang
  // FindRunStart's ring walk forever.  The walks are budgeted now: queries
  // and inserts on such a filter may answer garbage but must terminate.
  auto filter = MakeFilter("QF", 5000, 25);
  ASSERT_NE(filter, nullptr);
  const auto keys = RandomKeys(2000, 216);
  for (uint64_t k : keys) filter->Insert(k);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(filter->SerializeTo(&bytes));

  // Envelope (magic+ver+name) + QF header (magic+ver+cap+seed+size) precede
  // the slot table; saturate every payload byte past the headers.
  const size_t header = 4 + 1 + 4 + 2 /*"QF"*/ + 4 + 1 + 8 + 8 + 8;
  ASSERT_LT(header, bytes.size());
  for (size_t i = header; i < bytes.size(); ++i) bytes[i] = 0xff;
  auto corrupted = DeserializeFilter(bytes.data(), bytes.size());
  if (corrupted != nullptr) {
    for (uint64_t k : RandomKeys(1000, 217)) {
      corrupted->Contains(k);  // must return, value unspecified
    }
    for (uint64_t k : RandomKeys(100, 218)) {
      corrupted->Insert(k);  // must return, not ring-walk forever
    }
  }
}

TEST(FactorySerialize, AliasedShardedBackendRoundTrips) {
  // Regression: the sharded name parser must canonicalize the inner name,
  // or shard blobs (tagged canonically) are rejected against the aliased
  // backend string on restore and the snapshot is unrecoverable.
  auto filter = MakeFilter("SHARD8[PF[CF-12-Flex]]", 20000, 24);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->Name(), "SHARD8[PF[CF12-Flex]]");
  const auto keys = RandomKeys(20000, 215);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(filter->SerializeTo(&bytes));
  auto restored = DeserializeFilter(bytes.data(), bytes.size());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Name(), filter->Name());
  for (uint64_t k : keys) ASSERT_TRUE(restored->Contains(k));
}

}  // namespace
}  // namespace prefixfilter
