// Parameterized occupancy sweeps for PD512 (mirrors pd256_sweep_test for
// the TwoChoicer's 64-byte mini-filter, including the two-word header).
#include <cstring>
#include <set>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "src/pd/pd512.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

PD512 MakeEmptyPd() {
  PD512 pd;
  std::memset(&pd, 0, sizeof(pd));
  return pd;
}

using SweepParam = std::tuple<int, uint64_t>;  // (occupancy, seed)

class Pd512OccupancySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Pd512OccupancySweep, ContractHoldsAtEveryOccupancy) {
  const auto [occupancy, seed] = GetParam();
  Xoshiro256 rng(seed);
  PD512 pd = MakeEmptyPd();
  std::multiset<std::pair<int, int>> model;

  for (int i = 0; i < occupancy; ++i) {
    const int q = static_cast<int>(rng.Below(PD512::kNumLists));
    const uint8_t r = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(pd.Insert(q, r));
    model.insert({q, r});
  }
  ASSERT_EQ(pd.Size(), occupancy);
  ASSERT_EQ(pd.Full(), occupancy == PD512::kCapacity);

  for (auto [q, r] : model) {
    ASSERT_TRUE(pd.Find(q, static_cast<uint8_t>(r)));
  }
  // Negative scan over a slice of the (q, r) space.
  for (int q = 0; q < PD512::kNumLists; q += 3) {
    for (int r = 0; r < 256; r += 11) {
      ASSERT_EQ(pd.Find(q, static_cast<uint8_t>(r)), model.count({q, r}) > 0)
          << "q=" << q << " r=" << r;
    }
  }
  int total = 0;
  for (int q = 0; q < PD512::kNumLists; ++q) total += pd.OccupancyOf(q);
  ASSERT_EQ(total, occupancy);
  std::multiset<std::pair<int, int>> decoded;
  for (auto [q, r] : pd.Decode()) decoded.insert({q, r});
  ASSERT_EQ(decoded, model);
}

INSTANTIATE_TEST_SUITE_P(
    OccupancyBySeed, Pd512OccupancySweep,
    ::testing::Combine(::testing::Values(0, 1, 7, 24, 40, 47, 48),
                       ::testing::Values(19, 29)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "t" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

class Pd512BoundaryLists : public ::testing::TestWithParam<int> {};

TEST_P(Pd512BoundaryLists, FillSingleList) {
  // Lists whose header region straddles or neighbors the 64-bit word
  // boundary are the risky ones; sweep a representative set.
  const int q = GetParam();
  PD512 pd = MakeEmptyPd();
  for (int i = 0; i < PD512::kCapacity; ++i) {
    ASSERT_TRUE(pd.Insert(q, static_cast<uint8_t>(i * 5)));
  }
  EXPECT_TRUE(pd.Full());
  EXPECT_EQ(pd.OccupancyOf(q), PD512::kCapacity);
  for (int i = 0; i < PD512::kCapacity; ++i) {
    EXPECT_TRUE(pd.Find(q, static_cast<uint8_t>(i * 5)));
  }
  EXPECT_FALSE(pd.Find(q, 3));
}

INSTANTIATE_TEST_SUITE_P(Boundary, Pd512BoundaryLists,
                         ::testing::Values(0, 1, 15, 16, 17, 62, 63, 64, 65,
                                           78, 79));

}  // namespace
}  // namespace prefixfilter
