#include "src/filters/cuckoo.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

template <typename CF>
void FillAndCheckNoFalseNegatives(bool flexible, uint64_t seed) {
  const auto keys = RandomKeys(100000, seed);
  CF cf(keys.size(), flexible);
  for (uint64_t k : keys) ASSERT_TRUE(cf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(cf.Contains(k));
}

TEST(Cuckoo, NoFalseNegatives8) {
  FillAndCheckNoFalseNegatives<CuckooFilter8>(false, 71);
  FillAndCheckNoFalseNegatives<CuckooFilter8>(true, 72);
}
TEST(Cuckoo, NoFalseNegatives12) {
  FillAndCheckNoFalseNegatives<CuckooFilter12>(false, 73);
  FillAndCheckNoFalseNegatives<CuckooFilter12>(true, 74);
}
TEST(Cuckoo, NoFalseNegatives16) {
  FillAndCheckNoFalseNegatives<CuckooFilter16>(false, 75);
  FillAndCheckNoFalseNegatives<CuckooFilter16>(true, 76);
}

TEST(Cuckoo, AltIndexIsSelfInverseFlexible) {
  // The flexible alternate-bucket map must satisfy alt(alt(i)) == i for
  // arbitrary (non power-of-two) bucket counts.  We test through the public
  // API: a full filter only works if every kicked tag can return home.
  const auto keys = RandomKeys(30000, 77);
  CuckooFilter12 cf(keys.size(), /*flexible=*/true);
  for (uint64_t k : keys) ASSERT_TRUE(cf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(cf.Contains(k));
}

TEST(Cuckoo, FprTracksTagWidth) {
  const auto keys = RandomKeys(100000, 78);
  CuckooFilter8 cf8(keys.size(), true);
  CuckooFilter12 cf12(keys.size(), true);
  CuckooFilter16 cf16(keys.size(), true);
  for (uint64_t k : keys) {
    cf8.Insert(k);
    cf12.Insert(k);
    cf16.Insert(k);
  }
  const auto probes = RandomKeys(300000, 79);
  uint64_t fp8 = 0, fp12 = 0, fp16 = 0;
  for (uint64_t k : probes) {
    fp8 += cf8.Contains(k);
    fp12 += cf12.Contains(k);
    fp16 += cf16.Contains(k);
  }
  const double n = static_cast<double>(probes.size());
  // Paper Table 3: CF-8 2.92%, CF-12 0.18%, CF-16 0.011%.
  EXPECT_NEAR(fp8 / n, 0.029, 0.006);
  EXPECT_NEAR(fp12 / n, 0.0018, 0.0008);
  EXPECT_LT(fp16 / n, 0.0005);
}

TEST(Cuckoo, SpaceMatchesTable3) {
  // CF-12 at n just below a power-of-two boundary: 12/0.94 ~ 12.77 bits/key.
  const uint64_t n = static_cast<uint64_t>(0.94 * (1 << 22));
  CuckooFilter12 cf(n, /*flexible=*/false);
  const double bpk = 8.0 * cf.SpaceBytes() / static_cast<double>(n);
  EXPECT_NEAR(bpk, 12.77, 0.05);
  CuckooFilter12 cf_flex(n, /*flexible=*/true);
  const double bpk_flex = 8.0 * cf_flex.SpaceBytes() / static_cast<double>(n);
  EXPECT_NEAR(bpk_flex, 12.77, 0.05);
}

TEST(Cuckoo, NonFlexDoublesWhenJustPastPowerOfTwo) {
  // The paper's §7.1 point: a non-flexible CF sized for n slightly above a
  // power-of-two boundary must double its table.
  CuckooFilter12 just_below(static_cast<uint64_t>(0.94 * (1 << 22)), false);
  CuckooFilter12 just_above(static_cast<uint64_t>(1.02 * (1 << 22)), false);
  const double ratio = static_cast<double>(just_above.SpaceBytes()) /
                       static_cast<double>(just_below.SpaceBytes());
  EXPECT_NEAR(ratio, 2.0, 0.001);  // modulo slack bytes / line rounding
}

TEST(Cuckoo, FailsOnlyWhenOverfilled) {
  // Inserting far past capacity must eventually return false, not corrupt
  // earlier keys.
  const uint64_t n = 10000;
  CuckooFilter12 cf(n, true);
  const auto keys = RandomKeys(2 * n, 80);
  size_t inserted = 0;
  while (inserted < keys.size() && cf.Insert(keys[inserted])) ++inserted;
  EXPECT_GE(inserted, n);            // reaches its rated capacity
  EXPECT_LT(inserted, keys.size());  // ...but does fail eventually
  for (size_t i = 0; i < inserted; ++i) {
    ASSERT_TRUE(cf.Contains(keys[i])) << "lost key " << i << " of " << inserted;
  }
}

TEST(Cuckoo, DuplicateFingerprintsOverflowGracefully) {
  // 2b+1 copies of the same key break a cuckoo filter (paper §4.4): with
  // b = 4 slots per bucket, the 9th insert of an identical key must fail
  // (both buckets hold 4 copies each), not loop forever.
  CuckooFilter12 cf(1000, true);
  int ok = 0;
  for (int i = 0; i < 9; ++i) ok += cf.Insert(42);
  EXPECT_EQ(ok, 9);  // the 9th lands in the victim stash
  EXPECT_FALSE(cf.Insert(42));  // the 10th has nowhere to go
  EXPECT_TRUE(cf.Contains(42));
}

}  // namespace
}  // namespace prefixfilter
