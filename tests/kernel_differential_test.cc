// Kernel differential harness: the SIMD kernels must agree bit-for-bit with
// their always-compiled portable-scalar twins — same accepts, same FPR
// stream, same serialized bytes — across seeds, occupancies 0 -> 100%, and
// batch sizes 1/7/64/4096.  Modeled on pd_differential_test.cc but
// generalized over the factory: every parity property runs for FMB32, FMB64,
// BBF, and BBF-Flex through one type-erased test wrapper, and the PD256/512
// SIMD path (the FindByteMask broadcast-compare kernel) is differenced
// against its scalar reference directly.
//
// On portable builds the dispatched kernels ARE the portable kernels, so
// the SIMD-vs-portable legs degenerate to self-consistency — while the
// golden-digest leg still bites: it pins serialized bytes and answer
// streams to hard-coded values, so native and portable builds (this build
// and any future one) must produce identical bits, not merely mutually
// consistent ones.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/filter_factory.h"
#include "src/filters/blocked_bloom.h"
#include "src/filters/fast_multiblock.h"
#include "src/util/aligned.h"
#include "src/util/random.h"
#include "src/util/simd.h"

namespace prefixfilter {
namespace {

constexpr uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};
constexpr size_t kBatchSizes[] = {1, 7, 64, 4096};

// --- raw kernel parity -------------------------------------------------------

class KernelParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelParity, Fmb32AddAndContainsMatchPortable) {
  Xoshiro256 rng(GetParam());
  AlignedBuffer<uint32_t> simd_block(8), portable_block(8);
  for (int round = 0; round < 200; ++round) {
    // Random pre-state: contains must agree on arbitrary block contents.
    for (int i = 0; i < 8; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.Next());
      simd_block.data()[i] = v;
      portable_block.data()[i] = v;
    }
    for (int probe = 0; probe < 16; ++probe) {
      const uint32_t h = static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(Fmb32Contains(h, simd_block.data()),
                Fmb32ContainsPortable(h, portable_block.data()))
          << "h=" << h;
    }
    const uint32_t h = static_cast<uint32_t>(rng.Next());
    Fmb32Add(h, simd_block.data());
    Fmb32AddPortable(h, portable_block.data());
    ASSERT_EQ(std::memcmp(simd_block.data(), portable_block.data(), 32), 0)
        << "add diverged at h=" << h;
    ASSERT_TRUE(Fmb32Contains(h, simd_block.data()));
    ASSERT_TRUE(Fmb32ContainsPortable(h, simd_block.data()));
  }
}

TEST_P(KernelParity, Fmb64AddAndContainsMatchPortable) {
  Xoshiro256 rng(GetParam() ^ 0x64u);
  AlignedBuffer<uint64_t> simd_block(8), portable_block(8);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 8; ++i) {
      const uint64_t v = rng.Next();
      simd_block.data()[i] = v;
      portable_block.data()[i] = v;
    }
    for (int probe = 0; probe < 16; ++probe) {
      const uint32_t h = static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(Fmb64Contains(h, simd_block.data()),
                Fmb64ContainsPortable(h, portable_block.data()))
          << "h=" << h;
    }
    const uint32_t h = static_cast<uint32_t>(rng.Next());
    Fmb64Add(h, simd_block.data());
    Fmb64AddPortable(h, portable_block.data());
    ASSERT_EQ(std::memcmp(simd_block.data(), portable_block.data(), 64), 0)
        << "add diverged at h=" << h;
    ASSERT_TRUE(Fmb64Contains(h, simd_block.data()));
    ASSERT_TRUE(Fmb64ContainsPortable(h, simd_block.data()));
  }
}

TEST_P(KernelParity, BlockedBloomAddAndContainsMatchPortable) {
  Xoshiro256 rng(GetParam() ^ 0xbbfu);
  AlignedBuffer<uint32_t> simd_block(8), portable_block(8);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 8; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.Next());
      simd_block.data()[i] = v;
      portable_block.data()[i] = v;
    }
    for (int probe = 0; probe < 16; ++probe) {
      const uint32_t h = static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(BlockedBloomContains(h, simd_block.data()),
                BlockedBloomContainsPortable(h, portable_block.data()))
          << "h=" << h;
    }
    const uint32_t h = static_cast<uint32_t>(rng.Next());
    BlockedBloomAdd(h, simd_block.data());
    BlockedBloomAddPortable(h, portable_block.data());
    ASSERT_EQ(std::memcmp(simd_block.data(), portable_block.data(), 32), 0)
        << "add diverged at h=" << h;
    ASSERT_TRUE(BlockedBloomContains(h, simd_block.data()));
  }
}

// The PD256/PD512 hot path: one broadcast-and-compare byte match over the PD
// body (paper §5.2.2).  Every needle, random block contents.
TEST_P(KernelParity, FindByteMaskMatchesScalar) {
  Xoshiro256 rng(GetParam() ^ 0x9du);
  AlignedBuffer<uint8_t> block(64);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      // Narrow byte range so matches are dense, not vanishing.
      block.data()[i] = static_cast<uint8_t>(rng.Below(16) * 17);
    }
    for (int needle = 0; needle < 256; ++needle) {
      const uint8_t n8 = static_cast<uint8_t>(needle);
      ASSERT_EQ(FindByteMask32(block.data(), n8),
                static_cast<uint32_t>(FindByteMaskScalar(block.data(), n8, 32)))
          << "needle=" << needle;
      ASSERT_EQ(FindByteMask64(block.data(), n8),
                FindByteMaskScalar(block.data(), n8, 64))
          << "needle=" << needle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelParity, ::testing::ValuesIn(kSeeds));

// --- filter-level differential, generalized over the factory ----------------

// Type-erased handle exposing both kernel flavors of one concrete filter.
// (Virtual dispatch is fine here — this is a correctness harness, and the
// dispatched-vs-portable comparison happens inside each call.)
class DiffFilter {
 public:
  virtual ~DiffFilter() = default;
  virtual void Insert(uint64_t key) = 0;
  virtual void InsertPortable(uint64_t key) = 0;
  virtual bool Contains(uint64_t key) const = 0;
  virtual bool ContainsPortable(uint64_t key) const = 0;
  virtual void ContainsBatch(const uint64_t* keys, size_t count,
                             uint8_t* out) const = 0;
  virtual std::vector<uint8_t> Serialize() const = 0;
};

template <typename F>
class DiffImpl final : public DiffFilter {
 public:
  explicit DiffImpl(F filter) : filter_(std::move(filter)) {}
  void Insert(uint64_t key) override { filter_.Insert(key); }
  void InsertPortable(uint64_t key) override { filter_.InsertPortable(key); }
  bool Contains(uint64_t key) const override { return filter_.Contains(key); }
  bool ContainsPortable(uint64_t key) const override {
    return filter_.ContainsPortable(key);
  }
  void ContainsBatch(const uint64_t* keys, size_t count,
                     uint8_t* out) const override {
    ContainsBatchOrScalar(filter_, keys, count, out);
  }
  std::vector<uint8_t> Serialize() const override {
    std::vector<uint8_t> out;
    filter_.SerializeTo(&out);
    return out;
  }

 private:
  F filter_;
};

// Mirrors MakeFilter's construction parameters exactly (same bits/key and
// seed), so the factory cross-check below compares identical geometries.
std::unique_ptr<DiffFilter> MakeDiffFilter(const std::string& name,
                                           uint64_t capacity, uint64_t seed) {
  if (name == "FMB32") {
    return std::make_unique<DiffImpl<FastMultiBlock32>>(
        FastMultiBlock32::Make(capacity, 8.0, seed));
  }
  if (name == "FMB64") {
    return std::make_unique<DiffImpl<FastMultiBlock64>>(
        FastMultiBlock64::Make(capacity, 12.0, seed));
  }
  if (name == "BBF") {
    return std::make_unique<DiffImpl<BlockedBloomFilter>>(
        BlockedBloomFilter::MakeNonFlexible(capacity, seed));
  }
  if (name == "BBF-Flex") {
    return std::make_unique<DiffImpl<BlockedBloomFilter>>(
        BlockedBloomFilter::MakeFlexible(capacity, 10.67, seed));
  }
  return nullptr;
}

const char* kDiffFilterNames[] = {"FMB32", "FMB64", "BBF", "BBF-Flex"};

class FilterDifferential
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

// Two instances of the same filter, one built through the dispatched (SIMD
// where available) kernels and one through the portable kernels, walked from
// empty to full capacity.  At every occupancy checkpoint: identical
// serialized bytes, identical accept/FPR streams through both probe flavors
// and through every batch size, and zero false negatives.
TEST_P(FilterDifferential, SimdAndPortableBuildsAreBitIdentical) {
  const std::string name = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  constexpr uint64_t kCapacity = 4096;

  auto simd_built = MakeDiffFilter(name, kCapacity, seed);
  auto portable_built = MakeDiffFilter(name, kCapacity, seed);
  ASSERT_NE(simd_built, nullptr);
  ASSERT_NE(portable_built, nullptr);

  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  std::vector<uint64_t> keys(kCapacity);
  for (auto& k : keys) k = rng.Next();
  std::vector<uint64_t> probes(2 * kCapacity);
  for (size_t i = 0; i < probes.size(); ++i) {
    // Half the probe stream replays inserted keys, half is fresh randoms
    // (negative with overwhelming probability) so both the accept and the
    // FPR stream are exercised.
    probes[i] = (i % 2 == 0) ? keys[(i / 2) % keys.size()] : rng.Next();
  }

  std::vector<uint8_t> batch_out(probes.size());
  size_t inserted = 0;
  // Checkpoints at 0, 25, 50, 75, and 100% occupancy.
  for (int checkpoint = 0; checkpoint <= 4; ++checkpoint) {
    const size_t target = keys.size() * static_cast<size_t>(checkpoint) / 4;
    for (; inserted < target; ++inserted) {
      simd_built->Insert(keys[inserted]);
      portable_built->InsertPortable(keys[inserted]);
    }
    ASSERT_EQ(simd_built->Serialize(), portable_built->Serialize())
        << name << ": serialized bytes diverge at occupancy " << inserted;

    // Per-key parity across flavors and instances, and the no-false-negative
    // canary against the inserted prefix.
    std::vector<uint8_t> expected(probes.size());
    for (size_t i = 0; i < probes.size(); ++i) {
      const bool hit = simd_built->Contains(probes[i]);
      ASSERT_EQ(hit, simd_built->ContainsPortable(probes[i]))
          << name << ": flavor divergence on probe " << i;
      ASSERT_EQ(hit, portable_built->Contains(probes[i]))
          << name << ": instance divergence on probe " << i;
      expected[i] = hit ? 1 : 0;
    }
    for (size_t i = 0; i < inserted; ++i) {
      ASSERT_TRUE(simd_built->Contains(keys[i]))
          << name << ": false negative for key " << i;
    }

    // The batch path must reproduce the per-key answer stream exactly, for
    // every batch size.
    for (const size_t batch : kBatchSizes) {
      std::fill(batch_out.begin(), batch_out.end(), 0xee);
      for (size_t base = 0; base < probes.size(); base += batch) {
        const size_t n = std::min(batch, probes.size() - base);
        simd_built->ContainsBatch(probes.data() + base, n,
                                  batch_out.data() + base);
      }
      ASSERT_EQ(batch_out, expected)
          << name << ": batch size " << batch << " diverges at occupancy "
          << inserted;
    }
  }
}

// The factory configuration must be the same filter: identical answers and
// identical envelope payload as the concrete construction.
TEST_P(FilterDifferential, FactoryConfigMatchesConcreteConstruction) {
  const std::string name = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  constexpr uint64_t kCapacity = 2048;

  auto concrete = MakeDiffFilter(name, kCapacity, seed);
  auto factory = MakeFilter(name, kCapacity, seed);
  ASSERT_NE(concrete, nullptr);
  ASSERT_NE(factory, nullptr);

  Xoshiro256 rng(seed ^ 0xfac702u);
  std::vector<uint64_t> keys(kCapacity);
  for (auto& k : keys) {
    k = rng.Next();
    concrete->Insert(k);
    factory->Insert(k);
  }
  std::vector<uint8_t> concrete_out(keys.size()), factory_out(keys.size());
  concrete->ContainsBatch(keys.data(), keys.size(), concrete_out.data());
  factory->ContainsBatch(keys.data(), keys.size(), factory_out.data());
  EXPECT_EQ(concrete_out, factory_out);
  for (int i = 0; i < 4096; ++i) {
    const uint64_t probe = rng.Next();
    ASSERT_EQ(concrete->Contains(probe), factory->Contains(probe));
  }

  // The AnyFilter snapshot is envelope + the concrete payload, byte-equal.
  std::vector<uint8_t> envelope_plus_payload;
  ASSERT_TRUE(factory->SerializeTo(&envelope_plus_payload));
  const std::vector<uint8_t> payload = concrete->Serialize();
  ASSERT_GE(envelope_plus_payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         envelope_plus_payload.end() - payload.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Filters, FilterDifferential,
    ::testing::Combine(::testing::ValuesIn(kDiffFilterNames),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, uint64_t>>&
           param_info) {
      std::string name = std::get<0>(param_info.param);
      for (auto& c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// --- golden digests: cross-build bit-for-bit parity -------------------------

// FNV-1a over the serialized image and the answer stream of a fixed
// configuration.  The constants below were produced once and must reproduce
// on EVERY build — native and portable, any compiler — or the wire format /
// kernel semantics changed.  (Within-build SIMD-vs-portable parity is proved
// above; these lock parity across builds, where the two flavors cannot meet
// in one process.)
uint64_t Fnv1a(const uint8_t* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct GoldenDigest {
  const char* name;
  uint64_t digest;
};

// To refresh after an INTENTIONAL format/kernel change: run this test and
// copy the "actual" values from the failure output (they are printed in
// hex), then confirm the portable build (PF_NATIVE=OFF) reproduces them.
constexpr GoldenDigest kGoldenDigests[] = {
    {"FMB32", 0xd4d5fbdca29eda24ull},
    {"FMB64", 0x2993597f7531ee0full},
    {"BBF", 0xd429503bcbf16509ull},
    {"BBF-Flex", 0x277325211050e126ull},
};

TEST(KernelGoldenDigest, SerializedBytesAndAnswerStreamMatchGolden) {
  for (const auto& golden : kGoldenDigests) {
    auto filter = MakeDiffFilter(golden.name, 10000, 0x5eedf00dull);
    ASSERT_NE(filter, nullptr) << golden.name;
    Xoshiro256 keys_rng(1), probe_rng(2);
    for (int i = 0; i < 10000; ++i) filter->Insert(keys_rng.Next());
    const std::vector<uint8_t> image = filter->Serialize();
    uint64_t digest = Fnv1a(image.data(), image.size(), 1469598103934665603ull);
    for (int i = 0; i < 20000; ++i) {
      const uint8_t answer = filter->Contains(probe_rng.Next()) ? 1 : 0;
      digest = Fnv1a(&answer, 1, digest);
    }
    EXPECT_EQ(digest, golden.digest)
        << golden.name << ": actual digest 0x" << std::hex << digest
        << " — serialized bytes or answer stream changed across builds";
  }
}

}  // namespace
}  // namespace prefixfilter
