// Verifies the failure-probability bounds of §6.1/§6.1.1 and the spare
// sizing rule of §4.2.1.
#include "src/analysis/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/analysis/binomial.h"
#include "src/util/random.h"

namespace prefixfilter::analysis {
namespace {

// Claim 16: with n' = 1.1 E[X] (delta = 0.1), the failure probability is at
// most 200*pi*k/(0.99*n).
TEST(Bounds, Claim16ClosedForm) {
  const uint64_t n = uint64_t{1} << 25;
  const uint32_t k = 25;
  const double cantelli = CantelliFailureBound(n, k, 0.1);
  const double claim16 = 200.0 * M_PI * k / (0.99 * static_cast<double>(n));
  EXPECT_NEAR(cantelli, claim16, 1e-12 * claim16);
}

// Figure 2's qualitative content: Cantelli is better (smaller) for small n,
// Hoeffding exponentially better for large n.
TEST(Bounds, CantelliBetterSmallN_HoeffdingBetterLargeN) {
  const uint32_t k = 25;
  const double delta = 0.01;
  const uint64_t small_n = (uint64_t{1} << 20) * k;   // m = 2^20
  const uint64_t large_n = (uint64_t{1} << 31) * k;   // m = 2^31
  EXPECT_LT(CantelliFailureBound(small_n, k, delta),
            HoeffdingFailureBound(small_n, k, delta));
  EXPECT_LT(HoeffdingFailureBound(large_n, k, delta),
            CantelliFailureBound(large_n, k, delta));
}

// §6.1.1: for n >= 2^28 * k and delta = 1/80, Hoeffding gives < 2^-30.
TEST(Bounds, LargeNFailureBelowTwoToMinus30) {
  const uint32_t k = 25;
  const uint64_t n = (uint64_t{1} << 28) * k;
  const double bound = HoeffdingFailureBound(n, k, 1.0 / 80.0);
  EXPECT_LT(bound, std::pow(2.0, -30));
}

TEST(Bounds, MonotoneInN) {
  const uint32_t k = 25;
  const double delta = 0.1;
  double prev_c = 1e9, prev_h = 1e9;
  for (int log_n = 20; log_n <= 32; log_n += 2) {
    const uint64_t n = uint64_t{1} << log_n;
    const double c = CantelliFailureBound(n, k, delta);
    const double h = HoeffdingFailureBound(n, k, delta);
    EXPECT_LT(c, prev_c);
    // Hoeffding underflows to exactly 0 for huge n; monotone non-strictly.
    EXPECT_LE(h, prev_h);
    prev_c = c;
    prev_h = h;
  }
}

TEST(Bounds, MonotoneInDelta) {
  const uint32_t k = 25;
  const uint64_t n = uint64_t{1} << 26;
  double prev = 2.0;
  for (double delta : {0.001, 0.01, 0.025, 0.05, 0.1}) {
    const double b = FailureBound(n, k, delta);
    EXPECT_LE(b, prev) << "delta=" << delta;
    prev = b;
  }
}

TEST(Bounds, FailureBoundClamped) {
  // Tiny n and delta make both bounds trivial (> 1); FailureBound clamps.
  EXPECT_LE(FailureBound(1000, 25, 0.001), 1.0);
  EXPECT_GE(FailureBound(1000, 25, 0.001), 0.0);
}

TEST(Bounds, SpareCapacityApproximatesSlackTimesExpectation) {
  const uint64_t n = uint64_t{1} << 22;
  const uint32_t k = 25;
  const uint64_t m = n / k;
  const double ex = ExpectedSpareSize(n, m, k);
  const uint64_t cap = SpareCapacity(n, m, k, 1.1);
  EXPECT_GE(cap, static_cast<uint64_t>(1.1 * ex));
  EXPECT_LE(cap, static_cast<uint64_t>(1.1 * ex) + 1);
}

TEST(Bounds, SpareCapacityHasFloor) {
  // Tiny filters still get a non-trivial spare.
  EXPECT_GE(SpareCapacity(100, 5, 25, 1.1), 64u);
}

// Empirical check of the sizing rule: over repeated random experiments, the
// realized spare size should (essentially always) stay below the capacity.
TEST(Bounds, SizingRuleHoldsEmpirically) {
  const uint64_t n = 1 << 20;
  const uint32_t k = 25;
  const uint64_t m = static_cast<uint64_t>(std::ceil(n / (0.95 * k)));
  const uint64_t cap = SpareCapacity(n, m, k, 1.1);
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint32_t> bins(m, 0);
    uint64_t overflow = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t& b = bins[rng.Below(m)];
      if (b >= k) {
        ++overflow;
      } else {
        ++b;
      }
    }
    EXPECT_LE(overflow, cap) << "trial " << trial;
  }
}

TEST(Bounds, PrefixFilterFprBoundCorollary31) {
  // n/(m*s) + eps'/sqrt(2*pi*k), with the paper's parameters:
  // m = n/(0.95*25), s = 6400 -> collision term = 0.95*25/6400 ~ 0.371%.
  const uint64_t n = uint64_t{1} << 24;
  const uint64_t m = static_cast<uint64_t>(std::ceil(n / (0.95 * 25)));
  const double bound = PrefixFilterFprBound(n, m, 25, 6400, 0.0044);
  const double collision = static_cast<double>(n) / (static_cast<double>(m) * 6400.0);
  EXPECT_NEAR(collision, 0.00371, 0.0001);
  EXPECT_NEAR(bound, collision + 0.0044 / std::sqrt(2 * M_PI * 25), 1e-9);
  // The paper's "eps < 1/256 via alpha = 0.95" refers to the dominant
  // collision term alpha*k/s; the spare adds a downweighted ~0.03%.
  EXPECT_LT(collision, 1.0 / 256.0);
  EXPECT_LT(bound, 0.0042);
}

}  // namespace
}  // namespace prefixfilter::analysis
