// Core prefix filter tests (paper §4): correctness, false positive rate,
// spare traffic, and Theorem 2's guarantees — for all three spare types.
#include "src/core/prefix_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/analysis/binomial.h"
#include "src/core/spare.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

template <typename SpareTraits>
class PrefixFilterTypedTest : public ::testing::Test {};

using SpareTypes = ::testing::Types<SpareBbfTraits, SpareCf12Traits, SpareTcTraits>;
TYPED_TEST_SUITE(PrefixFilterTypedTest, SpareTypes);

TYPED_TEST(PrefixFilterTypedTest, NoFalseNegativesAtFullLoad) {
  const uint64_t n = 200000;
  const auto keys = RandomKeys(n, 111);
  PrefixFilter<TypeParam> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
}

TYPED_TEST(PrefixFilterTypedTest, EmptyContainsAlmostNothing) {
  PrefixFilter<TypeParam> pf(100000);
  const auto probes = RandomKeys(100000, 112);
  uint64_t hits = 0;
  for (uint64_t k : probes) hits += pf.Contains(k);
  EXPECT_EQ(hits, 0u);
}

TYPED_TEST(PrefixFilterTypedTest, FprNearPaperTable3) {
  // Paper Table 3: PF error ~0.37-0.39% for every spare choice.
  const uint64_t n = 1 << 19;
  const auto keys = RandomKeys(n, 113);
  PrefixFilter<TypeParam> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  const auto probes = RandomKeys(1 << 21, 114);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += pf.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_GT(rate, 0.002);
  EXPECT_LT(rate, 0.006);
  // And within the analytic bound of Corollary 31 (spare fpr <= 1).
  EXPECT_LT(rate, pf.FprBound(0.05));
}

TYPED_TEST(PrefixFilterTypedTest, SpareInsertFractionMatchesTheorem5) {
  // Expected forwarded fraction at alpha=0.95 is ~6%; Theorem 2(3) bounds it
  // by 1.1/sqrt(2*pi*k) ~ 8.8% w.h.p.
  const uint64_t n = 1 << 20;
  const auto keys = RandomKeys(n, 115);
  PrefixFilter<TypeParam> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  const double frac = pf.stats().SpareInsertFraction();
  const double expected =
      analysis::ExpectedSpareFraction(n, pf.num_bins(), pf.kBinCapacity);
  EXPECT_NEAR(frac, expected, 0.2 * expected);
  EXPECT_LT(frac, 1.1 / std::sqrt(2 * M_PI * 25));
}

TYPED_TEST(PrefixFilterTypedTest, NegativeQuerySpareFractionBounded) {
  // Theorem 17: negative queries reach the spare w.p. <= 1/sqrt(2*pi*k)
  // (~7.98%); the paper's prototype reports ~8% at alpha=1 and less at 0.95.
  const uint64_t n = 1 << 20;
  const auto keys = RandomKeys(n, 116);
  PrefixFilter<TypeParam> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  pf.ResetStats();
  const auto probes = RandomKeys(1 << 20, 117);
  for (uint64_t k : probes) pf.Contains(k);
  const double frac = pf.stats().SpareQueryFraction();
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 1.0 / std::sqrt(2 * M_PI * 25));
}

TYPED_TEST(PrefixFilterTypedTest, PositiveQuerySpareFractionBounded) {
  // Theorem 25: positive queries also reach the spare w.p. <= 1/sqrt(2*pi*k).
  const uint64_t n = 1 << 20;
  const auto keys = RandomKeys(n, 118);
  PrefixFilter<TypeParam> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  pf.ResetStats();
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
  EXPECT_LT(pf.stats().SpareQueryFraction(), 1.0 / std::sqrt(2 * M_PI * 25));
}

TYPED_TEST(PrefixFilterTypedTest, ArbitrarySetSizes) {
  // "supports sets of arbitrary size (i.e., not restricted to powers of
  // two)" — a headline contribution.
  for (uint64_t n : {997u, 30011u, 123457u}) {
    const auto keys = RandomKeys(n, 119 + n);
    PrefixFilter<TypeParam> pf(n);
    for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
    for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
  }
}

TYPED_TEST(PrefixFilterTypedTest, SpaceWithinPaperBallpark) {
  // Table 3: PF total space 11.5-12.2 bits/key depending on the spare.
  const uint64_t n = 1 << 20;
  PrefixFilter<TypeParam> pf(n);
  EXPECT_GT(pf.BitsPerKey(), 10.5);
  EXPECT_LT(pf.BitsPerKey(), 12.6);
}

TYPED_TEST(PrefixFilterTypedTest, InsertionsNeverFailAtRatedCapacity) {
  // Theorem 2(2): failure probability at most 200*pi*k/(0.99 n); for n=2^20
  // that is ~1.5%, and the spare sizing slack makes observed failures rarer.
  // A single build must succeed.
  const uint64_t n = 1 << 20;
  const auto keys = RandomKeys(n, 120);
  PrefixFilter<TypeParam> pf(n);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  EXPECT_EQ(pf.size(), n);
}

TEST(PrefixFilter, DuplicateAvoidanceOptionWorks) {
  // §4.4: optionally skip forwarding fingerprints already in the spare.
  const uint64_t n = 1 << 18;
  const auto keys = RandomKeys(n, 121);
  PrefixFilterOptions options;
  options.avoid_spare_duplicates = true;
  PrefixFilter<SpareCf12Traits> pf(n, options);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
}

TEST(PrefixFilter, ModerateFingerprintDuplicationTolerated) {
  // §4.4 fingerprint-collision discussion: duplicate fingerprints flood one
  // spare location; a cuckoo spare absorbs 2b+1 copies, which comfortably
  // covers realistic collision counts from *distinct* keys.
  PrefixFilter<SpareCf12Traits> pf(100000);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(pf.Insert(777));
  EXPECT_TRUE(pf.Contains(777));
}

TEST(PrefixFilter, DuplicateAvoidanceHandlesUnboundedDuplication) {
  // With the §4.4 duplicate check enabled, even adversarial duplication of
  // one fingerprint cannot overflow the spare.
  PrefixFilterOptions options;
  options.avoid_spare_duplicates = true;
  PrefixFilter<SpareCf12Traits> pf(100000, options);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(pf.Insert(777));
  EXPECT_TRUE(pf.Contains(777));
}

TEST(PrefixFilter, Alpha100StillWorks) {
  PrefixFilterOptions options;
  options.bin_load_factor = 1.0;
  const uint64_t n = 1 << 19;
  const auto keys = RandomKeys(n, 122);
  PrefixFilter<SpareTcTraits> pf(n, options);
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(pf.Contains(k));
  // At alpha=1 the forwarded fraction rises to ~8% (paper §4.2.2).
  EXPECT_NEAR(pf.stats().SpareInsertFraction(), 0.08, 0.015);
}

TEST(PrefixFilter, StatsAccounting) {
  const uint64_t n = 1 << 16;
  const auto keys = RandomKeys(n, 123);
  PrefixFilter<SpareTcTraits> pf(n);
  for (uint64_t k : keys) pf.Insert(k);
  EXPECT_EQ(pf.stats().inserts, n);
  EXPECT_GT(pf.stats().spare_inserts, 0u);
  EXPECT_GT(pf.stats().evictions, 0u);
  EXPECT_LE(pf.stats().evictions, pf.stats().spare_inserts);
  pf.ResetStats();
  EXPECT_EQ(pf.stats().inserts, 0u);
}

TEST(PrefixFilter, NamesIncludeSpare) {
  EXPECT_EQ(PrefixFilter<SpareBbfTraits>(1000).Name(), "PF[BBF-Flex]");
  EXPECT_EQ(PrefixFilter<SpareCf12Traits>(1000).Name(), "PF[CF12-Flex]");
  EXPECT_EQ(PrefixFilter<SpareTcTraits>(1000).Name(), "PF[TC]");
}

}  // namespace
}  // namespace prefixfilter
