// Property test for Invariant 1 (the Prefix Invariant, §4.1): at any point
// during a build, every bin stores a *prefix* of the sorted multiset of
// mini-fingerprints mapped to it, and every fingerprint not in its bin was
// forwarded to the spare.
//
// We reconstruct the ground truth by shadowing the filter's own hashing
// (same seed, same HashParts split) and compare bin contents against the
// model after every growth step.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/prefix_filter.h"
#include "src/core/spare.h"
#include "src/util/hash.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

class PrefixInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefixInvariantTest, BinsHoldSortedPrefixes) {
  const uint64_t n = 20000;
  PrefixFilterOptions options;
  options.seed = GetParam();
  PrefixFilter<SpareCf12Traits> pf(n, options);

  // Shadow hash: identical to the filter's internals.
  Dietzfelbinger64 hash(options.seed);
  const uint64_t m = pf.num_bins();

  // Ground truth: all mini-fingerprints mapped to each bin so far.
  std::map<uint64_t, std::vector<uint16_t>> model;

  const auto keys = RandomKeys(n, GetParam() ^ 0xfeedu);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    ASSERT_TRUE(pf.Insert(key));
    const uint64_t h = hash(key);
    const uint64_t b = HashParts::Bin(h, m);
    const uint16_t fp = static_cast<uint16_t>(
        (HashParts::Quotient(h, PD256::kNumLists) << 8) |
        HashParts::Remainder(h));
    model[b].push_back(fp);

    // Check the touched bin (checking all bins each step would be O(n^2)).
    auto sorted = model[b];
    std::sort(sorted.begin(), sorted.end());
    const PD256& bin = pf.bin(b);
    std::vector<uint16_t> stored;
    for (auto [q, r] : bin.Decode()) {
      stored.push_back(static_cast<uint16_t>((q << 8) | r));
    }
    std::sort(stored.begin(), stored.end());
    ASSERT_LE(stored.size(), sorted.size());
    // Invariant 1: stored == the |stored|-smallest fingerprints seen.
    for (size_t j = 0; j < stored.size(); ++j) {
      ASSERT_EQ(stored[j], sorted[j])
          << "bin " << b << " violates the Prefix Invariant at step " << i;
    }
    // A bin missing fingerprints must be full and marked overflowed.
    if (stored.size() < sorted.size()) {
      ASSERT_TRUE(bin.Full());
      ASSERT_TRUE(bin.Overflowed());
      ASSERT_EQ(stored.size(), static_cast<size_t>(PD256::kCapacity));
    }
  }

  // Final sweep over every bin.
  for (const auto& [b, fps] : model) {
    auto sorted = fps;
    std::sort(sorted.begin(), sorted.end());
    std::vector<uint16_t> stored;
    for (auto [q, r] : pf.bin(b).Decode()) {
      stored.push_back(static_cast<uint16_t>((q << 8) | r));
    }
    std::sort(stored.begin(), stored.end());
    for (size_t j = 0; j < stored.size(); ++j) {
      ASSERT_EQ(stored[j], sorted[j]) << "bin " << b;
    }
  }
}

TEST_P(PrefixInvariantTest, OverflowedBinMaxMatchesStoredMax) {
  // §5.2.3's relaxed invariant, observed through the filter: for every
  // overflowed bin, MaxFingerprint() equals the largest decoded fingerprint.
  const uint64_t n = 50000;
  PrefixFilterOptions options;
  options.seed = GetParam() ^ 0xc0ffeeu;
  PrefixFilter<SpareTcTraits> pf(n, options);
  const auto keys = RandomKeys(n, GetParam());
  for (uint64_t k : keys) ASSERT_TRUE(pf.Insert(k));

  uint64_t overflowed_bins = 0;
  for (uint64_t b = 0; b < pf.num_bins(); ++b) {
    const PD256& bin = pf.bin(b);
    if (!bin.Overflowed()) continue;
    ++overflowed_bins;
    uint16_t max_fp = 0;
    for (auto [q, r] : bin.Decode()) {
      max_fp = std::max<uint16_t>(max_fp,
                                  static_cast<uint16_t>((q << 8) | r));
    }
    ASSERT_EQ(bin.MaxFingerprint(), max_fp) << "bin " << b;
  }
  EXPECT_GT(overflowed_bins, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixInvariantTest,
                         ::testing::Values(1, 7, 42, 1337, 99991));

}  // namespace
}  // namespace prefixfilter
