#include "src/filters/twochoicer.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(TwoChoicer, NoFalseNegatives) {
  const auto keys = RandomKeys(200000, 101);
  TwoChoicer tc(keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(tc.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(tc.Contains(k));
}

TEST(TwoChoicer, FillsToFullCapacity) {
  // Power-of-two-choices must reach the rated 93.5% bin load without
  // failures (unlike the cuckoo filter's kick loop).
  const uint64_t n = 500000;
  const auto keys = RandomKeys(n, 102);
  TwoChoicer tc(n);
  for (uint64_t k : keys) ASSERT_TRUE(tc.Insert(k));
  EXPECT_EQ(tc.size(), n);
}

TEST(TwoChoicer, FprNearPaper) {
  // Paper Table 3: TC empirical FPR 0.44%.
  const auto keys = RandomKeys(200000, 103);
  TwoChoicer tc(keys.size());
  for (uint64_t k : keys) tc.Insert(k);
  const auto probes = RandomKeys(400000, 104);
  uint64_t fp = 0;
  for (uint64_t k : probes) fp += tc.Contains(k);
  const double rate = static_cast<double>(fp) / probes.size();
  EXPECT_NEAR(rate, 0.0044, 0.0015);
}

TEST(TwoChoicer, SpaceMatchesTable3) {
  // 512 bits per bin / (0.935 * 48) keys per bin = 11.41 bits/key.
  const uint64_t n = 1 << 20;
  TwoChoicer tc(n);
  const double bpk = 8.0 * tc.SpaceBytes() / static_cast<double>(n);
  EXPECT_NEAR(bpk, 11.41, 0.05);
}

TEST(TwoChoicer, EmptyContainsNothing) {
  TwoChoicer tc(10000);
  const auto probes = RandomKeys(50000, 105);
  uint64_t hits = 0;
  for (uint64_t k : probes) hits += tc.Contains(k);
  EXPECT_EQ(hits, 0u);
}

TEST(TwoChoicer, ArbitraryCapacities) {
  // Not restricted to powers of two (the paper's flexibility point).
  for (uint64_t n : {1000u, 12345u, 99999u}) {
    const auto keys = RandomKeys(n, 106 + n);
    TwoChoicer tc(n);
    for (uint64_t k : keys) ASSERT_TRUE(tc.Insert(k));
    for (uint64_t k : keys) ASSERT_TRUE(tc.Contains(k));
  }
}

}  // namespace
}  // namespace prefixfilter
