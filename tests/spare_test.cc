// Tests for the spare adapters (§4.2, §7.1.1 sizing rules).
#include "src/core/spare.h"

#include <gtest/gtest.h>

#include "src/analysis/binomial.h"
#include "src/analysis/bounds.h"
#include "src/core/prefix_filter.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(Spare, BbfSizedAtTwiceNPrime) {
  // 2n' keys at 10.67 bits/key.
  const uint64_t n_prime = 100000;
  auto bbf = SpareBbfTraits::Create(n_prime, 1);
  const double bits = 8.0 * static_cast<double>(bbf.SpaceBytes());
  EXPECT_NEAR(bits / (2.0 * n_prime), 10.67, 0.1);
}

TEST(Spare, Cf12SizedWithFailureHeadroom) {
  const uint64_t n_prime = 100000;
  auto cf = SpareCf12Traits::Create(n_prime, 1);
  EXPECT_GE(cf.capacity(), static_cast<uint64_t>(n_prime / 0.94));
}

TEST(Spare, TcSizedWithFailureHeadroom) {
  const uint64_t n_prime = 100000;
  auto tc = SpareTcTraits::Create(n_prime, 1);
  EXPECT_GE(tc.capacity(), static_cast<uint64_t>(n_prime / 0.935));
}

TEST(Spare, EachSpareAbsorbsNPrimeKeys) {
  const uint64_t n_prime = 50000;
  const auto keys = RandomKeys(n_prime, 2);
  {
    auto f = SpareBbfTraits::Create(n_prime, 3);
    for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
    for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  }
  {
    auto f = SpareCf12Traits::Create(n_prime, 3);
    for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
    for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  }
  {
    auto f = SpareTcTraits::Create(n_prime, 3);
    for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
    for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  }
}

// §7.2's observation: PF space and FPR are nearly identical regardless of
// the spare, because the spare holds only a ~1/sqrt(2*pi*k) fraction.
TEST(Spare, SpareChoiceBarelyAffectsTotalSpace) {
  const uint64_t n = 1 << 20;
  PrefixFilter<SpareBbfTraits> a(n);
  PrefixFilter<SpareCf12Traits> b(n);
  PrefixFilter<SpareTcTraits> c(n);
  const double bits_a = a.BitsPerKey();
  const double bits_b = b.BitsPerKey();
  const double bits_c = c.BitsPerKey();
  EXPECT_NEAR(bits_a, bits_b, 0.7);
  EXPECT_NEAR(bits_b, bits_c, 0.3);
  // Paper Table 3 ordering: PF[BBF-Flex] > PF[CF12-Flex] > PF[TC].
  EXPECT_GT(bits_a, bits_b);
  EXPECT_GT(bits_b, bits_c);
}

TEST(Spare, SpareCapacityDerivedFromExactExpectation) {
  const uint64_t n = 1 << 20;
  PrefixFilter<SpareTcTraits> pf(n);
  const double expected =
      analysis::ExpectedSpareSize(n, pf.num_bins(), pf.kBinCapacity);
  EXPECT_GE(pf.spare_capacity(), static_cast<uint64_t>(1.1 * expected));
  EXPECT_LE(pf.spare_capacity(), static_cast<uint64_t>(1.1 * expected) + 1);
}

}  // namespace
}  // namespace prefixfilter
