#include "src/util/hash.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter {
namespace {

TEST(FastRange, StaysInRange) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 10000; ++trial) {
    const uint64_t range = 1 + rng.Below(1'000'000);
    EXPECT_LT(FastRange64(rng.Next(), range), range);
  }
}

TEST(FastRange, Extremes) {
  EXPECT_EQ(FastRange64(0, 100), 0u);
  EXPECT_EQ(FastRange64(~uint64_t{0}, 100), 99u);
  EXPECT_EQ(FastRange32(0, 25), 0u);
  EXPECT_EQ(FastRange32(~uint32_t{0}, 25), 24u);
}

TEST(FastRange, ApproximatelyUniform) {
  constexpr uint64_t kRange = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kRange, 0);
  Xoshiro256 rng(22);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[FastRange64(rng.Next(), kRange)];
  }
  const double expected = static_cast<double>(kSamples) / kRange;
  for (uint64_t b = 0; b < kRange; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << "bucket " << b;
  }
}

TEST(Mix64, Bijective) {
  // Injectivity on a sample (full bijectivity follows from construction).
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 10000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, AvalancheRoughly) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  Xoshiro256 rng(23);
  double total_flips = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t x = rng.Next();
    const int bit = static_cast<int>(rng.Below(64));
    total_flips += std::popcount(Mix64(x) ^ Mix64(x ^ (uint64_t{1} << bit)));
  }
  EXPECT_NEAR(total_flips / kTrials, 32.0, 1.0);
}

TEST(Dietzfelbinger, DeterministicPerSeed) {
  Dietzfelbinger64 h1(7), h2(7), h3(8);
  EXPECT_EQ(h1(12345), h2(12345));
  EXPECT_NE(h1(12345), h3(12345));  // overwhelmingly likely
}

TEST(Dietzfelbinger, UniformBuckets) {
  Dietzfelbinger64 h(99);
  constexpr uint64_t kBuckets = 64;
  constexpr int kSamples = 640000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[FastRange64(h(static_cast<uint64_t>(i)), kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 6 * std::sqrt(expected)) << "bucket " << b;
  }
}

TEST(Dietzfelbinger, SequentialKeysSpread) {
  // Multiply-shift must break up dense sequential keys (the pathological
  // input for weaker hashes).
  Dietzfelbinger64 h(5);
  std::set<uint64_t> high_bits;
  for (uint64_t x = 0; x < 4096; ++x) high_bits.insert(h(x) >> 52);
  // With 4096 distinct inputs into 4096 high-bit buckets, expect good spread.
  EXPECT_GT(high_bits.size(), 2000u);
}

TEST(HashParts, QuotientInRange) {
  Xoshiro256 rng(24);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(HashParts::Quotient(rng.Next(), 25), 25u);
    EXPECT_LT(HashParts::Bin(rng.Next(), 12345), 12345u);
  }
}

TEST(HashParts, QuotientUniform) {
  Xoshiro256 rng(25);
  std::vector<int> counts(25, 0);
  constexpr int kSamples = 250000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[HashParts::Quotient(rng.Next(), 25)];
  }
  const double expected = kSamples / 25.0;
  for (int q = 0; q < 25; ++q) {
    EXPECT_NEAR(counts[q], expected, 6 * std::sqrt(expected)) << "q=" << q;
  }
}

TEST(HashBytes, DeterministicAndSeedSensitive) {
  const char data[] = "the quick brown fox";
  EXPECT_EQ(HashBytes(data, sizeof(data), 1), HashBytes(data, sizeof(data), 1));
  EXPECT_NE(HashBytes(data, sizeof(data), 1), HashBytes(data, sizeof(data), 2));
}

TEST(HashBytes, LengthSensitive) {
  const char data[] = "aaaaaaaaaaaaaaaa";
  EXPECT_NE(HashBytes(data, 15, 1), HashBytes(data, 16, 1));
  EXPECT_NE(HashBytes(data, 7, 1), HashBytes(data, 8, 1));
}

TEST(HashBytes, ContentSensitive) {
  const char a[] = "abcdefgh12345678";
  const char b[] = "abcdefgh12345679";
  EXPECT_NE(HashBytes(a, 16, 1), HashBytes(b, 16, 1));
}

}  // namespace
}  // namespace prefixfilter
