#include "src/util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace prefixfilter {
namespace {

TEST(SplitMix, Deterministic) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Xoshiro, BitBalance) {
  Xoshiro256 rng(9);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) ones += std::popcount(rng.Next());
  const double mean = static_cast<double>(ones) / kSamples;
  EXPECT_NEAR(mean, 32.0, 0.5);
}

TEST(Xoshiro, UsableWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const std::vector<int> orig = v;
  Xoshiro256 rng(10);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, orig);  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);  // a permutation
}

TEST(RandomKeys, DistinctWithOverwhelmingProbability) {
  const auto keys = RandomKeys(100000, 1);
  std::set<uint64_t> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
}

TEST(RandomKeys, SeedSensitive) {
  EXPECT_NE(RandomKeys(10, 1), RandomKeys(10, 2));
  EXPECT_EQ(RandomKeys(10, 3), RandomKeys(10, 3));
}

TEST(SampleKeys, DrawsOnlyFromPrefix) {
  const auto keys = RandomKeys(1000, 4);
  const auto sample = SampleKeys(keys, 100, 5000, 5);
  const std::set<uint64_t> prefix(keys.begin(), keys.begin() + 100);
  for (uint64_t k : sample) {
    EXPECT_TRUE(prefix.count(k)) << "sampled key outside prefix";
  }
}

TEST(SampleKeys, CoversPrefix) {
  const auto keys = RandomKeys(64, 6);
  const auto sample = SampleKeys(keys, 64, 6400, 7);
  const std::set<uint64_t> seen(sample.begin(), sample.end());
  // Coupon collector: 6400 draws over 64 coupons misses one w.p. ~ 2^-100.
  EXPECT_EQ(seen.size(), 64u);
}

}  // namespace
}  // namespace prefixfilter
