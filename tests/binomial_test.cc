// Numerically verifies the binomial machinery of §6, including the
// propositions the paper proves symbolically (7, 8, 9) and the headline
// approximations (E[X] ~ n/sqrt(2*pi*k), Theorem 17's bound).
#include "src/analysis/binomial.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace prefixfilter::analysis {
namespace {

TEST(Binomial, PmfSmallCasesExact) {
  // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(BinomialPmf(4, 0.5, 0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 1), 4.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 2), 6.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 4), 1.0 / 16, 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  double total = 0;
  for (int j = 0; j <= 30; ++j) total += BinomialPmf(30, 0.3, j);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Binomial, CdfMatchesPmfSum) {
  const double n = 1000, p = 0.01;
  double sum = 0;
  for (int j = 0; j <= 25; ++j) {
    sum += BinomialPmf(n, p, j);
    EXPECT_NEAR(BinomialCdf(n, p, j), sum, 1e-10) << "j=" << j;
  }
}

TEST(Binomial, CdfEdgeCases) {
  EXPECT_EQ(BinomialCdf(10, 0.5, -1), 0.0);
  EXPECT_EQ(BinomialCdf(10, 0.5, 10), 1.0);
  EXPECT_NEAR(BinomialCdf(10, 0.0, 0), 1.0, 1e-12);
}

// Proposition 7: sum_{j<=k} j*Pr[B_n = j] == k * Pr[B_{n-1} <= k-1]
// ... as specialized in the proof with p = k/n.  We check the identity the
// proof actually derives: truncated expectation = n*p*Pr[B_{n-1} <= k-1].
TEST(Binomial, Proposition7TruncatedExpectation) {
  const double n = 5000;
  for (int k : {10, 25, 60}) {
    const double p = static_cast<double>(k) / n;
    double lhs = 0;
    for (int j = 0; j <= k; ++j) lhs += j * BinomialPmf(n, p, j);
    const double rhs = n * p * BinomialCdf(n - 1, p, k - 1);
    EXPECT_NEAR(lhs, rhs, 1e-9 * rhs) << "k=" << k;
  }
}

// Proposition 8 (with m = n/k, p = 1/m): E[max(B-k, 0)] = (1-p)*k*Pr[B = k].
TEST(Binomial, Proposition8ClosedForm) {
  const double n = 100000;
  for (int k : {20, 25, 48}) {
    const double p = static_cast<double>(k) / n;
    const double direct = ExpectedOverflowPerBin(n, p, k);
    const double closed = (1 - p) * k * BinomialPmf(n, p, k);
    EXPECT_NEAR(direct, closed, 1e-6 * closed) << "k=" << k;
  }
}

// Proposition 9: the Stirling sandwich actually contains the exact pmf.
TEST(Binomial, Proposition9StirlingSandwich) {
  for (double n : {1000.0, 100000.0, 1e7}) {
    for (int k : {20, 25, 48, 100}) {
      const double p = k / n;
      const double exact = BinomialPmf(n, p, k);
      const auto bounds = StirlingPmfBounds(n, k);
      // Strictness up to numerical error: the sandwich width shrinks to
      // ~1e-7 relative at large n/k, the same order as accumulated lgamma
      // rounding in the "exact" pmf.
      EXPECT_LT(bounds.lower, exact * (1 + 1e-6)) << "n=" << n << " k=" << k;
      EXPECT_GT(bounds.upper, exact * (1 - 1e-6)) << "n=" << n << " k=" << k;
      // The sandwich is tight: within 1% for these parameters.
      EXPECT_NEAR(bounds.upper / bounds.lower, 1.0, 0.01);
    }
  }
}

// Theorem 5 / §4.2.2: at full bin-table load (m = n/k) the expected spare
// fraction approaches 1/sqrt(2*pi*k); with k=25 that is ~7.98%, and the
// paper quotes "about 8% of the dataset" for its prototype.
TEST(Binomial, SpareFractionNearPaperApproximation) {
  const uint64_t n = uint64_t{1} << 25;
  const uint32_t k = 25;
  const uint64_t m = n / k;
  const double exact = ExpectedSpareFraction(n, m, k);
  const double approx = SpareFractionApproximation(k);  // 0.0798
  EXPECT_NEAR(approx, 0.0798, 0.0001);
  EXPECT_LT(exact, approx);          // Eq. (1) is an upper bound
  EXPECT_GT(exact, 0.9 * approx);    // ...and a tight one
}

// §4.2.2 / Figure 1: lowering the bin-table load factor reduces forwarding;
// the paper highlights a 1.36x reduction from alpha=1.0 to alpha=0.95 at
// k=25.
TEST(Binomial, Alpha95ReducesForwardingByPaperFactor) {
  const uint64_t n = uint64_t{1} << 26;
  const uint32_t k = 25;
  const double full = ExpectedSpareFraction(n, n / k, k);
  const uint64_t m95 = static_cast<uint64_t>(std::ceil(n / (0.95 * k)));
  const double alpha95 = ExpectedSpareFraction(n, m95, k);
  EXPECT_LT(alpha95, full);
  EXPECT_NEAR(full / alpha95, 1.36, 0.06);
}

// Figure 1 shape: forwarding fraction decreases in k and in 1/alpha.
TEST(Binomial, ForwardingMonotoneInCapacityAndAlpha) {
  const uint64_t n = uint64_t{1} << 24;
  double prev = 1.0;
  for (uint32_t k = 20; k <= 120; k += 20) {
    const double f = ExpectedSpareFraction(n, n / k, k);
    EXPECT_LT(f, prev) << "k=" << k;
    prev = f;
  }
  const uint32_t k = 25;
  double prev_alpha = 1.0;
  for (double alpha : {1.0, 0.95, 0.90, 0.85}) {
    const uint64_t m = static_cast<uint64_t>(std::ceil(n / (alpha * k)));
    const double f = ExpectedSpareFraction(n, m, k);
    EXPECT_LT(f, prev_alpha) << "alpha=" << alpha;
    prev_alpha = f;
  }
}

// Theorem 17: Pr[negative query hits spare] = Pr[B = k+1] <= 1/sqrt(2*pi*k).
TEST(Binomial, NegativeQuerySpareProbabilityBounded) {
  const uint64_t n = uint64_t{1} << 24;
  for (uint32_t k : {20u, 25u, 48u}) {
    const double prob = NegativeQuerySpareProbability(n, n / k, k);
    EXPECT_GT(prob, 0.0);
    EXPECT_LE(prob, SpareFractionApproximation(k)) << "k=" << k;
  }
}

// Monte-Carlo validation of E[X]: simulate the balls-into-bins experiment
// and compare with the analytic expectation.
TEST(Binomial, MonteCarloSpareSizeMatchesExpectation) {
  const uint64_t n = 200000;
  const uint32_t k = 25;
  const uint64_t m = static_cast<uint64_t>(std::ceil(n / (0.95 * k)));
  Xoshiro256 rng(77);
  double total = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<uint32_t> bins(m, 0);
    uint64_t overflow = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t& b = bins[rng.Below(m)];
      if (b >= k) {
        ++overflow;
      } else {
        ++b;
      }
    }
    total += static_cast<double>(overflow);
  }
  const double simulated = total / kTrials;
  const double analytic = ExpectedSpareSize(n, m, k);
  EXPECT_NEAR(simulated, analytic, 0.05 * analytic);
}

}  // namespace
}  // namespace prefixfilter::analysis
