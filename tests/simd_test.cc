#include "src/util/simd.h"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "src/util/aligned.h"
#include "src/util/random.h"

namespace prefixfilter {
namespace {

class SimdTest : public ::testing::Test {
 protected:
  // 64-byte aligned scratch block.
  alignas(64) uint8_t block_[64];
};

TEST_F(SimdTest, FindByteMask32MatchesScalar) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    for (auto& b : block_) b = static_cast<uint8_t>(rng.Next() & 0xf);
    const uint8_t needle = static_cast<uint8_t>(rng.Next() & 0xf);
    EXPECT_EQ(FindByteMask32(block_, needle),
              static_cast<uint32_t>(FindByteMaskScalar(block_, needle, 32)));
  }
}

TEST_F(SimdTest, FindByteMask64MatchesScalar) {
  Xoshiro256 rng(12);
  for (int trial = 0; trial < 2000; ++trial) {
    for (auto& b : block_) b = static_cast<uint8_t>(rng.Next() & 0x7);
    const uint8_t needle = static_cast<uint8_t>(rng.Next() & 0x7);
    EXPECT_EQ(FindByteMask64(block_, needle),
              FindByteMaskScalar(block_, needle, 64));
  }
}

TEST_F(SimdTest, FindByteMask32NoMatch) {
  std::memset(block_, 0xaa, sizeof(block_));
  EXPECT_EQ(FindByteMask32(block_, 0xbb), 0u);
}

TEST_F(SimdTest, FindByteMask32AllMatch) {
  std::memset(block_, 0x55, sizeof(block_));
  EXPECT_EQ(FindByteMask32(block_, 0x55), 0xffffffffu);
}

TEST_F(SimdTest, FindByteMask64SingleMatchEveryPosition) {
  for (int pos = 0; pos < 64; ++pos) {
    std::memset(block_, 0, sizeof(block_));
    block_[pos] = 0x7f;
    EXPECT_EQ(FindByteMask64(block_, 0x7f), uint64_t{1} << pos);
  }
}

TEST_F(SimdTest, FindByteMask32SingleMatchEveryPosition) {
  for (int pos = 0; pos < 32; ++pos) {
    std::memset(block_, 0xff, sizeof(block_));
    block_[pos] = 3;
    EXPECT_EQ(FindByteMask32(block_, 3), uint32_t{1} << pos);
  }
}

// --- blocked-Bloom kernel --------------------------------------------------

TEST(BlockedBloomKernel, AddThenContains) {
  alignas(64) uint32_t block[8] = {0};
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    const uint32_t h = static_cast<uint32_t>(rng.Next());
    BlockedBloomAdd(h, block);
    EXPECT_TRUE(BlockedBloomContains(h, block));
  }
}

TEST(BlockedBloomKernel, EmptyBlockContainsNothing) {
  alignas(64) uint32_t block[8] = {0};
  Xoshiro256 rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(BlockedBloomContains(static_cast<uint32_t>(rng.Next()), block));
  }
}

TEST(BlockedBloomKernel, SimdAgreesWithScalarMask) {
  // After adding h, exactly the 8 scalar-mask bits must be set.
  Xoshiro256 rng(15);
  for (int trial = 0; trial < 500; ++trial) {
    alignas(64) uint32_t block[8] = {0};
    const uint32_t h = static_cast<uint32_t>(rng.Next());
    BlockedBloomAdd(h, block);
    uint32_t expect[8];
    BlockedBloomMaskScalar(h, expect);
    for (int lane = 0; lane < 8; ++lane) {
      EXPECT_EQ(block[lane], expect[lane]) << "lane " << lane;
    }
  }
}

TEST(BlockedBloomKernel, SetsOneBitPerLane) {
  uint32_t mask[8];
  Xoshiro256 rng(16);
  for (int trial = 0; trial < 500; ++trial) {
    BlockedBloomMaskScalar(static_cast<uint32_t>(rng.Next()), mask);
    for (int lane = 0; lane < 8; ++lane) {
      EXPECT_EQ(std::popcount(mask[lane]), 1) << "lane " << lane;
    }
  }
}

}  // namespace
}  // namespace prefixfilter
