// Tests for the thread-pool filter service: futures, concurrent clients,
// backpressure-safe shutdown, stats, snapshot/restore, and the LSM table's
// shared-service integration.
#include "src/service/filter_service.h"

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/lsm/table.h"
#include "src/util/random.h"
#include "src/workload/workload.h"

namespace prefixfilter {
namespace {

std::shared_ptr<ShardedFilter> MakeSharded(uint64_t capacity, uint64_t seed,
                                           uint32_t shards = 16) {
  ShardedFilterOptions options;
  options.num_shards = shards;
  options.seed = seed;
  auto filter = ShardedFilter::Make(capacity, options);
  EXPECT_NE(filter, nullptr);
  return std::shared_ptr<ShardedFilter>(filter.release());
}

TEST(FilterService, InsertAndQueryBatchesThroughFutures) {
  const uint64_t n = 100000;
  FilterService service(MakeSharded(n, 191), {});
  const auto keys = RandomKeys(n, 192);

  std::vector<std::future<uint64_t>> inserts;
  const size_t batch = 10000;
  for (size_t base = 0; base < keys.size(); base += batch) {
    inserts.push_back(service.InsertBatch(std::vector<uint64_t>(
        keys.begin() + base, keys.begin() + base + batch)));
  }
  for (auto& f : inserts) EXPECT_EQ(f.get(), 0u);

  // Mixed stream: even positions positive, odd almost-surely negative.
  std::vector<uint64_t> stream = RandomKeys(50000, 193);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i % n];
  auto result = service.QueryBatch(stream).get();
  ASSERT_EQ(result.size(), 50000u);
  uint64_t negatives_hit = 0;
  for (size_t i = 0; i < result.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(result[i], 1) << "false negative at " << i;
    } else {
      negatives_hit += result[i];
    }
  }
  // Negative half: false positives only, at roughly the backend's rate.
  EXPECT_LT(negatives_hit, result.size() / 2 / 50);

  const FilterServiceStats stats = service.stats();
  EXPECT_EQ(stats.insert_batches, n / batch);
  EXPECT_EQ(stats.keys_inserted, n);
  EXPECT_EQ(stats.query_batches, 1u);
  EXPECT_EQ(stats.keys_queried, 50000u);
  EXPECT_EQ(stats.insert_failures, 0u);
}

// The worker-pool path is the only one that queues, so it alone feeds the
// queue-wait histogram and depth gauge; exec-time histograms count batches.
TEST(FilterService, WorkerPathRecordsQueueAndExecTelemetry) {
  if (!obs::kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  obs::MetricsRegistry registry;  // local: isolated from other tests
  FilterServiceOptions options;
  options.num_threads = 2;
  options.registry = &registry;
  const uint64_t n = 50000;
  FilterService service(MakeSharded(n, 881), options);
  const auto keys = RandomKeys(n, 882);

  constexpr size_t kBatch = 5000;
  std::vector<std::future<uint64_t>> inserts;
  for (size_t base = 0; base < keys.size(); base += kBatch) {
    inserts.push_back(service.InsertBatch(std::vector<uint64_t>(
        keys.begin() + base, keys.begin() + base + kBatch)));
  }
  for (auto& f : inserts) EXPECT_EQ(f.get(), 0u);
  const auto answers =
      service.QueryBatch(std::vector<uint64_t>(keys.begin(),
                                               keys.begin() + 10000)).get();
  ASSERT_EQ(answers.size(), 10000u);

  const auto samples = registry.Collect();
  const obs::MetricSample* wait =
      obs::FindSample(samples, "service.queue.wait.ns");
  ASSERT_NE(wait, nullptr);
  // Every queued request recorded a wait (n/kBatch inserts + 1 query).
  EXPECT_EQ(wait->hist.count, n / kBatch + 1);
  const obs::MetricSample* exec =
      obs::FindSample(samples, "service.exec.ns", "op", "insert");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->hist.count, n / kBatch);
  EXPECT_GT(exec->hist.Percentile(0.99), 0.0);
  const obs::MetricSample* depth =
      obs::FindSample(samples, "service.queue.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0);  // queue drained once the futures resolved
}

TEST(FilterService, ManyConcurrentClients) {
  const uint64_t n = 160000;
  FilterService service(MakeSharded(n, 194),
                        FilterServiceOptions{/*num_threads=*/3,
                                             /*max_pending=*/8});
  const auto keys = RandomKeys(n, 195);
  constexpr int kClients = 4;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      // Each client owns an interleaved slice and submits it in batches.
      std::vector<uint64_t> mine;
      for (uint64_t i = c; i < n; i += kClients) mine.push_back(keys[i]);
      const size_t batch = 1000;
      for (size_t base = 0; base < mine.size(); base += batch) {
        const size_t count = std::min(batch, mine.size() - base);
        failures += service
                        .InsertBatch(std::vector<uint64_t>(
                            mine.begin() + base, mine.begin() + base + count))
                        .get();
      }
      // Immediately read back through the query path.
      auto result = service.QueryBatch(mine).get();
      for (uint8_t b : result) {
        if (!b) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(service.stats().keys_inserted, n);
}

TEST(FilterService, SynchronousModeWorksWithoutThreads) {
  const uint64_t n = 20000;
  FilterService service(MakeSharded(n, 196),
                        FilterServiceOptions{/*num_threads=*/0,
                                             /*max_pending=*/1});
  const auto keys = RandomKeys(n, 197);
  EXPECT_EQ(service.InsertBatch(keys).get(), 0u);
  auto result = service.QueryBatch(keys).get();
  for (uint8_t b : result) ASSERT_TRUE(b);
}

TEST(FilterService, SubmitAfterStopDegradesToSynchronous) {
  const uint64_t n = 10000;
  FilterService service(MakeSharded(n, 198), {});
  const auto keys = RandomKeys(n, 199);
  EXPECT_EQ(service.InsertBatch(keys).get(), 0u);
  service.Stop();
  auto result = service.QueryBatch(keys).get();
  for (uint8_t b : result) ASSERT_TRUE(b);
}

TEST(FilterService, SnapshotRestoreRoundTrip) {
  const uint64_t n = 60000;
  FilterService service(MakeSharded(n, 200, /*shards=*/8), {});
  const auto keys = RandomKeys(n, 201);
  EXPECT_EQ(service.InsertBatch(keys).get(), 0u);

  std::vector<uint8_t> snapshot;
  ASSERT_TRUE(service.Snapshot(&snapshot));
  auto restored = FilterService::Restore(snapshot.data(), snapshot.size());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Name(), service.filter().Name());

  FilterService revived(restored, {});
  auto result = revived.QueryBatch(keys).get();
  for (uint8_t b : result) ASSERT_TRUE(b);
  // The restored filter answers probes identically (same hash seeds).
  const auto probes = RandomKeys(100000, 202);
  for (uint64_t k : probes) {
    ASSERT_EQ(revived.Contains(k), service.Contains(k));
  }
  // Restore rejects non-sharded images.
  auto single = MakeFilter("PF[TC]", 1000, 1);
  std::vector<uint8_t> single_bytes;
  ASSERT_TRUE(single->SerializeTo(&single_bytes));
  EXPECT_EQ(FilterService::Restore(single_bytes.data(), single_bytes.size()),
            nullptr);
}

TEST(FilterService, LsmTableUsesSharedServiceAsGate) {
  const uint64_t n = 40000;
  auto service = std::make_shared<FilterService>(
      MakeSharded(n * 2, 203), FilterServiceOptions{/*num_threads=*/2,
                                                    /*max_pending=*/64});
  lsm::TableOptions options;
  options.memtable_entries = 4096;
  options.filter_service = service;
  lsm::Table table(options);

  const auto keys = RandomKeys(n, 204);
  for (uint64_t i = 0; i < n; ++i) table.Put(keys[i], i);
  table.Flush();
  ASSERT_GT(table.NumRuns(), 1u);

  // Every written key readable; the service saw every sealed key.
  for (uint64_t i = 0; i < n; i += 7) {
    auto v = table.Get(keys[i]);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(service->stats().keys_inserted, n);

  // Absent keys short-circuit at the table gate: data accesses stay flat.
  const uint64_t accesses_before = table.DataAccesses();
  const auto probes = RandomKeys(20000, 205);
  uint64_t found = 0;
  for (uint64_t k : probes) found += table.Get(k).has_value();
  EXPECT_EQ(found, 0u);
  const uint64_t futile = table.DataAccesses() - accesses_before;
  // Without the gate every probe would walk every run's filter and a few FPs
  // per run would reach the data; with it only global FPs do.
  EXPECT_LT(futile, probes.size() / 100);

  // MultiGet agrees with Get on a mixed stream.
  std::vector<uint64_t> stream(probes.begin(), probes.begin() + 1000);
  for (size_t i = 0; i < stream.size(); i += 2) stream[i] = keys[i * 3 % n];
  const auto batch = table.MultiGet(stream);
  ASSERT_EQ(batch.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(batch[i], table.Get(stream[i])) << i;
  }
}

// The front cache (ROADMAP: absorb adversarial-dup hot-set traffic) must be
// answer-transparent: bit-identical results with and without it, with the
// hot-set repeats served from the cache instead of the shard path.
TEST(FilterService, FrontCacheIsAnswerTransparentOnDupHeavyTraffic) {
  const uint64_t n = 50000;
  workload::Spec spec;
  ASSERT_TRUE(workload::FindStandardSpec("adversarial-dup", n,
                                         /*num_queries=*/200000,
                                         /*seed=*/0xcafe, &spec));
  const workload::Stream stream = workload::Generate(spec);

  FilterServiceOptions cached_options;
  cached_options.num_threads = 0;
  cached_options.front_cache_slots = 4096;
  FilterService cached(MakeSharded(n, 210), cached_options);
  FilterServiceOptions plain_options;
  plain_options.num_threads = 0;
  FilterService plain(MakeSharded(n, 210), plain_options);
  ASSERT_TRUE(cached.front_cache_enabled());
  ASSERT_FALSE(plain.front_cache_enabled());

  EXPECT_EQ(cached.InsertBatch(stream.insert_keys).get(), 0u);
  EXPECT_EQ(plain.InsertBatch(stream.insert_keys).get(), 0u);

  // Batched path, in service-sized batches so the cache sees repeats across
  // batches (within one batch every probe precedes every store).
  const size_t batch = 4096;
  for (size_t base = 0; base < stream.queries.size(); base += batch) {
    const size_t count = std::min(batch, stream.queries.size() - base);
    std::vector<uint64_t> slice(stream.queries.begin() + base,
                                stream.queries.begin() + base + count);
    const auto with_cache = cached.QueryBatch(slice).get();
    const auto without = plain.QueryBatch(slice).get();
    ASSERT_EQ(with_cache, without) << "answers diverged at batch " << base;
    for (size_t i = 0; i < count; ++i) {
      if (stream.query_expected[base + i]) {
        ASSERT_EQ(with_cache[i], 1) << "false negative at " << (base + i);
      }
    }
  }

  // 90% of the stream is a 64-key hot set, half of it inserted keys: those
  // repeats (~45% of the stream) should have come from the cache.
  const FilterServiceStats stats = cached.stats();
  EXPECT_GT(stats.front_cache_hits, stream.queries.size() * 2 / 5);
  EXPECT_EQ(plain.stats().front_cache_hits, 0u);

  // The scalar fast path is cache-served too.
  const uint64_t hot_key = stream.insert_keys[0];
  const uint64_t hits_before = cached.stats().front_cache_hits;
  ASSERT_TRUE(cached.Contains(hot_key));  // populates
  ASSERT_TRUE(cached.Contains(hot_key));  // served from the cache
  EXPECT_GT(cached.stats().front_cache_hits, hits_before);

  // The all-ones key doubles as the cache's empty-slot sentinel: an empty
  // slot must never read as a cached positive for it — the cached service
  // answers exactly what the filter answers.
  const uint64_t sentinel = ~uint64_t{0};
  EXPECT_EQ(cached.Contains(sentinel), plain.Contains(sentinel));
}

TEST(FilterService, QueryBatchAsyncDeliversCallbackOffTheSubmittingThread) {
  const uint64_t n = 50000;
  FilterServiceOptions options;
  options.num_threads = 2;
  FilterService service(MakeSharded(n, 881), options);
  const auto keys = RandomKeys(n, 882);
  EXPECT_EQ(service.InsertBatch(keys).get(), 0u);

  // Callback flavor answers identically to the future flavor, and (with a
  // worker pool) runs on a worker thread, not the submitter.
  std::promise<std::vector<uint8_t>> done;
  std::thread::id callback_thread;
  service.QueryBatchAsync(
      std::vector<uint64_t>(keys.begin(), keys.begin() + 4096),
      [&](std::vector<uint8_t> results) {
        callback_thread = std::this_thread::get_id();
        done.set_value(std::move(results));
      });
  const std::vector<uint8_t> results = done.get_future().get();
  ASSERT_EQ(results.size(), 4096u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 1) << "false negative at " << i;
  }
  EXPECT_NE(callback_thread, std::this_thread::get_id());
  service.Drain();
  EXPECT_EQ(service.stats().keys_queried, 4096u);
}

TEST(FilterService, QueryBatchAsyncRunsInlineWhenSynchronous) {
  FilterService service(MakeSharded(1000, 883), {.num_threads = 0});
  const uint64_t key = 77;
  EXPECT_EQ(service.InsertBatch({key}).get(), 0u);
  bool called = false;
  service.QueryBatchAsync({key}, [&](std::vector<uint8_t> results) {
    called = true;
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], 1);
  });
  // Synchronous service: the callback completed before the call returned.
  EXPECT_TRUE(called);
}

TEST(FilterService, QueryFaultHookSeesBatchKeysAndClears) {
  FilterService service(MakeSharded(1000, 884), {.num_threads = 0});
  std::vector<uint64_t> seen;
  service.SetQueryFaultHookForTesting(
      [&](const uint64_t* keys, size_t count) {
        seen.assign(keys, keys + count);
      });
  const std::vector<uint64_t> probe = {1, 2, 3};
  std::vector<uint8_t> out(probe.size());
  service.QueryBatchSync(probe.data(), probe.size(), out.data());
  EXPECT_EQ(seen, probe);
  service.SetQueryFaultHookForTesting(nullptr);
  seen.clear();
  service.QueryBatchSync(probe.data(), probe.size(), out.data());
  EXPECT_TRUE(seen.empty());
}

}  // namespace
}  // namespace prefixfilter
