// Standalone driver for the fuzz targets: replays corpus files through
// LLVMFuzzerTestOneInput and exits non-zero on the first crash-free
// violation it can detect (missing corpus, unreadable file).
//
// This is the corpus regression runner the normal test build uses: every
// fuzz_<target>.cc links either against libFuzzer (clang,
// PF_FUZZ_LIBFUZZER=ON — this file is left out) or against this main, so
// the committed corpora under fuzz/corpus/ are executed by ctest on every
// build, with any compiler.  Crashes surface as a non-zero exit the same
// way they would under the fuzzer.
//
// Usage: fuzz_<target>_runner <file-or-directory>...
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path, size_t* ran) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  ++*ran;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
        if (!entry.is_regular_file()) continue;
        if (!RunFile(entry.path(), &ran)) return 1;
      }
      if (ec) {
        std::fprintf(stderr, "fuzz driver: cannot list %s\n", path.c_str());
        return 1;
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      if (!RunFile(path, &ran)) return 1;
    } else {
      std::fprintf(stderr, "fuzz driver: no such input %s\n", path.c_str());
      return 1;
    }
  }
  if (ran == 0) {
    // An empty corpus means the regression run proved nothing — fail so a
    // lost/renamed corpus directory cannot silently pass CI.
    std::fprintf(stderr, "fuzz driver: no corpus inputs found\n");
    return 1;
  }
  std::printf("fuzz driver: %zu inputs, no crashes\n", ran);
  return 0;
}
