// Fuzz target: the util::json parser (bench result files, baseline gates).
//
// Invariant beyond memory safety: a successful parse must Dump() to text
// that reparses successfully and dumps to the same text (canonical
// idempotence), and a failed parse must leave the output untouched and
// produce an error message.
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  prefixfilter::json::Value value;
  std::string error;
  if (!prefixfilter::json::Value::Parse(text, &value, &error)) {
    if (error.empty()) __builtin_trap();  // failures must explain themselves
    return 0;
  }
  const std::string dumped = value.Dump();
  prefixfilter::json::Value reparsed;
  std::string reparse_error;
  if (!prefixfilter::json::Value::Parse(dumped, &reparsed, &reparse_error)) {
    __builtin_trap();  // our own Dump() output must always parse
  }
  if (reparsed.Dump() != dumped) __builtin_trap();  // canonical fixed point
  return 0;
}
